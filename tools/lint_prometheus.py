#!/usr/bin/env python3
"""Validate Prometheus text-format files emitted by ``--metrics-out``.

Usage::

    PYTHONPATH=src python tools/lint_prometheus.py metrics.prom [...]

Thin shim over the framework rule RS100
(:mod:`repro.staticcheck.rules.prom`): ``repro-ecs lint --prom FILE``
runs the same check with full reporting.  Kept as a standalone script
so the CI obs-smoke job (and muscle memory) keep working; output lines
and exit codes are unchanged from the original standalone linter.
"""

from __future__ import annotations

import sys
from pathlib import Path
from typing import List

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.staticcheck.rules.prom import lint_prom_summary  # noqa: E402


def lint(path: Path) -> bool:
    violations, counts = lint_prom_summary(path)
    if violations:
        for violation in violations:
            print(f"FAIL {path}: {violation.message}")
        return False
    assert counts is not None  # no violations means a successful parse
    families, samples = counts
    print(f"ok   {path}: {families} metric families, "
          f"{samples} samples")
    return True


def main(argv: List[str]) -> int:
    if not argv:
        print(__doc__.strip().splitlines()[0])
        print("usage: lint_prometheus.py FILE [FILE ...]")
        return 2
    ok = True
    for name in argv:
        ok = lint(Path(name)) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
