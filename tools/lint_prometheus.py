#!/usr/bin/env python3
"""Validate Prometheus text-format files emitted by ``--metrics-out``.

Usage::

    PYTHONPATH=src python tools/lint_prometheus.py metrics.prom [...]

Runs the strict parser from :func:`repro.obs.export.parse_prometheus`
over every file: each sample must belong to a declared ``# TYPE``
family, histogram families must expose cumulative ``_bucket`` series
ending in ``+Inf`` plus ``_sum``/``_count``, and all values must parse
as numbers.  Exit status is non-zero when any file fails, so CI can gate
on it.
"""

from __future__ import annotations

import sys
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.obs.export import parse_prometheus  # noqa: E402


def lint(path: Path) -> bool:
    try:
        families = parse_prometheus(path.read_text())
    except (OSError, ValueError) as exc:
        print(f"FAIL {path}: {exc}")
        return False
    samples = sum(len(info["samples"]) for info in families.values())
    print(f"ok   {path}: {len(families)} metric families, "
          f"{samples} samples")
    return True


def main(argv: list) -> int:
    if not argv:
        print(__doc__.strip().splitlines()[0])
        print("usage: lint_prometheus.py FILE [FILE ...]")
        return 2
    ok = True
    for name in argv:
        ok = lint(Path(name)) and ok
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
