#!/usr/bin/env python3
"""Run the repo's two mypy profiles; skip gracefully when mypy is absent.

Usage::

    python tools/run_mypy.py [--strict-only]

Profile 1 (strict): ``repro.obs``, ``repro.engine``,
``repro.staticcheck``, ``repro.datasets.columnar`` and
``repro.faults`` — the
invariant-bearing modules, checked with the strict flag set from
``[[tool.mypy.overrides]]`` in pyproject.toml.

Profile 2 (baseline): everything under ``repro`` — parse/import checked,
type errors not yet enforced (``ignore_errors`` baseline).

The container used for the tier-1 test run intentionally ships no
third-party packages, so when mypy is not importable this wrapper prints
a notice and exits 0 — static typing is enforced by the CI
``static-analysis`` job, which installs mypy.
"""

from __future__ import annotations

import subprocess
import sys

#: Packages/modules under the strict profile (keep in sync with
#: pyproject.toml).
STRICT_PACKAGES = ("repro.obs", "repro.engine", "repro.staticcheck",
                   "repro.datasets.columnar", "repro.faults")


def have_mypy() -> bool:
    try:
        import mypy  # noqa: F401
    except ImportError:
        return False
    return True


def run(args: list) -> int:
    cmd = [sys.executable, "-m", "mypy", *args]
    print("+", " ".join(cmd), flush=True)
    return subprocess.call(cmd)


def main(argv: list) -> int:
    if not have_mypy():
        print("run_mypy: mypy is not installed in this environment; "
              "skipping (CI static-analysis installs and enforces it)")
        return 0
    strict_args: list = []
    for package in STRICT_PACKAGES:
        strict_args.extend(["-p", package])
    rc = run(strict_args)
    if "--strict-only" in argv:
        return rc
    rc_baseline = run(["-p", "repro"])
    return rc or rc_baseline


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
