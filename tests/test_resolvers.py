"""Tests for the recursive resolver, forwarders, and the anycast service."""

import pytest

from repro.auth import fixed_scope
from repro.core.policies import EcsPolicy, ProbingStrategy
from repro.dnslib import (EcsOption, Message, Name, Rcode, RecordType)
from repro.measure import StubClient
from repro.net import city
from repro.resolvers import (Forwarder, PublicDnsService, RecursiveResolver,
                             behaviors, build_chain)

WWW = "www.example.com"
CDN_NAME = "video.cdn.example"


class TestRecursiveResolution:
    def test_resolves_static_zone(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(small_world.resolver_ip, WWW)
        assert result.rcode == Rcode.NOERROR
        assert result.addresses == ["93.184.216.34"]

    def test_response_has_ra_and_not_aa(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(small_world.resolver_ip, WWW)
        assert result.response.recursion_available
        assert not result.response.authoritative

    def test_nxdomain_propagates(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(small_world.resolver_ip, "no.example.com")
        assert result.rcode == Rcode.NXDOMAIN

    def test_cname_chased_across_zone(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(small_world.resolver_ip, "alias.example.com")
        assert "93.184.216.34" in result.addresses

    def test_second_query_served_from_cache(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        client.query(small_world.resolver_ip, WWW)
        upstream_before = small_world.resolver.upstream_queries
        client.query(small_world.resolver_ip, WWW)
        assert small_world.resolver.upstream_queries == upstream_before
        assert small_world.resolver.cache.stats.hits >= 1

    def test_cache_expires_with_ttl(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        client.query(small_world.resolver_ip, WWW)
        upstream_before = small_world.resolver.upstream_queries
        small_world.topology.clock.advance(301)  # zone default TTL is 300
        client.query(small_world.resolver_ip, WWW)
        assert small_world.resolver.upstream_queries > upstream_before

    def test_delegation_cache_skips_root(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        client.query(small_world.resolver_ip, WWW)
        root_queries = small_world.net.stats.per_destination.get(
            small_world.hierarchy.root_ips[0], 0)
        client.query(small_world.resolver_ip, "other.example.com")
        assert small_world.net.stats.per_destination.get(
            small_world.hierarchy.root_ips[0], 0) == root_queries

    def test_closed_resolver_refuses_strangers(self, small_world):
        resolver_ip = small_world.isp.host_in(city("Cleveland"))
        resolver = RecursiveResolver(resolver_ip, small_world.topology.clock,
                                     small_world.hierarchy.root_hints
                                     if hasattr(small_world.hierarchy,
                                                "root_hints")
                                     else small_world.hierarchy.root_ips,
                                     allowed_clients={"1.2.3.4"})
        small_world.net.attach(resolver)
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(resolver_ip, WWW)
        assert result.rcode == Rcode.REFUSED

    def test_resolution_failure_raises_servfail_path(self, small_world):
        # Detach the only example.com server: resolution must not hang.
        from repro.dnslib import ResolutionError
        zone_ip = None
        for ip, count in small_world.net.stats.per_destination.items():
            pass
        client = StubClient(small_world.client_ip, small_world.net)
        # Query an undelegated TLD: root returns NXDOMAIN (terminal).
        result = client.query(small_world.resolver_ip, "x.unknown-tld-zz.")
        assert result.rcode in (Rcode.NXDOMAIN, Rcode.SERVFAIL)


class TestResolverEcs:
    def test_sends_ecs_to_cdn(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        client.query(small_world.resolver_ip, CDN_NAME)
        decision = small_world.cdn.decisions[-1]
        assert decision.hint_source == "ecs"
        # The hint is the /24 of the *client*, not the resolver.
        assert decision.hint.startswith(
            ".".join(small_world.client_ip.split(".")[:3]))

    def test_no_ecs_to_root_or_tld(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        client.query(small_world.resolver_ip, CDN_NAME)
        root_log = small_world.hierarchy.root_server.log
        assert all(not r.has_ecs for r in root_log)

    def test_ecs_cache_split_by_scope(self, small_world):
        client_b = small_world.isp.host_in(city("Tokyo"))
        client1 = StubClient(small_world.client_ip, small_world.net)
        client2 = StubClient(client_b, small_world.net)
        client1.query(small_world.resolver_ip, CDN_NAME)
        queries_before = small_world.cdn.queries_received
        client2.query(small_world.resolver_ip, CDN_NAME)
        # Different /24 ⇒ scope-24 entry cannot be reused ⇒ CDN re-queried.
        assert small_world.cdn.queries_received > queries_before

    def test_same_subnet_clients_share_entry(self, small_world):
        sibling = small_world.client_ip.rsplit(".", 1)[0] + ".99"
        client1 = StubClient(small_world.client_ip, small_world.net)
        client2 = StubClient(sibling, small_world.net)
        client1.query(small_world.resolver_ip, CDN_NAME)
        queries_before = small_world.cdn.queries_received
        client2.query(small_world.resolver_ip, CDN_NAME)
        assert small_world.cdn.queries_received == queries_before

    def test_echoes_scope_to_ecs_client(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        ecs = EcsOption.from_client_address(small_world.client_ip, 24)
        result = client.query(small_world.resolver_ip, CDN_NAME, ecs=ecs)
        echoed = result.response.ecs()
        assert echoed is not None and echoed.matches_query(ecs)

    def test_client_ecs_overridden_by_default(self, small_world):
        # Anti-spoofing: foreign ECS is replaced by the sender address.
        client = StubClient(small_world.client_ip, small_world.net)
        foreign = EcsOption.from_client_address("16.99.99.0", 24)
        client.query(small_world.resolver_ip, CDN_NAME, ecs=foreign)
        hint = small_world.cdn.decisions[-1].hint
        assert not hint.startswith("16.99.99")

    def test_scope_ignoring_resolver_reuses_for_anyone(self, small_world):
        ip = small_world.isp.host_in(city("Cleveland"))
        resolver = RecursiveResolver(ip, small_world.topology.clock,
                                     small_world.hierarchy.root_ips,
                                     policy=behaviors.SCOPE_IGNORER)
        small_world.net.attach(resolver)
        far_client = small_world.isp.host_in(city("Tokyo"))
        StubClient(small_world.client_ip, small_world.net).query(ip, CDN_NAME)
        before = small_world.cdn.queries_received
        StubClient(far_client, small_world.net).query(ip, CDN_NAME)
        assert small_world.cdn.queries_received == before

    def test_never_policy_sends_no_ecs(self, small_world):
        ip = small_world.isp.host_in(city("Cleveland"))
        resolver = RecursiveResolver(ip, small_world.topology.clock,
                                     small_world.hierarchy.root_ips,
                                     policy=behaviors.NO_ECS)
        small_world.net.attach(resolver)
        StubClient(small_world.client_ip, small_world.net).query(ip, CDN_NAME)
        assert small_world.cdn.decisions[-1].hint_source == "resolver"

    def test_jammed_policy_reveals_32_bits(self, small_world):
        ip = small_world.isp.host_in(city("Cleveland"))
        resolver = RecursiveResolver(ip, small_world.topology.clock,
                                     small_world.hierarchy.root_ips,
                                     policy=behaviors.JAMMED_LAST_BYTE)
        small_world.net.attach(resolver)
        StubClient(small_world.client_ip, small_world.net).query(ip, CDN_NAME)
        assert small_world.cdn.decisions[-1].hint.endswith(".1")

    def test_mismatched_response_ecs_discarded(self, small_world):
        # An authoritative echoing a *different* prefix must be ignored
        # (RFC 7871 section 7.3).
        from repro.auth.server import AuthoritativeServer
        from repro.dnslib import Zone

        class LyingServer(AuthoritativeServer):
            def handle_query(self, query, src_ip, net):
                resp = super().handle_query(query, src_ip, net)
                if query.ecs() is not None and resp is not None \
                        and resp.edns is not None:
                    resp.set_ecs(EcsOption.from_client_address(
                        "9.9.9.0", 24).response_to(24))
                return resp

        zone = Zone(Name.from_text("liar.example."))
        zone.add_soa()
        zone.add_text("www", "A", "203.0.113.66")
        ip = small_world.isp.host_in(city("Ashburn"))
        server = LyingServer(ip, [zone])
        small_world.net.attach(server)
        small_world.hierarchy.attach_authoritative(
            Name.from_text("liar.example."), ip)
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(small_world.resolver_ip, "www.liar.example")
        assert result.addresses == ["203.0.113.66"]
        # Cached globally (option discarded), so any client gets a hit.
        far = StubClient(small_world.isp.host_in(city("Tokyo")),
                         small_world.net)
        before = server.queries_received
        far.query(small_world.resolver_ip, "www.liar.example")
        assert server.queries_received == before


class TestFormerrFallback:
    def test_retry_without_edns(self, small_world):
        from repro.auth.server import AuthoritativeServer
        from repro.dnslib import Zone
        zone = Zone(Name.from_text("old.example."))
        zone.add_soa()
        zone.add_text("www", "A", "203.0.113.77")
        ip = small_world.isp.host_in(city("Ashburn"))
        server = AuthoritativeServer(ip, [zone], supports_edns=False)
        small_world.net.attach(server)
        small_world.hierarchy.attach_authoritative(
            Name.from_text("old.example."), ip)
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(small_world.resolver_ip, "www.old.example")
        assert result.addresses == ["203.0.113.77"]


class TestForwarder:
    def test_forwarding_transparent(self, small_world):
        fwd_ip = small_world.isp.host_in(city("Cleveland"))
        fwd = Forwarder(fwd_ip, [small_world.resolver_ip])
        small_world.net.attach(fwd)
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(fwd_ip, WWW)
        assert result.addresses == ["93.184.216.34"]
        assert fwd.forwarded == 1

    def test_msg_id_preserved_for_client(self, small_world):
        fwd_ip = small_world.isp.host_in(city("Cleveland"))
        small_world.net.attach(Forwarder(fwd_ip, [small_world.resolver_ip]))
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(fwd_ip, WWW)
        assert result.response.msg_id is not None

    def test_strip_ecs(self, small_world):
        fwd_ip = small_world.isp.host_in(city("Cleveland"))
        fwd = Forwarder(fwd_ip, [small_world.resolver_ip], strip_ecs=True)
        small_world.net.attach(fwd)
        client = StubClient(small_world.client_ip, small_world.net)
        ecs = EcsOption.from_client_address("16.99.0.0", 24)
        result = client.query(fwd_ip, CDN_NAME, ecs=ecs)
        assert result.response.ecs() is None

    def test_dead_upstream_servfail(self, small_world):
        fwd_ip = small_world.isp.host_in(city("Cleveland"))
        fwd = Forwarder(fwd_ip, ["19.19.19.19"])
        small_world.net.attach(fwd)
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(fwd_ip, WWW)
        assert result.rcode == Rcode.SERVFAIL

    def test_upstream_failover(self, small_world):
        fwd_ip = small_world.isp.host_in(city("Cleveland"))
        fwd = Forwarder(fwd_ip, ["19.19.19.19", small_world.resolver_ip])
        small_world.net.attach(fwd)
        client = StubClient(small_world.client_ip, small_world.net)
        assert client.query(fwd_ip, WWW).addresses == ["93.184.216.34"]

    def test_chain_builder(self, small_world):
        hops = [small_world.isp.host_in(city("Cleveland")) for _ in range(3)]
        chain = build_chain(small_world.net, hops, small_world.resolver_ip)
        assert len(chain) == 3
        client = StubClient(small_world.client_ip, small_world.net)
        assert client.query(hops[0], WWW).addresses == ["93.184.216.34"]

    def test_no_upstreams_rejected(self):
        with pytest.raises(ValueError):
            Forwarder("1.1.1.1", [])


class TestAnycastService:
    @pytest.fixture()
    def service(self, small_world):
        service_as = small_world.topology.create_as("pubdns", "US")
        return PublicDnsService(
            small_world.net, service_as, small_world.hierarchy.root_ips,
            frontend_cities=[city("Ashburn"), city("Frankfurt")],
            egress_city=city("Ashburn"), egress_count=2)

    def test_resolves_through_frontend(self, small_world, service):
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(service.frontend_ips[0], WWW)
        assert result.addresses == ["93.184.216.34"]

    def test_frontend_adds_client_ecs(self, small_world, service):
        client = StubClient(small_world.client_ip, small_world.net)
        client.query(service.frontend_ips[0], CDN_NAME)
        hint = small_world.cdn.decisions[-1].hint
        assert hint.startswith(
            ".".join(small_world.client_ip.split(".")[:3]))

    def test_frontend_logs_scope_and_client(self, small_world, service):
        client = StubClient(small_world.client_ip, small_world.net)
        client.query(service.frontend_ips[0], CDN_NAME)
        log = service.frontends[0].frontend_log
        assert log and log[-1].client_ip == small_world.client_ip
        assert log[-1].scope == 24

    def test_sticky_egress_by_client_slash16(self, small_world, service):
        sibling = small_world.client_ip.rsplit(".", 1)[0] + ".77"
        fe = service.frontends[0]
        assert fe._egress_for(small_world.client_ip) == \
            fe._egress_for(sibling)

    def test_plain_client_gets_no_ecs_back(self, small_world, service):
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(service.frontend_ips[0], WWW)
        assert result.response.ecs() is None

    def test_combined_log_sorted(self, small_world, service):
        client = StubClient(small_world.client_ip, small_world.net)
        client.query(service.frontend_ips[0], WWW)
        client.query(service.frontend_ips[1], CDN_NAME)
        log = service.combined_log()
        assert log == sorted(log, key=lambda r: r.ts)
