"""Bounded-memory harness: generate → merge → replay never holds a trace.

The out-of-core contract of the row-group layout is that peak *Python
heap* allocation is a function of ``row_group_rows`` (plus fixed model
state), not of trace length: workers buffer one group, the k-way merge
holds one group per shard, pre-bucketing holds one group per bucket,
and ranged replay streams one group at a time.

``tracemalloc`` is the right meter here — it sees exactly the
allocations that must stay bounded and ignores mmap'd file pages,
which are the OS page cache's business and intentionally scale with
the file.  The harness runs the same pipeline at two trace lengths
(5× apart) over a *fixed* string universe (hostnames/subnets pinned,
only ``total_queries`` grows — the replay caches key on distinct
strings, so their footprint is size-invariant by construction) and
asserts the peak grows sublinearly.
"""

from __future__ import annotations

import gc
import tracemalloc
from typing import Any, Callable, Tuple

import pytest

from repro.datasets.columnar import (is_columnar, prebucket_columnar,
                                     read_columnar)
from repro.engine import ShardSpec, generate_columnar, replay_columnar_sharded
from repro.engine.replay import _row_group_reader_cached

SHARDS = 4
GROUP_ROWS = 256

#: Builder kwargs with the string universe pinned: hostnames, subnets
#: and therefore dictionaries / replay caches are identical at every
#: trace length.  Only ``total_queries`` may vary between sizes.
FIXED_UNIVERSE = dict(scale=1.0, seed=3, duration_s=600.0,
                      hostname_count=60, v4_subnet_count=24,
                      v6_subnet_count=8)


def peak_alloc_of(fn: Callable[[], Any]) -> Tuple[Any, int]:
    """Run ``fn`` and return ``(result, peak_heap_bytes)``.

    Collects first so leftover garbage from earlier tests is not
    charged to ``fn``, and clears the replay-side reader cache so no
    measurement pays for (or hides behind) a predecessor's mmap
    bookkeeping.
    """
    _row_group_reader_cached.cache_clear()
    gc.collect()
    tracemalloc.start()
    try:
        result = fn()
        peak = tracemalloc.get_traced_memory()[1]
    finally:
        tracemalloc.stop()
    return result, peak


def _pipeline(tmp_path, total_queries: int):
    """The full out-of-core path: generate v2 → pre-bucket → replay."""
    spec = ShardSpec.create("allnames", shard_count=SHARDS,
                            total_queries=total_queries, **FIXED_UNIVERSE)
    flat = tmp_path / f"t{total_queries}.col"
    count, _ = generate_columnar(spec, flat, workers=1,
                                 row_group_rows=GROUP_ROWS)
    bucketed = tmp_path / f"b{total_queries}.col"
    assert prebucket_columnar(flat, bucketed, SHARDS,
                              row_group_rows=GROUP_ROWS) == count
    result, _ = replay_columnar_sharded(bucketed, "allnames",
                                        shards=SHARDS, workers=1)
    return count, result


def test_peak_heap_is_sublinear_in_trace_length(tmp_path):
    """5× the rows must cost far less than 5× (indeed < 2×) the heap."""
    small, large = 3_000, 15_000
    (count_small, replay_small), peak_small = \
        peak_alloc_of(lambda: _pipeline(tmp_path, small))
    (count_large, replay_large), peak_large = \
        peak_alloc_of(lambda: _pipeline(tmp_path, large))
    assert count_small == small and count_large == large
    assert replay_small.max_size_ecs > 0
    assert replay_large.max_size_ecs > 0
    # The bound: fixed model state + group-sized buffers.  Allow 2× for
    # allocator noise and the O(groups) file header — anything near the
    # 5× data ratio means a stage materialized the trace.
    assert peak_large < 2 * peak_small + (1 << 20), \
        f"peak heap grew {peak_large / peak_small:.1f}x for 5x the rows " \
        f"({peak_small >> 10} KiB -> {peak_large >> 10} KiB)"


def test_pipeline_output_matches_in_memory_reference(tmp_path):
    """The bounded pipeline is not just bounded — it is also *right*."""
    spec = ShardSpec.create("allnames", shard_count=SHARDS,
                            total_queries=3_000, **FIXED_UNIVERSE)
    flat = tmp_path / "flat.col"
    generate_columnar(spec, flat, workers=1, row_group_rows=GROUP_ROWS)
    assert is_columnar(flat)
    bucketed = tmp_path / "bucketed.col"
    prebucket_columnar(flat, bucketed, SHARDS, row_group_rows=GROUP_ROWS)
    reference, _ = replay_columnar_sharded(flat, "allnames",
                                           shards=SHARDS, workers=1)
    ranged, _ = replay_columnar_sharded(bucketed, "allnames",
                                        shards=SHARDS, workers=1)
    assert ranged == reference
    # And the v2 trace holds exactly the v1 pipeline's records.
    v1 = tmp_path / "v1.col"
    generate_columnar(spec, v1, workers=1)
    assert read_columnar(flat) == read_columnar(v1)


def test_prebucketed_replay_rejects_wrong_shard_count(tmp_path):
    """A pre-bucketed file silently mis-replayed would skew TTL
    timelines (bucket unions concatenate, not interleave) — so a
    shard-count mismatch must refuse, loudly and actionably."""
    spec = ShardSpec.create("allnames", shard_count=SHARDS,
                            total_queries=1_000, **FIXED_UNIVERSE)
    flat = tmp_path / "flat.col"
    generate_columnar(spec, flat, workers=1, row_group_rows=GROUP_ROWS)
    bucketed = tmp_path / "bucketed.col"
    prebucket_columnar(flat, bucketed, 8, row_group_rows=GROUP_ROWS)
    with pytest.raises(ValueError, match="pre-bucketed for 8 shards"):
        replay_columnar_sharded(bucketed, "allnames", shards=4, workers=1)
    # The matching count replays fine.
    result, _ = replay_columnar_sharded(bucketed, "allnames", shards=8,
                                        workers=1)
    reference, _ = replay_columnar_sharded(flat, "allnames", shards=8,
                                           workers=1)
    assert result == reference
