"""Parallel-equivalence suite: spec dispatch can never change output.

The engine's contract is that ``--workers``, ``--pool`` and
``--chunk-size`` are pure execution detail: for every shardable builder
and for chaos presets, the merged JSONL bytes, replay results, metrics
and rendered reports must be byte-identical across worker counts, pool
lifecycles and chunk sizes — and the spec-dispatch paths must reproduce
the list-based reference paths exactly.

Real-pool coverage runs a small execution matrix per case (inline,
persistent, spawn-per-batch, odd chunk sizes); the Hypothesis property
drives the full wire protocol (header encode → memoized decode →
per-shard blob decode → chunked execution) in-process over arbitrary
(total, shards, chunk_size), which keeps the search wide without
spawning processes per example.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, List, Sequence

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datasets.columnar import read_columnar
from repro.datasets.records import AllNamesRecord, write_jsonl_shards
from repro.engine import (ShardSpec, WorkerPool, generate_columnar,
                          generate_jsonl, generate_records,
                          generate_records_spec, register_builder,
                          replay_columnar_sharded, shard_bounds)
from repro.engine.executor import _chunk_bounds, _run_header_chunk
from repro.engine.pool import encode_header, encode_shard_args
from repro.engine.replay import (_replay_shard_of_kind, replay_jsonl_sharded,
                                 replay_sharded, replay_spec_sharded)
from repro.engine.sharding import partition_by_key
from repro.faults.chaos import run_chaos
from repro.faults.presets import preset
from repro.obs import observe
from repro.obs.export import to_prometheus

#: (workers, pool mode, chunk_size) combinations exercised per case.
#: workers=1 is the inline reference; the rest hit real process pools.
EXECUTION_MATRIX = (
    (1, "persistent", None),
    (2, "persistent", 1),
    (2, "spawn-per-batch", None),
    (4, "persistent", 2),
)

#: Tiny-but-nonempty constructor kwargs per registered builder.
BUILDER_CASES = {
    "allnames": dict(scale=0.01, seed=7),
    "public-cdn": dict(scale=0.004, seed=7, duration_s=600.0),
    "cdn": dict(scale=0.004, seed=7, duration_s=900.0),
    "root-trace": dict(resolver_count=20, violators=3, duration_s=120.0,
                       seed=7),
}

SHARDS = 4

#: Trace kinds the replay engine understands, with their builders.
REPLAY_CASES = ("allnames", "public-cdn")


def _spec(name: str) -> ShardSpec:
    return ShardSpec.create(name, shard_count=SHARDS, **BUILDER_CASES[name])


@pytest.mark.parametrize("name", sorted(BUILDER_CASES))
def test_generate_records_equivalent_across_matrix(name):
    """Spec dispatch reproduces the builder-object reference, per shard."""
    spec = _spec(name)
    reference, _ = generate_records(spec.make_builder(), shards=SHARDS,
                                    workers=1)
    for workers, mode, chunk in EXECUTION_MATRIX:
        with WorkerPool(workers, mode=mode) as pool:
            lists, report = generate_records_spec(spec, workers=workers,
                                                  chunk_size=chunk,
                                                  pool=pool)
        assert lists == reference, (name, workers, mode, chunk)
        assert report.total_records == sum(len(s) for s in reference)


@pytest.mark.parametrize("name", sorted(BUILDER_CASES))
def test_generate_jsonl_identical_bytes_across_matrix(name, tmp_path):
    """Worker-written shard files merge to the reference trace, bytewise."""
    spec = _spec(name)
    # Reference route: records materialized in the parent, shard files
    # written parent-side, same k-way merge.
    from repro.datasets.records import merge_jsonl_shards
    shard_lists, _ = generate_records(spec.make_builder(), shards=SHARDS,
                                      workers=1)
    ref_path = tmp_path / "reference.jsonl"
    paths = write_jsonl_shards(shard_lists, ref_path)
    merge_jsonl_shards(paths, ref_path)
    reference = ref_path.read_bytes()
    for workers, mode, chunk in EXECUTION_MATRIX:
        out = tmp_path / f"{name}-w{workers}-{mode}-c{chunk}.jsonl"
        with WorkerPool(workers, mode=mode) as pool:
            count, _ = generate_jsonl(spec, out, workers=workers,
                                      chunk_size=chunk, pool=pool)
        assert out.read_bytes() == reference, (name, workers, mode, chunk)
        assert count == sum(len(s) for s in shard_lists)
        assert not list(tmp_path.glob(f"{out.name}.shard*")), \
            "shard files must be cleaned up"


@pytest.mark.parametrize("kind", REPLAY_CASES)
def test_replay_equivalent_across_matrix(kind, tmp_path):
    """JSONL-line and builder-spec replays equal the list-based reference."""
    spec = _spec(kind)
    trace = tmp_path / f"{kind}.jsonl"
    generate_jsonl(spec, trace, workers=1)
    # The list-based reference replays the assembled dataset (ts-merged),
    # the same canonical order the JSONL trace and spec paths see.
    from repro.engine import generate_dataset
    dataset, _ = generate_dataset(spec.make_builder(), shards=SHARDS,
                                  workers=1)
    reference, ref_report = replay_sharded(dataset.records, kind,
                                           shards=SHARDS, workers=1)
    for workers, mode, chunk in EXECUTION_MATRIX:
        with WorkerPool(workers, mode=mode) as pool:
            from_lines, line_report = replay_jsonl_sharded(
                trace, kind, shards=SHARDS, workers=workers,
                chunk_size=chunk, pool=pool)
            from_spec, spec_report = replay_spec_sharded(
                spec, kind, shards=SHARDS, workers=workers,
                chunk_size=chunk, pool=pool)
        assert from_lines == reference, (kind, workers, mode, chunk)
        assert from_spec == reference, (kind, workers, mode, chunk)
        assert (line_report.total_records == spec_report.total_records
                == ref_report.total_records)


@pytest.mark.parametrize("kind", REPLAY_CASES)
def test_generate_columnar_identical_bytes_across_matrix(kind, tmp_path):
    """Worker-written columnar shards merge to the reference, bytewise.

    public-cdn shards overlap in time, so this also pins the segment
    merge to the canonical ts-ordered k-way merge, not concatenation.
    """
    spec = _spec(kind)
    from repro.engine import generate_dataset
    dataset, _ = generate_dataset(spec.make_builder(), shards=SHARDS,
                                  workers=1)
    ref_out = tmp_path / "reference.col"
    generate_columnar(spec, ref_out, workers=1)
    assert read_columnar(ref_out) == list(dataset.records)
    reference = ref_out.read_bytes()
    for workers, mode, chunk in EXECUTION_MATRIX:
        out = tmp_path / f"{kind}-w{workers}-{mode}-c{chunk}.col"
        with WorkerPool(workers, mode=mode) as pool:
            count, _ = generate_columnar(spec, out, workers=workers,
                                         chunk_size=chunk, pool=pool)
        assert out.read_bytes() == reference, (kind, workers, mode, chunk)
        assert count == len(dataset.records)
        assert not list(tmp_path.glob(f"{out.name}.shard*")), \
            "columnar shard files must be cleaned up"


@pytest.mark.parametrize("kind", REPLAY_CASES)
def test_replay_columnar_equivalent_across_matrix(kind, tmp_path):
    """Columnar replay == JSONL replay == list reference, any pool shape."""
    spec = _spec(kind)
    from repro.engine import generate_dataset
    dataset, _ = generate_dataset(spec.make_builder(), shards=SHARDS,
                                  workers=1)
    reference, ref_report = replay_sharded(dataset.records, kind,
                                           shards=SHARDS, workers=1)
    col_trace = tmp_path / f"{kind}.col"
    generate_columnar(spec, col_trace, workers=1)
    jsonl_trace = tmp_path / f"{kind}.jsonl"
    generate_jsonl(spec, jsonl_trace, workers=1)
    for workers, mode, chunk in EXECUTION_MATRIX:
        with WorkerPool(workers, mode=mode) as pool:
            from_cols, col_report = replay_columnar_sharded(
                col_trace, kind, shards=SHARDS, workers=workers,
                chunk_size=chunk, pool=pool)
            from_lines, line_report = replay_jsonl_sharded(
                jsonl_trace, kind, shards=SHARDS, workers=workers,
                chunk_size=chunk, pool=pool)
        assert from_cols == reference, (kind, workers, mode, chunk)
        assert from_lines == reference, (kind, workers, mode, chunk)
        assert (col_report.total_records == line_report.total_records
                == ref_report.total_records)


def test_replay_metrics_identical_across_workers(tmp_path):
    """The exported Prometheus text is workers/pool/chunk-invariant."""
    spec = _spec("allnames")
    trace = tmp_path / "metrics.jsonl"
    generate_jsonl(spec, trace, workers=1)
    renderings = set()
    for workers, mode, chunk in EXECUTION_MATRIX:
        with observe(metrics=True) as session:
            with WorkerPool(workers, mode=mode) as pool:
                replay_jsonl_sharded(trace, "allnames", shards=SHARDS,
                                     workers=workers, chunk_size=chunk,
                                     pool=pool)
        renderings.add(to_prometheus(session.registry))
    assert len(renderings) == 1


@pytest.mark.parametrize("preset_name", ("lossy", "heavy-loss"))
def test_chaos_report_identical_across_matrix(preset_name):
    """Chaos campaigns render byte-identical reports on any pool config."""
    plan = preset(preset_name)
    reports = set()
    for workers, mode, chunk in EXECUTION_MATRIX:
        with WorkerPool(workers, mode=mode) as pool:
            result, _ = run_chaos(plan, seed=3, fault_seed=11, ingress=16,
                                  shards=SHARDS, workers=workers,
                                  chunk_size=chunk, pool=pool)
        reports.add(result.report())
    assert len(reports) == 1


# ---------------------------------------------------------------------------
# Hypothesis: the spec-dispatch wire protocol over arbitrary decompositions.


@dataclass
class TinyDataset:
    records: List[AllNamesRecord]


class TinyTraceBuilder:
    """A deterministic synthetic builder for protocol-level properties.

    Record ``j`` depends only on ``j``, so any (shards, chunk) split of
    ``[0, total)`` must reassemble to the same trace.
    """

    def __init__(self, total: int = 40, seed: int = 0):
        self.total = total
        self.seed = seed

    def shard_units(self) -> int:
        return self.total

    def build_shard(self, shard_index: int,
                    shard_count: int) -> List[AllNamesRecord]:
        lo, hi = shard_bounds(self.total, shard_count)[shard_index]
        return [AllNamesRecord(ts=float(j), client_ip=f"10.{self.seed % 200}."
                               f"{j % 8}.{j % 5 + 1}",
                               qname=f"h{j % 13}.example.", qtype=1,
                               scope=16 if j % 3 else 24, ttl=60)
                for j in range(lo, hi)]

    def assemble(self, shard_lists: Sequence[List[AllNamesRecord]]
                 ) -> TinyDataset:
        return TinyDataset([r for shard in shard_lists for r in shard])


register_builder("tiny-trace", "test_pool_equivalence:TinyTraceBuilder")


def _run_protocol(fn, shard_args, shared, chunk_size) -> List[Any]:
    """Drive the pooled wire protocol in-process: encode, chunk, decode.

    Exactly what ``run_sharded`` submits to a pool — header serialized
    once, per-shard blobs, chunked worker calls — minus the process
    boundary, so Hypothesis can afford hundreds of decompositions.
    """
    header = encode_header(fn, tuple(shared))
    blobs = [encode_shard_args(tuple(args), i)
             for i, args in enumerate(shard_args)]
    outcomes = []
    for lo, hi in _chunk_bounds(len(blobs), chunk_size):
        outcomes.extend(_run_header_chunk(header, blobs[lo:hi], lo,
                                          False, False))
    return [result for result, _, _, _, _ in outcomes]


@settings(max_examples=30, deadline=None)
@given(total=st.integers(min_value=0, max_value=80),
       shards=st.integers(min_value=1, max_value=6),
       chunk_size=st.integers(min_value=1, max_value=5))
def test_spec_protocol_reproduces_reference(total, shards, chunk_size):
    """Property: spec dispatch == list-based reference for any split."""
    from repro.engine.generate import _build_shard_from_spec
    spec = ShardSpec.create("tiny-trace", shard_count=shards, total=total,
                            seed=total % 7)
    builder = spec.make_builder()
    reference_lists = [builder.build_shard(i, shards)
                       for i in range(shards)]
    spec_lists = _run_protocol(_build_shard_from_spec,
                               [(i,) for i in range(shards)],
                               (spec,), chunk_size)
    assert spec_lists == reference_lists

    records = builder.assemble(reference_lists).records
    reference_replay, _ = replay_sharded(records, "allnames", shards=shards,
                                         workers=1)
    buckets = partition_by_key(records, shards, lambda r: str(r.qname))
    partials = _run_protocol(_replay_shard_of_kind,
                             [(bucket,) for bucket in buckets],
                             ("allnames",), chunk_size)
    from repro.analysis.cache_sim import merge_partials
    assert merge_partials(partials) == reference_replay


def test_registry_rejects_unknown_and_conflicting_names():
    with pytest.raises(KeyError, match="unknown builder"):
        ShardSpec.create("no-such-builder")
    with pytest.raises(ValueError, match="already registered"):
        register_builder("tiny-trace", "somewhere.else:Builder")
    # Re-registering the identical path is an idempotent no-op.
    register_builder("tiny-trace", "test_pool_equivalence:TinyTraceBuilder")


def test_run_sharded_payload_accounting():
    """Pooled dispatch records per-shard payload bytes; inline records 0."""
    spec = _spec("allnames")
    _, inline_report = generate_records_spec(spec, workers=1)
    assert inline_report.pool_mode == "inline"
    assert inline_report.payload_bytes == 0
    assert inline_report.header_bytes == 0
    with WorkerPool(2) as pool:
        _, pooled_report = generate_records_spec(spec, workers=2, pool=pool)
    assert pooled_report.pool_mode == "persistent"
    assert pooled_report.header_bytes > 0
    assert all(s.payload_bytes > 0 for s in pooled_report.shards)
    # The whole point: per-shard specs are tiny, not record-list-sized.
    assert pooled_report.payload_bytes_per_shard < 1024


# ---------------------------------------------------------------------------
# Row-group (v2) pipeline: flush cadence is execution detail too.


@pytest.mark.parametrize("kind", REPLAY_CASES)
@pytest.mark.parametrize("flush_rows", (37, 256))
def test_row_group_generate_identical_bytes_across_matrix(kind, flush_rows,
                                                          tmp_path):
    """v2 generation is byte-identical across pools AND value-identical
    to the v1 reference for every worker flush cadence.

    ``row_group_rows`` bounds how many rows a worker buffers before
    flushing a group; like ``--workers`` it must never leak into the
    values, only into the layout.
    """
    from repro.datasets.columnar import RowGroupReader
    spec = _spec(kind)
    ref_out = tmp_path / "reference.col"
    generate_columnar(spec, ref_out, workers=1)
    reference_records = read_columnar(ref_out)
    ref_bytes = None
    for workers, mode, chunk in EXECUTION_MATRIX:
        out = tmp_path / f"{kind}-w{workers}-{mode}-c{chunk}.col"
        with WorkerPool(workers, mode=mode) as pool:
            count, _ = generate_columnar(spec, out, workers=workers,
                                         chunk_size=chunk, pool=pool,
                                         row_group_rows=flush_rows)
        assert count == len(reference_records)
        if ref_bytes is None:
            ref_bytes = out.read_bytes()
            assert read_columnar(out) == reference_records
            with RowGroupReader(out) as reader:
                assert reader.format_version == 2
                assert all(reader.group_rows(g) <= flush_rows
                           for g in range(reader.group_count))
        else:
            assert out.read_bytes() == ref_bytes, (kind, flush_rows,
                                                   workers, mode, chunk)


@pytest.mark.parametrize("kind", REPLAY_CASES)
@pytest.mark.parametrize("flush_rows", (64, 512))
def test_row_range_replay_equivalent_across_matrix(kind, flush_rows,
                                                   tmp_path):
    """Pre-bucketed row-range replay == flat replay, any pool shape."""
    from repro.datasets.columnar import bucketed_group_ranges, \
        prebucket_columnar
    spec = _spec(kind)
    flat = tmp_path / f"{kind}.col"
    generate_columnar(spec, flat, workers=1)
    reference, ref_report = replay_columnar_sharded(flat, kind,
                                                    shards=SHARDS,
                                                    workers=1)
    bucketed = tmp_path / f"{kind}.bucketed.col"
    prebucket_columnar(flat, bucketed, SHARDS, row_group_rows=flush_rows)
    assert bucketed_group_ranges(bucketed) is not None
    for workers, mode, chunk in EXECUTION_MATRIX:
        with WorkerPool(workers, mode=mode) as pool:
            got, report = replay_columnar_sharded(bucketed, kind,
                                                  shards=SHARDS,
                                                  workers=workers,
                                                  chunk_size=chunk,
                                                  pool=pool)
        assert got == reference, (kind, flush_rows, workers, mode, chunk)
        assert report.total_records == ref_report.total_records
