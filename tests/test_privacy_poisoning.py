"""Tests for the privacy-leakage study and the poisoning blast radius."""

import pytest

from repro.analysis.poisoning import (compare_blast_radius,
                                      poisoning_report,
                                      run_poisoning_experiment)
from repro.analysis.privacy import (DEFAULT_STRATEGIES, run_privacy_study)
from repro.core.cache import ScopeMode


class TestPrivacyStudy:
    @pytest.fixture(scope="class")
    def study(self):
        return run_privacy_study(seed=3)

    def test_all_strategies_covered(self, study):
        assert set(study.by_strategy()) == \
            {name for name, _ in DEFAULT_STRATEGIES}

    def test_always_ecs_leaks_to_plain_servers(self, study):
        always = study.by_strategy()["always_ecs"]
        assert always.ecs_to_plain_servers > 0
        assert always.client_bits_to_plain_servers > 0
        assert always.wasted_leak_fraction > 0.5

    def test_whitelist_wastes_nothing(self, study):
        whitelist = study.by_strategy()["domain_whitelist"]
        assert whitelist.ecs_to_plain_servers == 0
        assert whitelist.ecs_to_ecs_servers > 0
        assert whitelist.wasted_leak_fraction == 0.0

    def test_loopback_reveals_no_client_bits(self, study):
        loopback = study.by_strategy()["interval_loopback"]
        assert loopback.client_bits_to_plain_servers == 0
        assert loopback.client_bits_to_ecs_servers == 0

    def test_recommended_probing_reveals_no_client_bits(self, study):
        recommended = study.by_strategy()["recommended_own_address"]
        assert recommended.client_bits_to_plain_servers == 0
        # ...and it probes, so it still discovers ECS support.
        assert recommended.ecs_to_ecs_servers > 0

    def test_never_is_silent(self, study):
        never = study.by_strategy()["never"]
        assert never.ecs_to_ecs_servers == 0
        assert never.ecs_to_plain_servers == 0

    def test_equal_workloads(self, study):
        upstream = {o.queries_upstream for o in study.outcomes}
        # Cache behavior may differ slightly, but every resolver saw the
        # same client workload; upstream counts stay within a small band.
        assert max(upstream) <= min(upstream) * 1.5

    def test_report(self, study):
        text = study.report()
        assert "always_ecs" in text and "wasted" in text


class TestPoisoning:
    def test_honor_cache_confines_poison_to_victim(self):
        outcome = run_poisoning_experiment(ScopeMode.HONOR)
        assert outcome.victim_fraction == 1.0
        assert outcome.collateral_fraction == 0.0
        assert not outcome.monitor_visible

    def test_ignore_cache_spreads_poison(self):
        outcome = run_poisoning_experiment(ScopeMode.IGNORE)
        assert outcome.victim_fraction == 1.0
        assert outcome.collateral_fraction == 1.0
        assert outcome.monitor_visible

    def test_narrow_scope_narrows_radius(self):
        outcome = run_poisoning_experiment(ScopeMode.HONOR, forged_scope=32,
                                           victim_subnet="100.64.10.1")
        # A /32-scoped forgery hits at most the single victim address.
        assert outcome.victim_clients_poisoned <= 1
        assert outcome.collateral_fraction == 0.0

    def test_wide_scope_widens_radius(self):
        outcome = run_poisoning_experiment(
            ScopeMode.HONOR, forged_scope=10,
            victim_subnet="100.64.0.0",
            other_subnets=("100.64.200.0", "100.99.1.0", "203.0.114.0"))
        # /10 covers 100.64/10: the 100.64.200.0 and 100.99.1.0 subnets
        # fall inside, 203.0.114.0 does not.
        assert 0.0 < outcome.collateral_fraction < 1.0

    def test_compare_and_report(self):
        outcomes = compare_blast_radius()
        assert [o.cache_mode for o in outcomes] == ["honor", "ignore"]
        text = poisoning_report(outcomes)
        assert "blast radius" in text
        assert "invisible" in text and "visible" in text
