"""Determinism contract of ``repro.engine``: workers never change bytes.

For every shardable builder and for the sharded replay, the merged
output of ``workers=1`` must equal the merged output of ``workers=4``
exactly — same records, same ReplayResults, same rendered report text —
because shard random streams are seeded from ``derive_seed(root_seed,
shard_index)`` and merged in shard order, independent of scheduling.
"""

from __future__ import annotations

import pytest

from repro.analysis.cache_sim import replay
from repro.datasets import (AllNamesBuilder, CdnDatasetBuilder,
                            PublicCdnBuilder, RootTraceBuilder)
from repro.engine import derive_seed, shard_bounds, world_seed
from repro.engine.generate import generate_dataset, generate_records
from repro.engine.replay import replay_sharded

SHARDS = 4

BUILDERS = {
    "allnames": lambda seed: AllNamesBuilder(scale=0.01, seed=seed),
    "public-cdn": lambda seed: PublicCdnBuilder(scale=0.002, seed=seed,
                                                duration_s=300.0),
    "cdn": lambda seed: CdnDatasetBuilder(scale=0.002, seed=seed,
                                          duration_s=900.0),
    "root": lambda seed: RootTraceBuilder(resolver_count=48, violators=5,
                                          seed=seed),
}


@pytest.fixture(scope="module")
def small_allnames_records():
    dataset, _ = generate_dataset(AllNamesBuilder(scale=0.01, seed=9),
                                  shards=SHARDS, workers=1)
    return dataset.records


class TestSeeding:
    def test_derive_seed_stable_and_distinct(self):
        assert derive_seed(7, 0) == derive_seed(7, 0)
        seeds = {derive_seed(7, i) for i in range(64)}
        assert len(seeds) == 64
        assert derive_seed(7, 0) != derive_seed(8, 0)
        assert derive_seed(7, 0, "a") != derive_seed(7, 0, "b")
        assert world_seed(7, "a") == derive_seed(7, -1, "a")

    def test_shard_bounds_cover_everything_once(self):
        for total in (0, 1, 7, 8, 9, 100):
            bounds = shard_bounds(total, SHARDS)
            assert bounds[0][0] == 0 and bounds[-1][1] == total
            for (_, hi), (lo, _) in zip(bounds, bounds[1:]):
                assert hi == lo


class TestBuilderDeterminism:
    @pytest.mark.parametrize("kind", sorted(BUILDERS))
    def test_workers_1_vs_4_identical_records(self, kind):
        make = BUILDERS[kind]
        serial, _ = generate_records(make(5), shards=SHARDS, workers=1)
        parallel, _ = generate_records(make(5), shards=SHARDS, workers=4)
        assert serial == parallel

    @pytest.mark.parametrize("kind", sorted(BUILDERS))
    def test_assembled_dataset_identical(self, kind):
        make = BUILDERS[kind]
        ds1, _ = generate_dataset(make(5), shards=SHARDS, workers=1)
        ds4, _ = generate_dataset(make(5), shards=SHARDS, workers=4)
        assert ds1.records == ds4.records

    def test_different_seeds_differ(self):
        a, _ = generate_records(BUILDERS["allnames"](1), shards=SHARDS)
        b, _ = generate_records(BUILDERS["allnames"](2), shards=SHARDS)
        assert a != b

    def test_merged_records_time_sorted(self):
        dataset, _ = generate_dataset(BUILDERS["public-cdn"](5),
                                      shards=SHARDS, workers=1)
        timestamps = [r.ts for r in dataset.records]
        assert timestamps == sorted(timestamps)

    def test_root_trace_ground_truth_stable(self):
        rt1, _ = generate_dataset(BUILDERS["root"](5), shards=SHARDS,
                                  workers=1)
        rt4, _ = generate_dataset(BUILDERS["root"](5), shards=SHARDS,
                                  workers=4)
        assert rt1.violator_ips == rt4.violator_ips
        assert len(rt1.violator_ips) == 5


class TestReplayDeterminism:
    def test_workers_1_vs_4_identical_result(self, small_allnames_records):
        r1, _ = replay_sharded(small_allnames_records, "allnames",
                               shards=SHARDS, workers=1)
        r4, _ = replay_sharded(small_allnames_records, "allnames",
                               shards=SHARDS, workers=4)
        assert r1 == r4

    def test_single_shard_matches_legacy_replay(self, small_allnames_records):
        sharded, _ = replay_sharded(small_allnames_records, "allnames",
                                    shards=1, workers=1)
        legacy = replay(small_allnames_records,
                        client_of=lambda r: r.client_ip,
                        scope_of=lambda r: r.scope,
                        ttl_of=lambda r: r.ttl)
        assert sharded == legacy

    def test_public_cdn_kind(self):
        dataset, _ = generate_dataset(BUILDERS["public-cdn"](9),
                                      shards=SHARDS, workers=1)
        r1, _ = replay_sharded(dataset.records, "public-cdn",
                               shards=SHARDS, workers=1)
        r4, _ = replay_sharded(dataset.records, "public-cdn",
                               shards=SHARDS, workers=4)
        assert r1 == r4

    def test_unknown_kind_rejected(self, small_allnames_records):
        with pytest.raises(ValueError):
            replay_sharded(small_allnames_records, "nope")


class TestCliDeterminism:
    """End-to-end: the CLI's rendered artifacts are worker-independent."""

    def _generate(self, tmp_path, tag, workers):
        from repro.cli import main
        trace = tmp_path / f"trace-{tag}.jsonl"
        rc = main(["--seed", "3", "--quiet", "generate", "allnames",
                   str(trace), "--scale", "0.01",
                   "--shards", str(SHARDS), "--workers", str(workers)])
        assert rc == 0
        return trace

    def test_generate_bytes_identical(self, tmp_path):
        serial = self._generate(tmp_path, "w1", 1)
        parallel = self._generate(tmp_path, "w4", 4)
        assert serial.read_bytes() == parallel.read_bytes()
        assert serial.stat().st_size > 0

    def test_replay_report_bytes_identical(self, tmp_path):
        from repro.cli import main
        trace = self._generate(tmp_path, "replay", 1)
        reports = {}
        for workers in (1, 4):
            out = tmp_path / f"out-w{workers}"
            rc = main(["--quiet", "--out", str(out), "replay", "allnames",
                       str(trace), "--shards", str(SHARDS),
                       "--workers", str(workers)])
            assert rc == 0
            reports[workers] = (out / "replay.txt").read_bytes()
        assert reports[1] == reports[4]
        assert b"blow-up factor" in reports[1]
