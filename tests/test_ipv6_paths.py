"""IPv6 end-to-end coverage: AAAA resolution, /56 truncation, /48 scopes,
and the IPv4-only experimental server's IPv6 blind spot (section 5)."""

import pytest

from repro.auth import CdnAuthoritative, EdgePool, fixed_scope
from repro.dnslib import (AAAA, EcsOption, Message, Name, Rcode, RecordType,
                          Zone)
from repro.measure import StubClient
from repro.net import Network, Topology, city
from repro.resolvers import RecursiveResolver


@pytest.fixture()
def v6_world(small_world):
    """Extend the small world with AAAA records and v6 edge pools."""
    small_world.zone.add_text("www6", "AAAA", "2001:4860:4860::8888")
    v6_client = small_world.isp.host6_in(city("Cleveland"))
    return small_world, v6_client


class TestAaaaResolution:
    def test_resolves_aaaa(self, v6_world):
        world, v6_client = v6_world
        client = StubClient(world.client_ip, world.net)
        result = client.query(world.resolver_ip, "www6.example.com",
                              RecordType.AAAA)
        assert result.addresses == ["2001:4860:4860::8888"]

    def test_v6_client_ecs_truncated_to_56(self, v6_world):
        world, v6_client = v6_world
        client = StubClient(v6_client, world.net)
        client.query(world.resolver_ip, "video.cdn.example")
        decision = world.cdn.decisions[-1]
        assert decision.hint_source == "ecs"
        # The hint is the /56-truncated client address: low 8 bytes zero.
        assert decision.hint.endswith("::")

    def test_v6_scope_keyed_cache(self, v6_world):
        world, v6_client = v6_world
        # Same /48 → shared entry; different /48 → miss.
        sibling = v6_client.rsplit(":", 1)[0] + ":beef"
        world.cdn.scope_v6 = 48
        StubClient(v6_client, world.net).query(world.resolver_ip,
                                               "video.cdn.example")
        count = world.cdn.queries_received
        StubClient(sibling, world.net).query(world.resolver_ip,
                                             "video.cdn.example")
        assert world.cdn.queries_received == count
        other_48 = world.isp.host6_in(city("Tokyo"))
        StubClient(other_48, world.net).query(world.resolver_ip,
                                              "video.cdn.example")
        assert world.cdn.queries_received == count + 1


class TestV6EcsOptionPaths:
    def test_v6_ecs_family_2_on_wire(self):
        opt = EcsOption.from_client_address("2600:1:2::9", 56)
        wire = opt.to_wire()
        assert wire[0] == 0 and wire[1] == 2  # family 2
        assert EcsOption.from_wire(wire).family == 2

    def test_v6_scope_echo_capped(self, v6_world):
        world, v6_client = v6_world
        client = StubClient(world.client_ip, world.net)
        ecs = EcsOption.from_client_address("2600:aa:bb::1", 40)
        result = client.query(world.cdn.ip, "video.cdn.example",
                              RecordType.A, ecs=ecs, recursion_desired=False)
        assert result.scope is not None and result.scope <= 40

    def test_v4_server_handles_v6_family(self):
        """The CDN maps on v6 hints via the geo DB like any other."""
        topology = Topology()
        net = Network(topology)
        cdn_as = topology.create_as("cdn", "US")
        pools = [EdgePool(city("Chicago"),
                          (cdn_as.host_in(city("Chicago")),)),
                 EdgePool(city("Tokyo"),
                          (cdn_as.host_in(city("Tokyo")),))]
        cdn_ip = cdn_as.host_in(city("Ashburn"))
        cdn = CdnAuthoritative(cdn_ip, [Name.from_text("c.example.")],
                               pools, topology)
        net.attach(cdn)
        tokyo_v6 = cdn_as.host6_in(city("Tokyo"))
        client = StubClient(cdn_as.host_in(city("Chicago")), net)
        ecs = EcsOption.from_client_address(tokyo_v6, 56)
        client.query(cdn_ip, "www.c.example", RecordType.A, ecs=ecs)
        assert cdn.decisions[-1].pool.city.name == "Tokyo"


class TestV6BlindSpot:
    def test_v6_resolvers_invisible_to_v4_scan(self, cdn_dataset):
        """Section 5: the experimental server is IPv4-only, so IPv6
        resolvers appear in the CDN dataset but can never be discovered by
        the scan — one cause of the passive/active gap."""
        v6_specs = [s for s in cdn_dataset.resolvers if s.is_v6]
        assert v6_specs, "the CDN dataset contains IPv6 resolvers"
        # The scan universe only probes IPv4 forwarders by construction.
        from repro.auth.scan_experiment import encode_probe_name
        with pytest.raises(Exception):
            encode_probe_name("2600::1", Name.from_text("scan.example."))
