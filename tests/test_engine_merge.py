"""Shard-merge algebra: ReplayPartial merging and the order-stable merges.

The engine's correctness under concurrency reduces to these properties:
partial merging is associative, commutative, and has an identity, so any
shard order (and therefore any completion order) yields the same final
ReplayResult; the record/JSONL merges are stable k-way merges equivalent
to a stable sort of the shard concatenation.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass

import pytest

from repro.analysis.cache_sim import (ReplayPartial, merge_partials,
                                      replay_partial)
from repro.datasets import (AllNamesBuilder, merge_jsonl_shards,
                            merge_sorted_records, write_jsonl,
                            write_jsonl_shards)
from repro.engine.generate import generate_records
from repro.engine.replay import _replay_shard
from repro.engine.sharding import partition_by_key
from repro.faults import preset
from repro.faults.chaos import CHAOS_RETRY_POLICY, ChaosPartial, _chaos_shard
from repro.net.transport import NetworkStats


def _random_partial(rng: random.Random) -> ReplayPartial:
    return ReplayPartial(*(rng.randrange(0, 1000) for _ in range(6)))


class TestPartialAlgebra:
    def test_identity(self):
        rng = random.Random(1)
        partial = _random_partial(rng)
        empty = ReplayPartial()
        assert partial.merge(empty) == partial
        assert empty.merge(partial) == partial

    def test_associative(self):
        rng = random.Random(2)
        for _ in range(50):
            a, b, c = (_random_partial(rng) for _ in range(3))
            assert a.merge(b).merge(c) == a.merge(b.merge(c))

    def test_commutative(self):
        rng = random.Random(3)
        for _ in range(50):
            a, b = (_random_partial(rng) for _ in range(2))
            assert a.merge(b) == b.merge(a)

    def test_result_matches_counters(self):
        partial = ReplayPartial(hits_ecs=3, misses_ecs=7, hits_no_ecs=8,
                                misses_no_ecs=2, max_size_ecs=40,
                                max_size_no_ecs=10)
        result = partial.result()
        assert result.hit_rate_ecs == pytest.approx(0.3)
        assert result.hit_rate_no_ecs == pytest.approx(0.8)
        assert result.blowup == pytest.approx(4.0)

    def test_empty_result_is_idle(self):
        result = ReplayPartial().result()
        assert result.hit_rate_ecs == 0.0
        assert result.hit_rate_no_ecs == 0.0
        assert result.blowup == 1.0


class TestShardOrderIndependence:
    """Shuffling real shard partials never changes the merged result."""

    @pytest.fixture(scope="class")
    def shard_partials(self):
        shard_lists, _ = generate_records(AllNamesBuilder(scale=0.01, seed=6),
                                          shards=6, workers=1)
        records = merge_sorted_records(shard_lists)
        buckets = partition_by_key(records, 6, lambda r: r.qname)
        return [_replay_shard(bucket, "allnames") for bucket in buckets]

    def test_shuffled_shards_same_result(self, shard_partials):
        baseline = merge_partials(shard_partials)
        rng = random.Random(7)
        for _ in range(10):
            shuffled = list(shard_partials)
            rng.shuffle(shuffled)
            result = merge_partials(shuffled)
            assert result == baseline
            assert result.blowup == baseline.blowup

    def test_pairwise_tree_merge_same_result(self, shard_partials):
        # Merging as a reduction tree (how a hierarchical merge would run)
        # equals the left fold.
        level = list(shard_partials)
        while len(level) > 1:
            level = [level[i].merge(level[i + 1])
                     if i + 1 < len(level) else level[i]
                     for i in range(0, len(level), 2)]
        assert level[0].result() == merge_partials(shard_partials)


def _random_network_stats(rng: random.Random) -> NetworkStats:
    return NetworkStats(
        datagrams=rng.randrange(0, 1000),
        bytes_sent=rng.randrange(0, 100_000),
        timeouts=rng.randrange(0, 100),
        drops=rng.randrange(0, 100),
        faults_injected=rng.randrange(0, 100),
        per_destination={f"10.0.0.{i}": rng.randrange(1, 50)
                         for i in range(rng.randrange(0, 4))})


def _random_chaos_partial(rng: random.Random) -> ChaosPartial:
    kinds = rng.sample(("loss", "burst-loss", "jitter", "truncate"),
                       rng.randrange(0, 4))
    return ChaosPartial(
        *(rng.randrange(0, 500) for _ in range(8)),
        faults_by_kind={kind: rng.randrange(1, 50) for kind in kinds},
        network=_random_network_stats(rng))


class TestNetworkStatsAlgebra:
    """NetworkStats folds like every other shard partial — including the
    fault counter and the per-destination histogram."""

    def test_identity(self):
        rng = random.Random(21)
        stats = _random_network_stats(rng)
        empty = NetworkStats()
        assert stats.merge(empty) == stats
        assert empty.merge(stats) == stats

    def test_associative_and_commutative(self):
        rng = random.Random(22)
        for _ in range(50):
            a, b, c = (_random_network_stats(rng) for _ in range(3))
            assert a.merge(b).merge(c) == a.merge(b.merge(c))
            assert a.merge(b) == b.merge(a)

    def test_pure_merge_leaves_operands_alone(self):
        rng = random.Random(23)
        a, b = (_random_network_stats(rng) for _ in range(2))
        before = (NetworkStats().merge_from(a), NetworkStats().merge_from(b))
        a.merge(b)
        assert (a, b) == before

    def test_rates_survive_merging(self):
        a = NetworkStats(datagrams=100, faults_injected=10, drops=5)
        b = NetworkStats(datagrams=300, faults_injected=30, drops=15)
        merged = a.merge(b)
        assert merged.fault_rate() == pytest.approx(0.1)
        assert merged.drop_rate() == pytest.approx(0.05)


class TestChaosPartialAlgebra:
    def test_identity(self):
        rng = random.Random(31)
        partial = _random_chaos_partial(rng)
        empty = ChaosPartial()
        assert partial.merge(empty) == partial
        assert empty.merge(partial) == partial

    def test_associative_and_commutative(self):
        rng = random.Random(32)
        for _ in range(50):
            a, b, c = (_random_chaos_partial(rng) for _ in range(3))
            assert a.merge(b).merge(c) == a.merge(b.merge(c))
            assert a.merge(b) == b.merge(a)

    def test_real_faulted_shards_merge_order_free(self):
        # Behavioral check: partials produced by actual chaos shards
        # (faults, retries and all) fold to the same totals in any order.
        partials = [_chaos_shard(preset("lossy"), CHAOS_RETRY_POLICY,
                                 seed=2, fault_seed=9, shard_index=i,
                                 ingress_count=4)
                    for i in range(3)]
        baseline = ChaosPartial()
        for partial in partials:
            baseline = baseline.merge(partial)
        rng = random.Random(33)
        for _ in range(5):
            shuffled = list(partials)
            rng.shuffle(shuffled)
            merged = ChaosPartial()
            for partial in shuffled:
                merged = merged.merge(partial)
            assert merged == baseline
            assert merged.network == baseline.network


@dataclass
class _Stamp:
    ts: float
    tag: str


class TestOrderStableMerges:
    def test_merge_sorted_records_is_stable_sort(self):
        rng = random.Random(8)
        # Duplicated timestamps across shards exercise tie-breaking.
        shards = [sorted((_Stamp(rng.choice((1.0, 2.0, 3.0)), f"s{i}-{j}")
                          for j in range(20)), key=lambda r: r.ts)
                  for i in range(4)]
        merged = merge_sorted_records(shards)
        concat = [r for shard in shards for r in shard]
        assert merged == sorted(concat, key=lambda r: r.ts)

    def test_jsonl_shard_merge_equals_in_memory_merge(self, tmp_path):
        shard_lists, _ = generate_records(AllNamesBuilder(scale=0.01, seed=6),
                                          shards=4, workers=1)
        base = tmp_path / "trace.jsonl"
        paths = write_jsonl_shards(shard_lists, base)
        assert [p.name for p in paths] == [f"trace.jsonl.shard{i:02d}"
                                           for i in range(4)]
        count = merge_jsonl_shards(paths, base)
        assert count == sum(len(s) for s in shard_lists)

        direct = tmp_path / "direct.jsonl"
        write_jsonl(merge_sorted_records(shard_lists), direct)
        assert base.read_bytes() == direct.read_bytes()

    def test_jsonl_merge_tie_break_is_shard_order(self, tmp_path):
        shards = [[_Stamp(1.0, "a"), _Stamp(2.0, "b")],
                  [_Stamp(1.0, "c"), _Stamp(2.0, "d")]]
        paths = write_jsonl_shards(shards, tmp_path / "t.jsonl")
        merge_jsonl_shards(paths, tmp_path / "t.jsonl")
        tags = [json.loads(line)["tag"] for line in
                (tmp_path / "t.jsonl").read_text().splitlines()]
        assert tags == ["a", "c", "b", "d"]

    def test_replay_partial_counts_queries(self):
        shard_lists, _ = generate_records(AllNamesBuilder(scale=0.01, seed=6),
                                          shards=4, workers=1)
        records = merge_sorted_records(shard_lists)
        partial = replay_partial(records,
                                 client_of=lambda r: r.client_ip,
                                 scope_of=lambda r: r.scope,
                                 ttl_of=lambda r: r.ttl)
        assert partial.queries == len(records)
        assert partial.hits_no_ecs + partial.misses_no_ecs == len(records)
