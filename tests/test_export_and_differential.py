"""Tests for figure-data export and a differential check between the two
cache implementations (full-fidelity EcsCache vs fast ScopeTracker)."""

import csv
import random

import pytest

from repro.analysis import (analyze_hidden_resolvers, export_all,
                            export_fig1, export_fig2, export_fig3,
                            export_fig45, export_fig67, fig1_series,
                            fig2_series, fig3_series)
from repro.analysis.mapping_quality import (MappingQualityLab,
                                            measure_mapping_quality)
from repro.core import EcsCache
from repro.core.cache import ScopeTracker
from repro.dnslib import (A, EcsOption, Message, Name, RecordType,
                          ResourceRecord)
from repro.net import SimClock


def read_csv(path):
    with open(path, newline="") as fh:
        return list(csv.reader(fh))


class TestExports:
    def test_fig1_export(self, public_cdn_dataset, tmp_path):
        series = fig1_series(public_cdn_dataset, ttls=(20,))
        n = export_fig1(series, tmp_path / "fig1.csv")
        rows = read_csv(tmp_path / "fig1.csv")
        assert rows[0] == ["ttl_s", "blowup", "cdf"]
        assert len(rows) == n + 1
        assert float(rows[-1][2]) == pytest.approx(1.0)

    def test_fig2_export(self, allnames_dataset, tmp_path):
        series = fig2_series(allnames_dataset, fractions=(0.5, 1.0),
                             seeds=(1,))
        export_fig2(series, tmp_path / "fig2.csv")
        rows = read_csv(tmp_path / "fig2.csv")
        assert len(rows) == 3
        assert float(rows[1][0]) == 0.5

    def test_fig3_export(self, allnames_dataset, tmp_path):
        series = fig3_series(allnames_dataset, fractions=(1.0,), seeds=(1,))
        export_fig3(series, tmp_path / "fig3.csv")
        rows = read_csv(tmp_path / "fig3.csv")
        assert rows[0][-1] == "hit_rate_ecs"
        assert 0.0 < float(rows[1][1]) <= 1.0

    def test_fig45_export(self, scan_universe, scan_result, tmp_path):
        analysis = analyze_hidden_resolvers(scan_universe, scan_result)
        n_mp = export_fig45(analysis, tmp_path / "fig4.csv", True)
        n_other = export_fig45(analysis, tmp_path / "fig5.csv", False)
        assert n_mp == len(analysis.split(True))
        assert n_other == len(analysis.split(False))

    def test_fig67_export(self, tmp_path):
        lab = MappingQualityLab.build(probe_count=20, seed=1)
        series = measure_mapping_quality(lab, lab.cdn1, lab.cdn1_qname,
                                         prefix_lengths=(23, 24))
        export_fig67(series, tmp_path / "fig6.csv")
        rows = read_csv(tmp_path / "fig6.csv")
        lengths = {row[0] for row in rows[1:]}
        assert lengths == {"23", "24"}

    def test_export_all(self, public_cdn_dataset, tmp_path):
        series = fig1_series(public_cdn_dataset, ttls=(20,))
        written = export_all(tmp_path / "figures", fig1=series)
        assert written == ["fig1_blowup_cdf.csv"]
        assert (tmp_path / "figures" / "fig1_blowup_cdf.csv").exists()


class TestCacheDifferential:
    """EcsCache (full messages, compliant mode) and ScopeTracker (replay
    fast path) must agree on every hit/miss for the same access stream."""

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_hit_miss_agreement(self, seed):
        rng = random.Random(seed)
        clock = SimClock()
        full = EcsCache(clock)
        fast = ScopeTracker(use_ecs=True)
        names = [Name.from_text(f"n{i}.example.com") for i in range(6)]
        # Authoritative behavior is stable per name (the ScopeTracker
        # replay model's assumption, true of every dataset generator).
        policy = {name: (rng.choice((0, 16, 24)), rng.choice((5, 20, 60)))
                  for name in names}
        clients = [f"10.{rng.randrange(4)}.{rng.randrange(4)}.7"
                   for _ in range(12)]
        t = 0.0
        for _ in range(400):
            t += rng.expovariate(1.0) * 2.0
            clock.advance_to(t)
            qname = rng.choice(names)
            client = rng.choice(clients)
            scope, ttl = policy[qname]

            cached = full.lookup(qname, RecordType.A, client)
            if cached is None:
                ecs = EcsOption.from_client_address(client, 24)
                response = Message(is_response=True)
                response.answers.append(ResourceRecord(
                    qname, RecordType.A, ttl, A("203.0.113.1")))
                response.set_ecs(ecs.response_to(scope))
                full.store(qname, RecordType.A, response, ecs)
            fast_hit = fast.access(t, qname.to_text(), 1, client, scope, ttl)
            assert fast_hit == (cached is not None), (
                f"divergence at t={t:.2f} {qname} {client} scope={scope}")

    def test_size_agreement_snapshot(self):
        clock = SimClock()
        full = EcsCache(clock)
        fast = ScopeTracker(use_ecs=True)
        qname = Name.from_text("x.example.com")
        for i in range(10):
            client = f"10.0.{i}.1"
            ecs = EcsOption.from_client_address(client, 24)
            response = Message(is_response=True)
            response.answers.append(ResourceRecord(qname, RecordType.A, 60,
                                                   A("203.0.113.1")))
            response.set_ecs(ecs.response_to(24))
            full.store(qname, RecordType.A, response, ecs)
            fast.access(clock.now(), qname.to_text(), 1, client, 24, 60)
        assert full.size() == fast.current_size == 10
