"""Tests for EDNS0 options, above all the RFC 7871 ECS option codec."""

import ipaddress

import pytest

from repro.dnslib import (BadEcsError, BadOptionError, CookieOption,
                          EcsOption, EdnsInfo, GenericOption,
                          decode_options, encode_options)
from repro.dnslib.edns import decode_option


class TestEcsConstruction:
    def test_default_v4_truncation_is_24(self):
        opt = EcsOption.from_client_address("192.0.2.77")
        assert opt.source_prefix_length == 24
        assert str(opt.address) == "192.0.2.0"

    def test_default_v6_truncation_is_56(self):
        opt = EcsOption.from_client_address("2001:db8:1234:5678::1")
        assert opt.source_prefix_length == 56
        assert str(opt.address) == "2001:db8:1234:5600::"

    def test_explicit_length_truncates(self):
        opt = EcsOption.from_client_address("10.11.12.13", 16)
        assert str(opt.address) == "10.11.0.0"

    def test_full_length_keeps_address(self):
        opt = EcsOption.from_client_address("10.11.12.13", 32)
        assert str(opt.address) == "10.11.12.13"

    def test_zero_length(self):
        opt = EcsOption.from_client_address("10.11.12.13", 0)
        assert str(opt.address) == "0.0.0.0"

    def test_family_fields(self):
        assert EcsOption.from_client_address("1.2.3.4").family == 1
        assert EcsOption.from_client_address("2001:db8::1").family == 2

    def test_out_of_range_source_rejected(self):
        with pytest.raises(BadEcsError):
            EcsOption.from_client_address("1.2.3.4", 33)


class TestEcsWire:
    def test_roundtrip_v4(self):
        opt = EcsOption.from_client_address("198.51.0.77", 24)
        assert EcsOption.from_wire(opt.to_wire()) == opt

    def test_roundtrip_v6(self):
        opt = EcsOption.from_client_address("2600:1:2:3::9", 56)
        assert EcsOption.from_wire(opt.to_wire()) == opt

    def test_wire_length_is_minimal(self):
        # /24 needs exactly 3 address octets.
        opt = EcsOption.from_client_address("1.2.3.4", 24)
        assert len(opt.to_wire()) == 4 + 3

    def test_wire_length_for_odd_prefix(self):
        # /17 needs ceil(17/8) = 3 octets.
        opt = EcsOption.from_client_address("1.2.3.4", 17)
        assert len(opt.to_wire()) == 4 + 3

    def test_zero_prefix_has_no_address_octets(self):
        opt = EcsOption.from_client_address("1.2.3.4", 0)
        assert len(opt.to_wire()) == 4

    def test_nonzero_trailing_bits_rejected_on_decode(self):
        # Family 1, source 17, scope 0, then 3 octets with bits set past 17.
        wire = bytes([0, 1, 17, 0, 10, 20, 0b01111111])
        with pytest.raises(BadEcsError):
            EcsOption.from_wire(wire)

    def test_encoder_zeroes_trailing_bits(self):
        opt = EcsOption(1, 17, 0, ipaddress.ip_address("10.20.255.0"))
        decoded = EcsOption.from_wire(opt.to_wire())
        assert str(decoded.address) == "10.20.128.0"

    def test_unknown_family_rejected(self):
        with pytest.raises(BadEcsError):
            EcsOption.from_wire(bytes([0, 3, 0, 0]))

    def test_short_option_rejected(self):
        with pytest.raises(BadEcsError):
            EcsOption.from_wire(b"\x00\x01\x18")

    def test_wrong_address_field_length_rejected(self):
        # /24 with 4 address octets instead of 3.
        wire = bytes([0, 1, 24, 0, 1, 2, 3, 4])
        with pytest.raises(BadEcsError):
            EcsOption.from_wire(wire)

    def test_source_exceeding_family_rejected(self):
        with pytest.raises(BadEcsError):
            EcsOption.from_wire(bytes([0, 1, 33, 0]) + b"\x00" * 5)


class TestEcsSemantics:
    def test_network(self):
        opt = EcsOption.from_client_address("192.0.2.200", 24)
        assert opt.network().with_prefixlen == "192.0.2.0/24"

    def test_scope_network(self):
        opt = EcsOption(1, 24, 16, ipaddress.ip_address("192.0.0.0"))
        assert opt.scope_network().with_prefixlen == "192.0.0.0/16"

    def test_covers_within_scope(self):
        opt = EcsOption(1, 24, 16, ipaddress.ip_address("192.0.2.0"))
        assert opt.covers("192.0.99.1")

    def test_not_covers_outside_scope(self):
        opt = EcsOption(1, 24, 16, ipaddress.ip_address("192.0.2.0"))
        assert not opt.covers("192.1.0.1")

    def test_covers_wrong_family(self):
        opt = EcsOption.from_client_address("192.0.2.1", 24)
        assert not opt.covers("2001:db8::1")

    def test_is_routable_public(self):
        assert EcsOption.from_client_address("93.184.216.34", 24).is_routable()

    @pytest.mark.parametrize("address,bits", [
        ("127.0.0.1", 32), ("127.0.0.0", 24), ("169.254.252.0", 24),
        ("10.0.0.0", 8),
    ])
    def test_is_routable_false_for_paper_prefixes(self, address, bits):
        # The exact unroutable prefixes observed in section 8.1.
        assert not EcsOption.from_client_address(address, bits).is_routable()

    def test_response_to_copies_query_fields(self):
        query = EcsOption.from_client_address("192.0.2.5", 24)
        response = query.response_to(16)
        assert response.scope_prefix_length == 16
        assert response.source_prefix_length == query.source_prefix_length
        assert response.address == query.address

    def test_matches_query(self):
        query = EcsOption.from_client_address("192.0.2.5", 24)
        assert query.response_to(16).matches_query(query)

    def test_mismatched_source_rejected(self):
        query = EcsOption.from_client_address("192.0.2.5", 24)
        other = EcsOption.from_client_address("192.0.2.5", 23)
        assert not other.response_to(16).matches_query(query)

    def test_to_text(self):
        text = EcsOption.from_client_address("192.0.2.5", 24).to_text()
        assert "192.0.2.0/24" in text


class TestOptionLists:
    def test_encode_decode_multiple_options(self):
        opts = [EcsOption.from_client_address("1.2.3.4", 24),
                CookieOption(b"12345678")]
        decoded = decode_options(encode_options(opts))
        assert decoded == opts

    def test_unknown_option_kept_generic(self):
        raw = encode_options([GenericOption(65001, b"\xde\xad")])
        decoded = decode_options(raw)
        assert isinstance(decoded[0], GenericOption)
        assert decoded[0].data == b"\xde\xad"

    def test_truncated_option_header_rejected(self):
        from repro.dnslib import TruncatedMessageError
        with pytest.raises(TruncatedMessageError):
            decode_options(b"\x00\x08")

    def test_truncated_option_payload_rejected(self):
        from repro.dnslib import TruncatedMessageError
        with pytest.raises(TruncatedMessageError):
            decode_options(b"\x00\x08\x00\x09\x00")

    def test_cookie_validation(self):
        with pytest.raises(BadOptionError):
            CookieOption(b"short").to_wire()

    def test_decode_option_dispatch(self):
        ecs = EcsOption.from_client_address("1.2.3.4", 24)
        assert decode_option(8, ecs.to_wire()) == ecs


class TestEdnsInfo:
    def test_find_ecs(self):
        ecs = EcsOption.from_client_address("1.2.3.4", 24)
        info = EdnsInfo(options=[CookieOption(b"abcdefgh"), ecs])
        assert info.find_ecs() == ecs

    def test_find_ecs_none(self):
        assert EdnsInfo().find_ecs() is None

    def test_without_ecs_preserves_others(self):
        cookie = CookieOption(b"abcdefgh")
        info = EdnsInfo(options=[cookie,
                                 EcsOption.from_client_address("1.2.3.4")])
        stripped = info.without_ecs()
        assert stripped.find_ecs() is None
        assert cookie in stripped.options

    def test_with_ecs_replaces(self):
        first = EcsOption.from_client_address("1.2.3.4")
        second = EcsOption.from_client_address("5.6.7.8")
        info = EdnsInfo(options=[first]).with_ecs(second)
        assert info.find_ecs() == second
        assert sum(isinstance(o, EcsOption) for o in info.options) == 1
