"""Tests for the per-section analyses: they must reproduce the paper's
shapes on the synthetic datasets."""

import pytest

from repro.analysis import (analyze_caching_behavior, analyze_discovery,
                            analyze_hidden_resolvers, analyze_probing,
                            analyze_root_violations, build_table1,
                            cdf_points, crossover_prefix_length, fig1_series,
                            fig2_series, fig3_series, percentile,
                            run_flattening_case_study, run_table2,
                            summarize_allnames, summarize_cdn,
                            summarize_public_cdn, summarize_scan)
from repro.analysis.cache_sim import allnames_replay
from repro.analysis.flattening import FlatteningLab
from repro.analysis.mapping_quality import (MappingQualityLab,
                                            measure_mapping_quality)
from repro.analysis.unroutable import UnroutableLab
from repro.core.classify import CachingCategory, ProbingCategory
from repro.datasets.ditl import generate_root_trace


class TestProbingAnalysis:
    def test_distribution_matches_truth(self, cdn_dataset):
        analysis = analyze_probing(cdn_dataset)
        assert analysis.accuracy is not None and analysis.accuracy >= 0.95
        counts = analysis.counts
        assert counts[ProbingCategory.ALWAYS_ECS] == max(counts.values())

    def test_report_text(self, cdn_dataset):
        text = analyze_probing(cdn_dataset).report()
        assert "always_ecs" in text and "paper" in text

    def test_root_violations(self):
        trace = generate_root_trace(resolver_count=200, violators=15, seed=3)
        analysis = analyze_root_violations(trace)
        assert analysis.violators_found == 15
        assert "15" in analysis.report()


class TestTable1:
    def test_both_columns_populated(self, cdn_dataset, scan_result):
        table = build_table1(cdn_dataset, scan_result)
        assert table.cdn_counts and table.scan_counts
        text = table.report()
        assert "jammed" in text

    def test_cdn_jammed_dominates(self, cdn_dataset):
        # The dominant AS behavior: /32 jammed is the largest class.
        table = build_table1(cdn_dataset=cdn_dataset)
        assert table.cdn_counts.get("32/jammed last byte", 0) >= \
            max(v for k, v in table.cdn_counts.items() if k != "32/jammed last byte")

    def test_scan_24_dominates(self, scan_result):
        # MegaDNS (Google-like) sends /24; it dominates the scan column.
        table = build_table1(scan_result=scan_result)
        assert table.scan_counts.get("24", 0) == max(table.scan_counts.values())

    def test_rows_include_paper_reference(self, cdn_dataset):
        rows = build_table1(cdn_dataset=cdn_dataset).rows()
        labels = [r[0] for r in rows]
        assert "32/jammed last byte" in labels
        row = next(r for r in rows if r[0] == "32/jammed last byte")
        assert row[4] == 3002  # paper CDN count


class TestCachingBehaviorAnalysis:
    @pytest.fixture(scope="class")
    def analysis(self, scan_universe):
        return analyze_caching_behavior(scan_universe)

    def test_all_major_categories_observed(self, analysis):
        counts = analysis.counts()
        for category in (CachingCategory.CORRECT,
                         CachingCategory.IGNORES_SCOPE,
                         CachingCategory.ACCEPTS_OVER_24,
                         CachingCategory.CLAMPS_AT_22,
                         CachingCategory.PRIVATE_PREFIX):
            assert counts.get(category, 0) >= 1, category

    def test_megadns_correct(self, analysis):
        assert analysis.megadns_report is not None
        assert analysis.megadns_report.category is CachingCategory.CORRECT

    def test_report_text(self, analysis):
        text = analysis.report()
        assert "ignores_scope" in text and "correct" in text


class TestDiscovery:
    def test_passive_sees_more(self, scan_universe, scan_result):
        analysis = analyze_discovery(scan_universe, scan_result)
        assert len(analysis.passive_found) > 5 * len(analysis.active_found)

    def test_overlap_majority_of_active(self, scan_universe, scan_result):
        analysis = analyze_discovery(scan_universe, scan_result)
        assert len(analysis.overlap) >= 0.7 * len(analysis.active_found)
        assert len(analysis.overlap) < len(analysis.active_found)


class TestCacheSimulations:
    def test_fig1_blowup_increases_with_ttl(self, public_cdn_dataset):
        series = fig1_series(public_cdn_dataset, ttls=(20, 60))
        assert max(series[60]) >= max(series[20])
        assert percentile(series[60], 0.5) >= percentile(series[20], 0.5)

    def test_fig1_median_blowup_substantial(self, public_cdn_dataset):
        series = fig1_series(public_cdn_dataset, ttls=(20,))
        # The paper's headline: half the resolvers blow up 4× or more.
        assert percentile(series[20], 0.5) > 2.0

    def test_blowup_at_least_one(self, public_cdn_dataset):
        series = fig1_series(public_cdn_dataset, ttls=(20,))
        assert all(b >= 1.0 for b in series[20])

    def test_fig2_blowup_grows_with_clients(self, allnames_dataset):
        series = fig2_series(allnames_dataset, fractions=(0.1, 0.5, 1.0),
                             seeds=(1,))
        values = [b for _, b in series]
        assert values[0] < values[-1]
        assert values[-1] > 1.5

    def test_fig3_ecs_halves_hit_rate(self, allnames_dataset):
        series = fig3_series(allnames_dataset, fractions=(1.0,), seeds=(1,))
        _, no_ecs, with_ecs = series[0]
        assert with_ecs < no_ecs / 2 + 0.05
        assert no_ecs > 0.5

    def test_fig3_no_ecs_grows_faster(self, allnames_dataset):
        series = fig3_series(allnames_dataset, fractions=(0.1, 1.0),
                             seeds=(1,))
        growth_no_ecs = series[1][1] - series[0][1]
        growth_ecs = series[1][2] - series[0][2]
        assert growth_no_ecs > growth_ecs

    def test_replay_deterministic(self, allnames_dataset):
        a = allnames_replay(allnames_dataset, 0.5, seed=7)
        b = allnames_replay(allnames_dataset, 0.5, seed=7)
        assert a == b

    def test_bad_fraction_rejected(self, allnames_dataset):
        with pytest.raises(ValueError):
            allnames_replay(allnames_dataset, 0.0)

    def test_cdf_points(self):
        points = cdf_points([1.0, 2.0, 4.0])
        assert points[-1] == (4.0, 1.0)
        assert points[0][1] == pytest.approx(1 / 3)

    def test_percentile_empty_rejected(self):
        with pytest.raises(ValueError):
            percentile([], 0.5)


class TestHiddenResolvers:
    @pytest.fixture(scope="class")
    def analysis(self, scan_universe, scan_result):
        return analyze_hidden_resolvers(scan_universe, scan_result)

    def test_prefixes_discovered_and_validated(self, analysis):
        assert analysis.discovered_prefixes
        assert len(analysis.validated_prefixes) >= \
            0.8 * len(analysis.discovered_prefixes)

    def test_combinations_have_distances(self, analysis):
        assert analysis.combinations
        assert all(c.f_h_km >= 0 and c.f_r_km >= 0
                   for c in analysis.combinations)

    def test_below_diagonal_minority_exists(self, analysis):
        below_mp, _, above_mp = analysis.fractions(True)
        assert 0 < below_mp < 0.3

    def test_hidden_closer_majority_nonmp(self, analysis):
        below, on, above = analysis.fractions(False)
        assert above > 0.5

    def test_report(self, analysis):
        assert "hidden" in analysis.report()


class TestTable2:
    @pytest.fixture(scope="class")
    def table(self):
        return run_table2(UnroutableLab.build())

    def test_routable_answers_identical_sets(self, table):
        assert table.routable_answers_identical

    def test_unroutable_answers_disjoint(self, table):
        assert table.unroutable_answers_disjoint

    def test_routable_mapping_is_near(self, table):
        assert table.row("none").rtt_ms < 40

    def test_unroutable_mapping_degrades(self, table):
        near = table.row("none").rtt_ms
        worst = max(table.row(p).rtt_ms for p in
                    ("127.0.0.1/32", "127.0.0.0/24", "169.254.252.0/24"))
        assert worst > 3 * near

    def test_rfc_fallback_policy_fixes_it(self):
        from repro.auth import UnroutablePolicy
        lab = UnroutableLab.build(
            unroutable_policy=UnroutablePolicy.USE_RESOLVER)
        table = run_table2(lab)
        for prefix in ("127.0.0.1/32", "127.0.0.0/24", "169.254.252.0/24"):
            assert table.row(prefix).location == table.row("none").location

    def test_report(self, table):
        assert "Zurich" in table.report() or "Table 2" in table.report()


class TestMappingQuality:
    @pytest.fixture(scope="class")
    def lab(self):
        return MappingQualityLab.build(probe_count=80, seed=3)

    @pytest.fixture(scope="class")
    def cdn1_series(self, lab):
        return measure_mapping_quality(lab, lab.cdn1, lab.cdn1_qname,
                                       prefix_lengths=(16, 20, 21, 22, 23, 24))

    @pytest.fixture(scope="class")
    def cdn2_series(self, lab):
        return measure_mapping_quality(lab, lab.cdn2, lab.cdn2_qname,
                                       prefix_lengths=(16, 20, 21, 22, 23, 24))

    def test_cdn1_cliff_below_24(self, cdn1_series):
        assert cdn1_series.median(23) > 3 * cdn1_series.median(24)
        assert crossover_prefix_length(cdn1_series) == 23

    def test_cdn2_cliff_below_21(self, cdn2_series):
        assert cdn2_series.median(21) < 3 * cdn2_series.median(24)
        assert cdn2_series.median(20) > 3 * cdn2_series.median(24)
        assert crossover_prefix_length(cdn2_series) == 20

    def test_cdn1_unique_answers_collapse(self, cdn1_series):
        assert cdn1_series.unique_answers[24] > 10
        assert cdn1_series.unique_answers[23] <= 2

    def test_cdn2_unique_answers_hold_to_21(self, cdn2_series):
        assert cdn2_series.unique_answers[21] > 10
        assert cdn2_series.unique_answers[20] <= 2

    def test_report(self, cdn1_series):
        assert "unique first answers" in cdn1_series.report("Fig 6")


class TestFlattening:
    def test_careless_flattening_penalty(self):
        lab = FlatteningLab.build(forward_ecs=False)
        timings = run_flattening_case_study(lab)
        # Mis-mapped edge is far; correct edge is near.
        assert timings.apex_handshake_ms > 5 * timings.www_handshake_ms
        assert timings.penalty_ms > 200

    def test_careful_flattening_fixes_mapping(self):
        lab = FlatteningLab.build(forward_ecs=True)
        timings = run_flattening_case_study(lab)
        assert timings.apex_handshake_ms <= 2 * timings.www_handshake_ms

    def test_www_path_maps_near_client(self):
        lab = FlatteningLab.build()
        timings = run_flattening_case_study(lab)
        where = lab.topology.city_of(timings.www_edge_ip)
        assert where and where.name == "Santiago"

    def test_report(self):
        lab = FlatteningLab.build()
        text = run_flattening_case_study(lab).report()
        assert "penalty" in text


class TestSummaries:
    def test_cdn_summary(self, cdn_dataset):
        assert "CDN dataset" in summarize_cdn(cdn_dataset)

    def test_scan_summary(self, scan_result):
        assert "Scan dataset" in summarize_scan(scan_result)

    def test_public_cdn_summary(self, public_cdn_dataset):
        assert "Public Resolver/CDN" in summarize_public_cdn(public_cdn_dataset)

    def test_allnames_summary(self, allnames_dataset):
        assert "All-Names" in summarize_allnames(allnames_dataset)
