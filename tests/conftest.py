"""Shared fixtures: small worlds and datasets reused across test modules.

Session-scoped fixtures are read-only from the tests' point of view; any
test that mutates state builds its own instance.
"""

from __future__ import annotations

import pytest

from repro.auth import CdnAuthoritative, DnsHierarchy, build_edge_pools
from repro.datasets import (AllNamesBuilder, CdnDatasetBuilder,
                            PublicCdnBuilder, ScanUniverseBuilder)
from repro.dnslib import Name, Zone
from repro.measure import Scanner
from repro.net import Network, Topology, city
from repro.resolvers import RecursiveResolver
from repro.resolvers.behaviors import COMPLIANT


@pytest.fixture()
def small_world():
    """A minimal resolvable world: hierarchy + one zone + one CDN +
    a compliant resolver and a client, all in known cities."""
    topology = Topology()
    net = Network(topology)
    infra = topology.create_as("infra", "US")
    hierarchy = DnsHierarchy(net, infra)

    zone = Zone(Name.from_text("example.com"))
    zone.add_soa()
    zone.add_text("www", "A", "93.184.216.34")
    zone.add_text("alias", "CNAME", "www")
    hierarchy.host_zone(zone, city("Ashburn"))

    cdn_as = topology.create_as("cdn", "US")
    pools = build_edge_pools(topology, cdn_as,
                             [city("Chicago"), city("Zurich"),
                              city("Tokyo"), city("Johannesburg")])
    cdn_ip = cdn_as.host_in(city("Ashburn"))
    cdn = CdnAuthoritative(cdn_ip, [Name.from_text("cdn.example.")],
                           pools, topology)
    net.attach(cdn)
    hierarchy.attach_authoritative(Name.from_text("cdn.example."), cdn_ip)

    isp = topology.create_as("isp", "US")
    resolver_ip = isp.host_in(city("Cleveland"))
    resolver = RecursiveResolver(resolver_ip, topology.clock,
                                 hierarchy.root_ips, policy=COMPLIANT)
    net.attach(resolver)
    client_ip = isp.host_in(city("Cleveland"))

    class World:
        pass

    world = World()
    world.topology = topology
    world.net = net
    world.hierarchy = hierarchy
    world.zone = zone
    world.cdn = cdn
    world.resolver = resolver
    world.resolver_ip = resolver_ip
    world.client_ip = client_ip
    world.isp = isp
    return world


@pytest.fixture(scope="session")
def scan_universe():
    """A mid-sized scan universe shared by read-only analyses."""
    return ScanUniverseBuilder(seed=11, ingress_count=150).build()


@pytest.fixture(scope="session")
def scan_result(scan_universe):
    return Scanner(scan_universe).scan()


@pytest.fixture(scope="session")
def cdn_dataset():
    return CdnDatasetBuilder(scale=0.01, seed=4, duration_s=4 * 3600.0).build()


@pytest.fixture(scope="session")
def allnames_dataset():
    return AllNamesBuilder(scale=0.25, seed=4).build()


@pytest.fixture(scope="session")
def public_cdn_dataset():
    return PublicCdnBuilder(scale=0.004, seed=4,
                            duration_s=1200.0).build()
