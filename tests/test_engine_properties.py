"""Property/round-trip layer: dnslib wire codec under random ECS inputs.

Asserts ``parse(build(x)) == x`` at full-message granularity for random
names, IPv4 prefix lengths 0-32, IPv6 prefix lengths 0-128, and random
scopes.  Runs under Hypothesis when available and falls back to a
seeded-random generator otherwise, so the invariants stay enforced on
minimal tool chains.
"""

from __future__ import annotations

import ipaddress
import random

import pytest

from repro.dnslib import (EcsOption, Message, Name, RecordType,
                          decode_message, encode_message)
from repro.engine.sharding import partition_by_key, stable_bucket

try:
    from hypothesis import given, settings, strategies as st
    HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover - exercised only without hypothesis
    HAVE_HYPOTHESIS = False

_LABEL_ALPHABET = "abcdefghijklmnopqrstuvwxyz0123456789-"


def _valid_label(s: str) -> bool:
    return not s.startswith("-") and not s.endswith("-")


def _random_name(rng: random.Random) -> Name:
    parts = []
    for _ in range(rng.randint(1, 5)):
        label = "".join(rng.choice(_LABEL_ALPHABET)
                        for _ in range(rng.randint(1, 12)))
        parts.append(label.strip("-") or "x")
    return Name.from_text(".".join(parts))


def _roundtrip_query(qname: Name, qtype: RecordType, msg_id: int,
                     ecs: EcsOption) -> None:
    message = Message.make_query(qname, qtype, msg_id=msg_id, ecs=ecs)
    decoded = decode_message(encode_message(message))
    assert decoded == message
    assert decoded.ecs() == ecs


def _check_v4(address: str, source: int, scope: int, msg_id: int,
              rng_name: Name) -> None:
    ecs = EcsOption.from_client_address(address, source,
                                        scope_prefix_length=scope)
    assert EcsOption.from_wire(ecs.to_wire()) == ecs
    _roundtrip_query(rng_name, RecordType.A, msg_id, ecs)


def _check_v6(address: str, source: int, scope: int, msg_id: int,
              rng_name: Name) -> None:
    ecs = EcsOption.from_client_address(address, source,
                                        scope_prefix_length=scope)
    assert EcsOption.from_wire(ecs.to_wire()) == ecs
    _roundtrip_query(rng_name, RecordType.AAAA, msg_id, ecs)


if HAVE_HYPOTHESIS:
    labels = st.text(alphabet=_LABEL_ALPHABET, min_size=1,
                     max_size=12).filter(_valid_label)
    names = st.lists(labels, min_size=1, max_size=5).map(
        lambda parts: Name.from_text(".".join(parts)))
    v4_addresses = st.integers(min_value=0, max_value=2**32 - 1).map(
        lambda n: str(ipaddress.IPv4Address(n)))
    v6_addresses = st.integers(min_value=0, max_value=2**128 - 1).map(
        lambda n: str(ipaddress.IPv6Address(n)))

    class TestEcsMessageRoundTrip:
        @settings(max_examples=120, deadline=None)
        @given(names, v4_addresses,
               st.integers(min_value=0, max_value=32),
               st.integers(min_value=0, max_value=32),
               st.integers(min_value=0, max_value=0xFFFF))
        def test_v4_message_roundtrip(self, qname, address, source, scope,
                                      msg_id):
            _check_v4(address, source, scope, msg_id, qname)

        @settings(max_examples=120, deadline=None)
        @given(names, v6_addresses,
               st.integers(min_value=0, max_value=128),
               st.integers(min_value=0, max_value=128),
               st.integers(min_value=0, max_value=0xFFFF))
        def test_v6_message_roundtrip(self, qname, address, source, scope,
                                      msg_id):
            _check_v6(address, source, scope, msg_id, qname)

        @settings(max_examples=80, deadline=None)
        @given(v4_addresses, st.integers(min_value=0, max_value=32),
               st.integers(min_value=0, max_value=32))
        def test_wire_length_matches_source_prefix(self, address, source,
                                                   scope):
            # RFC 7871 section 6: exactly ceil(source/8) address octets.
            ecs = EcsOption.from_client_address(address, source,
                                               scope_prefix_length=scope)
            assert len(ecs.to_wire()) == 4 + (source + 7) // 8
else:  # pragma: no cover - exercised only without hypothesis
    class TestEcsMessageRoundTrip:
        @pytest.mark.parametrize("seed", range(8))
        def test_v4_message_roundtrip(self, seed):
            rng = random.Random(1000 + seed)
            for _ in range(40):
                address = str(ipaddress.IPv4Address(rng.getrandbits(32)))
                _check_v4(address, rng.randint(0, 32), rng.randint(0, 32),
                          rng.randint(0, 0xFFFF), _random_name(rng))

        @pytest.mark.parametrize("seed", range(8))
        def test_v6_message_roundtrip(self, seed):
            rng = random.Random(2000 + seed)
            for _ in range(40):
                address = str(ipaddress.IPv6Address(rng.getrandbits(128)))
                _check_v6(address, rng.randint(0, 128), rng.randint(0, 128),
                          rng.randint(0, 0xFFFF), _random_name(rng))

        @pytest.mark.parametrize("seed", range(4))
        def test_wire_length_matches_source_prefix(self, seed):
            rng = random.Random(3000 + seed)
            for _ in range(40):
                address = str(ipaddress.IPv4Address(rng.getrandbits(32)))
                source = rng.randint(0, 32)
                ecs = EcsOption.from_client_address(
                    address, source, scope_prefix_length=rng.randint(0, 32))
                assert len(ecs.to_wire()) == 4 + (source + 7) // 8


class TestShardingProperties:
    """Seeded-random checks on the engine's partitioning primitives."""

    def test_stable_bucket_in_range_and_deterministic(self):
        rng = random.Random(4)
        for _ in range(200):
            key = "".join(rng.choice(_LABEL_ALPHABET)
                          for _ in range(rng.randint(1, 24)))
            shards = rng.randint(1, 16)
            bucket = stable_bucket(key, shards)
            assert 0 <= bucket < shards
            assert bucket == stable_bucket(key, shards)

    def test_partition_preserves_multiset_and_order(self):
        rng = random.Random(5)
        items = [(i, rng.choice("abcdef")) for i in range(300)]
        buckets = partition_by_key(items, 5, lambda item: item[1])
        assert sorted(item for b in buckets for item in b) == sorted(items)
        for bucket in buckets:
            indexes = [i for i, _ in bucket]
            assert indexes == sorted(indexes)
        # Same key, same bucket — the property replay sharding relies on.
        for bucket in buckets:
            for other in buckets:
                if bucket is not other:
                    assert not ({k for _, k in bucket}
                                & {k for _, k in other})
