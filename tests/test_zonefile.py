"""Tests for master-file zone parsing."""

import pytest

from repro.dnslib import (Name, Rcode, RecordType, ZoneError, load_zone,
                          parse_zone)

BASIC = """
$ORIGIN example.com.
$TTL 300
@    IN SOA ns1 hostmaster 2024 3600 600 86400 60
     IN NS  ns1
ns1  IN A   203.0.113.53
www  60 IN A 203.0.113.80
www  IN AAAA 2001:db8::80
alias IN CNAME www
mail IN MX 10 mx1
mx1  IN A 203.0.113.25
txt  IN TXT "hello world" "second"
"""


class TestBasicParsing:
    @pytest.fixture(scope="class")
    def zone(self):
        return parse_zone(BASIC)

    def test_origin_from_directive(self, zone):
        assert zone.origin == Name.from_text("example.com")

    def test_soa_present(self, zone):
        soa = zone.get(zone.origin, RecordType.SOA)
        assert soa and soa[0].rdata.serial == 2024
        assert soa[0].rdata.minimum == 60

    def test_relative_names_resolved(self, zone):
        rrs = zone.get(Name.from_text("ns1.example.com"), RecordType.A)
        assert rrs and rrs[0].rdata.address == "203.0.113.53"

    def test_explicit_ttl_overrides_default(self, zone):
        rrs = zone.get(Name.from_text("www.example.com"), RecordType.A)
        assert rrs[0].ttl == 60

    def test_default_ttl_applied(self, zone):
        rrs = zone.get(Name.from_text("mx1.example.com"), RecordType.A)
        assert rrs[0].ttl == 300

    def test_blank_owner_repeats_previous(self, zone):
        # The NS line has no owner; it belongs to the apex.
        rrs = zone.get(zone.origin, RecordType.NS)
        assert rrs and rrs[0].rdata.target == Name.from_text("ns1.example.com")

    def test_aaaa(self, zone):
        rrs = zone.get(Name.from_text("www.example.com"), RecordType.AAAA)
        assert rrs[0].rdata.address == "2001:db8::80"

    def test_cname(self, zone):
        result = zone.lookup(Name.from_text("alias.example.com"),
                             RecordType.A)
        assert result.rcode == Rcode.NOERROR
        assert any(rr.rdtype == RecordType.A for rr in result.answers)

    def test_mx(self, zone):
        rrs = zone.get(Name.from_text("mail.example.com"), RecordType.MX)
        assert rrs[0].rdata.preference == 10

    def test_txt_strings(self, zone):
        rrs = zone.get(Name.from_text("txt.example.com"), RecordType.TXT)
        assert rrs[0].rdata.strings == (b"hello world", b"second")


class TestSyntaxFeatures:
    def test_multiline_soa_with_parentheses(self):
        zone = parse_zone("""
$ORIGIN p.example.
@ IN SOA ns1 host (
        7       ; serial
        1h      ; refresh
        10m     ; retry
        1d      ; expire
        5m )    ; minimum
""")
        soa = zone.get(zone.origin, RecordType.SOA)[0].rdata
        assert soa.serial == 7
        assert soa.refresh == 3600 and soa.retry == 600
        assert soa.expire == 86400 and soa.minimum == 300

    def test_comments_stripped(self):
        zone = parse_zone("www IN A 1.2.3.4 ; the web server",
                          origin="c.example.")
        assert zone.get(Name.from_text("www.c.example."), RecordType.A)

    def test_semicolon_inside_quotes_kept(self):
        zone = parse_zone('t IN TXT "a;b"', origin="c.example.")
        rrs = zone.get(Name.from_text("t.c.example."), RecordType.TXT)
        assert rrs[0].rdata.strings == (b"a;b",)

    def test_ttl_units(self):
        zone = parse_zone("$TTL 2h\nwww IN A 1.2.3.4", origin="c.example.")
        rrs = zone.get(Name.from_text("www.c.example."), RecordType.A)
        assert rrs[0].ttl == 7200

    def test_origin_argument_used_without_directive(self):
        zone = parse_zone("www IN A 1.2.3.4", origin="arg.example.")
        assert zone.origin == Name.from_text("arg.example.")

    def test_absolute_owner_kept(self):
        zone = parse_zone("deep.sub.example.com. IN A 1.2.3.4",
                          origin="example.com.")
        assert zone.get(Name.from_text("deep.sub.example.com"), RecordType.A)

    def test_class_optional(self):
        zone = parse_zone("www A 1.2.3.4", origin="c.example.")
        assert zone.get(Name.from_text("www.c.example."), RecordType.A)

    def test_load_zone_from_file(self, tmp_path):
        path = tmp_path / "zone.db"
        path.write_text(BASIC)
        zone = load_zone(path)
        assert zone.get(Name.from_text("www.example.com"), RecordType.A)


class TestErrors:
    def test_unbalanced_parenthesis(self):
        with pytest.raises(ZoneError):
            parse_zone("@ IN SOA a b ( 1 2 3 4 5", origin="x.example.")

    def test_no_origin_anywhere(self):
        with pytest.raises(ZoneError):
            parse_zone("www IN A 1.2.3.4")

    def test_unknown_type(self):
        with pytest.raises(ZoneError):
            parse_zone("www IN WKS 1.2.3.4", origin="x.example.")

    def test_blank_owner_first_line(self):
        with pytest.raises(ZoneError):
            parse_zone("   IN A 1.2.3.4", origin="x.example.")

    def test_missing_type(self):
        with pytest.raises(ZoneError):
            parse_zone("www 300 IN", origin="x.example.")

    def test_bad_ttl_directive(self):
        with pytest.raises(ZoneError):
            parse_zone("$TTL soon\nwww IN A 1.2.3.4", origin="x.example.")

    def test_soa_field_count(self):
        with pytest.raises(ZoneError):
            parse_zone("@ IN SOA a b 1 2 3", origin="x.example.")


class TestEndToEnd:
    def test_parsed_zone_served_by_authoritative(self, small_world):
        from repro.auth import AuthoritativeServer
        from repro.measure import StubClient
        from repro.net import city
        zone = parse_zone("""
$ORIGIN parsed.example.
$TTL 120
@   IN SOA ns1 host 1 3600 600 86400 60
www IN A 203.0.113.99
""")
        ip = small_world.isp.host_in(city("Ashburn"))
        server = AuthoritativeServer(ip, [zone])
        small_world.net.attach(server)
        small_world.hierarchy.attach_authoritative(
            Name.from_text("parsed.example."), ip)
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(small_world.resolver_ip, "www.parsed.example")
        assert result.addresses == ["203.0.113.99"]
