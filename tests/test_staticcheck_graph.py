"""Whole-program (--graph) linter tests: RS201-RS204, cache, reporters.

Each test builds a small fixture package under ``tmp_path`` and runs
:func:`repro.staticcheck.graph.lint_paths_graph` over it.  The fixtures
import the *real* engine introspection surface (``worker_entrypoint``,
``ShardSpec``, ``repro.obs``) by dotted name only — the analyzer never
imports fixture code, so nothing here executes.

pytest's ``tmp_path`` contains the test name (``.../test_rs201.../``)
which matches the default ``/test_`` test-path fragment and would relax
every rule; fixtures therefore always pass an explicit :class:`Config`
with ``test_paths=()``.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, Optional, Tuple

import pytest

from repro.staticcheck import lint_source
from repro.staticcheck.config import Config
from repro.staticcheck.core import all_rule_ids
from repro.staticcheck.graph import (GraphRunResult, file_sha256,
                                     lint_paths_graph, module_name_for)
from repro.staticcheck.reporters import render, render_sarif

REPO = Path(__file__).resolve().parent.parent
SRC = REPO / "src" / "repro"

GRAPH_IDS = ("RS201", "RS202", "RS203", "RS204")


def _config(**kwargs: object) -> Config:
    kwargs.setdefault("test_paths", ())
    kwargs.setdefault("determinism_allow", ())
    return Config(**kwargs)  # type: ignore[arg-type]


def write_pkg(root: Path, files: Dict[str, str]) -> Path:
    pkg = root / "pkg"
    pkg.mkdir()
    (pkg / "__init__.py").write_text("", encoding="utf-8")
    for name, source in files.items():
        (pkg / name).write_text(source, encoding="utf-8")
    return pkg


def run_graph(pkg: Path, config: Config, **kwargs: object
              ) -> GraphRunResult:
    return lint_paths_graph([pkg], config=config, **kwargs)  # type: ignore[arg-type]


def rule_ids(result: GraphRunResult) -> Tuple[str, ...]:
    return tuple(v.rule_id for v in result.violations)


# ---------------------------------------------------------------------------
# RS201: worker-reachability determinism.


AMBIENT_WORKERS = """\
from repro.engine.pool import worker_entrypoint

from .helpers import stamp


@worker_entrypoint
def shard_entry(index: int) -> float:
    return middle(index)


def middle(index: int) -> float:
    return inner()


def inner() -> float:
    return stamp()
"""

AMBIENT_HELPERS = """\
import time


def stamp() -> float:
    return time.time()
"""


class TestRS201Ambient:
    def test_clock_reachable_through_three_frames_fires(
            self, tmp_path: Path) -> None:
        pkg = write_pkg(tmp_path, {"workers.py": AMBIENT_WORKERS,
                                   "helpers.py": AMBIENT_HELPERS})
        # helpers.py carries a determinism-allow waiver, so per-file
        # RS001 is silent there — only the graph pass can see that the
        # clock read runs inside a worker.
        config = _config(determinism_allow=("pkg/helpers.py",))
        result = run_graph(pkg, config)
        assert rule_ids(result) == ("RS201",)
        violation = result.violations[0]
        assert violation.path.endswith("helpers.py")
        assert "time.time" in violation.message
        # The chain names every frame back to the entrypoint.
        for frame in ("stamp", "inner", "middle", "shard_entry"):
            assert frame in violation.message

    def test_unreachable_clock_does_not_fire(self, tmp_path: Path) -> None:
        # Same helper, but no worker entrypoint ever reaches it.
        workers = AMBIENT_WORKERS.replace("return inner()", "return 0.0")
        pkg = write_pkg(tmp_path, {"workers.py": workers,
                                   "helpers.py": AMBIENT_HELPERS})
        config = _config(determinism_allow=("pkg/helpers.py",))
        result = run_graph(pkg, config)
        assert rule_ids(result) == ()

    def test_waived_file_outside_worker_context_stays_quiet(
            self, tmp_path: Path) -> None:
        # A waived clock read with no entrypoints at all: per-file RS001
        # is waived and RS201 has nothing reachable.
        pkg = write_pkg(tmp_path, {"helpers.py": AMBIENT_HELPERS})
        config = _config(determinism_allow=("pkg/helpers.py",))
        result = run_graph(pkg, config)
        assert rule_ids(result) == ()


SEED_WORKERS = """\
from repro.engine.pool import worker_entrypoint

from .helpers import make_rng


@worker_entrypoint
def shard_entry(index: int) -> float:
    rng = make_rng(42)
    return rng.random()
"""

SEED_HELPERS = """\
import random


def make_rng(seed: int) -> random.Random:
    return random.Random(seed)
"""


class TestRS201ConstantSeed:
    def test_constant_seed_through_helper_fires(self,
                                                tmp_path: Path) -> None:
        pkg = write_pkg(tmp_path, {"workers.py": SEED_WORKERS,
                                   "helpers.py": SEED_HELPERS})
        result = run_graph(pkg, _config())
        assert rule_ids(result) == ("RS201",)
        message = result.violations[0].message
        assert "constant seed 42" in message
        assert "'seed'" in message and "make_rng" in message

    def test_threaded_seed_does_not_fire(self, tmp_path: Path) -> None:
        workers = SEED_WORKERS.replace("make_rng(42)", "make_rng(index)")
        pkg = write_pkg(tmp_path, {"workers.py": workers,
                                   "helpers.py": SEED_HELPERS})
        result = run_graph(pkg, _config())
        assert rule_ids(result) == ()


# ---------------------------------------------------------------------------
# RS202: pickle safety at declared boundaries.


SPEC_BAD = """\
from repro.engine.sharding import ShardSpec


def bad_spec() -> ShardSpec:
    return ShardSpec.create("allnames", fn=lambda: 1)
"""

SPEC_GOOD = """\
from repro.engine.sharding import ShardSpec


def _one() -> int:
    return 1


def good_spec() -> ShardSpec:
    return ShardSpec.create("allnames", fn=_one)
"""


class TestRS202PickleSafety:
    def test_lambda_into_shardspec_create_fires(self,
                                                tmp_path: Path) -> None:
        pkg = write_pkg(tmp_path, {"specs.py": SPEC_BAD})
        result = run_graph(pkg, _config())
        assert rule_ids(result) == ("RS202",)
        message = result.violations[0].message
        assert "lambda" in message
        assert "ShardSpec.create" in message

    def test_module_level_callable_does_not_fire(self,
                                                 tmp_path: Path) -> None:
        pkg = write_pkg(tmp_path, {"specs.py": SPEC_GOOD})
        result = run_graph(pkg, _config())
        assert rule_ids(result) == ()

    def test_unpicklable_bind_fires(self, tmp_path: Path) -> None:
        source = (
            "import threading\n"
            "from repro.engine.sharding import ShardSpec\n"
            "\n"
            "\n"
            "def locked_spec() -> ShardSpec:\n"
            "    lock = threading.Lock()\n"
            "    return ShardSpec.create('allnames', fn=lock)\n")
        pkg = write_pkg(tmp_path, {"specs.py": source})
        result = run_graph(pkg, _config())
        assert rule_ids(result) == ("RS202",)


# ---------------------------------------------------------------------------
# RS203: cross-module merge algebra.


PARTIAL_DEF = """\
class Partial:
    def __init__(self) -> None:
        self.count = 0

    def merge_from(self, other: "Partial") -> None:
        self.count += other.count
"""

PARTIAL_BUILD = """\
from repro.engine.pool import worker_entrypoint

from .model import Partial


@worker_entrypoint
def build(index: int) -> Partial:
    return Partial()
"""

PARTIAL_JOIN = """\
from .model import Partial


def join(parts: list) -> Partial:
    total = Partial()
    for part in parts:
        total.merge_from(part)
    return total
"""


class TestRS203MergeAlgebra:
    def test_never_merged_partial_fires(self, tmp_path: Path) -> None:
        pkg = write_pkg(tmp_path, {"model.py": PARTIAL_DEF,
                                   "build.py": PARTIAL_BUILD})
        result = run_graph(pkg, _config())
        assert rule_ids(result) == ("RS203",)
        message = result.violations[0].message
        assert "Partial" in message and "merge_from" in message

    def test_merged_in_another_module_does_not_fire(
            self, tmp_path: Path) -> None:
        pkg = write_pkg(tmp_path, {"model.py": PARTIAL_DEF,
                                   "build.py": PARTIAL_BUILD,
                                   "join.py": PARTIAL_JOIN})
        result = run_graph(pkg, _config())
        assert rule_ids(result) == ()


# ---------------------------------------------------------------------------
# RS204: obs ACTIVE escape.


ESCAPE = """\
from repro.obs import metrics as _obs_metrics

SLOT = _obs_metrics.ACTIVE


def leak():
    return _obs_metrics.ACTIVE
"""

GUARDED = """\
from repro.obs import metrics as _obs_metrics


def tally(name: str) -> None:
    slot = _obs_metrics.ACTIVE
    if slot is not None:
        slot.incr(name)
"""


class TestRS204ObsEscape:
    def test_alias_and_return_fire(self, tmp_path: Path) -> None:
        pkg = write_pkg(tmp_path, {"escape.py": ESCAPE})
        result = run_graph(pkg, _config())
        assert rule_ids(result) == ("RS204", "RS204")
        messages = [v.message for v in result.violations]
        assert any("module-level alias 'SLOT'" in m for m in messages)
        assert any("leak returns the raw obs ACTIVE" in m
                   for m in messages)

    def test_local_guarded_read_does_not_fire(self,
                                              tmp_path: Path) -> None:
        pkg = write_pkg(tmp_path, {"guarded.py": GUARDED})
        result = run_graph(pkg, _config())
        assert rule_ids(result) == ()


# ---------------------------------------------------------------------------
# Suppressions under --graph.


class TestGraphSuppressions:
    def test_inline_suppression_silences_graph_finding(
            self, tmp_path: Path) -> None:
        helpers = AMBIENT_HELPERS.replace(
            "    return time.time()",
            "    return time.time()  # repro-lint: disable=RS201")
        pkg = write_pkg(tmp_path, {"workers.py": AMBIENT_WORKERS,
                                   "helpers.py": helpers})
        config = _config(determinism_allow=("pkg/helpers.py",))
        result = run_graph(pkg, config)
        assert rule_ids(result) == ()

    def test_unused_graph_suppression_is_rs000_under_graph(
            self, tmp_path: Path) -> None:
        source = "x = 1  # repro-lint: disable=RS201\n"
        pkg = write_pkg(tmp_path, {"clean.py": source})
        result = run_graph(pkg, _config())
        assert rule_ids(result) == ("RS000",)

    def test_unused_graph_suppression_silent_in_plain_lint(self) -> None:
        # Plain per-file runs never execute RS2xx, so holding a
        # suppression for one is not "unused" there.
        out = lint_source("x = 1  # repro-lint: disable=RS201\n", "a.py",
                          config=_config())
        assert out == []


# ---------------------------------------------------------------------------
# Incremental cache + determinism of the report.


def _full_fixture(tmp_path: Path) -> Tuple[Path, Config]:
    pkg = write_pkg(tmp_path, {
        "workers.py": AMBIENT_WORKERS,
        "helpers.py": AMBIENT_HELPERS,
        "specs.py": SPEC_BAD,
        "model.py": PARTIAL_DEF,
        "build.py": PARTIAL_BUILD,
        "escape.py": ESCAPE,
    })
    return pkg, _config(determinism_allow=("pkg/helpers.py",))


class TestIncrementalCache:
    def test_cold_then_warm_hit_counters_and_identical_report(
            self, tmp_path: Path) -> None:
        pkg, config = _full_fixture(tmp_path)
        cache = tmp_path / "cache.json"
        cold = run_graph(pkg, config, cache_path=cache)
        assert cold.stats.hits == 0
        assert cold.stats.misses == cold.stats.files > 0
        assert not cold.stats.graph_reused
        assert cold.stats.closure_misses == cold.stats.files

        warm = run_graph(pkg, config, cache_path=cache)
        assert warm.stats.hits == warm.stats.files == cold.stats.files
        assert warm.stats.misses == 0
        assert warm.stats.graph_reused
        assert warm.stats.closure_hits == warm.stats.files
        assert warm.stats.closure_misses == 0

        for fmt in ("text", "json", "sarif"):
            assert render(cold.violations, cold.files_checked, fmt) \
                == render(warm.violations, warm.files_checked, fmt)

    def test_single_file_edit_reparses_only_that_file(
            self, tmp_path: Path) -> None:
        pkg, config = _full_fixture(tmp_path)
        cache = tmp_path / "cache.json"
        run_graph(pkg, config, cache_path=cache)
        # Touch one module without changing any import edges.
        escape = pkg / "escape.py"
        escape.write_text(ESCAPE + "\n# trailing comment\n",
                          encoding="utf-8")
        result = run_graph(pkg, config, cache_path=cache)
        assert result.stats.misses == 1
        assert result.stats.hits == result.stats.files - 1
        # The whole-program digest changed, but closure-cacheable rules
        # re-run only where the import closure changed.
        assert not result.stats.graph_reused
        assert result.stats.closure_misses >= 1
        assert result.stats.closure_hits \
            == result.stats.files - result.stats.closure_misses

    def test_report_is_byte_identical_across_worker_counts(
            self, tmp_path: Path) -> None:
        pkg, config = _full_fixture(tmp_path)
        solo = run_graph(pkg, config, workers=1)
        fleet = run_graph(pkg, config, workers=4)
        assert solo.stats.files == fleet.stats.files
        for fmt in ("text", "json", "sarif"):
            assert render(solo.violations, solo.files_checked, fmt) \
                == render(fleet.violations, fleet.files_checked, fmt)

    def test_config_change_invalidates_cache(self,
                                             tmp_path: Path) -> None:
        pkg, config = _full_fixture(tmp_path)
        cache = tmp_path / "cache.json"
        run_graph(pkg, config, cache_path=cache)
        reconfigured = _config(determinism_allow=())
        again = run_graph(pkg, reconfigured, cache_path=cache)
        assert again.stats.hits == 0
        assert again.stats.misses == again.stats.files


# ---------------------------------------------------------------------------
# Report-path restriction (the --changed machinery).


class TestReportPaths:
    def test_report_paths_restrict_output_but_not_the_graph(
            self, tmp_path: Path) -> None:
        pkg, config = _full_fixture(tmp_path)
        helpers = str(pkg / "helpers.py")
        result = run_graph(pkg, config, report_paths={helpers})
        # The RS201 finding lives in helpers.py but only exists because
        # workers.py (outside report_paths) was still indexed.
        assert result.files_checked == 1
        assert "RS201" in rule_ids(result)
        assert all(v.path == helpers for v in result.violations)

    def test_widening_reports_reverse_importers(self,
                                                tmp_path: Path) -> None:
        pkg, config = _full_fixture(tmp_path)
        helpers = str(pkg / "helpers.py")
        result = run_graph(pkg, config, report_paths={helpers},
                           widen_to_importers=True)
        # workers.py imports helpers.py, so the widened report covers it.
        assert result.files_checked >= 2


# ---------------------------------------------------------------------------
# SARIF reporter.


class TestSarif:
    def test_sarif_shape_and_rules_metadata(self, tmp_path: Path) -> None:
        pkg, config = _full_fixture(tmp_path)
        result = run_graph(pkg, config)
        document = json.loads(
            render_sarif(result.violations, result.files_checked))
        assert document["version"] == "2.1.0"
        run = document["runs"][0]
        driver = run["tool"]["driver"]
        assert driver["name"] == "repro-staticcheck"
        catalog = {rule["id"] for rule in driver["rules"]}
        assert set(GRAPH_IDS) <= catalog
        assert {"RS000", "RS999"} <= catalog
        assert len(run["results"]) == len(result.violations)
        for entry in run["results"]:
            assert entry["ruleId"] in catalog
            location = entry["locations"][0]["physicalLocation"]
            region = location["region"]
            assert region["startLine"] >= 1
            assert region["startColumn"] >= 1

    def test_sarif_rule_index_points_at_its_rule(self) -> None:
        document = json.loads(render_sarif([], 0))
        rules = document["runs"][0]["tool"]["driver"]["rules"]
        assert [rule["id"] for rule in rules] \
            == sorted(rule["id"] for rule in rules)


# ---------------------------------------------------------------------------
# Self-application: the repo's own sources must pass their own linter.


class TestSelfLint:
    def test_src_repro_is_graph_clean(self) -> None:
        result = lint_paths_graph([SRC])
        assert result.violations == [], render(
            result.violations, result.files_checked, "text")
        assert result.project is not None
        # The engine's declared seeds reach a non-trivial worker slice.
        assert len(result.project.worker_seeds()) > 10

    def test_rule_universe_includes_graph_family(self) -> None:
        assert set(GRAPH_IDS) <= set(all_rule_ids())


# ---------------------------------------------------------------------------
# Small unit seams.


class TestUnits:
    def test_file_sha256_is_stable(self) -> None:
        assert file_sha256("x = 1\n") == file_sha256("x = 1\n")
        assert file_sha256("x = 1\n") != file_sha256("x = 2\n")

    def test_module_name_walks_packages(self, tmp_path: Path) -> None:
        pkg = write_pkg(tmp_path, {"mod.py": "x = 1\n"})
        assert module_name_for(pkg / "mod.py") == "pkg.mod"
        assert module_name_for(pkg / "__init__.py") == "pkg"
