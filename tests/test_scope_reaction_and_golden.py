"""Tests for the scope-reaction prober, golden wire vectors, and failure
injection resilience."""

import pytest

from repro.core.policies import EcsPolicy
from repro.datasets import ScanUniverseBuilder
from repro.dnslib import (EcsOption, Message, Name, RecordType,
                          decode_message, encode_message)
from repro.measure import ScopeReactionProber, StubClient
from repro.net import city
from repro.resolvers import RecursiveResolver


class TestScopeReaction:
    @pytest.fixture(scope="class")
    def universe(self):
        return ScanUniverseBuilder(seed=17, ingress_count=20).build()

    def _attach_resolver(self, universe, policy):
        as_ = universe.topology.create_as(
            f"react-{policy.adapt_source_to_scope}", "US")
        ip = as_.host_in(city("Denver"))
        resolver = RecursiveResolver(ip, universe.net.clock,
                                     universe.hierarchy.root_ips,
                                     policy=policy)
        universe.net.attach(resolver)
        return ip

    def test_static_resolver_does_not_adapt(self, universe):
        ip = self._attach_resolver(universe, EcsPolicy())
        outcome = ScopeReactionProber(universe).probe(ip)
        assert outcome.adapts is False
        assert all(max(lengths) == 24
                   for lengths in outcome.observed_source_lengths if lengths)

    def test_adaptive_resolver_adapts(self, universe):
        ip = self._attach_resolver(
            universe, EcsPolicy(adapt_source_to_scope=True))
        outcome = ScopeReactionProber(universe).probe(
            ip, phase_scopes=(24, 16, 16))
        assert outcome.adapts is True
        assert max(outcome.observed_source_lengths[-1]) == 16

    def test_non_ecs_resolver_inconclusive(self, universe):
        from repro.resolvers import behaviors
        ip = self._attach_resolver(universe, behaviors.NO_ECS)
        outcome = ScopeReactionProber(universe).probe(ip)
        assert outcome.adapts is None


class TestGoldenWireVectors:
    """Hand-checked byte-level vectors pin the codec's exact output."""

    def test_simple_query_bytes(self):
        msg = Message.make_query(Name.from_text("a.bc"), RecordType.A,
                                 msg_id=0x1234, use_edns=False)
        wire = encode_message(msg)
        assert wire == bytes.fromhex(
            "1234"          # id
            "0100"          # flags: RD
            "0001" "0000" "0000" "0000"  # counts
            "0161" "026263" "00"         # 1'a' 2'bc' root
            "0001" "0001")               # type A, class IN

    def test_query_with_ecs_bytes(self):
        ecs = EcsOption.from_client_address("192.0.2.77", 24)
        msg = Message.make_query(Name.from_text("x."), RecordType.AAAA,
                                 msg_id=1, ecs=ecs)
        wire = encode_message(msg)
        assert wire == bytes.fromhex(
            "0001" "0100" "0001" "0000" "0000" "0001"
            "017800" "001c" "0001"       # x. AAAA IN
            "00"                         # OPT owner: root
            "0029" "1000"                # type OPT, payload 4096
            "00000000"                   # ext-rcode/version/flags
            "000b"                       # rdlength 11
            "0008" "0007"                # option ECS, length 7
            "0001" "1800"                # family 1, source 24, scope 0
            "c00002")                    # 192.0.2

    def test_golden_decodes_back(self):
        wire = bytes.fromhex(
            "1234" "0100" "0001" "0000" "0000" "0000"
            "0161" "026263" "00" "0001" "0001")
        msg = decode_message(wire)
        assert msg.msg_id == 0x1234
        assert msg.question.qname == Name.from_text("a.bc")

    def test_compression_pointer_bytes(self):
        from repro.dnslib import A, ResourceRecord
        msg = Message.make_query(Name.from_text("a.bc"), RecordType.A,
                                 msg_id=0, use_edns=False)
        resp = msg.make_response()
        resp.answers.append(ResourceRecord(Name.from_text("a.bc"),
                                           RecordType.A, 5, A("1.2.3.4")))
        wire = encode_message(resp)
        # Question: name "a.bc" is 6 octets (1 a 2 b c 0) + 4 type/class,
        # so the answer's owner starts at 22 — a pointer to offset 12.
        assert wire[22:24] == b"\xc0\x0c"


class TestFailureInjection:
    def test_resolution_survives_lossy_authoritative(self, small_world):
        """50% loss toward the zone server: retries across the (single)
        NS eventually fail or succeed, but never hang or crash."""
        client = StubClient(small_world.client_ip, small_world.net)
        # Locate the example.com server and make it lossy.
        client.query(small_world.resolver_ip, "www.example.com")
        origin = Name.from_text("example.com")
        server = next(
            ep for ip in list(small_world.net.stats.per_destination)
            if (ep := small_world.net.endpoint_at(ip)) is not None
            and any(z.origin == origin for z in getattr(ep, "zones", [])))
        small_world.net.set_loss(server.ip, 0.5)
        small_world.topology.clock.advance(301)
        outcomes = set()
        for i in range(6):
            result = client.query(small_world.resolver_ip,
                                  "www.example.com")
            outcomes.add(result.rcode)
            small_world.topology.clock.advance(301)
        # Every attempt terminated with a definite outcome.
        assert outcomes and None not in outcomes

    def test_total_loss_yields_servfail_not_hang(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        client.query(small_world.resolver_ip, "www.example.com")
        origin = Name.from_text("example.com")
        server = next(
            ep for ip in list(small_world.net.stats.per_destination)
            if (ep := small_world.net.endpoint_at(ip)) is not None
            and any(z.origin == origin for z in getattr(ep, "zones", [])))
        small_world.net.set_loss(server.ip, 1.0)
        small_world.topology.clock.advance(301)
        from repro.dnslib import Rcode
        result = client.query(small_world.resolver_ip, "www.example.com")
        assert result.rcode == Rcode.SERVFAIL

    def test_scan_with_packet_loss_still_classifies(self):
        universe = ScanUniverseBuilder(seed=19, ingress_count=30).build()
        # 20% loss toward the experiment server.
        universe.net.set_loss(universe.experiment_server.ip, 0.2)
        from repro.measure import Scanner
        result = Scanner(universe).scan()
        # Some probes are lost, but the survivors still carry ECS data.
        assert result.records
        assert result.ecs_egress
