"""Tests for zone data and authoritative lookup semantics."""

import pytest

from repro.dnslib import (A, CNAME, NS, Name, Rcode, RecordType, Zone,
                          ZoneError)


@pytest.fixture()
def zone():
    z = Zone(Name.from_text("example.com"), default_ttl=120)
    z.add_soa()
    z.add_text("www", "A", "203.0.113.1")
    z.add_text("www", "A", "203.0.113.2")
    z.add_text("alias", "CNAME", "www")
    z.add_text("deep.alias2", "CNAME", "alias")
    z.add_text("sub", "NS", "ns1.sub")
    z.add_text("ns1.sub", "A", "203.0.113.53")
    z.add_text("*.wild", "A", "203.0.113.99")
    return z


def lookup(zone, name, rdtype=RecordType.A):
    return zone.lookup(Name.from_text(name), rdtype)


class TestBasicLookup:
    def test_exact_match_returns_rrset(self, zone):
        result = lookup(zone, "www.example.com")
        assert result.rcode == Rcode.NOERROR
        assert {rr.rdata.address for rr in result.answers} == \
            {"203.0.113.1", "203.0.113.2"}

    def test_default_ttl_applied(self, zone):
        result = lookup(zone, "www.example.com")
        assert all(rr.ttl == 120 for rr in result.answers)

    def test_nxdomain_with_soa(self, zone):
        result = lookup(zone, "missing.example.com")
        assert result.rcode == Rcode.NXDOMAIN
        assert any(rr.rdtype == RecordType.SOA for rr in result.authority)

    def test_nodata_for_existing_name_wrong_type(self, zone):
        result = lookup(zone, "www.example.com", RecordType.AAAA)
        assert result.rcode == Rcode.NOERROR
        assert result.answers == []

    def test_out_of_zone_refused(self, zone):
        result = lookup(zone, "www.other.com")
        assert result.rcode == Rcode.REFUSED

    def test_case_insensitive_lookup(self, zone):
        result = lookup(zone, "WWW.EXAMPLE.COM")
        assert result.answers


class TestCname:
    def test_cname_chased_in_zone(self, zone):
        result = lookup(zone, "alias.example.com")
        types = [rr.rdtype for rr in result.answers]
        assert RecordType.CNAME in types and RecordType.A in types

    def test_cname_chain_two_deep(self, zone):
        result = lookup(zone, "deep.alias2.example.com")
        assert sum(1 for rr in result.answers
                   if rr.rdtype == RecordType.CNAME) == 2
        assert any(rr.rdtype == RecordType.A for rr in result.answers)

    def test_cname_query_returns_cname_only(self, zone):
        result = lookup(zone, "alias.example.com", RecordType.CNAME)
        assert [rr.rdtype for rr in result.answers] == [RecordType.CNAME]

    def test_cname_leaving_zone_stops(self):
        z = Zone(Name.from_text("example.com"))
        z.add_soa()
        z.add(Name.from_text("out.example.com"), RecordType.CNAME,
              CNAME(Name.from_text("target.other.net")))
        result = z.lookup(Name.from_text("out.example.com"), RecordType.A)
        assert len(result.answers) == 1
        assert result.answers[0].rdtype == RecordType.CNAME

    def test_cname_conflict_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add(Name.from_text("www.example.com"), RecordType.CNAME,
                     CNAME(Name.from_text("other.example.com")))


class TestDelegation:
    def test_referral_for_delegated_name(self, zone):
        result = lookup(zone, "host.sub.example.com")
        assert result.is_referral
        assert any(rr.rdtype == RecordType.NS for rr in result.authority)

    def test_referral_includes_glue(self, zone):
        result = lookup(zone, "host.sub.example.com")
        glue = [rr for rr in result.additional if rr.rdtype == RecordType.A]
        assert glue and glue[0].rdata.address == "203.0.113.53"

    def test_ns_query_at_cut_not_referral(self, zone):
        result = lookup(zone, "sub.example.com", RecordType.NS)
        assert not result.is_referral
        assert result.answers

    def test_apex_not_treated_as_delegation(self):
        z = Zone(Name.from_text("example.com"))
        z.add_soa()
        z.add_text("@", "NS", "ns1")
        z.add_text("www", "A", "1.2.3.4")
        result = z.lookup(Name.from_text("www.example.com"), RecordType.A)
        assert not result.is_referral and result.answers


class TestWildcard:
    def test_wildcard_matches(self, zone):
        result = lookup(zone, "anything.wild.example.com")
        assert result.answers
        assert result.answers[0].name == \
            Name.from_text("anything.wild.example.com")

    def test_explicit_name_beats_wildcard(self, zone):
        zone.add_text("fixed.wild", "A", "203.0.113.50")
        result = lookup(zone, "fixed.wild.example.com")
        assert result.answers[0].rdata.address == "203.0.113.50"


class TestConstruction:
    def test_out_of_zone_add_rejected(self, zone):
        with pytest.raises(ZoneError):
            zone.add_text("www.other.com.", "A", "1.2.3.4")

    def test_add_text_relative_and_absolute(self):
        z = Zone(Name.from_text("x.org"))
        z.add_text("a", "A", "1.1.1.1")
        z.add_text("b.x.org.", "A", "2.2.2.2")
        assert z.get(Name.from_text("a.x.org"), RecordType.A)
        assert z.get(Name.from_text("b.x.org"), RecordType.A)

    def test_add_text_unsupported_type(self, zone):
        with pytest.raises(ZoneError):
            zone.add_text("m", "MX", "10 mail")

    def test_names_sorted(self, zone):
        names = zone.names()
        assert names == sorted(names)
