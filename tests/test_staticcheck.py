"""The invariant linter: rules RS001-RS005 and RS100, suppressions,
reporters, config, CLI wiring — and the meta-test that ``src/repro``
itself lints clean.

Fixture sources are linted under synthetic non-test paths (the default
config treats ``tests/`` and ``test_*.py`` as test code, which relaxes
RS001's hash()/clock checks and all of RS005).
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

import repro
from repro.cli import main as cli_main
from repro.staticcheck import (SCHEMA_VERSION, Config, lint_paths,
                               lint_source, load_config, render_json,
                               render_text, violations_to_dict)
from repro.staticcheck.__main__ import run as lint_cli_run
from repro.staticcheck.core import SYNTAX_ID, UNUSED_ID, all_rule_ids

REPO_ROOT = Path(__file__).resolve().parent.parent
SRC_PATH = "src/repro/example.py"


def ids_of(violations):
    return [v.rule_id for v in violations]


def lint(source: str, path: str = SRC_PATH, **kwargs):
    return lint_source(source, path, **kwargs)


# ---------------------------------------------------------------------------
# RS001 — determinism


class TestDeterminismRule:
    def test_module_level_random_call_flagged(self):
        src = "import random\nx = random.random()\n"
        violations = lint(src, rule_ids=["RS001"])
        assert ids_of(violations) == ["RS001"]
        assert violations[0].line == 2
        assert "process-global random stream" in violations[0].message

    def test_random_call_flagged_through_alias(self):
        src = "import random as rnd\n\ndef f():\n    return rnd.choice([1])\n"
        assert ids_of(lint(src, rule_ids=["RS001"])) == ["RS001"]

    def test_from_import_random_function_flagged(self):
        src = "from random import shuffle\nshuffle([])\n"
        assert ids_of(lint(src, rule_ids=["RS001"])) == ["RS001"]

    def test_seeded_random_instance_ok(self):
        src = ("import random\n\ndef f(seed):\n"
               "    rng = random.Random(seed)\n    return rng.random()\n")
        assert lint(src, rule_ids=["RS001"]) == []

    def test_wall_clock_flagged_outside_allowlist(self):
        src = "import time\nnow = time.time()\n"
        violations = lint(src, rule_ids=["RS001"])
        assert ids_of(violations) == ["RS001"]
        assert "wall-clock" in violations[0].message

    def test_wall_clock_allowed_in_clock_module_and_obs(self):
        src = "import time\nnow = time.time()\n"
        assert lint(src, path="src/repro/net/clock.py",
                    rule_ids=["RS001"]) == []
        assert lint(src, path="src/repro/obs/metrics.py",
                    rule_ids=["RS001"]) == []

    def test_datetime_now_and_uuid4_flagged(self):
        src = ("import datetime\nimport uuid\n"
               "a = datetime.datetime.now()\nb = uuid.uuid4()\n")
        assert ids_of(lint(src, rule_ids=["RS001"])) == ["RS001", "RS001"]

    def test_builtin_hash_flagged_outside_tests(self):
        src = "key = hash(('a', 1))\n"
        violations = lint(src, rule_ids=["RS001"])
        assert ids_of(violations) == ["RS001"]
        assert "PYTHONHASHSEED" in violations[0].message

    def test_hash_ok_in_test_paths(self):
        src = "key = hash(('a', 1))\n"
        assert lint(src, path="tests/test_x.py", rule_ids=["RS001"]) == []

    def test_set_iteration_flagged_sorted_ok(self):
        bad = "for x in {1, 2, 3}:\n    print(x)\n"
        good = "for x in sorted({1, 2, 3}):\n    print(x)\n"
        assert ids_of(lint(bad, rule_ids=["RS001"])) == ["RS001"]
        assert lint(good, rule_ids=["RS001"]) == []

    def test_set_comprehension_iteration_flagged(self):
        src = "vals = [x for x in set([3, 1])]\n"
        assert ids_of(lint(src, rule_ids=["RS001"])) == ["RS001"]


# ---------------------------------------------------------------------------
# RS002 — merge-completeness


MERGEABLE_COMPLETE = """\
from dataclasses import dataclass

@dataclass
class Partial:
    hits: int
    misses: int

    def merge(self, other):
        return Partial(hits=self.hits + other.hits,
                       misses=self.misses + other.misses)
"""

MERGEABLE_MISSING = """\
from dataclasses import dataclass

@dataclass
class Partial:
    hits: int
    misses: int
    peak: int

    def merge(self, other):
        return Partial(hits=self.hits + other.hits,
                       misses=self.misses + other.misses, peak=0)
"""


class TestMergeCompletenessRule:
    def test_complete_merge_clean(self):
        assert lint(MERGEABLE_COMPLETE, rule_ids=["RS002"]) == []

    def test_missing_field_flagged(self):
        src = MERGEABLE_MISSING.replace(", peak=0", "")
        violations = lint(src, rule_ids=["RS002"])
        assert ids_of(violations) == ["RS002"]
        assert "peak" in violations[0].message
        assert "Partial.merge" in violations[0].message

    def test_keyword_reference_counts(self):
        assert lint(MERGEABLE_MISSING, rule_ids=["RS002"]) == []

    def test_plain_class_init_fields(self):
        src = ("class Box:\n"
               "    def __init__(self):\n"
               "        self.a = 0\n        self.b = 0\n"
               "    def merge_from(self, other):\n"
               "        self.a += other.a\n")
        violations = lint(src, rule_ids=["RS002"])
        assert ids_of(violations) == ["RS002"]
        assert "b" in violations[0].message

    def test_class_without_merge_ignored(self):
        src = ("class Plain:\n"
               "    def __init__(self):\n        self.a = 0\n")
        assert lint(src, rule_ids=["RS002"]) == []

    def test_classvar_fields_exempt(self):
        src = ("from dataclasses import dataclass\n"
               "from typing import ClassVar\n\n"
               "@dataclass\nclass P:\n"
               "    kind: ClassVar[str] = 'p'\n    n: int = 0\n\n"
               "    def merge(self, other):\n"
               "        return P(n=self.n + other.n)\n")
        assert lint(src, rule_ids=["RS002"]) == []


# ---------------------------------------------------------------------------
# RS003 — obs-guard


OBS_PREFIX = "from repro.obs import metrics as _obs_metrics\n"
LIVE_PREFIX = "from repro.obs import live as _obs_live\n"


class TestObsGuardRule:
    def test_guard_idiom_clean(self):
        src = OBS_PREFIX + (
            "def f():\n"
            "    reg = _obs_metrics.ACTIVE\n"
            "    if reg is not None:\n"
            "        reg.counter('c').inc()\n")
        assert lint(src, rule_ids=["RS003"]) == []

    def test_unguarded_use_flagged(self):
        src = OBS_PREFIX + (
            "def f():\n"
            "    reg = _obs_metrics.ACTIVE\n"
            "    reg.counter('c').inc()\n")
        violations = lint(src, rule_ids=["RS003"])
        assert ids_of(violations) == ["RS003"]
        assert "'reg'" in violations[0].message

    def test_early_return_guard_clean(self):
        src = OBS_PREFIX + (
            "def f():\n"
            "    reg = _obs_metrics.ACTIVE\n"
            "    if reg is None:\n"
            "        return\n"
            "    reg.counter('c').inc()\n")
        assert lint(src, rule_ids=["RS003"]) == []

    def test_and_conjunct_guard_clean(self):
        src = OBS_PREFIX + (
            "def f(valid):\n"
            "    reg = _obs_metrics.ACTIVE\n"
            "    if valid and reg is not None:\n"
            "        reg.counter('c').inc()\n")
        assert lint(src, rule_ids=["RS003"]) == []

    def test_truthiness_guard_still_flagged(self):
        # An empty MetricsRegistry is falsy, so `if reg:` is NOT a guard;
        # both the truthiness test and the body use are reported.
        src = OBS_PREFIX + (
            "def f():\n"
            "    reg = _obs_metrics.ACTIVE\n"
            "    if reg:\n"
            "        reg.counter('c').inc()\n")
        assert ids_of(lint(src, rule_ids=["RS003"])) == ["RS003", "RS003"]

    def test_inline_slot_use_flagged(self):
        src = OBS_PREFIX + (
            "def f():\n"
            "    _obs_metrics.ACTIVE.counter('c').inc()\n")
        violations = lint(src, rule_ids=["RS003"])
        assert ids_of(violations) == ["RS003"]
        assert "inline" in violations[0].message

    def test_parameter_passing_out_of_scope(self):
        # A helper that *receives* an already-guarded collector is clean.
        src = OBS_PREFIX + (
            "def helper(reg):\n"
            "    reg.counter('c').inc()\n")
        assert lint(src, rule_ids=["RS003"]) == []

    def test_obs_and_test_modules_exempt(self):
        src = OBS_PREFIX + (
            "def f():\n"
            "    reg = _obs_metrics.ACTIVE\n"
            "    reg.counter('c').inc()\n")
        assert lint(src, path="src/repro/obs/helper.py",
                    rule_ids=["RS003"]) == []
        assert lint(src, path="tests/test_x.py", rule_ids=["RS003"]) == []

    def test_live_slot_guard_idiom_clean(self):
        src = LIVE_PREFIX + (
            "def f():\n"
            "    emitter = _obs_live.ACTIVE\n"
            "    if emitter is not None:\n"
            "        emitter.run_start('t', shards=4)\n")
        assert lint(src, rule_ids=["RS003"]) == []

    def test_live_slot_unguarded_use_flagged(self):
        src = LIVE_PREFIX + (
            "def f():\n"
            "    emitter = _obs_live.ACTIVE\n"
            "    emitter.run_start('t', shards=4)\n")
        violations = lint(src, rule_ids=["RS003"])
        assert ids_of(violations) == ["RS003"]
        assert "'emitter'" in violations[0].message

    def test_live_slot_inline_use_flagged(self):
        src = LIVE_PREFIX + (
            "def f():\n"
            "    _obs_live.ACTIVE.shard_start('t', 0)\n")
        violations = lint(src, rule_ids=["RS003"])
        assert ids_of(violations) == ["RS003"]
        assert "inline" in violations[0].message

    def test_live_slot_truthiness_guard_flagged(self):
        src = LIVE_PREFIX + (
            "def f():\n"
            "    emitter = _obs_live.ACTIVE\n"
            "    if emitter:\n"
            "        emitter.progress('t', 0, records=1)\n")
        assert ids_of(lint(src, rule_ids=["RS003"])) == ["RS003", "RS003"]


# ---------------------------------------------------------------------------
# RS004 — ECS conformance


class TestEcsConformanceRule:
    def test_valid_literals_clean(self):
        src = ("from repro.dnslib.edns import EcsOption\n"
               "a = EcsOption(1, 24, 0, '10.0.0.0')\n"
               "b = EcsOption(2, 56, 0, '2001:db8::')\n"
               "c = EcsOption(family=1, source_prefix_length=32,\n"
               "              scope_prefix_length=24, address='10.0.0.0')\n")
        assert lint(src, rule_ids=["RS004"]) == []

    def test_bad_family_flagged(self):
        src = ("from repro.dnslib.edns import EcsOption\n"
               "a = EcsOption(3, 24, 0, 'x')\n")
        violations = lint(src, rule_ids=["RS004"])
        assert ids_of(violations) == ["RS004"]
        assert "family 3" in violations[0].message

    def test_ipv4_prefix_over_32_flagged(self):
        src = ("from repro.dnslib.edns import EcsOption\n"
               "a = EcsOption(1, 33, 0, '10.0.0.0')\n")
        violations = lint(src, rule_ids=["RS004"])
        assert ids_of(violations) == ["RS004"]
        assert "0..32" in violations[0].message

    def test_ipv6_prefix_over_128_flagged(self):
        src = ("from repro.dnslib.edns import EcsOption\n"
               "a = EcsOption(2, 129, 0, '2001:db8::')\n")
        assert ids_of(lint(src, rule_ids=["RS004"])) == ["RS004"]

    def test_negative_prefix_flagged(self):
        src = ("from repro.dnslib.edns import EcsOption\n"
               "a = EcsOption(1, -1, 0, '10.0.0.0')\n")
        assert ids_of(lint(src, rule_ids=["RS004"])) == ["RS004"]

    def test_from_client_address_family_inference(self):
        bad = ("from repro.dnslib.edns import EcsOption\n"
               "a = EcsOption.from_client_address('10.1.2.3', 48)\n")
        good = ("from repro.dnslib.edns import EcsOption\n"
                "a = EcsOption.from_client_address('2001:db8::1', 48)\n")
        assert ids_of(lint(bad, rule_ids=["RS004"])) == ["RS004"]
        assert lint(good, rule_ids=["RS004"]) == []

    def test_response_to_bounds(self):
        bad = "scoped = opt.response_to(140)\n"
        good = "scoped = opt.response_to(24)\n"
        assert ids_of(lint(bad, rule_ids=["RS004"])) == ["RS004"]
        assert lint(good, rule_ids=["RS004"]) == []

    def test_runtime_values_not_judged(self):
        src = ("from repro.dnslib.edns import EcsOption\n"
               "def f(fam, plen):\n"
               "    return EcsOption(fam, plen, 0, 'x')\n")
        assert lint(src, rule_ids=["RS004"]) == []


# ---------------------------------------------------------------------------
# RS005 — seeded-RNG plumbing


class TestSeededRngRule:
    def test_unseeded_random_flagged(self):
        src = "import random\n\ndef f():\n    return random.Random()\n"
        violations = lint(src, rule_ids=["RS005"])
        assert ids_of(violations) == ["RS005"]
        assert "no seed" in violations[0].message

    def test_constant_seed_flagged(self):
        src = "import random\n\ndef f():\n    return random.Random(42)\n"
        violations = lint(src, rule_ids=["RS005"])
        assert ids_of(violations) == ["RS005"]
        assert "42" in violations[0].message

    def test_system_random_flagged(self):
        src = "import random\nr = random.SystemRandom()\n"
        violations = lint(src, rule_ids=["RS005"])
        assert ids_of(violations) == ["RS005"]
        assert "SystemRandom" in violations[0].message

    def test_parameter_seed_ok(self):
        src = ("import random\n\ndef f(seed):\n"
               "    return random.Random(seed)\n")
        assert lint(src, rule_ids=["RS005"]) == []

    def test_derived_seed_ok(self):
        src = ("import random\nfrom repro.engine.seeding import derive_seed\n"
               "def f(root, i):\n"
               "    return random.Random(derive_seed(root, i))\n")
        assert lint(src, rule_ids=["RS005"]) == []

    def test_tests_exempt(self):
        src = "import random\nr = random.Random(0)\n"
        assert lint(src, path="tests/test_x.py", rule_ids=["RS005"]) == []

    def test_reseeding_in_place_flagged(self):
        src = ("def f(rng, n):\n"
               "    rng.seed(n)\n"
               "    return rng.random()\n")
        violations = lint(src, rule_ids=["RS005"])
        assert ids_of(violations) == ["RS005"]
        assert "reseeding" in violations[0].message

    def test_module_level_reseed_not_double_reported(self):
        # random.seed() is RS001's ambient-stream violation; RS005 must
        # not pile a second finding on the same call.
        src = "import random\nrandom.seed(3)\n"
        assert lint(src, rule_ids=["RS005"]) == []
        assert ids_of(lint(src, rule_ids=["RS001"])) == ["RS001"]

    def test_reseeding_exempt_in_tests(self):
        src = "def f(rng):\n    rng.seed(1)\n"
        assert lint(src, path="tests/test_x.py", rule_ids=["RS005"]) == []

    def test_seed_attribute_access_ok(self):
        # Reading/storing a .seed attribute is plumbing, not reseeding.
        src = ("class Builder:\n"
               "    def __init__(self, seed):\n"
               "        self.seed = seed\n"
               "    def derived(self):\n"
               "        return self.seed + 1\n")
        assert lint(src, rule_ids=["RS005"]) == []


# ---------------------------------------------------------------------------
# RS100 — Prometheus exposition (file rule)


VALID_PROM = (
    "# HELP requests_total Total requests.\n"
    "# TYPE requests_total counter\n"
    'requests_total{method="get"} 4\n'
)

INVALID_PROM = "orphan_metric 12\n"


class TestPromRule:
    def test_valid_file_clean(self, tmp_path):
        path = tmp_path / "ok.prom"
        path.write_text(VALID_PROM)
        violations, files = lint_paths([path])
        assert violations == [] and files == 1

    def test_invalid_file_flagged_with_line(self, tmp_path):
        path = tmp_path / "bad.prom"
        path.write_text(INVALID_PROM)
        violations, _ = lint_paths([path])
        assert ids_of(violations) == ["RS100"]
        assert violations[0].line == 1
        assert "TYPE" in violations[0].message

    def test_directory_walk_skips_prom_files(self, tmp_path):
        (tmp_path / "bad.prom").write_text(INVALID_PROM)
        (tmp_path / "mod.py").write_text("x = 1\n")
        violations, files = lint_paths([tmp_path])
        assert violations == [] and files == 1

    def test_scrape_suffix_covered(self, tmp_path):
        # Bodies saved from the live /metrics endpoint lint as .scrape.
        good = tmp_path / "mid-run.scrape"
        good.write_text(VALID_PROM)
        violations, files = lint_paths([good])
        assert violations == [] and files == 1
        bad = tmp_path / "broken.scrape"
        bad.write_text(INVALID_PROM)
        violations, _ = lint_paths([bad])
        assert ids_of(violations) == ["RS100"]

    def test_concatenated_scrapes_rejected(self, tmp_path):
        # Two scrape bodies glued together redeclare every # TYPE —
        # the strict parser calls that out instead of merging them.
        path = tmp_path / "double.scrape"
        path.write_text(VALID_PROM + VALID_PROM)
        violations, _ = lint_paths([path])
        assert ids_of(violations) == ["RS100"]
        assert "duplicate # TYPE" in violations[0].message


# ---------------------------------------------------------------------------
# suppressions


class TestSuppressions:
    def test_line_suppression_silences(self):
        src = "import random\nx = random.random()  # repro-lint: disable=RS001\n"
        assert lint(src, rule_ids=["RS001"]) == []

    def test_file_suppression_silences_all_matching(self):
        src = ("# repro-lint: disable-file=RS001\n"
               "import random\nx = random.random()\ny = random.random()\n")
        assert lint(src, rule_ids=["RS001"]) == []

    def test_suppression_is_rule_specific(self):
        src = "import random\nx = random.random()  # repro-lint: disable=RS002\n"
        got = lint(src, rule_ids=["RS001", "RS002"])
        # RS001 still fires and the RS002 suppression is reported unused.
        assert sorted(ids_of(got)) == [UNUSED_ID, "RS001"]

    def test_unused_suppression_reported(self):
        src = "x = 1  # repro-lint: disable=RS001\n"
        violations = lint(src)
        assert ids_of(violations) == [UNUSED_ID]
        assert violations[0].line == 1
        assert "RS001" in violations[0].message

    def test_unused_not_reported_for_deselected_rule(self):
        src = "x = 1  # repro-lint: disable=RS001\n"
        assert lint(src, rule_ids=["RS002"]) == []

    def test_unknown_rule_suppression_always_reported(self):
        src = "x = 1  # repro-lint: disable=RS0042\n"
        violations = lint(src, rule_ids=["RS002"])
        assert ids_of(violations) == [UNUSED_ID]

    def test_suppression_inside_string_ignored(self):
        src = 'msg = "# repro-lint: disable=RS001"\n'
        assert lint(src) == []

    def test_multiple_ids_one_comment(self):
        src = ("import random\n"
               "x = random.Random()  # repro-lint: disable=RS005, RS001\n")
        got = lint(src, rule_ids=["RS001", "RS005"])
        # RS005 fires and is suppressed; the RS001 half is unused.
        assert ids_of(got) == [UNUSED_ID]

    def test_line_beats_file_suppression_for_same_rule(self):
        # Precedence is line-first: with both forms present for one
        # rule, the line suppression absorbs the violation and the
        # file-level one is reported unused — the narrower form wins,
        # so a stale blanket waiver cannot hide behind a precise one.
        src = ("# repro-lint: disable-file=RS001\n"
               "import random\n"
               "x = random.random()  # repro-lint: disable=RS001\n")
        got = lint(src, rule_ids=["RS001"])
        assert ids_of(got) == [UNUSED_ID]
        assert got[0].line == 1  # the file-level comment is the unused one

    def test_file_suppression_covers_lines_without_their_own(self):
        # The blanket form is not unused when any line actually needs it.
        src = ("# repro-lint: disable-file=RS001\n"
               "import random\n"
               "x = random.random()\n"
               "y = random.random()  # repro-lint: disable=RS001\n")
        assert lint(src, rule_ids=["RS001"]) == []


# ---------------------------------------------------------------------------
# syntax errors


def test_syntax_error_reported_as_rs999():
    violations = lint("def broken(:\n")
    assert ids_of(violations) == [SYNTAX_ID]
    assert violations[0].line == 1


# ---------------------------------------------------------------------------
# reporters


class TestReporters:
    def test_text_report_lines(self):
        src = "import random\nx = random.random()\n"
        violations = lint(src, rule_ids=["RS001"])
        text = render_text(violations, files_checked=1)
        first, summary = text.splitlines()
        assert first.startswith(f"{SRC_PATH}:2:")
        assert "RS001" in first and "[determinism]" in first
        assert summary == "1 violation in 1 file"
        assert render_text([], 3).startswith("clean: 0 violations in 3 files")

    def test_json_schema_stable(self):
        src = "import random\nx = random.random()\n"
        violations = lint(src, rule_ids=["RS001"])
        doc = json.loads(render_json(violations, files_checked=1))
        assert doc["schema_version"] == SCHEMA_VERSION
        assert doc["files_checked"] == 1
        assert doc["violation_count"] == 1
        assert doc["counts_by_rule"] == {"RS001": 1}
        entry = doc["violations"][0]
        assert sorted(entry) == ["col", "line", "message", "path",
                                 "rule_id", "rule_name"]
        assert entry["path"] == SRC_PATH and entry["line"] == 2
        assert entry["rule_id"] == "RS001"
        assert entry["rule_name"] == "determinism"

    def test_violations_sorted_deterministically(self):
        src = ("import random\nimport time\n"
               "b = time.time()\na = random.random()\n")
        violations = lint(src, rule_ids=["RS001"])
        assert [v.line for v in violations] == [3, 4]
        assert violations_to_dict(violations, 1)["violation_count"] == 2


# ---------------------------------------------------------------------------
# config


class TestConfig:
    def test_pyproject_section_loaded(self):
        config = load_config(start=REPO_ROOT)
        assert config.source is not None
        assert "net/clock.py" in config.determinism_allow
        assert "obs/" in config.determinism_allow

    def test_exclude_fragments(self, tmp_path):
        (tmp_path / "keep.py").write_text("import random\nrandom.random()\n")
        (tmp_path / "skip.py").write_text("import random\nrandom.random()\n")
        config = Config(exclude=("skip.py",))
        violations, files = lint_paths([tmp_path], config,
                                       rule_ids=["RS001"])
        assert files == 1
        assert all("keep" in v.path for v in violations)

    def test_unknown_config_key_rejected(self):
        from repro.staticcheck.config import config_from_mapping
        with pytest.raises(ValueError, match="unknown"):
            config_from_mapping({"selct": ["RS001"]})

    def test_rule_catalogue(self):
        assert all_rule_ids() == ["RS001", "RS002", "RS003", "RS004",
                                  "RS005", "RS100", "RS201", "RS202",
                                  "RS203", "RS204"]


# ---------------------------------------------------------------------------
# the meta-test: the reproduction's own source lints clean


def test_self_lint_src_repro_is_clean():
    config = load_config(start=REPO_ROOT)
    violations, files = lint_paths([REPO_ROOT / "src" / "repro"], config)
    assert files > 50
    assert violations == [], "\n" + render_text(violations, files)


# ---------------------------------------------------------------------------
# CLI wiring


class TestCli:
    def test_module_entry_exit_codes(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert lint_cli_run([str(bad)]) == 1
        out = capsys.readouterr().out
        assert "RS001" in out and f"{bad}:2:" in out

        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert lint_cli_run([str(good)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_module_entry_usage_errors(self, tmp_path, capsys):
        assert lint_cli_run(["--select", "RS777", str(tmp_path)]) == 2
        assert "unknown rule" in capsys.readouterr().err
        assert lint_cli_run([str(tmp_path / "nope.py")]) == 2
        assert "no such path" in capsys.readouterr().err

    def test_select_and_ignore(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert lint_cli_run(["--select", "RS002", str(bad)]) == 0
        capsys.readouterr()
        assert lint_cli_run(["--ignore", "RS001", str(bad)]) == 0

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert lint_cli_run(["--format", "json", str(bad)]) == 1
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema_version"] == SCHEMA_VERSION

    def test_repro_cli_lint_subcommand(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\nx = random.random()\n")
        assert cli_main(["lint", str(bad)]) == 1
        assert "RS001" in capsys.readouterr().out
        good = tmp_path / "good.py"
        good.write_text("x = 1\n")
        assert cli_main(["lint", str(good)]) == 0

    def test_prom_flag(self, tmp_path, capsys):
        prom = tmp_path / "m.prom"
        prom.write_text(VALID_PROM)
        assert cli_main(["lint", "--prom", str(prom)]) == 0
        capsys.readouterr()
        prom.write_text(INVALID_PROM)
        assert cli_main(["lint", "--prom", str(prom)]) == 1
        assert "RS100" in capsys.readouterr().out


# ---------------------------------------------------------------------------
# the tools/ shims


class TestToolShims:
    def run_tool(self, script, *args):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src")
        return subprocess.run(
            [sys.executable, str(REPO_ROOT / "tools" / script), *args],
            capture_output=True, text=True, env=env, cwd=REPO_ROOT)

    def test_lint_prometheus_shim_ok(self, tmp_path):
        prom = tmp_path / "m.prom"
        prom.write_text(VALID_PROM)
        proc = self.run_tool("lint_prometheus.py", str(prom))
        assert proc.returncode == 0
        assert proc.stdout.startswith("ok   ")
        assert "1 metric families, 1 samples" in proc.stdout

    def test_lint_prometheus_shim_failure(self, tmp_path):
        prom = tmp_path / "m.prom"
        prom.write_text(INVALID_PROM)
        proc = self.run_tool("lint_prometheus.py", str(prom))
        assert proc.returncode == 1
        assert proc.stdout.startswith("FAIL ")

    def test_lint_prometheus_shim_usage(self):
        assert self.run_tool("lint_prometheus.py").returncode == 2

    def test_run_mypy_wrapper_never_crashes(self):
        # With mypy absent this exercises the graceful-skip path; with
        # mypy present it must pass the strict profile.
        proc = self.run_tool("run_mypy.py", "--strict-only")
        assert proc.returncode == 0, proc.stdout + proc.stderr


# ---------------------------------------------------------------------------
# mypy strict profile (runs only where mypy is installed, e.g. CI)


def test_mypy_strict_profile_passes():
    pytest.importorskip("mypy")
    proc = subprocess.run(
        [sys.executable, "-m", "mypy", "-p", "repro.obs", "-p",
         "repro.engine", "-p", "repro.staticcheck"],
        capture_output=True, text=True, cwd=REPO_ROOT)
    assert proc.returncode == 0, proc.stdout + proc.stderr
