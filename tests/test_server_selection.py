"""Tests for RTT-based nameserver selection in the recursive resolver."""

import pytest

from repro.auth import AuthoritativeServer
from repro.dnslib import Name, Zone
from repro.measure import StubClient
from repro.net import Network, Topology, city
from repro.resolvers import RecursiveResolver
from repro.auth.hierarchy import DnsHierarchy


@pytest.fixture()
def dual_ns_world():
    """example.net served by two nameservers: one near, one far."""
    topology = Topology()
    net = Network(topology)
    infra = topology.create_as("infra", "US")
    hierarchy = DnsHierarchy(net, infra)

    zone = Zone(Name.from_text("example.net"))
    zone.add_soa()
    zone.add_text("www", "A", "203.0.113.1")
    near_ip = infra.host_in(city("Cleveland"))
    far_ip = infra.host_in(city("Sydney"))
    for ip in (near_ip, far_ip):
        net.attach(AuthoritativeServer(ip, [zone]))
    # Delegate with the FAR server listed first.
    hierarchy.delegate(Name.from_text("example.net"), [far_ip, near_ip])

    isp = topology.create_as("isp", "US")
    resolver_ip = isp.host_in(city("Cleveland"))
    resolver = RecursiveResolver(resolver_ip, topology.clock,
                                 hierarchy.root_ips)
    net.attach(resolver)
    client = StubClient(isp.host_in(city("Cleveland")), net)
    return net, resolver, client, near_ip, far_ip


class TestServerSelection:
    def _exercise(self, net, resolver, client, rounds=6):
        for i in range(rounds):
            client.query(resolver.ip, f"www.example.net")
            net.clock.advance(301)  # expire the answer, keep delegations

    def test_rtts_learned_for_both_servers(self, dual_ns_world):
        net, resolver, client, near_ip, far_ip = dual_ns_world
        self._exercise(net, resolver, client, rounds=3)
        assert near_ip in resolver._srtt and far_ip in resolver._srtt
        assert resolver._srtt[near_ip] < resolver._srtt[far_ip]

    def test_prefers_near_server_after_learning(self, dual_ns_world):
        net, resolver, client, near_ip, far_ip = dual_ns_world
        self._exercise(net, resolver, client, rounds=4)
        near_before = net.stats.per_destination.get(near_ip, 0)
        far_before = net.stats.per_destination.get(far_ip, 0)
        self._exercise(net, resolver, client, rounds=5)
        near_delta = net.stats.per_destination[near_ip] - near_before
        far_delta = net.stats.per_destination.get(far_ip, 0) - far_before
        assert near_delta >= 5
        assert far_delta == 0

    def test_unresponsive_server_demoted(self, dual_ns_world):
        net, resolver, client, near_ip, far_ip = dual_ns_world
        # Make the near server unresponsive before anything is learned.
        net.set_loss(near_ip, 1.0)
        self._exercise(net, resolver, client, rounds=2)
        assert resolver._srtt.get(near_ip, 0) >= net.TIMEOUT_MS * 0.5
        # Resolution still succeeded via the far server.
        result = client.query(resolver.ip, "www.example.net")
        assert result.addresses == ["203.0.113.1"]

    def test_ordering_explores_unknown_first(self, dual_ns_world):
        net, resolver, client, near_ip, far_ip = dual_ns_world
        resolver._srtt["1.1.1.1"] = 50.0
        ordered = resolver._order_nameservers(["1.1.1.1", "9.9.9.9"])
        assert ordered[0] == "9.9.9.9"
