"""Tests for the simulated internet: clock, addressing, geo, topology,
latency, and the wire-level transport."""

import ipaddress
import random

import pytest

from repro.dnslib import Message, Name, RecordType
from repro.net import (AddressAllocator, LatencyModel, Network, SimClock,
                       Topology, city, haversine_km, is_routable, prefix_key,
                       prefix_text, same_prefix, truncate_address)
from repro.net.addr import host_in, random_address_in
from repro.net.geo import GeoDatabase, GeoPoint, WORLD_CITIES, cities_in


class TestClock:
    def test_starts_at_zero(self):
        assert SimClock().now() == 0.0

    def test_advance(self):
        clock = SimClock()
        clock.advance(1.5)
        clock.advance(0.5)
        assert clock.now() == 2.0

    def test_negative_advance_rejected(self):
        with pytest.raises(ValueError):
            SimClock().advance(-1)

    def test_advance_to_forward_only(self):
        clock = SimClock(10)
        clock.advance_to(5)
        assert clock.now() == 10
        clock.advance_to(20)
        assert clock.now() == 20


class TestAddr:
    def test_truncate_24(self):
        assert str(truncate_address("192.0.2.77", 24)) == "192.0.2.0"

    def test_truncate_0(self):
        assert str(truncate_address("192.0.2.77", 0)) == "0.0.0.0"

    def test_truncate_v6(self):
        assert str(truncate_address("2001:db8:abcd::1", 32)) == "2001:db8::"

    def test_truncate_odd_bits(self):
        assert str(truncate_address("10.0.0.255", 25)) == "10.0.0.128"

    def test_truncate_out_of_range(self):
        with pytest.raises(ValueError):
            truncate_address("1.2.3.4", 33)

    def test_prefix_key_groups(self):
        assert prefix_key("10.1.2.3", 24) == prefix_key("10.1.2.200", 24)
        assert prefix_key("10.1.2.3", 24) != prefix_key("10.1.3.3", 24)

    def test_prefix_key_family_disjoint(self):
        assert prefix_key("10.0.0.0", 24) != prefix_key("::a00:0", 24)

    def test_prefix_text(self):
        assert prefix_text("10.1.2.3", 16) == "10.1.0.0/16"

    def test_same_prefix(self):
        assert same_prefix("10.1.2.3", "10.1.2.99", 24)
        assert not same_prefix("10.1.2.3", "10.1.3.3", 24)
        assert not same_prefix("10.1.2.3", "2001:db8::1", 24)

    def test_is_routable(self):
        assert is_routable("93.184.216.34")
        for bad in ("127.0.0.1", "10.0.0.1", "169.254.1.1", "0.0.0.0",
                    "224.0.0.1"):
            assert not is_routable(bad)

    def test_host_in(self):
        assert str(host_in("10.0.0.0/24", 5)) == "10.0.0.5"

    def test_host_in_out_of_range(self):
        with pytest.raises(ValueError):
            host_in("10.0.0.0/30", 10)

    def test_random_address_in_bounds(self):
        rng = random.Random(1)
        net = ipaddress.ip_network("203.0.113.0/24")
        for _ in range(50):
            assert random_address_in(net, rng) in net


class TestAllocator:
    def test_sequential_disjoint(self):
        alloc = AddressAllocator("10.0.0.0/8")
        nets = [alloc.subnet(16) for _ in range(4)]
        for i, a in enumerate(nets):
            for b in nets[i + 1:]:
                assert not a.overlaps(b)

    def test_alignment_after_smaller_alloc(self):
        alloc = AddressAllocator("10.0.0.0/8")
        alloc.subnet(24)
        big = alloc.subnet(16)
        assert str(big) == "10.1.0.0/16"

    def test_exhaustion(self):
        alloc = AddressAllocator("10.0.0.0/30")
        alloc.subnet(30)
        with pytest.raises(ValueError):
            alloc.subnet(30)

    def test_larger_than_supernet_rejected(self):
        with pytest.raises(ValueError):
            AddressAllocator("10.0.0.0/16").subnet(8)


class TestGeo:
    def test_haversine_known_distance(self):
        # Cleveland to Chicago is roughly 500 km.
        d = city("Cleveland").distance_km(city("Chicago"))
        assert 400 < d < 550

    def test_haversine_zero(self):
        assert haversine_km(10, 20, 10, 20) == 0

    def test_haversine_antipodal_bounded(self):
        assert haversine_km(0, 0, 0, 180) < 20040

    def test_city_lookup(self):
        assert city("Tokyo").country == "JP"

    def test_unknown_city_raises(self):
        with pytest.raises(KeyError):
            city("Atlantis")

    def test_cities_in(self):
        assert all(c.country == "CN" for c in cities_in("CN"))
        assert len(cities_in("CN")) >= 3

    def test_geodb_longest_prefix_wins(self):
        db = GeoDatabase()
        db.add("10.0.0.0/8", city("London"))
        db.add("10.1.2.0/24", city("Tokyo"))
        assert db.locate("10.1.2.3").name == "Tokyo"
        assert db.locate("10.9.9.9").name == "London"

    def test_geodb_miss(self):
        assert GeoDatabase().locate("8.8.8.8") is None

    def test_geodb_distance(self):
        db = GeoDatabase()
        db.add("10.0.0.0/24", city("Cleveland"))
        db.add("10.0.1.0/24", city("Chicago"))
        assert 400 < db.distance_km("10.0.0.5", "10.0.1.5") < 550

    def test_geodb_v6(self):
        db = GeoDatabase()
        db.add("2600::/32", city("Paris"))
        assert db.locate("2600::1").name == "Paris"


class TestLatency:
    def test_monotone_in_distance(self):
        model = LatencyModel(jitter_fraction=0)
        assert model.rtt_ms(100) < model.rtt_ms(5000)

    def test_base_at_zero_distance(self):
        model = LatencyModel(jitter_fraction=0)
        assert model.rtt_ms(0) == model.base_ms

    def test_jitter_bounded(self):
        model = LatencyModel(jitter_fraction=0.05)
        rng = random.Random(3)
        base = LatencyModel(jitter_fraction=0).rtt_ms(1000)
        for _ in range(100):
            assert abs(model.rtt_ms(1000, rng) - base) <= base * 0.05 + 1e-9

    def test_negative_distance_rejected(self):
        with pytest.raises(ValueError):
            LatencyModel().rtt_ms(-1)

    def test_transatlantic_regime(self):
        # London-New York (~5 500 km) should be on the order of 100 ms.
        model = LatencyModel(jitter_fraction=0)
        rtt = model.rtt_between(city("London").point, city("New York").point)
        assert 60 < rtt < 200


class TestTopology:
    def test_as_hosts_geolocated(self):
        topo = Topology()
        as_ = topo.create_as("test", "US")
        ip = as_.host_in(city("Seattle"))
        assert topo.city_of(ip).name == "Seattle"
        assert topo.as_of(ip) is as_

    def test_hosts_unique(self):
        topo = Topology()
        as_ = topo.create_as("test", "US")
        ips = {as_.host_in(city("Seattle")) for _ in range(300)}
        assert len(ips) == 300

    def test_new_subnet_hosts_differ_at_24(self):
        topo = Topology()
        as_ = topo.create_as("test", "US")
        a = as_.host_in_new_subnet(city("Miami"))
        b = as_.host_in_new_subnet(city("Miami"))
        assert same_prefix(a, b, 16)
        assert not same_prefix(a, b, 24)

    def test_v6_hosts(self):
        topo = Topology()
        as_ = topo.create_as("test6", "US")
        ip = as_.host6_in(city("Denver"))
        assert ":" in ip
        assert topo.city_of(ip).name == "Denver"

    def test_distance_km(self):
        topo = Topology()
        as_ = topo.create_as("t", "US")
        a = as_.host_in(city("Cleveland"))
        b = as_.host_in(city("Chicago"))
        assert 400 < topo.distance_km(a, b) < 550

    def test_duplicate_asn_rejected(self):
        topo = Topology()
        topo.create_as("a", "US", asn=100)
        with pytest.raises(ValueError):
            topo.create_as("b", "US", asn=100)

    def test_rtt_uses_default_for_unknown(self):
        topo = Topology()
        assert topo.rtt_ms("1.1.1.1", "2.2.2.2") > 0


class _Echo:
    """Endpoint answering every query with an empty NOERROR response."""

    def __init__(self, ip):
        self.ip = ip
        self.seen = 0

    def handle_datagram(self, wire, src_ip, net, tcp=False):
        from repro.dnslib import decode_message, encode_message
        self.seen += 1
        return encode_message(decode_message(wire).make_response())


class TestTransport:
    def _net(self):
        topo = Topology()
        net = Network(topo)
        as_ = topo.create_as("t", "US")
        a = as_.host_in(city("Cleveland"))
        b = as_.host_in(city("Tokyo"))
        return net, a, b

    def test_query_roundtrip(self):
        net, a, b = self._net()
        echo = _Echo(b)
        net.attach(echo)
        out = net.query(a, b, Message.make_query(Name.from_text("x."),
                                                 RecordType.A))
        assert out.response is not None and out.response.is_response
        assert echo.seen == 1

    def test_elapsed_reflects_distance(self):
        net, a, b = self._net()
        net.attach(_Echo(b))
        out = net.query(a, b, Message.make_query(Name.from_text("x."),
                                                 RecordType.A))
        # Cleveland-Tokyo is ~10 000 km; RTT should exceed 100 ms.
        assert out.elapsed_ms > 100

    def test_clock_advances(self):
        net, a, b = self._net()
        net.attach(_Echo(b))
        before = net.clock.now()
        net.query(a, b, Message.make_query(Name.from_text("x."), RecordType.A))
        assert net.clock.now() > before

    def test_unknown_destination_times_out(self):
        net, a, b = self._net()
        out = net.query(a, "9.9.9.9", Message.make_query(
            Name.from_text("x."), RecordType.A))
        assert out.timed_out and out.response is None
        assert net.stats.timeouts == 1

    def test_loss_injection(self):
        net, a, b = self._net()
        net.attach(_Echo(b))
        net.set_loss(b, 1.0)
        out = net.query(a, b, Message.make_query(Name.from_text("x."),
                                                 RecordType.A))
        assert out.timed_out
        assert net.stats.drops == 1

    def test_filter_injection(self):
        net, a, b = self._net()
        net.attach(_Echo(b))
        net.add_filter(lambda src, dst, wire: dst == b)
        out = net.query(a, b, Message.make_query(Name.from_text("x."),
                                                 RecordType.A))
        assert out.timed_out

    def test_stats_counting(self):
        net, a, b = self._net()
        net.attach(_Echo(b))
        for _ in range(3):
            net.query(a, b, Message.make_query(Name.from_text("x."),
                                               RecordType.A))
        assert net.stats.datagrams == 3
        assert net.stats.per_destination[b] == 3
        assert net.stats.bytes_sent > 0

    def test_ping_average_positive(self):
        net, a, b = self._net()
        assert net.ping_ms(a, b, count=8) > 100

    def test_ping_zero_count_rejected(self):
        net, a, b = self._net()
        with pytest.raises(ValueError):
            net.ping_ms(a, b, count=0)

    def test_tcp_handshake_scales_with_distance(self):
        net, a, b = self._net()
        topo_as = net.topology.create_as("near", "US")
        near = topo_as.host_in(city("Cleveland"))
        assert net.tcp_handshake_ms(a, near) < net.tcp_handshake_ms(a, b)

    def test_detach(self):
        net, a, b = self._net()
        net.attach(_Echo(b))
        net.detach(b)
        assert net.endpoint_at(b) is None
