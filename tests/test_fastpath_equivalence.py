"""Equivalence layer: every fast lane pinned to its readable reference.

The perf work (integer-native prefix arithmetic, codec caching, batched
replay) is only admissible because each fast path produces byte-identical
output to the reference implementation it shadows.  This suite asserts
that agreement with hypothesis over random IPv4/IPv6 inputs plus the edge
prefix lengths (0, 32, 128), and over random names/options for the codec
caches.
"""

from __future__ import annotations

import ipaddress

import pytest
from hypothesis import given, settings, strategies as st

from repro.analysis.cache_sim import (public_cdn_blowups, replay_partial,
                                      replay_partial_batched)
from repro.core.cache import ScopeTracker
from repro.datasets.allnames import AllNamesBuilder
from repro.datasets.public_cdn import PublicCdnBuilder
from repro.dnslib import (EcsOption, EdnsInfo, Message, Name, Question,
                          RecordType, decode_message, encode_message,
                          encode_options)
from repro.dnslib.edns import clear_options_cache
from repro.dnslib.wire import clear_codec_caches
from repro.net.addr import (MASKS4, MASKS6, parse_addr, prefix_key,
                            prefix_key_int, truncate_address, truncate_int)

# -- strategies --------------------------------------------------------------

v4_ints = st.integers(min_value=0, max_value=2**32 - 1)
v6_ints = st.integers(min_value=0, max_value=2**128 - 1)
v4_bits = st.integers(min_value=0, max_value=32)
v6_bits = st.integers(min_value=0, max_value=128)

labels = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                 min_size=1, max_size=12).filter(
    lambda s: not s.startswith("-") and not s.endswith("-"))
names = st.lists(labels, min_size=1, max_size=5).map(
    lambda parts: Name.from_text(".".join(parts)))


# -- integer-native prefix arithmetic ---------------------------------------


class TestPrefixFastLane:
    @given(v4_ints, v4_bits)
    def test_truncate_int_v4(self, value, bits):
        addr = ipaddress.IPv4Address(value)
        assert truncate_int(4, value, bits) == int(truncate_address(addr, bits))

    @given(v6_ints, v6_bits)
    def test_truncate_int_v6(self, value, bits):
        addr = ipaddress.IPv6Address(value)
        assert truncate_int(6, value, bits) == int(truncate_address(addr, bits))

    @given(v4_ints, v4_bits)
    def test_prefix_key_int_v4(self, value, bits):
        text = str(ipaddress.IPv4Address(value))
        assert prefix_key_int(*parse_addr(text), bits) == prefix_key(text, bits)

    @given(v6_ints, v6_bits)
    def test_prefix_key_int_v6(self, value, bits):
        text = str(ipaddress.IPv6Address(value))
        assert prefix_key_int(*parse_addr(text), bits) == prefix_key(text, bits)

    @pytest.mark.parametrize("address,bits", [
        ("0.0.0.0", 0), ("255.255.255.255", 0),
        ("0.0.0.0", 32), ("255.255.255.255", 32),
        ("::", 0), ("::", 128),
        ("ffff:ffff:ffff:ffff:ffff:ffff:ffff:ffff", 128),
        ("2610:1:2::9", 48), ("192.0.2.77", 24),
    ])
    def test_edge_bits(self, address, bits):
        assert prefix_key_int(*parse_addr(address), bits) == \
            prefix_key(address, bits)

    @given(v4_ints)
    def test_parse_addr_roundtrip(self, value):
        text = str(ipaddress.IPv4Address(value))
        assert parse_addr(text) == (4, value)
        assert parse_addr(ipaddress.IPv4Address(value)) == (4, value)

    def test_mask_tables(self):
        assert len(MASKS4) == 33 and len(MASKS6) == 129
        assert MASKS4[0] == 0 and MASKS4[32] == 2**32 - 1
        assert MASKS6[0] == 0 and MASKS6[128] == 2**128 - 1
        assert MASKS4[24] == 0xFFFFFF00

    def test_out_of_range_bits_raise(self):
        with pytest.raises(ValueError):
            truncate_int(4, 0, 33)
        with pytest.raises(ValueError):
            truncate_int(6, 0, 129)
        with pytest.raises(ValueError):
            truncate_int(5, 0, 8)   # unknown family
        with pytest.raises(ValueError):
            prefix_key_int(4, 0, -1)


# -- scope-tracker keying ----------------------------------------------------


class TestTrackerKeying:
    @given(v4_ints, st.integers(min_value=1, max_value=32))
    def test_fast_and_reference_keys_agree(self, value, scope):
        client = str(ipaddress.IPv4Address(value))
        fast = ScopeTracker(fast=True)
        ref = ScopeTracker(fast=False)
        assert fast._key("q.example.", 1, client, scope) == \
            ref._key("q.example.", 1, client, scope)

    def test_global_keys_unchanged(self):
        tracker = ScopeTracker(fast=True)
        assert tracker._key("q.", 1, None, 24) == ("q.", 1)
        assert tracker._key("q.", 1, "192.0.2.1", 0) == ("q.", 1)


# -- codec caches ------------------------------------------------------------


class TestCodecCaches:
    @given(names, st.integers(min_value=0, max_value=0xFFFF))
    @settings(max_examples=60)
    def test_qname_cache_identical_bytes(self, name, msg_id):
        msg = Message(msg_id=msg_id)
        msg.question = Question(name, RecordType.A)
        clear_codec_caches()
        cold = encode_message(msg)
        warm = encode_message(msg)       # second encode hits the cache
        assert warm == cold
        assert decode_message(warm).question.qname == name

    @given(v4_ints, st.integers(min_value=0, max_value=24))
    @settings(max_examples=60)
    def test_options_cache_identical_bytes(self, value, source):
        ecs = EcsOption.from_client_address(
            str(ipaddress.IPv4Address(value)), source)
        clear_options_cache()
        cold = encode_options([ecs])
        warm = encode_options([ecs])
        assert warm == cold
        assert EcsOption.from_wire(cold[4:]) == ecs

    @given(names)
    @settings(max_examples=60)
    def test_from_text_interning(self, name):
        text = name.to_text()
        again = Name.from_text(text)
        assert again == name
        assert Name.from_text(text) is Name.from_text(text)

    def test_folded_matches_lowercase(self):
        name = Name.from_text("WwW.ExAmple.COM")
        assert name.folded == tuple(lab.lower() for lab in name.labels)

    def test_ecs_option_in_message_roundtrip(self):
        msg = Message(msg_id=7)
        msg.question = Question(Name.from_text("a.example.com"), RecordType.A)
        msg.edns = EdnsInfo(options=[
            EcsOption.from_client_address("192.0.2.77", 24)])
        clear_codec_caches()
        clear_options_cache()
        wire_cold = encode_message(msg)
        wire_warm = encode_message(msg)
        assert wire_cold == wire_warm
        decoded = decode_message(wire_warm)
        assert decoded.edns.find_ecs() == msg.edns.find_ecs()


# -- batched replay ----------------------------------------------------------


class TestBatchedReplay:
    def test_batched_equals_reference_allnames(self):
        records = AllNamesBuilder(scale=0.05, seed=3).build().records
        ref = replay_partial(records,
                             client_of=lambda r: r.client_ip,
                             scope_of=lambda r: r.scope,
                             ttl_of=lambda r: r.ttl,
                             fast=False)
        assert replay_partial_batched(records, "client_ip") == ref

    def test_batched_equals_reference_public_cdn(self):
        records = PublicCdnBuilder(scale=0.005, seed=3,
                                   duration_s=600.0).build().records
        ref = replay_partial(records,
                             client_of=lambda r: r.ecs_address,
                             scope_of=lambda r: r.scope,
                             ttl_of=lambda r: r.ttl)
        assert replay_partial_batched(records, "ecs_address") == ref

    def test_ttl_override_constant(self):
        records = PublicCdnBuilder(scale=0.005, seed=3,
                                   duration_s=600.0).build().records
        ref = replay_partial(records,
                             client_of=lambda r: r.ecs_address,
                             scope_of=lambda r: r.scope,
                             ttl_of=lambda r: 40)
        assert replay_partial_batched(records, "ecs_address",
                                      ttl_override=40) == ref


# -- regression: TTL-0 override ---------------------------------------------


class TestTtlZeroOverride:
    def test_ttl_zero_is_honored(self):
        """``public_cdn_blowups(ttl=0)`` must apply the override, not fall
        back to the trace TTL (the old ``if ttl`` truthiness bug)."""
        dataset = PublicCdnBuilder(scale=0.005, seed=3,
                                   duration_s=600.0).build()
        zero = public_cdn_blowups(dataset, ttl=0)
        trace = public_cdn_blowups(dataset)
        # With TTL 0 nothing survives to be reused, so every resolver's
        # with/without-ECS peaks match pairwise: blow-up exactly 1.0.
        assert zero and all(b == 1.0 for b in zero)
        # The trace TTL (20 s) produces real blow-up for busy resolvers.
        assert max(trace) > 1.0

    def test_ttl_override_still_works(self):
        dataset = PublicCdnBuilder(scale=0.005, seed=3,
                                   duration_s=600.0).build()
        assert public_cdn_blowups(dataset, ttl=40) != \
            public_cdn_blowups(dataset, ttl=0)


# -- slots -------------------------------------------------------------------


class TestSlots:
    def test_record_dataclasses_have_no_dict(self):
        from repro.datasets.records import (AllNamesRecord, CdnQueryRecord,
                                            PublicCdnRecord, RootQueryRecord,
                                            ScanQueryRecord)
        record = AllNamesRecord(0.0, "192.0.2.1", "a.example.", 1, 24, 60)
        assert not hasattr(record, "__dict__")
        for klass in (AllNamesRecord, CdnQueryRecord, PublicCdnRecord,
                      RootQueryRecord, ScanQueryRecord):
            assert "__slots__" in klass.__dict__

    def test_cache_entry_has_no_dict(self):
        from repro.core.cache import _Entry
        entry = _Entry(None, None, None, Message(), 0.0, 1.0)
        assert not hasattr(entry, "__dict__")
