"""Observability layer: merge algebra, tracing, export and determinism.

The guarantees under test mirror ``tests/test_engine_merge.py``: registry
merging is associative, commutative and has an identity, so shard order
(and therefore worker count) never changes the merged metrics; tracing
reconstructs query lifecycles through parent/child span IDs; and — the
load-bearing property — experiment outputs are byte-identical whether
observability is enabled or not.
"""

from __future__ import annotations

import json
import random
from pathlib import Path

import pytest

from repro.analysis.cache_sim import replay_partial_batched
from repro.analysis.report import format_network_stats
from repro.cli import main as cli_main
from repro.datasets import AllNamesBuilder, merge_sorted_records
from repro.engine.generate import generate_records
from repro.engine.replay import _replay_shard, replay_sharded
from repro.engine.sharding import partition_by_key
from repro.net.transport import NetworkStats
from repro.obs import (MetricsRegistry, Tracer, merge_registries, observe,
                       parse_prometheus, profile_call, read_spans_jsonl,
                       to_prometheus, write_spans_jsonl)
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace


def _random_registry(rng: random.Random) -> MetricsRegistry:
    """A registry with random samples across every instrument kind."""
    reg = MetricsRegistry()
    jobs = reg.counter("jobs_total", "Jobs.", ("kind", "outcome"))
    for _ in range(rng.randrange(1, 12)):
        jobs.inc(rng.randrange(1, 50), rng.choice(("a", "b")),
                 rng.choice(("ok", "err")))
    occupancy = reg.gauge("occupancy", "Summed occupancy.", ("site",))
    peak = reg.gauge("peak", "High watermark.", mode="max")
    for _ in range(rng.randrange(1, 6)):
        occupancy.inc(rng.randrange(0, 100), rng.choice(("x", "y")))
        peak.set_max(rng.randrange(0, 1000))
    latency = reg.histogram("latency", "Latency.", buckets=(1.0, 5.0, 25.0))
    for _ in range(rng.randrange(1, 20)):
        # Integer-valued observations keep float sums exact, so the
        # algebra assertions hold bit-for-bit (real merges always run in
        # shard order, so they never rely on float associativity).
        latency.observe(rng.randrange(0, 40))
    return reg


class TestRegistryAlgebra:
    def test_zero_identity(self):
        rng = random.Random(1)
        reg = _random_registry(rng)
        empty = MetricsRegistry()
        assert reg.merge(empty).as_dict() == reg.as_dict()
        assert empty.merge(reg).as_dict() == reg.as_dict()

    def test_associative(self):
        rng = random.Random(2)
        for _ in range(20):
            a, b, c = (_random_registry(rng) for _ in range(3))
            assert (a.merge(b).merge(c).as_dict()
                    == a.merge(b.merge(c)).as_dict())

    def test_commutative(self):
        rng = random.Random(3)
        for _ in range(20):
            a, b = (_random_registry(rng) for _ in range(2))
            assert a.merge(b).as_dict() == b.merge(a).as_dict()

    def test_merge_registries_equals_fold(self):
        rng = random.Random(4)
        regs = [_random_registry(rng) for _ in range(5)]
        folded = MetricsRegistry()
        for reg in regs:
            folded.merge_from(reg)
        assert merge_registries(regs).as_dict() == folded.as_dict()

    def test_max_gauge_takes_watermark(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.gauge("peak", mode="max").set_max(10)
        b.gauge("peak", mode="max").set_max(7)
        assert a.merge(b).gauge("peak", mode="max").value() == 10

    def test_histogram_bucket_mismatch_rejected(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.histogram("h", buckets=(1.0, 2.0)).observe(1.5)
        b.histogram("h", buckets=(1.0, 3.0)).observe(1.5)
        with pytest.raises(ValueError):
            a.merge_from(b)


class TestTracer:
    def test_parent_child_nesting(self):
        tracer = Tracer()
        with tracer.span("resolve", qname="a.example.") as outer:
            with tracer.span("net.query") as inner:
                tracer.event("cache_lookup", hit=False)
            assert inner is not None
        resolve = next(s for s in tracer.spans if s.name == "resolve")
        query = next(s for s in tracer.spans if s.name == "net.query")
        lookup = next(s for s in tracer.spans if s.name == "cache_lookup")
        assert resolve.parent_id is None
        assert query.parent_id == resolve.span_id
        assert lookup.parent_id == query.span_id
        assert {s.trace_id for s in tracer.spans} == {resolve.trace_id}

    def test_completion_order_children_first(self):
        tracer = Tracer()
        with tracer.span("outer"):
            with tracer.span("mid"):
                with tracer.span("inner"):
                    pass
        assert [s.name for s in tracer.spans] == ["inner", "mid", "outer"]

    def test_limit_counts_dropped(self):
        tracer = Tracer(limit=2)
        for i in range(5):
            tracer.event("e", i=i)
        assert len(tracer.spans) == 2
        assert tracer.dropped == 3

    def test_disabled_helpers_are_noops(self):
        assert obs_trace.ACTIVE is None
        with obs_trace.span("anything", x=1) as record:
            assert record is None
        assert obs_trace.event("anything") is None

    def test_id_prefix_namespaces_shards(self):
        a, b = Tracer(id_prefix="s0"), Tracer(id_prefix="s1")
        a.event("e")
        b.event("e")
        ids = {a.spans[0].span_id, b.spans[0].span_id}
        assert len(ids) == 2
        assert all("-" in i for i in ids)


class TestPrometheusExport:
    def test_escaping_round_trip(self):
        nasty = 'va\\lue "q"\nnl'
        reg = MetricsRegistry()
        reg.counter("odd_total", 'help with \\ and\nnewline',
                    ("label",)).inc(3, nasty)
        text = to_prometheus(reg)
        assert r"help with \\ and\nnewline" in text
        assert r'label="va\\lue \"q\"\nnl"' in text
        family = parse_prometheus(text)["odd_total"]
        ((name, labels, value),) = family["samples"]
        # The strict parser keeps escape sequences verbatim; undoing
        # them must recover the original label value exactly.
        unescaped = (labels["label"].replace(r"\n", "\n")
                     .replace(r"\"", '"').replace(r"\\", "\\"))
        assert (name, unescaped, value) == ("odd_total", nasty, 3.0)

    def test_histogram_is_cumulative_with_inf(self):
        reg = MetricsRegistry()
        hist = reg.histogram("rtt", "RTT.", buckets=(1.0, 10.0))
        for value in (0.5, 5.0, 50.0):
            hist.observe(value)
        family = parse_prometheus(to_prometheus(reg))["rtt"]  # validates
        samples = {(n, labels.get("le")): v
                   for n, labels, v in family["samples"]}
        assert samples[("rtt_bucket", "1")] == 1.0
        assert samples[("rtt_bucket", "10")] == 2.0
        assert samples[("rtt_bucket", "+Inf")] == 3.0
        assert samples[("rtt_count", None)] == 3.0
        assert samples[("rtt_sum", None)] == pytest.approx(55.5)

    def test_rendering_ignores_insertion_order(self):
        def build(order):
            reg = MetricsRegistry()
            for name in order:
                reg.counter(name, f"{name}.", ("l",)).inc(1, "v")
            return to_prometheus(reg)

        assert build(("b_total", "a_total")) == build(("a_total", "b_total"))

    def test_spans_jsonl_round_trip(self, tmp_path):
        tracer = Tracer()
        with tracer.span("outer", qname="a.example."):
            tracer.event("inner", hit=True)
        path = tmp_path / "trace.jsonl"
        write_spans_jsonl(tracer.spans, path, dropped=2)
        rows = read_spans_jsonl(path)  # summary line excluded
        assert [r["name"] for r in rows] == ["inner", "outer"]
        assert rows[0]["attr_hit"] is True
        summary = json.loads(path.read_text().splitlines()[-1])
        assert summary == {"event": "tracer_summary", "spans": 2,
                           "dropped": 2}

    def test_profile_call_returns_result_and_report(self):
        result, report = profile_call(sorted, [3, 1, 2], title="tiny")
        assert result == [1, 2, 3]
        assert "tiny" in report and "cumulative" in report


@pytest.fixture()
def allnames_records():
    shard_lists, _ = generate_records(AllNamesBuilder(scale=0.01, seed=6),
                                      shards=4, workers=1)
    return merge_sorted_records(shard_lists)


class TestShardCapture:
    """Per-shard capture merges identically for every worker count."""

    def _generate_metrics(self, workers: int):
        with observe(metrics=True) as session:
            generate_records(AllNamesBuilder(scale=0.01, seed=6),
                             shards=4, workers=workers)
        return session.registry.as_dict()

    def test_generate_metrics_worker_independent(self):
        assert self._generate_metrics(1) == self._generate_metrics(2)

    def test_replay_metrics_worker_independent(self, allnames_records):
        def run(workers):
            with observe(metrics=True) as session:
                result, report = replay_sharded(allnames_records, "allnames",
                                                shards=4, workers=workers)
            assert report.metrics is not None
            return result, session.registry.as_dict()

        result_1, metrics_1 = run(1)
        result_2, metrics_2 = run(2)
        assert result_1 == result_2
        assert metrics_1 == metrics_2
        lookups = sum(v for k, v in
                      metrics_1["repro_replay_cache_lookups_total"]
                      ["values"].items() if "ecs" in k.split("|"))
        assert lookups == len(allnames_records)

    def test_traced_replay_counter_identical(self, allnames_records):
        buckets = partition_by_key(allnames_records, 4, lambda r: r.qname)
        plain = [replay_partial_batched(b, "client_ip") for b in buckets]
        with observe(tracing=True):
            traced = [_replay_shard(b, "allnames") for b in buckets]
        assert traced == plain

    def test_trace_topology_worker_independent(self, allnames_records):
        def topology(workers):
            with observe(tracing=True) as session:
                replay_sharded(allnames_records, "allnames",
                               shards=4, workers=workers)
            return [(s.trace_id, s.span_id, s.parent_id, s.name)
                    for s in session.tracer.spans]

        topo = topology(1)
        assert topo == topology(2)
        # Shard tracers namespace their IDs; empty shards emit nothing,
        # so expect a subset of the four prefixes covering >1 shard.
        prefixes = {span_id.split("-")[0] for _, span_id, _, _ in topo}
        assert prefixes <= {"s0", "s1", "s2", "s3"}
        assert len(prefixes) >= 2

    def test_observe_restores_previous_state(self):
        assert obs_metrics.ACTIVE is None and obs_trace.ACTIVE is None
        with observe(metrics=True, tracing=True):
            assert obs_metrics.ACTIVE is not None
            assert obs_trace.ACTIVE is not None
        assert obs_metrics.ACTIVE is None and obs_trace.ACTIVE is None


class TestNetworkStats:
    def test_rates_idle_are_zero(self):
        stats = NetworkStats()
        assert stats.timeout_rate() == 0.0
        assert stats.drop_rate() == 0.0

    def test_rates_are_fractions_of_datagrams(self):
        stats = NetworkStats(datagrams=200, timeouts=30, drops=10)
        assert stats.timeout_rate() == pytest.approx(0.15)
        assert stats.drop_rate() == pytest.approx(0.05)

    def test_format_network_stats_renders_rates(self):
        stats = NetworkStats(datagrams=200, bytes_sent=999, timeouts=30,
                             drops=10)
        text = format_network_stats(stats, title="Net")
        assert "timeout rate" in text and "15.00%" in text
        assert "drop rate" in text and "5.00%" in text


def _read_reports(out_dir: Path):
    return {p.name: p.read_bytes()
            for p in sorted(out_dir.rglob("*.txt"))}


class TestCliDeterminism:
    """Observability flags never change experiment outputs (acceptance)."""

    def test_caching_reports_identical_with_obs(self, tmp_path):
        plain, observed = tmp_path / "plain", tmp_path / "observed"
        assert cli_main(["--quiet", "--out", str(plain),
                         "caching", "--ingress", "25"]) == 0
        assert cli_main(["--quiet", "--out", str(observed),
                         "--metrics-out", str(tmp_path / "m.prom"),
                         "--trace-out", str(tmp_path / "t.jsonl"),
                         "caching", "--ingress", "25"]) == 0
        assert _read_reports(plain) == _read_reports(observed)
        assert parse_prometheus((tmp_path / "m.prom").read_text())
        assert read_spans_jsonl(tmp_path / "t.jsonl")

    def test_replay_identical_across_workers_and_obs(self, tmp_path):
        trace = tmp_path / "allnames.jsonl"
        assert cli_main(["--quiet", "generate", "allnames", str(trace),
                         "--scale", "0.01"]) == 0
        outs, proms = [], []
        for tag, workers, flags in (
                ("a", "1", []),
                ("b", "1", ["--metrics-out", str(tmp_path / "b.prom")]),
                ("c", "2", ["--metrics-out", str(tmp_path / "c.prom")])):
            out = tmp_path / tag
            assert cli_main(["--quiet", "--out", str(out), *flags,
                             "replay", "allnames", str(trace),
                             "--workers", workers]) == 0
            outs.append(_read_reports(out))
        assert outs[0] == outs[1] == outs[2]
        assert ((tmp_path / "b.prom").read_bytes()
                == (tmp_path / "c.prom").read_bytes())


class TestLifecycleTrace:
    """A query is followable client -> resolver -> authoritative."""

    @pytest.fixture(scope="class")
    def spans(self, tmp_path_factory):
        path = tmp_path_factory.mktemp("trace") / "caching.jsonl"
        assert cli_main(["--quiet", "--trace-out", str(path),
                         "caching", "--ingress", "20"]) == 0
        return read_spans_jsonl(path)

    def test_lifecycle_followable(self, spans):
        by_id = {s["span_id"]: s for s in spans}

        def ancestors(record):
            chain = []
            while record["parent_id"] is not None:
                record = by_id[record["parent_id"]]
                chain.append(record["name"])
            return chain

        auth = [s for s in spans if s["name"] == "authoritative"]
        assert auth, "no authoritative spans captured"
        followed = [s for s in auth if "resolve" in ancestors(s)]
        assert followed, "no authoritative span reachable from a resolve"
        # Each hop alternates through the fabric: resolver -> net.query
        # -> authoritative, and the resolve span sits under a net.query
        # from whoever forwarded to the resolver.
        assert ancestors(followed[0])[0] == "net.query"

    def test_resolver_records_cache_verdicts(self, spans):
        lookups = [s for s in spans if s["name"] == "cache_lookup"]
        assert lookups
        assert {s["attr_hit"] for s in lookups} <= {True, False}
        resolve_ids = {s["span_id"] for s in spans
                       if s["name"] == "resolve"}
        assert all(s["parent_id"] in resolve_ids for s in lookups)

    def test_ecs_scopes_recorded(self, spans):
        scoped = [s for s in spans if s["name"] == "authoritative"
                  and s.get("attr_ecs_scope_out") is not None]
        assert scoped, "authoritative spans should report ECS scope out"
        assert all(0 <= s["attr_ecs_scope_out"] <= 128 for s in scoped)


class TestHumanUnits:
    """The shared quantity formatter behind ``dataset info`` and --live."""

    def test_bytes_below_kib_stay_exact(self):
        from repro.units import human_bytes
        assert human_bytes(0) == "0 B"
        assert human_bytes(512) == "512 B"

    def test_bytes_scale_through_binary_units(self):
        from repro.units import human_bytes
        assert human_bytes(1536) == "1.5 KiB"
        assert human_bytes(1_475_739_648) == "1.4 GiB"

    def test_counts_match_paper_phrasing(self):
        from repro.units import human_count
        assert human_count(999) == "999"
        assert human_count(3_800_000_000) == "3.8B"
        assert human_count(1_250_000) == "1.2M"


class TestRenderStats:
    def _profile(self):
        import cProfile

        def busy():
            return sum(range(2000))

        profile = cProfile.Profile()
        profile.enable()
        busy()
        profile.disable()
        return profile

    def test_top_n_limits_rows(self):
        from repro.obs.profile import render_stats
        report = render_stats(self._profile(), top_n=1, title="tiny")
        body = [line for line in report.splitlines()[2:]
                if line.strip() and not line.startswith("(")]
        assert len(body) == 1
        assert "top 1 by cumulative time" in report

    def test_ordering_is_deterministic(self):
        from repro.obs.profile import render_stats
        profile = self._profile()
        assert render_stats(profile, top_n=5) == render_stats(profile, top_n=5)
