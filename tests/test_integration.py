"""End-to-end integration scenarios spanning multiple subsystems."""

import pytest

from repro.auth import fixed_scope
from repro.core.classify import classify_probing, ProbingCategory
from repro.dnslib import EcsOption, Name, Rcode, RecordType
from repro.measure import StubClient
from repro.net import city, same_prefix
from repro.resolvers import Forwarder, RecursiveResolver, behaviors


class TestFullResolutionPath:
    def test_client_forwarder_hidden_egress_auth(self, small_world):
        """A four-hop chain resolves correctly and the CDN sees the hidden
        resolver's subnet in ECS — the section 8.2 mechanism."""
        isp = small_world.isp
        hidden_ip = isp.host_in(city("Zurich"))
        fwd_ip = isp.host_in(city("Cleveland"))
        small_world.net.attach(Forwarder(hidden_ip,
                                         [small_world.resolver_ip]))
        small_world.net.attach(Forwarder(fwd_ip, [hidden_ip]))
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(fwd_ip, "video.cdn.example")
        assert result.addresses
        hint = small_world.cdn.decisions[-1].hint
        assert same_prefix(hint, hidden_ip, 24)
        # Mapping follows the hidden resolver's location (Zurich), not the
        # client's (Cleveland): ECS as an obstacle.
        assert small_world.cdn.decisions[-1].pool.city.name == "Zurich"

    def test_ttl_expiry_forces_full_path_again(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        client.query(small_world.resolver_ip, "video.cdn.example")
        first_count = small_world.cdn.queries_received
        small_world.topology.clock.advance(5)
        client.query(small_world.resolver_ip, "video.cdn.example")
        assert small_world.cdn.queries_received == first_count
        small_world.topology.clock.advance(21)  # CDN TTL is 20 s
        client.query(small_world.resolver_ip, "video.cdn.example")
        assert small_world.cdn.queries_received == first_count + 1

    def test_wire_level_fidelity(self, small_world):
        """The whole path works through actual wire encoding: a raw packet
        crafted by hand resolves end-to-end."""
        from repro.dnslib import Message, decode_message, encode_message
        query = Message.make_query(Name.from_text("www.example.com"),
                                   RecordType.A, msg_id=4242)
        wire = encode_message(query)
        resolver = small_world.net.endpoint_at(small_world.resolver_ip)
        response_wire = resolver.handle_datagram(wire,
                                                 small_world.client_ip,
                                                 small_world.net)
        response = decode_message(response_wire)
        assert response.msg_id == 4242
        assert response.answer_addresses() == ["93.184.216.34"]


class TestProbingObservedAtAuthoritative:
    def test_interval_loopback_pattern_observable(self, small_world):
        """Drive a loopback-probing resolver for simulated hours and
        recover the pattern from the CDN-side log, as section 6.1 does."""
        ip = small_world.isp.host_in(city("Cleveland"))
        resolver = RecursiveResolver(
            ip, small_world.topology.clock, small_world.hierarchy.root_ips,
            policy=behaviors.INTERVAL_LOOPBACK_PROBER.with_(
                scope_handling=behaviors.ScopeHandling.IGNORE))
        small_world.net.attach(resolver)
        client = StubClient(small_world.client_ip, small_world.net)
        clock = small_world.topology.clock
        zone_server_log = None
        for step in range(8):
            client.query(ip, "www.example.com")
            clock.advance(900)
        # Find the example.com authoritative log via the hierarchy.
        for endpoint_ip, count in small_world.net.stats.per_destination.items():
            endpoint = small_world.net.endpoint_at(endpoint_ip)
            if endpoint is None or not hasattr(endpoint, "log"):
                continue
            if any(r.qname == "www.example.com." for r in endpoint.log):
                zone_server_log = [r for r in endpoint.log
                                   if r.src_ip == ip]
        assert zone_server_log
        ecs_records = [r for r in zone_server_log if r.has_ecs]
        assert ecs_records
        assert all(r.ecs_address == "127.0.0.1" for r in ecs_records)

    def test_hostname_prober_bypasses_cache(self, small_world):
        probe_name = Name.from_text("www.example.com")
        ip = small_world.isp.host_in(city("Cleveland"))
        resolver = RecursiveResolver(
            ip, small_world.topology.clock, small_world.hierarchy.root_ips,
            policy=behaviors.HOSTNAME_PROBER.with_(
                probe_hostnames=frozenset({probe_name})))
        small_world.net.attach(resolver)
        client = StubClient(small_world.client_ip, small_world.net)
        client.query(ip, "www.example.com")
        upstream_after_first = resolver.upstream_queries
        client.query(ip, "www.example.com")  # within TTL, still goes up
        assert resolver.upstream_queries > upstream_after_first


class TestScanToAnalysisPipeline:
    def test_scan_records_feed_table1_and_hidden(self, scan_universe,
                                                 scan_result):
        from repro.analysis import (analyze_hidden_resolvers, build_table1,
                                    scan_prefix_profiles)
        profiles = scan_prefix_profiles(scan_result)
        assert profiles
        table = build_table1(scan_result=scan_result)
        assert sum(table.scan_counts.values()) == len(profiles)
        hidden = analyze_hidden_resolvers(scan_universe, scan_result)
        # Every validated prefix comes from the ground-truth hidden set.
        truth = {c.hidden_ips[0] for c in scan_universe.chains
                 if c.hidden_ips}
        for prefix in hidden.validated_prefixes:
            base = prefix.split("/")[0]
            assert any(same_prefix(base, h, 24) for h in truth)

    def test_rescan_is_reproducible(self):
        from repro.datasets import ScanUniverseBuilder
        from repro.measure import Scanner
        results = []
        for _ in range(2):
            universe = ScanUniverseBuilder(seed=21, ingress_count=25).build()
            result = Scanner(universe).scan()
            results.append([(r.ingress_ip, r.egress_ip, r.ecs_address)
                            for r in result.records])
        assert results[0] == results[1]


class TestCacheConsistencyAcrossStack:
    def test_resolver_cache_agrees_with_scope_semantics(self, small_world):
        """Answers cached under scope 16 are shared across /24s but not
        across /16s, verified through the live CDN path."""
        small_world.cdn.scope_v4 = 16
        clients = {
            "same16": small_world.client_ip.split(".")[0] + "." +
                      small_world.client_ip.split(".")[1] + ".250.9",
        }
        client_a = StubClient(small_world.client_ip, small_world.net)
        client_a.query(small_world.resolver_ip, "video.cdn.example")
        count = small_world.cdn.queries_received
        # Same /16, different /24: hit under scope 16.
        StubClient(clients["same16"], small_world.net).query(
            small_world.resolver_ip, "video.cdn.example")
        assert small_world.cdn.queries_received == count

    def test_servfail_not_cached(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        # An undelegated name under a delegated TLD yields NXDOMAIN from
        # the TLD server; NXDOMAIN responses may be cached, SERVFAIL not.
        result = client.query(small_world.resolver_ip, "x.ghost.example.")
        assert result.rcode in (Rcode.NXDOMAIN, Rcode.SERVFAIL)
