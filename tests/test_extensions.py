"""Tests for the section 9 (future work) extensions implemented here:
adaptive source-prefix sourcing and the overall blow-up projection."""

import pytest

from repro.analysis.cache_sim import overall_blowup
from repro.core.policies import (EcsDecision, EcsPolicy, ProbingEngine,
                                 build_query_ecs)
from repro.dnslib import Name, RecordType
from repro.measure import StubClient
from repro.net import city
from repro.resolvers import RecursiveResolver

AUTH = "203.0.113.53"
WWW = Name.from_text("www.example.com")


class TestAdaptiveSourcing:
    def test_engine_tracks_latest_scope(self):
        engine = ProbingEngine(EcsPolicy(adapt_source_to_scope=True))
        assert engine.adapted_source_limit(AUTH) is None
        engine.note_response(AUTH, True, scope=16)
        assert engine.adapted_source_limit(AUTH) == 16
        engine.note_response(AUTH, True, scope=20)
        assert engine.adapted_source_limit(AUTH) == 20
        # Latest-wins: the resolver follows the server's newest policy.
        engine.note_response(AUTH, True, scope=8)
        assert engine.adapted_source_limit(AUTH) == 8
        # Zero scopes carry no granularity signal and are ignored.
        engine.note_response(AUTH, True, scope=0)
        assert engine.adapted_source_limit(AUTH) == 8

    def test_disabled_policy_returns_none(self):
        engine = ProbingEngine(EcsPolicy(adapt_source_to_scope=False))
        engine.note_response(AUTH, True, scope=16)
        assert engine.adapted_source_limit(AUTH) is None

    def test_invalid_responses_do_not_update(self):
        engine = ProbingEngine(EcsPolicy(adapt_source_to_scope=True))
        engine.note_response(AUTH, False, scope=None)
        assert engine.adapted_source_limit(AUTH) is None

    def test_source_limit_caps_built_option(self):
        opt = build_query_ecs(EcsPolicy(), EcsDecision(True), "10.1.2.3",
                              "1.1.1.1", source_limit=16)
        assert opt.source_prefix_length == 16
        assert str(opt.address) == "10.1.0.0"

    def test_source_limit_never_lengthens(self):
        opt = build_query_ecs(EcsPolicy(source_prefix_v4=20),
                              EcsDecision(True), "10.1.2.3", "1.1.1.1",
                              source_limit=28)
        assert opt.source_prefix_length == 20

    def test_adaptive_resolver_shortens_after_coarse_scope(self, small_world):
        """End to end: once the CDN answers with scope 16, an adaptive
        resolver reveals only 16 bits on subsequent queries."""
        small_world.cdn.scope_v4 = 16
        ip = small_world.isp.host_in(city("Cleveland"))
        resolver = RecursiveResolver(
            ip, small_world.topology.clock, small_world.hierarchy.root_ips,
            policy=EcsPolicy(adapt_source_to_scope=True))
        small_world.net.attach(resolver)
        client = StubClient(small_world.client_ip, small_world.net)

        client.query(ip, "a.cdn.example")  # learns scope 16
        small_world.topology.clock.advance(30)
        client.query(ip, "b.cdn.example")
        last = [r for r in small_world.cdn.log if r.src_ip == ip][-1]
        assert last.ecs_source_len == 16


class TestOverallBlowup:
    def test_interpolates(self):
        assert overall_blowup(4.3, 1.0) == pytest.approx(4.3)
        assert overall_blowup(4.3, 0.0) == pytest.approx(1.0)
        assert overall_blowup(4.0, 0.5) == pytest.approx(2.5)

    def test_monotone_in_fraction(self):
        values = [overall_blowup(4.0, f) for f in (0.1, 0.4, 0.9)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            overall_blowup(4.0, 1.5)
        with pytest.raises(ValueError):
            overall_blowup(0.5, 0.5)
