"""Every ``QueryOutcome(timed_out=True)`` consumer must survive silence.

A total blackout — 100% packet loss via the fault-injection layer —
forces the None-response path through each measurement driver: the scan
campaign, the caching-behavior prober, the scope-reaction prober, and
the recursive resolver's upstream ladder.  None of them may raise; they
report empty/partial results instead.
"""

import pytest

from repro.datasets import ScanUniverseBuilder
from repro.faults import FaultPlan, OutageSpec, PacketLossSpec
from repro.measure import Scanner
from repro.measure.caching_probe import CachingBehaviorProber
from repro.measure.digclient import StubClient
from repro.measure.scope_reaction import ScopeReactionProber
from repro.dnslib import Rcode

BLACKOUT = FaultPlan("blackout", (PacketLossSpec(rate=1.0),))


def _blackout_universe(ingress_count=6, seed=5):
    universe = ScanUniverseBuilder(seed=seed,
                                   ingress_count=ingress_count).build()
    universe.net.install_injector(BLACKOUT.bind(0, 0))
    return universe


class TestBlackoutConsumers:
    @pytest.mark.parametrize("consumer",
                             ["scanner", "caching", "scope_reaction"])
    def test_consumer_survives_total_blackout(self, consumer):
        universe = _blackout_universe()
        if consumer == "scanner":
            result = Scanner(universe).scan()
            assert result.responding_ingress == set()
            assert result.records == []
        elif consumer == "caching":
            prober = CachingBehaviorProber(universe)
            reports = prober.probe_all()
            assert isinstance(reports, list)
            assert prober.probe_megadns() is None or True  # no raise
        else:
            prober = ScopeReactionProber(universe)
            outcome = prober.probe(universe.other_egress[0].ip,
                                   queries_per_phase=2)
            assert outcome.adapts is None
            assert all(phase == []
                       for phase in outcome.observed_source_lengths)

    def test_caching_probe_direct_reports_unknowns(self):
        universe = _blackout_universe()
        report = CachingBehaviorProber(universe).probe_direct(
            universe.other_egress[0].ip)
        # Nothing answered, so no caching property can be asserted.
        assert report.outcome.second_query_seen_scope24 is None
        assert report.outcome.second_query_seen_scope16 is None
        assert report.resolver_ip == universe.other_egress[0].ip

    def test_partial_outage_is_contained(self):
        # Silencing one forwarder must not take down the rest of the scan.
        universe = ScanUniverseBuilder(seed=5, ingress_count=6).build()
        target = universe.forwarder_ips[0]
        plan = FaultPlan("one-down",
                         (OutageSpec(start_s=0.0, end_s=1e12, dst=target),))
        universe.net.install_injector(plan.bind(0, 0))
        result = Scanner(universe).scan()
        assert target not in result.responding_ingress
        assert len(result.responding_ingress) > 0


class TestRecursiveUpstreamBlackout:
    def test_client_gets_servfail_not_an_exception(self, small_world):
        # Drop everything the resolver sends upstream; the client's
        # query must come back SERVFAIL, never raise through the stack.
        resolver_ip = small_world.resolver_ip
        small_world.net.add_filter(
            lambda src, dst, wire: src == resolver_ip)
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(resolver_ip, "www.example.com.")
        assert result.response is not None
        assert result.response.rcode == Rcode.SERVFAIL
        assert result.addresses == []

    def test_resolver_recovers_after_filters_clear(self, small_world):
        resolver_ip = small_world.resolver_ip
        predicate = lambda src, dst, wire: src == resolver_ip
        small_world.net.add_filter(predicate)
        client = StubClient(small_world.client_ip, small_world.net)
        first = client.query(resolver_ip, "www.example.com.")
        assert first.response.rcode == Rcode.SERVFAIL
        small_world.net._filters.remove(predicate)
        second = client.query(resolver_ip, "www.example.com.")
        assert second.response.rcode == Rcode.NOERROR
        assert "93.184.216.34" in second.addresses
