"""Tests for ECS probing policies and query-side option construction."""

import ipaddress

import pytest

from repro.core.policies import (EcsDecision, EcsPolicy, ProbingEngine,
                                 ProbingStrategy, build_query_ecs)
from repro.dnslib import EcsOption, Name, RecordType
from repro.resolvers import behaviors

AUTH = "203.0.113.53"
WWW = Name.from_text("www.example.com")
PROBE = Name.from_text("probe.example.com")


class TestProbingEngine:
    def test_always_sends_for_addresses(self):
        engine = ProbingEngine(EcsPolicy(probing=ProbingStrategy.ALWAYS))
        assert engine.decide(WWW, RecordType.A, AUTH, 0.0).send_ecs
        assert engine.decide(WWW, RecordType.AAAA, AUTH, 0.0).send_ecs

    def test_always_skips_non_address_types(self):
        engine = ProbingEngine(EcsPolicy(probing=ProbingStrategy.ALWAYS))
        assert not engine.decide(WWW, RecordType.NS, AUTH, 0.0).send_ecs
        assert not engine.decide(WWW, RecordType.TXT, AUTH, 0.0).send_ecs

    def test_ns_violation_flag(self):
        engine = ProbingEngine(EcsPolicy(probing=ProbingStrategy.ALWAYS,
                                         send_ecs_for_ns_queries=True))
        assert engine.decide(WWW, RecordType.NS, AUTH, 0.0).send_ecs

    def test_never(self):
        engine = ProbingEngine(EcsPolicy(probing=ProbingStrategy.NEVER))
        assert not engine.decide(WWW, RecordType.A, AUTH, 0.0).send_ecs

    def test_probe_hostnames_only(self):
        policy = EcsPolicy(probing=ProbingStrategy.PROBE_HOSTNAMES,
                           probe_hostnames=frozenset({PROBE}))
        engine = ProbingEngine(policy)
        assert engine.decide(PROBE, RecordType.A, AUTH, 0.0).send_ecs
        assert not engine.decide(WWW, RecordType.A, AUTH, 0.0).send_ecs

    def test_on_miss_requires_miss(self):
        policy = EcsPolicy(probing=ProbingStrategy.HOSTNAMES_ON_MISS,
                           probe_hostnames=frozenset({PROBE}))
        engine = ProbingEngine(policy)
        assert engine.decide(PROBE, RecordType.A, AUTH, 0.0,
                             cache_hit=False).send_ecs
        assert not engine.decide(PROBE, RecordType.A, AUTH, 0.0,
                                 cache_hit=True).send_ecs

    def test_domain_whitelist(self):
        policy = EcsPolicy(probing=ProbingStrategy.DOMAIN_WHITELIST,
                           whitelist_zones=(Name.from_text("example.com"),))
        engine = ProbingEngine(policy)
        assert engine.decide(WWW, RecordType.A, AUTH, 0.0).send_ecs
        assert not engine.decide(Name.from_text("www.other.net"),
                                 RecordType.A, AUTH, 0.0).send_ecs

    def test_interval_loopback_fires_then_waits(self):
        policy = EcsPolicy(probing=ProbingStrategy.INTERVAL_LOOPBACK,
                           probe_interval=1800)
        engine = ProbingEngine(policy)
        first = engine.decide(WWW, RecordType.A, AUTH, 0.0)
        assert first.send_ecs and first.use_loopback
        assert not engine.decide(WWW, RecordType.A, AUTH, 100.0).send_ecs
        again = engine.decide(WWW, RecordType.A, AUTH, 1800.0)
        assert again.send_ecs

    def test_interval_tracked_per_authoritative(self):
        policy = EcsPolicy(probing=ProbingStrategy.INTERVAL_LOOPBACK)
        engine = ProbingEngine(policy)
        engine.decide(WWW, RecordType.A, AUTH, 0.0)
        other = engine.decide(WWW, RecordType.A, "198.51.100.5", 1.0)
        assert other.send_ecs

    def test_interval_own_address(self):
        policy = EcsPolicy(probing=ProbingStrategy.INTERVAL_OWN_ADDRESS)
        decision = ProbingEngine(policy).decide(WWW, RecordType.A, AUTH, 0.0)
        assert decision.send_ecs and decision.use_own_address

    def test_note_response_records_support(self):
        engine = ProbingEngine(EcsPolicy())
        engine.note_response(AUTH, True)
        assert engine.state_for(AUTH).supports_ecs is True
        engine.note_response(AUTH, False)
        assert engine.state_for(AUTH).supports_ecs is False


class TestBuildQueryEcs:
    def test_no_send(self):
        assert build_query_ecs(EcsPolicy(), EcsDecision(False),
                               "10.0.0.1", "1.1.1.1") is None

    def test_default_truncation(self):
        opt = build_query_ecs(EcsPolicy(), EcsDecision(True),
                              "10.1.2.3", "1.1.1.1")
        assert opt.source_prefix_length == 24
        assert str(opt.address) == "10.1.2.0"

    def test_v6_truncation(self):
        opt = build_query_ecs(EcsPolicy(), EcsDecision(True),
                              "2001:db8:1:2:3::4", "1.1.1.1")
        assert opt.source_prefix_length == 56

    def test_loopback_probe(self):
        opt = build_query_ecs(EcsPolicy(), EcsDecision(True, use_loopback=True),
                              "10.1.2.3", "1.1.1.1")
        assert str(opt.address) == "127.0.0.1"
        assert opt.source_prefix_length == 32

    def test_own_address_probe(self):
        # The paper's recommendation: the resolver's *public* address.
        opt = build_query_ecs(EcsPolicy(),
                              EcsDecision(True, use_own_address=True),
                              "10.1.2.3", "198.51.7.9")
        assert opt.covers("198.51.7.9", bits=opt.source_prefix_length)

    def test_jammed_last_byte(self):
        policy = EcsPolicy(jam_last_byte=0x01)
        opt = build_query_ecs(policy, EcsDecision(True), "10.1.2.200",
                              "1.1.1.1")
        assert opt.source_prefix_length == 32
        assert str(opt.address) == "10.1.2.1"

    def test_jammed_zero(self):
        policy = EcsPolicy(jam_last_byte=0x00)
        opt = build_query_ecs(policy, EcsDecision(True), "10.1.2.200",
                              "1.1.1.1")
        assert str(opt.address) == "10.1.2.0"
        assert opt.source_prefix_length == 32

    def test_fixed_private_prefix(self):
        policy = EcsPolicy(fixed_prefix="10.0.0.0", fixed_prefix_len=8)
        opt = build_query_ecs(policy, EcsDecision(True), "93.184.216.34",
                              "1.1.1.1")
        assert str(opt.address) == "10.0.0.0"
        assert opt.source_prefix_length == 8
        assert not opt.is_routable()

    def test_client_ecs_forwarded_when_accepted(self):
        policy = EcsPolicy(accept_client_ecs=True)
        incoming = EcsOption.from_client_address("93.184.1.2", 24)
        opt = build_query_ecs(policy, EcsDecision(True), "10.0.0.1",
                              "1.1.1.1", incoming)
        assert opt.network() == incoming.network()

    def test_client_ecs_clamped(self):
        policy = EcsPolicy(accept_client_ecs=True, max_accepted_prefix_v4=22)
        incoming = EcsOption.from_client_address("93.184.1.2", 32)
        opt = build_query_ecs(policy, EcsDecision(True), "10.0.0.1",
                              "1.1.1.1", incoming)
        assert opt.source_prefix_length == 22

    def test_client_ecs_default_clamp_is_24(self):
        policy = EcsPolicy(accept_client_ecs=True)
        incoming = EcsOption.from_client_address("93.184.1.2", 32)
        opt = build_query_ecs(policy, EcsDecision(True), "10.0.0.1",
                              "1.1.1.1", incoming)
        assert opt.source_prefix_length == 24

    def test_client_ecs_over_24_kept_by_acceptor(self):
        opt = build_query_ecs(behaviors.OVER_24_ACCEPTOR, EcsDecision(True),
                              "10.0.0.1", "1.1.1.1",
                              EcsOption.from_client_address("93.184.1.2", 32))
        assert opt.source_prefix_length == 32

    def test_client_ecs_ignored_when_not_accepted(self):
        incoming = EcsOption.from_client_address("93.184.1.2", 24)
        opt = build_query_ecs(EcsPolicy(), EcsDecision(True), "10.0.0.1",
                              "1.1.1.1", incoming)
        assert str(opt.address) == "10.0.0.0"

    def test_with_copy_helper(self):
        changed = EcsPolicy().with_(source_prefix_v4=16)
        assert changed.source_prefix_v4 == 16
        assert EcsPolicy().source_prefix_v4 == 24


class TestBehaviorPresets:
    def test_registry_complete(self):
        assert "compliant" in behaviors.PRESETS
        assert len(behaviors.PRESETS) >= 20

    def test_compliant_defaults(self):
        assert behaviors.COMPLIANT.source_prefix_v4 == 24
        assert behaviors.COMPLIANT.source_prefix_v6 == 56
        assert behaviors.COMPLIANT.enforce_scope_le_source

    def test_clamp_22_consistent(self):
        assert behaviors.CLAMP_22.max_accepted_prefix_v4 == 22
        assert behaviors.CLAMP_22.clamp_scope_bits == 22

    def test_root_violator_flags(self):
        assert behaviors.ROOT_ECS_VIOLATOR.send_ecs_to_roots
