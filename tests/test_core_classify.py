"""Tests for the behavior classifiers of sections 6.1–6.3."""

import pytest

from repro.core.classify import (CachingCategory, CachingProbeOutcome,
                                 ProbingCategory, QueryObservation,
                                 classify_caching, classify_probing,
                                 prefix_length_profile)


def obs(ts, qname="www.cdn.example.", qtype=1, ecs=None, source_len=24):
    return QueryObservation(ts, qname, qtype, ecs is not None, ecs,
                            source_len if ecs else None)


class TestProbingClassifier:
    def test_no_queries(self):
        verdict = classify_probing([])
        assert verdict.category is ProbingCategory.NO_ECS

    def test_no_ecs(self):
        verdict = classify_probing([obs(i) for i in range(10)])
        assert verdict.category is ProbingCategory.NO_ECS

    def test_always(self):
        records = [obs(i, ecs="10.0.0.0") for i in range(10)]
        verdict = classify_probing(records)
        assert verdict.category is ProbingCategory.ALWAYS_ECS
        assert verdict.ecs_fraction == 1.0

    def test_always_ignores_non_address_queries(self):
        records = [obs(i, ecs="10.0.0.0") for i in range(5)]
        records.append(obs(99, qtype=2))  # NS query without ECS
        assert classify_probing(records).category is ProbingCategory.ALWAYS_ECS

    def test_hostname_probes(self):
        # ECS confined to one name, re-queried inside the 20 s TTL.
        records = [obs(i * 40, ecs=None) for i in range(20)]
        records += [obs(i * 10.0, qname="probe.cdn.example.",
                        ecs="10.0.0.0") for i in range(30)]
        verdict = classify_probing(records, record_ttl=20)
        assert verdict.category is ProbingCategory.HOSTNAME_PROBES
        assert verdict.ecs_hostnames == {"probe.cdn.example."}

    def test_on_miss(self):
        # ECS confined to one name, never within 60 s of the previous query.
        records = [obs(i * 40.0) for i in range(20)]
        records += [obs(i * 120.0, qname="probe.cdn.example.",
                        ecs="10.0.0.0") for i in range(10)]
        verdict = classify_probing(records, record_ttl=20)
        assert verdict.category is ProbingCategory.HOSTNAMES_ON_MISS

    def test_interval_loopback(self):
        records = [obs(i * 15.0) for i in range(100)]
        records += [obs(i * 1800.0, qname="beacon.cdn.example.",
                        ecs="127.0.0.1", source_len=32) for i in range(5)]
        verdict = classify_probing(records)
        assert verdict.category is ProbingCategory.INTERVAL_LOOPBACK
        assert verdict.uses_loopback
        assert verdict.interval_estimate == pytest.approx(1800.0)

    def test_interval_loopback_multiples(self):
        ts = [0.0, 1800.0, 5400.0, 7200.0]  # gaps 1800, 3600, 1800
        records = [obs(i * 15.0) for i in range(50)]
        records += [obs(t, qname="b.cdn.example.", ecs="127.0.0.1",
                        source_len=32) for t in ts]
        assert classify_probing(records).category is \
            ProbingCategory.INTERVAL_LOOPBACK

    def test_short_interval_loopback_not_interval(self):
        # Loopback probes every 30 s are not the 30-minute pattern.
        records = [obs(i * 15.0) for i in range(50)]
        records += [obs(i * 30.0, qname="b.cdn.example.", ecs="127.0.0.1",
                        source_len=32) for i in range(20)]
        assert classify_probing(records).category is not \
            ProbingCategory.INTERVAL_LOOPBACK

    def test_mixed(self):
        records = [obs(i, ecs="10.0.0.0" if i % 2 else None)
                   for i in range(20)]
        assert classify_probing(records).category is ProbingCategory.MIXED


class TestPrefixProfile:
    def test_single_24(self):
        profile = prefix_length_profile(
            [obs(i, ecs="10.0.0.0", source_len=24) for i in range(5)])
        assert profile.v4_lengths == {24}
        assert profile.jammed_last_byte is None
        assert profile.table1_label() == "24"

    def test_jammed_detection(self):
        records = [obs(i, ecs=f"10.0.{i}.1", source_len=32)
                   for i in range(10)]
        profile = prefix_length_profile(records)
        assert profile.jammed_last_byte == 0x01
        assert profile.table1_label() == "32/jammed last byte"

    def test_jammed_zero(self):
        records = [obs(i, ecs=f"10.0.{i}.0", source_len=32)
                   for i in range(10)]
        assert prefix_length_profile(records).jammed_last_byte == 0x00

    def test_varying_last_byte_not_jammed(self):
        records = [obs(i, ecs=f"10.0.0.{i + 5}", source_len=32)
                   for i in range(10)]
        profile = prefix_length_profile(records)
        assert profile.jammed_last_byte is None
        assert profile.table1_label() == "32"

    def test_fixed_but_unusual_byte_not_jammed(self):
        records = [obs(i, ecs="10.0.0.7", source_len=32) for i in range(10)]
        assert prefix_length_profile(records).jammed_last_byte is None

    def test_combination_label(self):
        records = [obs(0, ecs="10.0.0.0", source_len=24),
                   obs(1, ecs="10.0.1.1", source_len=32),
                   obs(2, ecs="10.0.2.1", source_len=32)]
        profile = prefix_length_profile(records)
        assert profile.table1_label() == "24,32/jammed last byte"

    def test_v6_lengths(self):
        records = [obs(0, ecs="2001:db8::", source_len=56)]
        profile = prefix_length_profile(records)
        assert profile.v6_lengths == {56}
        assert profile.table1_label() == "56 (IPv6)"

    def test_mixed_families(self):
        records = [obs(0, ecs="10.0.0.0", source_len=24),
                   obs(1, ecs="2001:db8::", source_len=48)]
        assert prefix_length_profile(records).table1_label() == \
            "24 + 48 (IPv6)"

    def test_no_ecs_profile(self):
        assert prefix_length_profile([obs(0)]).table1_label() == "none"


class TestCachingClassifier:
    def test_correct(self):
        outcome = CachingProbeOutcome(True, False, False)
        assert classify_caching(outcome) is CachingCategory.CORRECT

    def test_ignores_scope(self):
        outcome = CachingProbeOutcome(False, False, False)
        assert classify_caching(outcome) is CachingCategory.IGNORES_SCOPE

    def test_over_24(self):
        outcome = CachingProbeOutcome(True, False, False,
                                      max_prefix_forwarded=32)
        assert classify_caching(outcome) is CachingCategory.ACCEPTS_OVER_24

    def test_clamp(self):
        outcome = CachingProbeOutcome(False, False, False,
                                      max_prefix_forwarded=22,
                                      forwarding_clamp=22)
        assert classify_caching(outcome) is CachingCategory.CLAMPS_AT_22

    def test_private_beats_everything(self):
        outcome = CachingProbeOutcome(False, False, False,
                                      max_prefix_forwarded=32,
                                      sends_private_prefix=True)
        assert classify_caching(outcome) is CachingCategory.PRIVATE_PREFIX

    def test_unreachable_unclassified(self):
        assert classify_caching(CachingProbeOutcome()) is \
            CachingCategory.UNCLASSIFIED

    def test_partial_evidence_unclassified(self):
        outcome = CachingProbeOutcome(True, True, False)
        assert classify_caching(outcome) is CachingCategory.UNCLASSIFIED
