"""Tests for capacity eviction, negative caching, and TCP fallback."""

import pytest

from repro.core import EcsCache
from repro.dnslib import (A, EcsOption, Message, Name, Rcode, RecordType,
                          ResourceRecord, SOA, TXT)
from repro.measure import StubClient
from repro.net import SimClock, city

QNAME = Name.from_text("www.example.com")


def response_for(subnet, scope=24, ttl=60):
    ecs = EcsOption.from_client_address(subnet, 24)
    msg = Message(is_response=True)
    msg.answers.append(ResourceRecord(QNAME, RecordType.A, ttl,
                                      A("203.0.113.1")))
    msg.set_ecs(ecs.response_to(scope))
    return msg, ecs


class TestCapacityEviction:
    def test_lru_eviction_over_capacity(self):
        clock = SimClock()
        cache = EcsCache(clock, max_entries=3)
        for i in range(3):
            msg, ecs = response_for(f"10.0.{i}.0")
            cache.store(QNAME, RecordType.A, msg, ecs)
            clock.advance(1)
        # Touch the first entry so it becomes most-recently used.
        assert cache.lookup(QNAME, RecordType.A, "10.0.0.9") is not None
        msg, ecs = response_for("10.0.9.0")
        cache.store(QNAME, RecordType.A, msg, ecs)
        assert cache.size() == 3
        assert cache.stats.evictions == 1
        # The LRU victim was the /24 for 10.0.1.0 (inserted second, never
        # touched again).
        assert cache.lookup(QNAME, RecordType.A, "10.0.1.9") is None
        assert cache.lookup(QNAME, RecordType.A, "10.0.0.9") is not None

    def test_no_eviction_under_capacity(self):
        cache = EcsCache(SimClock(), max_entries=10)
        for i in range(5):
            msg, ecs = response_for(f"10.0.{i}.0")
            cache.store(QNAME, RecordType.A, msg, ecs)
        assert cache.stats.evictions == 0

    def test_unbounded_by_default(self):
        cache = EcsCache(SimClock())
        for i in range(50):
            msg, ecs = response_for(f"10.{i // 256}.{i % 256}.0")
            cache.store(QNAME, RecordType.A, msg, ecs)
        assert cache.size() == 50
        assert cache.stats.evictions == 0

    def test_ecs_pressure_causes_evictions_plain_does_not(self):
        """The section 7 mechanism: under a fixed capacity, ECS-fragmented
        entries for one hot name evict each other while a scope-0 workload
        fits trivially."""
        clock = SimClock()
        bounded = EcsCache(clock, max_entries=4)
        for i in range(8):
            msg, ecs = response_for(f"10.0.{i}.0", scope=24)
            bounded.store(QNAME, RecordType.A, msg, ecs)
        assert bounded.stats.evictions == 4

        plain = EcsCache(clock, max_entries=4)
        for i in range(8):
            msg, ecs = response_for(f"10.0.{i}.0", scope=0)
            plain.store(QNAME, RecordType.A, msg, ecs)
        assert plain.stats.evictions == 0


class TestNegativeCaching:
    def test_soa_minimum_bounds_negative_ttl(self):
        clock = SimClock()
        cache = EcsCache(clock)
        negative = Message(is_response=True, rcode=Rcode.NXDOMAIN)
        soa = SOA(Name.from_text("ns1.example.com"),
                  Name.from_text("host.example.com"), 1, 3600, 600, 86400,
                  minimum=30)
        negative.authority.append(
            ResourceRecord(Name.from_text("example.com"), RecordType.SOA,
                           900, soa))
        cache.store(QNAME, RecordType.A, negative, None)
        clock.advance(29)
        assert cache.lookup(QNAME, RecordType.A, "1.2.3.4") is not None
        clock.advance(2)
        assert cache.lookup(QNAME, RecordType.A, "1.2.3.4") is None

    def test_soa_ttl_bounds_when_smaller(self):
        clock = SimClock()
        cache = EcsCache(clock)
        negative = Message(is_response=True, rcode=Rcode.NXDOMAIN)
        soa = SOA(Name.from_text("ns1.example.com"),
                  Name.from_text("host.example.com"), 1, 3600, 600, 86400,
                  minimum=3600)
        negative.authority.append(
            ResourceRecord(Name.from_text("example.com"), RecordType.SOA,
                           10, soa))
        cache.store(QNAME, RecordType.A, negative, None)
        clock.advance(11)
        assert cache.lookup(QNAME, RecordType.A, "1.2.3.4") is None

    def test_resolver_caches_nxdomain(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        client.query(small_world.resolver_ip, "ghost.example.com")
        upstream = small_world.resolver.upstream_queries
        client.query(small_world.resolver_ip, "ghost.example.com")
        assert small_world.resolver.upstream_queries == upstream


class TestTcpFallback:
    @staticmethod
    def _example_com_server(small_world):
        from repro.dnslib import Name
        origin = Name.from_text("example.com")
        for ip in list(small_world.net.stats.per_destination):
            ep = small_world.net.endpoint_at(ip)
            if ep is not None and any(
                    z.origin == origin for z in getattr(ep, "zones", [])):
                return ep
        raise AssertionError("example.com server not found")

    def _install_fat_record(self, small_world, label="fat", segments=40):
        """A TXT record too large for a 512-byte UDP response."""
        big = TXT(tuple(b"x" * 200 for _ in range(segments)))
        small_world.zone.add(Name.from_text(f"{label}.example.com"),
                             RecordType.TXT, big, ttl=60)

    def test_truncation_then_tcp_retry_direct(self, small_world):
        self._install_fat_record(small_world)
        client = StubClient(small_world.client_ip, small_world.net)
        # Find the zone server: resolve once, then query it directly.
        client.query(small_world.resolver_ip, "www.example.com")
        zone_server = self._example_com_server(small_world)
        # Without EDNS the 8KB TXT cannot fit in 512 bytes.
        result = client.query(zone_server.ip, "fat.example.com",
                              RecordType.TXT, use_edns=False,
                              retry_on_truncation=False)
        assert result.response.truncated
        assert not result.response.answers
        # dig-style auto-retry over TCP gets the full answer.
        result = client.query(zone_server.ip, "fat.example.com",
                              RecordType.TXT, use_edns=False)
        assert not result.response.truncated
        assert result.response.answers

    def test_resolver_retries_over_tcp(self, small_world):
        self._install_fat_record(small_world, label="fat2", segments=40)
        # Force small advertised payload so even EDNS queries truncate.
        small_world.resolver._no_edns_servers = set()
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(small_world.resolver_ip, "fat2.example.com",
                              RecordType.TXT)
        # The resolver transparently fell back to TCP upstream: the stub
        # gets the complete (non-truncated) answer.
        assert result.response.answers

    def test_edns_payload_avoids_truncation(self, small_world):
        self._install_fat_record(small_world, label="fat3", segments=15)
        client = StubClient(small_world.client_ip, small_world.net)
        client.query(small_world.resolver_ip, "www.example.com")
        zone_server = self._example_com_server(small_world)
        # ~3 KB answer fits the 4096-byte EDNS payload: no truncation.
        result = client.query(zone_server.ip, "fat3.example.com",
                              RecordType.TXT, retry_on_truncation=False)
        assert not result.response.truncated
        assert result.response.answers
