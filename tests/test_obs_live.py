"""Live telemetry plane: heartbeats, sink accounting, HTTP endpoints,
timelines.

Covers the repro.obs.live / repro.obs.server / repro.obs.timeline
triangle plus its engine and CLI integration:

- the loss-tolerant heartbeat protocol (sequence gaps counted, stale
  redeliveries ignored, non-blocking worker emitters);
- the scrape endpoint serving parseable Prometheus text whose counters
  are monotonically non-decreasing across concurrent mid-run scrapes;
- timeline ring-buffer bounds, JSONL round-trips and Chrome trace-event
  export;
- the out-of-band contract: experiment outputs are byte-identical with
  the live plane on or off, at any worker count.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.cli import main
from repro.datasets.allnames import AllNamesBuilder
from repro.engine.executor import run_sharded
from repro.engine.replay import replay_sharded
from repro.faults.chaos import run_chaos
from repro.faults.presets import preset
from repro.obs import live as obs_live
from repro.obs.export import parse_prometheus
from repro.obs.live import (Heartbeat, LiveSink, QueueEmitter, SinkEmitter,
                            pool_initializer)
from repro.obs.server import TelemetryServer
from repro.obs.timeline import (Timeline, TimelineEvent, jsonl_to_chrome,
                                read_timeline_jsonl, to_chrome_trace,
                                write_chrome_trace, write_timeline_jsonl)


@pytest.fixture(autouse=True)
def _live_plane_off():
    """Every test starts and ends with the live plane deactivated."""
    previous = obs_live.deactivate()
    yield
    obs_live.activate(previous)


def _beat(seq, pid=100, kind="progress", **kwargs):
    return Heartbeat(seq=seq, pid=pid, ts=time.monotonic(), kind=kind,
                     **kwargs)


class TestHeartbeatProtocol:
    def test_emitter_sequences_increment_per_emitter(self):
        sink = LiveSink()
        emitter = SinkEmitter(sink)
        emitter.run_start("t", shards=2)
        emitter.shard_start("t", 0)
        emitter.shard_end("t", 0, records=10, seconds=0.5)
        assert sink.heartbeats == 3
        assert sink.lost == 0 and sink.stale == 0

    def test_sequence_gaps_count_as_lost(self):
        sink = LiveSink()
        sink.offer(_beat(1))
        sink.offer(_beat(5))           # 2,3,4 dropped in transit
        assert sink.lost == 3
        assert sink.heartbeats == 2

    def test_stale_redelivery_ignored(self):
        sink = LiveSink()
        sink.offer(_beat(2, kind="shard_start", task="t"))
        sink.offer(_beat(2, kind="shard_start", task="t"))  # duplicate
        sink.offer(_beat(1, kind="shard_start", task="t"))  # reordered
        assert sink.stale == 2
        status = sink.run_status()
        assert status["tasks"]["t"]["started"] == 1
        assert status["heartbeats"]["stale"] == 2

    def test_per_worker_sequences_are_independent(self):
        sink = LiveSink()
        sink.offer(_beat(1, pid=100))
        sink.offer(_beat(1, pid=200))
        assert sink.lost == 0 and sink.stale == 0
        assert set(sink.run_status()["workers"]) == {"100", "200"}

    def test_queue_emitter_never_raises_on_dead_channel(self):
        class _Closed:
            def put_nowait(self, item):
                raise ValueError("queue is closed")

        emitter = QueueEmitter(_Closed())
        emitter.run_start("t", shards=1)   # must not raise
        emitter.shard_end("t", 0, records=1, seconds=0.1)

    def test_worker_channel_round_trip(self):
        sink = LiveSink()
        channel = SinkEmitter(sink).worker_channel()
        QueueEmitter(channel).shard_end("t", 3, records=7, seconds=0.2)
        deadline = time.monotonic() + 5.0
        while sink.heartbeats == 0 and time.monotonic() < deadline:
            time.sleep(0.01)
        sink.close()
        assert sink.heartbeats == 1
        assert sink.run_status()["tasks"]["t"]["done"] == 1

    def test_close_drains_residual_beats(self):
        sink = LiveSink()
        channel = sink.worker_channel()
        emitter = QueueEmitter(channel)
        for shard in range(5):
            emitter.shard_end("t", shard, records=1, seconds=0.0)
        sink.close()   # folds anything the drain thread had not consumed
        assert sink.run_status()["tasks"]["t"]["done"] == 5
        sink.close()   # idempotent

    def test_pool_initializer_none_when_plane_inactive(self):
        assert obs_live.ACTIVE is None
        assert pool_initializer() is None

    def test_pool_initializer_installs_queue_emitter(self):
        sink = LiveSink()
        obs_live.activate(SinkEmitter(sink))
        init = pool_initializer()
        assert init is not None
        initializer, initargs = init
        initializer(*initargs)   # what each fresh worker process runs
        assert isinstance(obs_live.ACTIVE, QueueEmitter)
        obs_live.deactivate()
        sink.close()


class TestSinkRegistry:
    def test_lifecycle_beats_build_counters(self):
        sink = LiveSink()
        emitter = SinkEmitter(sink)
        emitter.run_start("replay:t", shards=2)
        emitter.dispatch("replay:t", shard=0, shards=2, payload_bytes=64,
                         queue_depth=1)
        for shard in (0, 1):
            emitter.shard_start("replay:t", shard)
            emitter.shard_end("replay:t", shard, records=50, seconds=0.1)
        emitter.run_end("replay:t", records=100)
        text = sink.registry_snapshot()
        rendered = {i.name: i for i in text.instruments()}
        assert rendered["repro_live_shards_done_total"].samples()[
            ("replay:t",)] == 2
        assert rendered["repro_live_records_total"].samples()[
            ("replay:t",)] == 100
        assert rendered["repro_live_payload_bytes_total"].samples()[
            ("replay:t",)] == 64
        status = sink.run_status()
        assert status["tasks"]["replay:t"] == {
            "shards_total": 2, "dispatched": 2, "started": 2, "done": 2,
            "in_flight": 0, "records": 100, "payload_bytes": 64}

    def test_shard_registries_merge_exactly_once(self):
        from repro.obs.metrics import MetricsRegistry
        sink = LiveSink()
        emitter = SinkEmitter(sink)
        shard_reg = MetricsRegistry()
        shard_reg.counter("repro_faults_total", "h").inc(4.0)
        emitter.shard_end("t", 0, records=1, seconds=0.1,
                          metrics=shard_reg)
        snapshot = sink.registry_snapshot()
        fault = [i for i in snapshot.instruments()
                 if i.name == "repro_faults_total"]
        assert fault and fault[0].samples()[()] == 4.0
        # the /run status surfaces the fault counter
        assert sink.run_status()["counters"]["repro_faults_total"] == 4.0

    def test_status_reports_worker_utilization(self):
        sink = LiveSink()
        sink.offer(_beat(1, pid=7, kind="shard_end", task="t",
                         records=1, seconds=2.0, rss_kb=1024,
                         cpu_seconds=1.5))
        worker = sink.run_status()["workers"]["7"]
        assert worker["busy_seconds"] == 2.0
        assert worker["rss_kb"] == 1024
        assert worker["cpu_seconds"] == 1.5


class TestEngineIntegration:
    @pytest.fixture(scope="class")
    def records(self):
        return AllNamesBuilder(scale=0.02, seed=3).build().records

    def test_inline_run_emits_lifecycle_beats(self, records):
        sink = LiveSink()
        obs_live.activate(SinkEmitter(sink))
        try:
            with_live, _ = replay_sharded(records, "allnames", shards=4)
        finally:
            obs_live.deactivate()
            sink.close()
        without_live, _ = replay_sharded(records, "allnames", shards=4)
        assert with_live == without_live
        status = sink.run_status()["tasks"]["replay:allnames"]
        assert status == {"shards_total": 4, "dispatched": 0, "started": 4,
                          "done": 4, "in_flight": 0,
                          "records": len(records), "payload_bytes": 0}

    def test_pooled_run_streams_worker_heartbeats(self, records):
        sink = LiveSink()
        obs_live.activate(SinkEmitter(sink))
        try:
            with_live, _ = replay_sharded(records, "allnames", shards=4,
                                          workers=2)
        finally:
            obs_live.deactivate()
            sink.close()
        without_live, _ = replay_sharded(records, "allnames", shards=4,
                                         workers=2)
        assert with_live == without_live
        status = sink.run_status()
        task = status["tasks"]["replay:allnames"]
        assert task["done"] == 4 and task["dispatched"] == 4
        assert task["payload_bytes"] > 0
        # worker processes appear alongside the parent
        assert len(status["workers"]) >= 2

    def test_chaos_report_identical_with_live_plane(self):
        plan = preset("lossy")
        result, _ = run_chaos(plan, seed=1, fault_seed=7, ingress=24,
                              shards=4)
        sink = LiveSink()
        obs_live.activate(SinkEmitter(sink))
        try:
            live_result, _ = run_chaos(plan, seed=1, fault_seed=7,
                                       ingress=24, shards=4, workers=2)
        finally:
            obs_live.deactivate()
            sink.close()
        assert live_result.report() == result.report()
        # chaos shards emitted universe + progress events
        kinds = {e.kind for e in sink.timeline.events()}
        assert "chaos_universe" in kinds and "progress" in kinds


def _fetch(url):
    with urllib.request.urlopen(url, timeout=10) as resp:
        return resp.status, resp.headers.get("Content-Type"), \
            resp.read().decode("utf-8")


class TestTelemetryServer:
    def test_routes(self):
        sink = LiveSink()
        SinkEmitter(sink).run_start("t", shards=3)
        server = TelemetryServer(sink)
        port = server.start()
        try:
            status, ctype, body = _fetch(
                f"http://127.0.0.1:{port}/metrics")
            assert status == 200 and ctype.startswith("text/plain")
            families = parse_prometheus(body)
            assert "repro_live_heartbeats_total" in families
            assert "repro_live_uptime_seconds" in families

            status, _, body = _fetch(f"http://127.0.0.1:{port}/healthz")
            assert status == 200 and body == "ok\n"

            status, ctype, body = _fetch(f"http://127.0.0.1:{port}/run")
            assert status == 200 and ctype.startswith("application/json")
            doc = json.loads(body)
            assert doc["tasks"]["t"]["shards_total"] == 3
            assert doc["heartbeats"]["received"] == 1

            with pytest.raises(urllib.error.HTTPError) as excinfo:
                _fetch(f"http://127.0.0.1:{port}/nope")
            assert excinfo.value.code == 404
        finally:
            server.stop()
            sink.close()

    def test_start_stop_idempotent(self):
        sink = LiveSink()
        server = TelemetryServer(sink)
        port = server.start()
        assert server.start() == port
        server.stop()
        server.stop()
        sink.close()

    def test_concurrent_scrapes_see_monotone_counters(self):
        """Scrape while a sharded run is in flight: every body parses and
        every counter is non-decreasing scrape over scrape."""
        sink = LiveSink()
        server = TelemetryServer(sink)
        port = server.start()
        obs_live.activate(SinkEmitter(sink))
        done = threading.Event()

        def run():
            try:
                run_sharded(_slow_shard, [(i,) for i in range(6)],
                            task="slow")
            finally:
                done.set()

        worker = threading.Thread(target=run)
        worker.start()
        seen = []
        try:
            while not done.is_set():
                _, _, body = _fetch(f"http://127.0.0.1:{port}/metrics")
                families = parse_prometheus(body)   # always well-formed
                counters = {
                    (name, tuple(sorted(labels.items()))): value
                    for name, info in families.items()
                    if info["type"] == "counter"
                    for name, labels, value in info["samples"]}
                seen.append(counters)
                time.sleep(0.01)
        finally:
            worker.join()
            obs_live.deactivate()
            server.stop()
            sink.close()
        assert len(seen) >= 2
        for before, after in zip(seen, seen[1:]):
            for key, value in before.items():
                assert after.get(key, value) >= value
        final = sink.run_status()["tasks"]["slow"]
        assert final["done"] == 6


def _slow_shard(index):
    time.sleep(0.02)
    return [index]


class TestTimeline:
    def test_ring_buffer_counts_drops(self):
        timeline = Timeline(capacity=4)
        for i in range(7):
            timeline.add(TimelineEvent(ts=float(i), kind="progress",
                                       name=f"e{i}"))
        assert len(timeline) == 4
        assert timeline.dropped == 3
        assert [e.name for e in timeline.events()] == \
            ["e3", "e4", "e5", "e6"]

    def test_jsonl_round_trip(self, tmp_path):
        events = [
            TimelineEvent(ts=1.0, kind="run_start", name="t", pid=42),
            TimelineEvent(ts=1.5, kind="shard_end", name="t[0]", pid=42,
                          shard=0, dur=0.5, attrs={"records": 10}),
        ]
        path = tmp_path / "timeline.jsonl"
        write_timeline_jsonl(events, path, dropped=2)
        lines = path.read_text().splitlines()
        summary = json.loads(lines[-1])
        assert summary == {"event": "timeline_summary", "events": 2,
                           "dropped": 2}
        loaded = read_timeline_jsonl(path)
        assert [e.kind for e in loaded] == ["run_start", "shard_end"]
        assert loaded[1].attrs["records"] == 10
        assert loaded[1].dur == 0.5 and loaded[1].shard == 0

    def test_chrome_trace_structure(self):
        events = [
            TimelineEvent(ts=10.0, kind="run_start", name="t", pid=1),
            TimelineEvent(ts=10.2, kind="shard_end", name="t[0]", pid=2,
                          shard=0, dur=0.2, attrs={"records": 5}),
        ]
        doc = to_chrome_trace(events)
        assert set(doc) == {"traceEvents", "displayTimeUnit"}
        by_name = {e["name"]: e for e in doc["traceEvents"]}
        instant = by_name["t"]
        assert instant["ph"] == "i" and instant["ts"] == 0
        slice_ = by_name["t[0]"]
        assert slice_["ph"] == "X"
        assert slice_["dur"] == pytest.approx(200_000)  # 0.2s in us
        assert slice_["args"]["records"] == 5

    def test_write_chrome_trace_is_valid_json(self, tmp_path):
        events = [TimelineEvent(ts=0.0, kind="run_start", name="t")]
        path = tmp_path / "trace.json"
        write_chrome_trace(events, path)
        doc = json.loads(path.read_text())
        assert isinstance(doc["traceEvents"], list)

    def test_jsonl_to_chrome_conversion(self, tmp_path):
        events = [
            TimelineEvent(ts=0.0, kind="run_start", name="t"),
            TimelineEvent(ts=0.5, kind="shard_end", name="t[1]", shard=1,
                          dur=0.25),
        ]
        src = tmp_path / "timeline.jsonl"
        dst = tmp_path / "trace.json"
        write_timeline_jsonl(events, src, dropped=0)
        count = jsonl_to_chrome(src, dst)
        assert count == 2
        doc = json.loads(dst.read_text())
        assert len(doc["traceEvents"]) == 2

    def test_deterministic_ordering(self):
        a = TimelineEvent(ts=1.0, kind="b", name="x")
        b = TimelineEvent(ts=1.0, kind="a", name="x")
        forward = to_chrome_trace([a, b])
        backward = to_chrome_trace([b, a])
        assert forward == backward


class TestScrapeValidation:
    def test_duplicate_type_rejected(self):
        body = ("# TYPE repro_x counter\nrepro_x 1\n"
                "# TYPE repro_x counter\nrepro_x 2\n")
        with pytest.raises(ValueError, match="duplicate # TYPE"):
            parse_prometheus(body)


class TestCliLivePlane:
    def test_serve_metrics_and_timeline_flags(self, tmp_path, capsys):
        out = tmp_path / "reports"
        timeline = tmp_path / "timeline.json"
        rc = main(["--out", str(out), "--serve-metrics", "0",
                   "--timeline-out", str(timeline),
                   "chaos", "--preset", "lossy", "--fault-seed", "7",
                   "--ingress", "16", "--shards", "4"])
        captured = capsys.readouterr().out
        assert rc == 0
        assert "serving live telemetry" in captured
        assert "timeline events" in captured
        doc = json.loads(timeline.read_text())
        assert doc["traceEvents"]
        kinds = {e.get("name", "") for e in doc["traceEvents"]}
        assert any(name.startswith("chaos[lossy]") for name in kinds)

    def test_timeline_jsonl_suffix(self, tmp_path):
        timeline = tmp_path / "timeline.jsonl"
        rc = main(["--quiet", "--timeline-out", str(timeline),
                   "chaos", "--preset", "heavy-loss", "--ingress", "8",
                   "--shards", "2"])
        assert rc == 0
        lines = timeline.read_text().splitlines()
        assert json.loads(lines[-1])["event"] == "timeline_summary"

    def test_live_flag_writes_progress_to_stderr(self, tmp_path, capsys):
        rc = main(["--quiet", "--live", "chaos", "--preset", "lossy",
                   "--ingress", "8", "--shards", "2"])
        captured = capsys.readouterr()
        assert rc == 0
        assert "[live]" in captured.err
        assert captured.err.endswith("\n")

    def test_outputs_identical_with_and_without_live(self, tmp_path):
        base = ["--quiet", "generate", "allnames"]
        tail = ["--scale", "0.02", "--shards", "4"]
        plain = tmp_path / "plain.jsonl"
        lively = tmp_path / "live.jsonl"
        assert main(base + [str(plain)] + tail) == 0
        assert main(["--quiet", "--timeline-out",
                     str(tmp_path / "tl.jsonl"), "generate", "allnames",
                     str(lively)] + tail + ["--workers", "2"]) == 0
        assert plain.read_bytes() == lively.read_bytes()

    def test_live_plane_restored_after_command(self):
        assert obs_live.ACTIVE is None
        assert main(["--quiet", "--live", "caching",
                     "--ingress", "10"]) == 0
        assert obs_live.ACTIVE is None
