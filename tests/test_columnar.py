"""Columnar store: format round-trips, shard algebra, vectorized replay.

The store's contract has four layers, each pinned here:

* **Round-trip fidelity** — records → columns → records is the identity
  for every schema and every Optional/null shape (Hypothesis drives the
  shapes), through both the mmap and the in-memory open paths, and
  JSONL → columnar → JSONL reproduces the exact bytes.
* **Shard algebra** — ``merge_columnar_shards`` equals the canonical
  ts/k-way merge the JSONL route uses; ``concat_columnar_shards``
  equals list concatenation; slices are views of the parent's rows.
* **Replay equivalence** — :func:`replay_partial_columns` is
  counter-identical to the object-path reference for whole stores, row
  buckets, and TTL overrides.
* **Row-group layout (v2)** — random group budgets (including 1 and
  larger than the trace) round-trip value-identically with group-local
  dictionaries remapped on read; v1 ↔ v2 conversion is lossless (and
  v1 → v2 → v1 byte-identical); the group-granular merge is
  byte-canonical against the per-row heapq reference on overlapping-ts
  fixtures; mixed-version merges fail loudly; v1 files still open and
  replay counter-identically through every v2-aware entry point.
"""

from __future__ import annotations

import json
import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.cache_sim import (replay_partial_batched,
                                      replay_partial_column_groups,
                                      replay_partial_columns)
from repro.datasets.columnar import (MAGIC, MAGIC_V2, SCHEMAS, ColumnarStats,
                                     ColumnarStore, ColumnarWriter,
                                     GroupedColumnarWriter, RowGroupReader,
                                     bucketed_group_ranges,
                                     columnar_to_jsonl,
                                     concat_columnar_shards,
                                     convert_columnar, file_info,
                                     is_columnar, jsonl_to_columnar,
                                     merge_columnar_shards,
                                     merge_columnar_shards_rowwise,
                                     prebucket_columnar, read_columnar,
                                     schema_for, write_columnar,
                                     write_columnar_sorted,
                                     write_columnar_stream)
from repro.datasets.records import (AllNamesRecord, CdnQueryRecord,
                                    PublicCdnRecord, write_jsonl)
from repro.datasets.workload import merge_sorted_records
from repro.engine.sharding import partition_by_key

# ---------------------------------------------------------------------------
# Record strategies, one per schema, covering every Optional/null shape.

_TS = st.floats(min_value=0.0, max_value=1e6, allow_nan=False,
                allow_infinity=False)
_IP4 = st.builds("10.{}.{}.{}".format, st.integers(0, 255),
                 st.integers(0, 255), st.integers(0, 255))
_IP6 = st.builds("2001:db8::{:x}".format, st.integers(0, 0xffff))
_IP = st.one_of(_IP4, _IP6)
_QNAME = st.builds("h{}.example.".format, st.integers(0, 50))
_QTYPE = st.sampled_from((1, 28, 5))
_SCOPE = st.sampled_from((0, 8, 16, 20, 24, 32))
_TTL = st.integers(0, 3600)

RECORD_STRATEGIES = {
    "allnames": st.builds(AllNamesRecord, ts=_TS, client_ip=_IP,
                          qname=_QNAME, qtype=_QTYPE, scope=_SCOPE,
                          ttl=_TTL),
    "public-cdn": st.builds(PublicCdnRecord, ts=_TS, resolver_ip=_IP,
                            qname=_QNAME, qtype=_QTYPE, ecs_address=_IP,
                            ecs_source_len=st.sampled_from((24, 32, 56)),
                            scope=_SCOPE, ttl=_TTL),
    "cdn": st.builds(CdnQueryRecord, ts=_TS, resolver_ip=_IP, qname=_QNAME,
                     qtype=_QTYPE, has_ecs=st.booleans(),
                     ecs_address=st.none() | _IP,
                     ecs_source_len=st.none() | st.integers(0, 128),
                     ecs_scope=st.none() | _SCOPE, ttl=_TTL),
}


def _hand_records(name: str, count: int = 60, seed: int = 3) -> list:
    """Deterministic records for the non-Hypothesis cases, all schemas."""
    rng = random.Random(seed)
    schema = SCHEMAS[name]
    out = []
    for i in range(count):
        values = []
        for spec in schema.columns:
            if spec.nullable and rng.random() < 0.3:
                values.append(None)
            elif spec.kind == "str":
                if "ip" in spec.name or "address" in spec.name:
                    values.append(f"10.{rng.randrange(4)}."
                                  f"{rng.randrange(256)}.0")
                else:
                    values.append(f"h{rng.randrange(9)}.example.")
            elif spec.kind == "bool":
                values.append(bool(rng.getrandbits(1)))
            elif spec.kind == "f8":
                values.append(round(rng.uniform(0, 100), 3))
            elif "scope" in spec.name or "source_len" in spec.name:
                values.append(rng.choice((0, 8, 16, 24, 32)))
            else:
                values.append(rng.randrange(64))
        out.append(schema.record_type(*values))
    out.sort(key=lambda r: r.ts)
    return out


# ---------------------------------------------------------------------------
# Round-trip fidelity


@pytest.mark.parametrize("name", sorted(SCHEMAS))
def test_roundtrip_all_schemas(name, tmp_path):
    records = _hand_records(name)
    path = tmp_path / f"{name}.col"
    assert write_columnar(records, path, name) == len(records)
    assert is_columnar(path)
    assert read_columnar(path) == records
    with ColumnarStore.open(path, use_mmap=False) as store:
        assert store.to_records() == records


@pytest.mark.parametrize("name", sorted(RECORD_STRATEGIES))
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_roundtrip_property(name, data, tmp_path_factory):
    """records → columnar → records is the identity, any null shape."""
    records = data.draw(st.lists(RECORD_STRATEGIES[name], max_size=40))
    store = ColumnarStore.from_records(records, name)
    assert store.to_records() == records
    assert len(store) == len(records)
    path = tmp_path_factory.mktemp("prop") / "trace.col"
    store.save(path)
    with ColumnarStore.open(path) as opened:
        assert opened.to_records() == records


def test_jsonl_roundtrip_byte_identical(tmp_path):
    records = _hand_records("cdn")
    src = tmp_path / "trace.jsonl"
    write_jsonl(records, src)
    col = tmp_path / "trace.col"
    assert jsonl_to_columnar(src, col, "cdn") == len(records)
    back = tmp_path / "back.jsonl"
    assert columnar_to_jsonl(col, back) == len(records)
    assert back.read_bytes() == src.read_bytes()


def test_schema_resolution():
    assert schema_for("allnames") is SCHEMAS["allnames"]
    assert schema_for(AllNamesRecord) is SCHEMAS["allnames"]
    assert schema_for(_hand_records("cdn", 1)[0]) is SCHEMAS["cdn"]
    with pytest.raises(KeyError, match="unknown columnar schema"):
        schema_for("no-such")
    with pytest.raises(KeyError, match="no columnar schema"):
        schema_for(int)


def test_non_nullable_rejects_none():
    writer = ColumnarWriter(SCHEMAS["allnames"])
    with pytest.raises(ValueError, match="not nullable"):
        writer.append_values((0.0, None, "a.", 1, 0, 60))


def test_open_rejects_bad_magic_and_version(tmp_path):
    bogus = tmp_path / "bogus.col"
    bogus.write_bytes(b"NOTMAGIC" + b"\x00" * 16)
    with pytest.raises(ValueError, match="bad magic"):
        ColumnarStore.open(bogus)
    assert not is_columnar(bogus)
    assert not is_columnar(tmp_path / "missing.col")
    header = json.dumps({"version": 99, "schema": "allnames", "rows": 0,
                         "columns": []}).encode()
    stale = tmp_path / "stale.col"
    stale.write_bytes(MAGIC + len(header).to_bytes(4, "little") + header)
    with pytest.raises(ValueError, match="version"):
        ColumnarStore.open(stale)


def test_file_info_matches_store(tmp_path):
    records = _hand_records("public-cdn", 80)
    path = tmp_path / "pc.col"
    write_columnar(records, path, "public-cdn")
    info = file_info(path)
    assert info["schema"] == "public-cdn"
    assert info["rows"] == 80
    assert info["file_bytes"] == path.stat().st_size
    assert {c["name"] for c in info["columns"]} \
        == set(SCHEMAS["public-cdn"].field_names)
    qname = next(c for c in info["columns"] if c["name"] == "qname")
    assert qname["dict_entries"] == \
        len({r.qname for r in records})


# ---------------------------------------------------------------------------
# Shard algebra


def test_slice_is_zero_copy_view(tmp_path):
    records = _hand_records("cdn", 90)
    path = tmp_path / "c.col"
    write_columnar(records, path, "cdn")
    with ColumnarStore.open(path) as store:
        for lo, hi in ((0, 90), (10, 50), (33, 33), (89, 90)):
            with store.slice(lo, hi) as piece:
                assert piece.to_records() == records[lo:hi]
        with pytest.raises(ValueError, match="out of range"):
            store.slice(10, 91)


def test_merge_shards_matches_canonical_merge(tmp_path):
    """k-way columnar merge == merge_sorted_records, ties and all."""
    rng = random.Random(11)
    shard_lists = []
    for shard in range(3):
        records = _hand_records("allnames", 40, seed=shard)
        # Force ts ties across shards so the earlier-shard tie-break
        # is actually exercised.
        for r in records[:10]:
            r.ts = float(rng.randrange(5))
        records.sort(key=lambda r: r.ts)
        shard_lists.append(records)
    paths = []
    for i, records in enumerate(shard_lists):
        path = tmp_path / f"s{i}.col"
        write_columnar(records, path, "allnames")
        paths.append(path)
    out = tmp_path / "merged.col"
    reference = merge_sorted_records(shard_lists)
    assert merge_columnar_shards(paths, out) == len(reference)
    assert read_columnar(out) == reference


def test_concat_shards_matches_concatenation(tmp_path):
    shard_lists = [_hand_records("cdn", 30, seed=s) for s in range(3)]
    paths = []
    for i, records in enumerate(shard_lists):
        path = tmp_path / f"c{i}.col"
        write_columnar(records, path, "cdn")
        paths.append(path)
    out = tmp_path / "concat.col"
    reference = [r for shard in shard_lists for r in shard]
    assert concat_columnar_shards(paths, out) == len(reference)
    assert read_columnar(out) == reference


def test_merge_rejects_mixed_schemas(tmp_path):
    a = tmp_path / "a.col"
    b = tmp_path / "b.col"
    write_columnar(_hand_records("allnames", 5), a, "allnames")
    write_columnar(_hand_records("cdn", 5), b, "cdn")
    with pytest.raises(ValueError, match="mixed schemas"):
        merge_columnar_shards([a, b], tmp_path / "out.col")
    with pytest.raises(ValueError, match="mixed schemas"):
        concat_columnar_shards([a, b], tmp_path / "out.col")


def test_row_buckets_match_partition_by_key():
    records = _hand_records("allnames", 200)
    store = ColumnarStore.from_records(records, "allnames")
    for shards in (1, 3, 8):
        buckets = store.row_buckets("qname", shards)
        reference = partition_by_key(list(range(len(records))), shards,
                                     lambda i: records[i].qname)
        assert [list(bucket) for bucket in buckets] == reference
    # Memoized: the same object comes back for a repeated request.
    assert store.row_buckets("qname", 3) is store.row_buckets("qname", 3)


def test_stats_merge_segments_sums_every_field(tmp_path):
    lists = [_hand_records("cdn", n, seed=n) for n in (20, 35)]
    stores = [ColumnarStore.from_records(records, "cdn")
              for records in lists]
    merged = stores[0].stats().merge_segments(stores[1].stats())
    assert merged.rows == 55
    assert merged.data_bytes == sum(s.stats().data_bytes for s in stores)
    assert merged.null_bytes == sum(s.stats().null_bytes for s in stores)
    assert merged.dict_bytes == sum(s.stats().dict_bytes for s in stores)
    assert merged.dict_entries == sum(s.stats().dict_entries
                                      for s in stores)
    assert merged.total_bytes == merged.data_bytes + merged.null_bytes \
        + merged.dict_bytes
    assert ColumnarStats().bytes_per_row == 0.0
    assert stores[0].nbytes == stores[0].stats().total_bytes


# ---------------------------------------------------------------------------
# Vectorized replay equivalence


@settings(max_examples=20, deadline=None)
@given(records=st.lists(RECORD_STRATEGIES["allnames"], max_size=60),
       shards=st.integers(min_value=1, max_value=4))
def test_replay_columns_equals_object_path(records, shards):
    """Whole-store and per-bucket column replays match the reference."""
    records.sort(key=lambda r: r.ts)
    store = ColumnarStore.from_records(records, "allnames")
    assert replay_partial_columns(store, "client_ip") \
        == replay_partial_batched(records, "client_ip")
    buckets = store.row_buckets("qname", shards)
    reference = partition_by_key(records, shards, lambda r: r.qname)
    for bucket, ref in zip(buckets, reference):
        assert replay_partial_columns(store, "client_ip", rows=bucket) \
            == replay_partial_batched(ref, "client_ip")


@pytest.mark.parametrize("ttl_override", (None, 0, 40))
def test_replay_columns_ttl_override(ttl_override):
    records = _hand_records("public-cdn", 300, seed=9)
    store = ColumnarStore.from_records(records, "public-cdn")
    assert replay_partial_columns(store, "ecs_address",
                                  ttl_override=ttl_override) \
        == replay_partial_batched(records, "ecs_address",
                                  ttl_override=ttl_override)


# ---------------------------------------------------------------------------
# Row-group layout (v2)


@pytest.mark.parametrize("name", sorted(RECORD_STRATEGIES))
@settings(max_examples=25, deadline=None)
@given(data=st.data())
def test_v2_roundtrip_property(name, data, tmp_path_factory):
    """Any group budget — 1, many, or > rows — round-trips exactly.

    Group-local dictionaries mean a string's code differs between
    groups; equality through both the flattening ``ColumnarStore.open``
    path and the streaming ``RowGroupReader`` path proves the remap.
    """
    records = data.draw(st.lists(RECORD_STRATEGIES[name], max_size=40))
    records.sort(key=lambda r: r.ts)
    budget = data.draw(st.integers(min_value=1, max_value=60))
    path = tmp_path_factory.mktemp("v2prop") / "trace.col"
    assert write_columnar_stream(records, path, name, budget) \
        == len(records)
    assert is_columnar(path)
    assert path.read_bytes()[:8] == MAGIC_V2
    with ColumnarStore.open(path) as flat:
        assert flat.to_records() == records
    with RowGroupReader(path) as reader:
        assert reader.group_count == -(-len(records) // budget) \
            if records else reader.group_count == 0
        assert sum(reader.group_rows(i)
                   for i in range(reader.group_count)) == len(records)
        assert list(reader.iter_records()) == records
        for i in range(reader.group_count):
            assert reader.group_rows(i) <= budget


def test_v2_group_dictionaries_are_group_local(tmp_path):
    """Each group's dictionary holds only strings that group uses."""
    records = _hand_records("allnames", 90, seed=7)
    path = tmp_path / "g.col"
    write_columnar_stream(records, path, "allnames", 20)
    with RowGroupReader(path) as reader:
        assert reader.group_count == 5
        for i in range(reader.group_count):
            store = reader.group(i)
            lo = i * 20
            chunk = records[lo:lo + 20]
            assert store.to_records() == chunk
            assert set(store.dictionary("qname")) \
                == {r.qname for r in chunk}


def test_convert_v1_to_v2_and_back_byte_identical(tmp_path):
    records = _hand_records("cdn", 120, seed=5)
    v1 = tmp_path / "v1.col"
    write_columnar(records, v1, "cdn")
    v2 = tmp_path / "v2.col"
    assert convert_columnar(v1, v2, row_group_rows=32) == len(records)
    assert v2.read_bytes()[:8] == MAGIC_V2
    assert read_columnar(v2) == records
    assert file_info(v2)["row_groups"] == 4
    back = tmp_path / "back.col"
    assert convert_columnar(v2, back) == len(records)
    assert back.read_bytes() == v1.read_bytes()


def test_write_columnar_sorted_equals_stable_sort(tmp_path):
    """The external sort's spill-and-merge == one in-memory stable sort."""
    rng = random.Random(2)
    records = _hand_records("allnames", 150, seed=4)
    # Unsorted input with heavy ts ties: stability is observable.
    for r in records:
        r.ts = float(rng.randrange(6))
    rng.shuffle(records)
    reference = sorted(records, key=lambda r: r.ts)
    spilled = tmp_path / "spill.col"
    assert write_columnar_sorted(iter(records), spilled, "allnames",
                                 row_group_rows=16) == len(records)
    assert read_columnar(spilled) == reference
    assert not list(tmp_path.glob("*.run*")), "spill runs must be removed"
    in_memory = tmp_path / "mem.col"
    assert write_columnar_sorted(iter(records), in_memory, "allnames",
                                 row_group_rows=4096) == len(records)
    assert read_columnar(in_memory) == reference


def _overlapping_shards(tmp_path, version: int, shards: int = 3):
    """Pre-sorted shard files with forced cross-shard ts ties."""
    rng = random.Random(11)
    shard_lists = []
    paths = []
    for shard in range(shards):
        records = _hand_records("allnames", 40, seed=shard)
        for r in records[:10]:
            r.ts = float(rng.randrange(5))
        records.sort(key=lambda r: r.ts)
        shard_lists.append(records)
        path = tmp_path / f"s{shard}.v{version}.col"
        if version == 1:
            write_columnar(records, path, "allnames")
        else:
            write_columnar_stream(records, path, "allnames", 13)
        paths.append(path)
    return shard_lists, paths


@pytest.mark.parametrize("version", (1, 2))
def test_group_merge_byte_identical_to_rowwise(tmp_path, version):
    """Group-granular merge == per-row heapq reference, byte for byte."""
    shard_lists, paths = _overlapping_shards(tmp_path, version)
    reference = merge_sorted_records(shard_lists)
    grouped = tmp_path / "grouped.col"
    rowwise = tmp_path / "rowwise.col"
    assert merge_columnar_shards(paths, grouped) == len(reference)
    assert merge_columnar_shards_rowwise(paths, rowwise) == len(reference)
    assert read_columnar(grouped) == reference
    assert grouped.read_bytes() == rowwise.read_bytes()


def test_group_merge_v2_output_layout(tmp_path):
    shard_lists, paths = _overlapping_shards(tmp_path, 2)
    reference = merge_sorted_records(shard_lists)
    out = tmp_path / "merged.col"
    assert merge_columnar_shards(paths, out, row_group_rows=25) \
        == len(reference)
    assert out.read_bytes()[:8] == MAGIC_V2
    assert read_columnar(out) == reference
    with RowGroupReader(out) as reader:
        assert all(reader.group_rows(i) <= 25
                   for i in range(reader.group_count))


def test_merge_rejects_mixed_format_versions(tmp_path):
    records = _hand_records("allnames", 20)
    v1 = tmp_path / "v1.col"
    v2 = tmp_path / "v2.col"
    write_columnar(records, v1, "allnames")
    write_columnar_stream(records, v2, "allnames", 8)
    with pytest.raises(ValueError, match="mixed columnar format versions"):
        merge_columnar_shards([v1, v2], tmp_path / "out.col")


def test_row_group_reader_wraps_v1(tmp_path):
    """v1 files open through the v2 reader as a single group."""
    records = _hand_records("public-cdn", 50)
    path = tmp_path / "v1.col"
    write_columnar(records, path, "public-cdn")
    with RowGroupReader(path) as reader:
        assert reader.format_version == 1
        assert reader.group_count == 1
        assert reader.group_rows(0) == len(records)
        assert reader.bucket_ranges() is None
        assert list(reader.iter_records()) == records
        assert reader.group(0).to_records() == records


def test_prebucket_groups_and_ranges(tmp_path):
    from repro.engine.sharding import stable_bucket
    records = _hand_records("allnames", 160, seed=6)
    src = tmp_path / "flat.col"
    write_columnar_stream(records, src, "allnames", 40)
    dst = tmp_path / "bucketed.col"
    shards = 4
    assert prebucket_columnar(src, dst, shards,
                              row_group_rows=30) == len(records)
    ranges = bucketed_group_ranges(dst)
    assert ranges is not None and len(ranges) == shards
    assert bucketed_group_ranges(src) is None
    seen = []
    with RowGroupReader(dst) as reader:
        assert reader.bucket_ranges() == ranges
        for bucket, (lo, hi) in enumerate(ranges):
            for g in range(lo, hi):
                assert reader.group_bucket(g) == bucket
                store = reader.group(g)
                chunk = store.to_records()
                assert all(stable_bucket(r.qname, shards) == bucket
                           for r in chunk)
                # Bucket-local streams stay ts-sorted for replay.
                assert [r.ts for r in chunk] \
                    == sorted(r.ts for r in chunk)
                seen.extend(chunk)
    assert sorted(seen, key=lambda r: (r.ts, r.client_ip, r.qname)) \
        == sorted(records, key=lambda r: (r.ts, r.client_ip, r.qname))


@settings(max_examples=20, deadline=None)
@given(records=st.lists(RECORD_STRATEGIES["allnames"], max_size=60),
       budget=st.integers(min_value=1, max_value=20))
def test_replay_column_groups_equals_flat(records, budget):
    """Group-streaming replay == whole-store replay, any group split."""
    records.sort(key=lambda r: r.ts)
    flat = ColumnarStore.from_records(records, "allnames")
    groups = [ColumnarStore.from_records(records[lo:lo + budget],
                                         "allnames")
              for lo in range(0, len(records), budget)]
    assert replay_partial_column_groups(groups, "client_ip") \
        == replay_partial_columns(flat, "client_ip")


@pytest.mark.parametrize("ttl_override", (None, 0, 40))
def test_replay_column_groups_ttl_override(ttl_override, tmp_path):
    records = _hand_records("public-cdn", 300, seed=9)
    path = tmp_path / "pc.col"
    write_columnar_stream(records, path, "public-cdn", 64)
    with RowGroupReader(path) as reader:
        groups = [reader.group(i) for i in range(reader.group_count)]
        got = replay_partial_column_groups(groups, "ecs_address",
                                           ttl_override=ttl_override)
    flat = ColumnarStore.from_records(records, "public-cdn")
    assert got == replay_partial_columns(flat, "ecs_address",
                                         ttl_override=ttl_override)
