"""Tests for the ECS-aware cache: compliant behavior and every deviation."""

import pytest

from repro.core import EcsCache, ScopeMode, effective_scope
from repro.core.cache import ScopeTracker
from repro.dnslib import (A, EcsOption, Message, Name, RecordType,
                          ResourceRecord)
from repro.net import SimClock

QNAME = Name.from_text("www.example.com")


def response_with(scope, source=24, address="192.0.2.0", ttl=60,
                  answer="203.0.113.1"):
    """A response carrying one A record and an ECS option."""
    query_ecs = EcsOption.from_client_address(address, source)
    msg = Message(is_response=True)
    msg.answers.append(ResourceRecord(QNAME, RecordType.A, ttl, A(answer)))
    msg.set_ecs(query_ecs.response_to(scope))
    return msg, query_ecs


class TestEffectiveScope:
    def test_scope_below_source_kept(self):
        assert effective_scope(16, 24) == 16

    def test_scope_above_source_clamped(self):
        # RFC 7871 section 7.3.1; the paper verifies 9 resolvers doing this.
        assert effective_scope(32, 24) == 24

    def test_clamp_disabled(self):
        assert effective_scope(32, 24, enforce_scope_le_source=False) == 32


class TestCompliantCache:
    def setup_method(self):
        self.clock = SimClock()
        self.cache = EcsCache(self.clock)

    def test_miss_on_empty(self):
        assert self.cache.lookup(QNAME, RecordType.A, "192.0.2.1") is None
        assert self.cache.stats.misses == 1

    def test_hit_same_scope_prefix(self):
        msg, ecs = response_with(scope=24)
        self.cache.store(QNAME, RecordType.A, msg, ecs)
        assert self.cache.lookup(QNAME, RecordType.A, "192.0.2.200") is not None

    def test_miss_across_scope_boundary(self):
        msg, ecs = response_with(scope=24)
        self.cache.store(QNAME, RecordType.A, msg, ecs)
        assert self.cache.lookup(QNAME, RecordType.A, "192.0.3.1") is None

    def test_scope16_covers_sibling_24s(self):
        msg, ecs = response_with(scope=16)
        self.cache.store(QNAME, RecordType.A, msg, ecs)
        assert self.cache.lookup(QNAME, RecordType.A, "192.0.99.1") is not None

    def test_scope0_covers_everyone(self):
        msg, ecs = response_with(scope=0)
        self.cache.store(QNAME, RecordType.A, msg, ecs)
        assert self.cache.lookup(QNAME, RecordType.A, "8.8.8.8") is not None

    def test_scope_gt_source_treated_as_source(self):
        msg, ecs = response_with(scope=32, source=24)
        self.cache.store(QNAME, RecordType.A, msg, ecs)
        # Cached at /24, so a same-/24 client hits.
        assert self.cache.lookup(QNAME, RecordType.A, "192.0.2.77") is not None

    def test_expiry(self):
        msg, ecs = response_with(scope=24, ttl=30)
        self.cache.store(QNAME, RecordType.A, msg, ecs)
        self.clock.advance(31)
        assert self.cache.lookup(QNAME, RecordType.A, "192.0.2.1") is None

    def test_live_before_expiry(self):
        msg, ecs = response_with(scope=24, ttl=30)
        self.cache.store(QNAME, RecordType.A, msg, ecs)
        self.clock.advance(29)
        assert self.cache.lookup(QNAME, RecordType.A, "192.0.2.1") is not None

    def test_ttl_ages_on_hit(self):
        msg, ecs = response_with(scope=24, ttl=60)
        self.cache.store(QNAME, RecordType.A, msg, ecs)
        self.clock.advance(20)
        hit = self.cache.lookup(QNAME, RecordType.A, "192.0.2.1")
        assert hit.answers[0].ttl == 40

    def test_multiple_subnet_entries_coexist(self):
        # The blow-up mechanism of section 7: one question, many entries.
        for third_octet in range(5):
            msg, ecs = response_with(scope=24,
                                     address=f"192.0.{third_octet}.0")
            self.cache.store(QNAME, RecordType.A, msg, ecs)
        assert self.cache.size() == 5

    def test_same_subnet_replaces(self):
        msg1, ecs1 = response_with(scope=24)
        msg2, ecs2 = response_with(scope=24, answer="203.0.113.9")
        self.cache.store(QNAME, RecordType.A, msg1, ecs1)
        self.cache.store(QNAME, RecordType.A, msg2, ecs2)
        assert self.cache.size() == 1
        hit = self.cache.lookup(QNAME, RecordType.A, "192.0.2.5")
        assert hit.answers[0].rdata.address == "203.0.113.9"

    def test_non_ecs_entry_global(self):
        msg = Message(is_response=True)
        msg.answers.append(ResourceRecord(QNAME, RecordType.A, 60,
                                          A("203.0.113.5")))
        self.cache.store(QNAME, RecordType.A, msg, None)
        assert self.cache.lookup(QNAME, RecordType.A, "8.8.8.8") is not None
        assert self.cache.lookup(QNAME, RecordType.A, None) is not None

    def test_family_mismatch_no_hit(self):
        msg, ecs = response_with(scope=24)
        self.cache.store(QNAME, RecordType.A, msg, ecs)
        assert self.cache.lookup(QNAME, RecordType.A, "2001:db8::1") is None

    def test_stats_max_size(self):
        for i in range(3):
            msg, ecs = response_with(scope=24, address=f"10.0.{i}.0")
            self.cache.store(QNAME, RecordType.A, msg, ecs)
        assert self.cache.stats.max_size == 3

    def test_flush(self):
        msg, ecs = response_with(scope=24)
        self.cache.store(QNAME, RecordType.A, msg, ecs)
        self.cache.flush()
        assert self.cache.size() == 0

    def test_hit_rate(self):
        msg, ecs = response_with(scope=0)
        self.cache.store(QNAME, RecordType.A, msg, ecs)
        self.cache.lookup(QNAME, RecordType.A, "1.1.1.1")
        self.cache.lookup(Name.from_text("other."), RecordType.A, "1.1.1.1")
        assert self.cache.stats.hit_rate() == 0.5


class TestDeviantCaches:
    def test_scope_ignoring_reuses_across_clients(self):
        # The 103-resolver behavior of section 6.3.
        cache = EcsCache(SimClock(), scope_mode=ScopeMode.IGNORE)
        msg, ecs = response_with(scope=24)
        cache.store(QNAME, RecordType.A, msg, ecs)
        assert cache.lookup(QNAME, RecordType.A, "8.8.8.8") is not None

    def test_clamp_22(self):
        # The 8-resolver behavior: scopes capped at /22.
        clock = SimClock()
        cache = EcsCache(clock, scope_mode=ScopeMode.CLAMP, clamp_bits=22)
        msg, ecs = response_with(scope=24, address="10.0.0.0")
        cache.store(QNAME, RecordType.A, msg, ecs)
        # 10.0.1.x is a different /24 but the same /22: the clamped cache
        # wrongly reuses the entry.
        assert cache.lookup(QNAME, RecordType.A, "10.0.1.1") is not None
        # 10.0.4.x leaves the /22.
        assert cache.lookup(QNAME, RecordType.A, "10.0.4.1") is None

    def test_over_24_scopes_kept_when_unenforced(self):
        cache = EcsCache(SimClock(), enforce_scope_le_source=False)
        msg, ecs = response_with(scope=32, source=32, address="10.0.0.7")
        cache.store(QNAME, RecordType.A, msg, ecs)
        assert cache.lookup(QNAME, RecordType.A, "10.0.0.7") is not None
        assert cache.lookup(QNAME, RecordType.A, "10.0.0.8") is None

    def test_zero_scope_not_cached(self):
        # The misconfigured resolver of section 8.1 cannot reuse scope-0.
        cache = EcsCache(SimClock(), cache_zero_scope=False)
        msg, ecs = response_with(scope=0)
        assert cache.store(QNAME, RecordType.A, msg, ecs) is False
        assert cache.size() == 0

    def test_max_ttl_cap(self):
        clock = SimClock()
        cache = EcsCache(clock, max_ttl=10)
        msg, ecs = response_with(scope=24, ttl=300)
        cache.store(QNAME, RecordType.A, msg, ecs)
        clock.advance(11)
        assert cache.lookup(QNAME, RecordType.A, "192.0.2.1") is None


class TestScopeTracker:
    def test_plain_mode_single_entry(self):
        t = ScopeTracker(use_ecs=False)
        assert not t.access(0, "a.", 1, "10.0.0.1", 24, 20)
        assert t.access(1, "a.", 1, "10.9.9.9", 24, 20)
        assert t.max_size == 1

    def test_ecs_mode_per_subnet_entries(self):
        t = ScopeTracker(use_ecs=True)
        t.access(0, "a.", 1, "10.0.0.1", 24, 20)
        t.access(1, "a.", 1, "10.0.1.1", 24, 20)
        assert t.max_size == 2
        assert t.hits == 0

    def test_ecs_mode_same_subnet_hit(self):
        t = ScopeTracker(use_ecs=True)
        t.access(0, "a.", 1, "10.0.0.1", 24, 20)
        assert t.access(1, "a.", 1, "10.0.0.250", 24, 20)

    def test_scope_zero_shared(self):
        t = ScopeTracker(use_ecs=True)
        t.access(0, "a.", 1, "10.0.0.1", 0, 20)
        assert t.access(1, "a.", 1, "99.99.99.99", 0, 20)

    def test_expiry_shrinks_size(self):
        t = ScopeTracker()
        t.access(0, "a.", 1, "10.0.0.1", 24, 20)
        t.access(50, "b.", 1, "10.0.0.1", 24, 20)
        assert t.current_size == 1

    def test_expired_then_refetch_counts_miss(self):
        t = ScopeTracker()
        t.access(0, "a.", 1, "10.0.0.1", 24, 20)
        assert not t.access(30, "a.", 1, "10.0.0.1", 24, 20)
        assert t.misses == 2

    def test_reinsertion_extends_expiry(self):
        t = ScopeTracker()
        t.access(0, "a.", 1, "10.0.0.1", 24, 20)    # expires 20
        t.access(19, "b.", 1, "10.0.0.1", 24, 20)
        t.access(19.5, "a.", 1, "10.0.0.1", 24, 20)  # hit; entry still to 20
        assert not t.access(25, "a.", 1, "10.0.0.1", 24, 20)  # expired again

    def test_hit_rate(self):
        t = ScopeTracker()
        t.access(0, "a.", 1, "10.0.0.1", 24, 100)
        t.access(1, "a.", 1, "10.0.0.2", 24, 100)
        assert t.hit_rate() == 0.5

    def test_qtype_distinguishes_entries(self):
        t = ScopeTracker(use_ecs=False)
        t.access(0, "a.", 1, None, 0, 100)
        assert not t.access(1, "a.", 28, None, 0, 100)
