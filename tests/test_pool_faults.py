"""Failure modes of the worker pool and the spec-dispatch protocol.

A parallel engine earns trust by how it fails: a dead worker must
surface as a prompt, attributable error (never a hang), a poisoned shard
spec must fail fast in the parent naming the shard, and the pool must
shut down idempotently.  This suite also pins the serialization economics
the protocol exists for — shared run state pickled once per run and
decoded once per worker, no matter how many chunks the run dispatches.
"""

from __future__ import annotations

import os
import pickle
import threading
from typing import Any, List, Tuple

import pytest

from repro.engine import (PoolShutdownError, ShardDispatchError,
                          WorkerCrashError, WorkerPool, run_sharded)
from repro.engine import pool as pool_mod
from repro.engine.pool import (decode_header, derived_state, encode_header,
                               encode_shard_args, fn_token, header_digest,
                               header_loads)


def _double(shard_index: int) -> int:
    return shard_index * 2


def _exit_worker(target: int, shard_index: int) -> int:
    """Dies hard (bypassing exception handling) on the target shard."""
    if shard_index == target:
        os._exit(13)
    return shard_index


def _report_header_loads(tag: str, shard_index: int) -> int:
    """Returns how many run headers this process has ever decoded."""
    del tag, shard_index
    return header_loads()


class CountingState:
    """Shared run state that counts its own pickling (parent side)."""

    serializations = 0

    def __init__(self, payload: str = "shared"):
        self.payload = payload

    def __getstate__(self) -> dict:
        type(self).serializations += 1
        return {"payload": self.payload}

    def __setstate__(self, state: dict) -> None:
        self.payload = state["payload"]


def _use_state(state: CountingState, shard_index: int) -> str:
    return f"{state.payload}:{shard_index}"


# ---------------------------------------------------------------------------
# Worker crashes.


def test_worker_crash_raises_promptly_with_task_name():
    with WorkerPool(2) as pool:
        with pytest.raises(WorkerCrashError, match="chaos-crash.*died"):
            run_sharded(_exit_worker, [(i,) for i in range(4)], workers=2,
                        task="chaos-crash", chunk_size=1, shared=(2,),
                        pool=pool)


def test_persistent_pool_recovers_after_crash():
    """A crash discards the broken executor; the next batch respawns."""
    with WorkerPool(2) as pool:
        with pytest.raises(WorkerCrashError):
            run_sharded(_exit_worker, [(i,) for i in range(4)], workers=2,
                        chunk_size=1, shared=(1,), pool=pool)
        results, report = run_sharded(_double, [(i,) for i in range(4)],
                                      workers=2, chunk_size=1, pool=pool)
        assert results == [0, 2, 4, 6]
        assert report.pool_mode == "persistent"


def test_spawn_per_batch_crash_also_attributed():
    with WorkerPool(2, mode="spawn-per-batch") as pool:
        with pytest.raises(WorkerCrashError, match="worker process died"):
            run_sharded(_exit_worker, [(i,) for i in range(4)], workers=2,
                        chunk_size=1, shared=(0,), pool=pool)


# ---------------------------------------------------------------------------
# Shutdown semantics.


def test_shutdown_is_idempotent_even_on_unused_pool():
    pool = WorkerPool(2)
    pool.shutdown()
    pool.shutdown()  # second call must be a no-op, not an error

    used = WorkerPool(2)
    assert run_sharded(_double, [(0,), (1,)], workers=2,
                       pool=used)[0] == [0, 2]
    used.shutdown()
    used.shutdown()


def test_use_after_shutdown_raises_pool_shutdown_error():
    pool = WorkerPool(2)
    pool.shutdown()
    with pytest.raises(PoolShutdownError, match="shut down"):
        run_sharded(_double, [(0,), (1,)], workers=2, pool=pool)


def test_pool_constructor_validates():
    with pytest.raises(ValueError, match="workers must be >= 1"):
        WorkerPool(0)
    with pytest.raises(ValueError, match="unknown pool mode"):
        WorkerPool(2, mode="threads")


# ---------------------------------------------------------------------------
# Poisoned specs fail fast, in the parent, naming the culprit.


def test_unpicklable_shard_arg_names_the_shard():
    pool = WorkerPool(2)
    args: List[Tuple[Any, ...]] = [(0,), (1,), (threading.Lock(),), (3,)]
    with pytest.raises(ShardDispatchError, match=r"shard 2 spec"):
        run_sharded(_double, args, workers=2, pool=pool)
    # Dispatch failed during encoding, before anything was submitted:
    # the persistent pool never had to spawn its executor.
    assert pool._executor is None
    pool.shutdown()


def test_unpicklable_shared_state_fails_fast():
    with pytest.raises(ShardDispatchError, match="shared run state"):
        run_sharded(_double, [(0,), (1,)], workers=2,
                    shared=(threading.Lock(),))


def test_fn_token_rejects_unaddressable_functions():
    with pytest.raises(ShardDispatchError, match="module-level"):
        fn_token(lambda x: x)

    def nested(x: int) -> int:
        return x

    with pytest.raises(ShardDispatchError, match="module-level"):
        fn_token(nested)
    assert fn_token(_double) == (__name__, "_double")


# ---------------------------------------------------------------------------
# Serialization economics: once per run, once per worker.


def test_shared_state_pickled_once_per_run_despite_many_chunks():
    """The re-pickle fix: 8 shards x chunk_size=1 is still ONE pickle."""
    CountingState.serializations = 0
    state = CountingState()
    with WorkerPool(2) as pool:
        results, _ = run_sharded(_use_state, [(i,) for i in range(8)],
                                 workers=2, chunk_size=1, shared=(state,),
                                 pool=pool)
    assert results == [f"shared:{i}" for i in range(8)]
    assert CountingState.serializations == 1


def test_header_decoded_once_per_worker_not_per_chunk():
    """Every worker reports exactly one header load for the whole run.

    Workers fork with the parent's load counter at some baseline; eight
    single-shard chunks through two workers must each see baseline + 1 —
    the memoized decode — never one load per chunk.
    """
    baseline = header_loads()
    with WorkerPool(2) as pool:
        results, _ = run_sharded(_report_header_loads,
                                 [(i,) for i in range(8)], workers=2,
                                 chunk_size=1, shared=("run-tag",),
                                 pool=pool)
    assert set(results) == {baseline + 1}


def test_decode_header_memoizes_by_content():
    loads_before = header_loads()
    header = encode_header(_double, ("memo-test",))
    first = decode_header(header)
    assert decode_header(header) == first
    # Cache hits return the stored object without touching pickle.
    assert decode_header(header) is decode_header(header)
    assert header_loads() == loads_before + 1
    assert first[0] is _double
    assert first[1] == ("memo-test",)


def test_derived_state_builds_once_per_key():
    digest = header_digest(b"derived-state-test")
    calls = []

    def build() -> str:
        calls.append(1)
        return "built"

    assert derived_state(digest, "dataset", build) == "built"
    assert derived_state(digest, "dataset", build) == "built"
    assert len(calls) == 1
    # A different tag under the same run digest builds separately.
    assert derived_state(digest, "other", build) == "built"
    assert len(calls) == 2


def test_worker_caches_stay_bounded():
    for i in range(6):
        decode_header(encode_header(_double, (f"evict-{i}",)))
    assert len(pool_mod._HEADER_CACHE) <= pool_mod._CACHE_KEEP


def test_encode_shard_args_roundtrip_and_payload_is_compact():
    blob = encode_shard_args((3, 17), 3)
    assert pickle.loads(blob) == (3, 17)
    # Index-and-bound specs are tens of bytes — the structural guarantee
    # that record lists no longer cross the pool boundary.
    assert len(blob) < 64
