"""Property-based tests (hypothesis) on the core data structures and
protocol invariants."""

import ipaddress
import random

from hypothesis import given, settings, strategies as st

from repro.core.cache import ScopeTracker, effective_scope
from repro.dnslib import (A, EcsOption, Message, Name, RecordType,
                          ResourceRecord, decode_message, encode_message)
from repro.net.addr import (prefix_key, same_prefix, truncate_address)

# -- strategies --------------------------------------------------------------

labels = st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-",
                 min_size=1, max_size=12).filter(
    lambda s: not s.startswith("-") and not s.endswith("-"))
names = st.lists(labels, min_size=1, max_size=5).map(
    lambda parts: Name.from_text(".".join(parts)))
v4_addresses = st.integers(min_value=0, max_value=2**32 - 1).map(
    lambda n: str(ipaddress.IPv4Address(n)))
v6_addresses = st.integers(min_value=0, max_value=2**128 - 1).map(
    lambda n: str(ipaddress.IPv6Address(n)))


class TestNameProperties:
    @given(names)
    def test_text_roundtrip(self, name):
        assert Name.from_text(name.to_text()) == name

    @given(names)
    def test_child_parent_inverse(self, name):
        assert name.child("xx").parent() == name

    @given(names, names)
    def test_concatenate_subdomain(self, a, b):
        assert a.concatenate(b).is_subdomain_of(b)

    @given(names)
    def test_ancestor_count(self, name):
        assert len(list(name.ancestors())) == len(name) + 1

    @given(names, names)
    def test_subdomain_antisymmetric_unless_equal(self, a, b):
        if a.is_subdomain_of(b) and b.is_subdomain_of(a):
            assert a == b


class TestEcsProperties:
    @given(v4_addresses, st.integers(min_value=0, max_value=32),
           st.integers(min_value=0, max_value=32))
    def test_v4_wire_roundtrip(self, address, source, scope):
        opt = EcsOption.from_client_address(address, source,
                                            scope_prefix_length=scope)
        assert EcsOption.from_wire(opt.to_wire()) == opt

    @given(v6_addresses, st.integers(min_value=0, max_value=128))
    def test_v6_wire_roundtrip(self, address, source):
        opt = EcsOption.from_client_address(address, source)
        assert EcsOption.from_wire(opt.to_wire()) == opt

    @given(v4_addresses, st.integers(min_value=0, max_value=32))
    def test_truncation_idempotent(self, address, bits):
        once = truncate_address(address, bits)
        assert truncate_address(once, bits) == once

    @given(v4_addresses, st.integers(min_value=0, max_value=32))
    def test_option_covers_original_address(self, address, bits):
        opt = EcsOption.from_client_address(address, bits)
        assert opt.covers(address, bits=bits)

    @given(v4_addresses, st.integers(min_value=1, max_value=32))
    def test_shorter_prefix_coarsens(self, address, bits):
        # Any two addresses equal at /bits are equal at every shorter prefix.
        other = truncate_address(address, bits)
        for shorter in (0, bits // 2, bits - 1):
            assert same_prefix(address, other, shorter)

    @given(v4_addresses, v4_addresses,
           st.integers(min_value=0, max_value=32))
    def test_prefix_key_iff_same_prefix(self, a, b, bits):
        assert (prefix_key(a, bits) == prefix_key(b, bits)) == \
            same_prefix(a, b, bits)

    @given(st.integers(min_value=0, max_value=32),
           st.integers(min_value=0, max_value=32))
    def test_effective_scope_never_exceeds_source(self, scope, source):
        assert effective_scope(scope, source) <= source

    @given(v4_addresses, st.integers(min_value=0, max_value=32),
           st.integers(min_value=0, max_value=32))
    def test_response_echo_matches_query(self, address, source, scope):
        query = EcsOption.from_client_address(address, source)
        assert query.response_to(scope).matches_query(query)


class TestMessageProperties:
    @given(names, st.sampled_from([RecordType.A, RecordType.AAAA,
                                   RecordType.NS, RecordType.TXT]),
           st.integers(min_value=0, max_value=0xFFFF),
           st.booleans())
    def test_query_wire_roundtrip(self, qname, qtype, msg_id, rd):
        msg = Message.make_query(qname, qtype, msg_id=msg_id,
                                 recursion_desired=rd)
        out = decode_message(encode_message(msg))
        assert out.question.qname == qname
        assert out.question.qtype == qtype
        assert out.msg_id == msg_id
        assert out.recursion_desired == rd

    @given(names, st.lists(v4_addresses, min_size=1, max_size=8),
           st.integers(min_value=0, max_value=86400))
    def test_answer_wire_roundtrip(self, qname, addresses, ttl):
        msg = Message.make_query(qname, RecordType.A)
        resp = msg.make_response()
        for address in addresses:
            resp.answers.append(ResourceRecord(qname, RecordType.A, ttl,
                                               A(address)))
        out = decode_message(encode_message(resp))
        assert out.answer_addresses() == addresses
        assert all(rr.ttl == ttl for rr in out.answers)

    @given(names, v4_addresses, st.integers(min_value=0, max_value=32))
    def test_ecs_attached_roundtrip(self, qname, address, source):
        ecs = EcsOption.from_client_address(address, source)
        msg = Message.make_query(qname, RecordType.A, ecs=ecs)
        assert decode_message(encode_message(msg)).ecs() == ecs

    @given(st.binary(min_size=0, max_size=64))
    def test_decoder_never_crashes_unhandled(self, junk):
        from repro.dnslib import DnsError
        try:
            decode_message(junk)
        except DnsError:
            pass  # protocol errors are the contract; anything else fails


class TestCacheInvariants:
    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.floats(min_value=0, max_value=1000,
                            allow_nan=False),
                  st.sampled_from(["a.", "b.", "c."]),
                  st.sampled_from(["10.0.0.1", "10.0.1.1", "10.1.0.1"]),
                  st.sampled_from([0, 16, 24]),
                  st.sampled_from([5, 20, 60])),
        min_size=1, max_size=80))
    def test_tracker_size_counts_and_hits(self, events):
        tracker = ScopeTracker(use_ecs=True)
        events = sorted(events, key=lambda e: e[0])
        for ts, qname, client, scope, ttl in events:
            tracker.access(ts, qname, 1, client, scope, ttl)
        assert tracker.hits + tracker.misses == len(events)
        assert 0 <= tracker.current_size <= tracker.max_size
        assert tracker.max_size <= tracker.misses

    @settings(max_examples=30, deadline=None)
    @given(st.lists(
        st.tuples(st.floats(min_value=0, max_value=500, allow_nan=False),
                  st.sampled_from(["a.", "b."]),
                  st.sampled_from(["10.0.%d.1" % i for i in range(6)])),
        min_size=1, max_size=60))
    def test_ecs_cache_never_beats_plain_cache(self, events):
        # Scope-keyed caching can only fragment entries: the ECS cache's
        # hit count never exceeds the plain cache's, and its peak size is
        # never smaller.
        ecs = ScopeTracker(use_ecs=True)
        plain = ScopeTracker(use_ecs=False)
        for ts, qname, client in sorted(events, key=lambda e: e[0]):
            ecs.access(ts, qname, 1, client, 24, 30)
            plain.access(ts, qname, 1, client, 24, 30)
        assert ecs.hits <= plain.hits
        assert ecs.max_size >= plain.max_size
