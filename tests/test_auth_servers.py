"""Tests for authoritative servers: static zones, the CDN, the scan
experiment server, and the delegation hierarchy."""

import pytest

from repro.auth import (AuthoritativeServer, CdnAuthoritative, DnsHierarchy,
                        EdgePool, ScanExperimentServer, UnroutablePolicy,
                        build_edge_pools, decode_probe_name,
                        encode_probe_name, fixed_scope, source_minus)
from repro.dnslib import (EcsOption, Message, Name, Rcode, RecordType, Zone,
                          encode_message)
from repro.net import Network, Topology, city


@pytest.fixture()
def world():
    topology = Topology()
    net = Network(topology)
    infra = topology.create_as("infra", "US")
    return topology, net, infra


def direct_query(net, src, dst, qname, qtype=RecordType.A, ecs=None,
                 use_edns=True):
    msg = Message.make_query(Name.from_text(qname), qtype, msg_id=1,
                             ecs=ecs, use_edns=use_edns)
    return net.query(src, dst, msg).response


class TestScopeFunctions:
    def test_fixed_scope_caps_at_source(self):
        policy = fixed_scope(24)
        assert policy(EcsOption.from_client_address("1.2.3.4", 16)) == 16
        assert policy(EcsOption.from_client_address("1.2.3.4", 32)) == 24

    def test_source_minus(self):
        policy = source_minus(4)
        assert policy(EcsOption.from_client_address("1.2.3.4", 24)) == 20
        assert policy(EcsOption.from_client_address("1.2.3.4", 2)) == 0


class TestAuthoritativeServer:
    def _server(self, world, ecs_scope=None, supports_edns=True):
        topology, net, infra = world
        zone = Zone(Name.from_text("example.org"))
        zone.add_soa()
        zone.add_text("www", "A", "203.0.113.10")
        ip = infra.host_in(city("Ashburn"))
        server = AuthoritativeServer(ip, [zone], ecs_scope=ecs_scope,
                                     supports_edns=supports_edns)
        net.attach(server)
        client = infra.host_in(city("Ashburn"))
        return net, server, client

    def test_positive_answer(self, world):
        net, server, client = self._server(world)
        resp = direct_query(net, client, server.ip, "www.example.org")
        assert resp.rcode == Rcode.NOERROR
        assert resp.answer_addresses() == ["203.0.113.10"]
        assert resp.authoritative

    def test_nxdomain(self, world):
        net, server, client = self._server(world)
        resp = direct_query(net, client, server.ip, "nope.example.org")
        assert resp.rcode == Rcode.NXDOMAIN

    def test_refused_out_of_zone(self, world):
        net, server, client = self._server(world)
        resp = direct_query(net, client, server.ip, "www.elsewhere.net")
        assert resp.rcode == Rcode.REFUSED

    def test_non_ecs_server_ignores_option(self, world):
        # RFC behavior for non-adopters: the option is silently ignored.
        net, server, client = self._server(world, ecs_scope=None)
        ecs = EcsOption.from_client_address("10.1.2.3", 24)
        resp = direct_query(net, client, server.ip, "www.example.org",
                            ecs=ecs)
        assert resp.rcode == Rcode.NOERROR
        assert resp.ecs() is None

    def test_ecs_server_echoes_scope(self, world):
        net, server, client = self._server(world, ecs_scope=fixed_scope(20))
        ecs = EcsOption.from_client_address("10.1.2.3", 24)
        resp = direct_query(net, client, server.ip, "www.example.org",
                            ecs=ecs)
        echoed = resp.ecs()
        assert echoed is not None
        assert echoed.scope_prefix_length == 20
        assert echoed.matches_query(ecs)

    def test_no_ecs_in_response_without_query_option(self, world):
        net, server, client = self._server(world, ecs_scope=fixed_scope(20))
        resp = direct_query(net, client, server.ip, "www.example.org")
        assert resp.ecs() is None

    def test_pre_edns_server_formerr(self, world):
        net, server, client = self._server(world, supports_edns=False)
        resp = direct_query(net, client, server.ip, "www.example.org")
        assert resp.rcode == Rcode.FORMERR

    def test_pre_edns_server_answers_plain_queries(self, world):
        net, server, client = self._server(world, supports_edns=False)
        resp = direct_query(net, client, server.ip, "www.example.org",
                            use_edns=False)
        assert resp.rcode == Rcode.NOERROR

    def test_query_log(self, world):
        net, server, client = self._server(world)
        direct_query(net, client, server.ip, "www.example.org",
                     ecs=EcsOption.from_client_address("10.0.0.1", 24))
        assert len(server.log) == 1
        record = server.log[0]
        assert record.has_ecs and record.ecs_source_len == 24
        assert record.src_ip == client

    def test_garbage_datagram_dropped(self, world):
        net, server, client = self._server(world)
        assert server.handle_datagram(b"\x00", client, net) is None

    def test_zone_for_most_specific(self, world):
        topology, net, infra = world
        parent = Zone(Name.from_text("example.org"))
        parent.add_soa()
        child = Zone(Name.from_text("sub.example.org"))
        child.add_soa()
        server = AuthoritativeServer("9.9.9.9", [parent, child])
        assert server.zone_for(Name.from_text("a.sub.example.org")) is child


class TestCdn:
    def _cdn(self, world, **kwargs):
        topology, net, infra = world
        cdn_as = topology.create_as("cdn", "US")
        pools = build_edge_pools(topology, cdn_as,
                                 [city("Chicago"), city("Tokyo"),
                                  city("Frankfurt")], addresses_per_pool=3)
        ip = cdn_as.host_in(city("Ashburn"))
        cdn = CdnAuthoritative(ip, [Name.from_text("cdn.example.")], pools,
                               topology, **kwargs)
        net.attach(cdn)
        client_near_chicago = topology.create_as("mw", "US").host_in(
            city("Chicago"))
        return net, cdn, client_near_chicago

    def test_maps_by_resolver_without_ecs(self, world):
        net, cdn, client = self._cdn(world)
        resp = direct_query(net, client, cdn.ip, "www.cdn.example")
        assert resp.answer_addresses()
        assert cdn.decisions[-1].pool.city.name == "Chicago"
        assert cdn.decisions[-1].hint_source == "resolver"

    def test_maps_by_ecs_when_present(self, world):
        net, cdn, client = self._cdn(world)
        tokyo_client = world[0].create_as("jp", "JP").host_in(city("Tokyo"))
        ecs = EcsOption.from_client_address(tokyo_client, 24)
        resp = direct_query(net, client, cdn.ip, "www.cdn.example", ecs=ecs)
        assert cdn.decisions[-1].pool.city.name == "Tokyo"
        assert cdn.decisions[-1].hint_source == "ecs"
        assert resp.ecs().scope_prefix_length == 24

    def test_scope_capped_at_source(self, world):
        net, cdn, client = self._cdn(world)
        ecs = EcsOption.from_client_address("16.0.0.0", 16)
        resp = direct_query(net, client, cdn.ip, "www.cdn.example", ecs=ecs)
        assert resp.ecs().scope_prefix_length <= 16

    def test_whitelisting_hides_ecs_support(self, world):
        # The CDN dataset's defining behavior: non-whitelisted resolvers see
        # no trace of ECS support.
        net, cdn, client = self._cdn(world, whitelist={"1.2.3.4"})
        ecs = EcsOption.from_client_address("10.9.8.0", 24)
        resp = direct_query(net, client, cdn.ip, "www.cdn.example", ecs=ecs)
        assert resp.ecs() is None
        assert cdn.decisions[-1].hint_source == "resolver"

    def test_whitelisted_resolver_gets_ecs(self, world):
        net, cdn, client = self._cdn(world, whitelist=None)
        ecs = EcsOption.from_client_address("10.9.8.0", 24)
        resp = direct_query(net, client, cdn.ip, "www.cdn.example", ecs=ecs)
        assert resp.ecs() is not None

    def test_min_prefix_threshold_falls_back_to_resolver(self, world):
        net, cdn, client = self._cdn(world, min_source_prefix_v4=24)
        ecs = EcsOption.from_client_address("16.32.0.0", 16)
        resp = direct_query(net, client, cdn.ip, "www.cdn.example", ecs=ecs)
        assert cdn.decisions[-1].hint_source == "resolver"
        # Whitelisted-but-below-threshold answers carry scope 0.
        assert resp.ecs().scope_prefix_length == 0

    def test_unroutable_use_resolver_policy(self, world):
        net, cdn, client = self._cdn(
            world, unroutable_policy=UnroutablePolicy.USE_RESOLVER)
        ecs = EcsOption.from_client_address("127.0.0.1", 32)
        direct_query(net, client, cdn.ip, "www.cdn.example", ecs=ecs)
        assert cdn.decisions[-1].hint_source == "resolver"
        assert cdn.decisions[-1].pool.city.name == "Chicago"

    def test_unroutable_literal_policy_degrades(self, world):
        net, cdn, client = self._cdn(
            world, unroutable_policy=UnroutablePolicy.LITERAL)
        ecs = EcsOption.from_client_address("127.0.0.1", 32)
        direct_query(net, client, cdn.ip, "www.cdn.example", ecs=ecs)
        assert cdn.decisions[-1].hint_source == "unroutable-literal"

    def test_nodata_for_txt(self, world):
        net, cdn, client = self._cdn(world)
        resp = direct_query(net, client, cdn.ip, "www.cdn.example",
                            qtype=RecordType.TXT)
        assert resp.rcode == Rcode.NOERROR and not resp.answers

    def test_refused_outside_domains(self, world):
        net, cdn, client = self._cdn(world)
        resp = direct_query(net, client, cdn.ip, "www.other.example")
        assert resp.rcode == Rcode.REFUSED

    def test_answers_per_response(self, world):
        net, cdn, client = self._cdn(world, answers_per_response=2)
        resp = direct_query(net, client, cdn.ip, "www.cdn.example")
        assert len(resp.answer_addresses()) == 2

    def test_aaaa_only_returns_v6(self, world):
        net, cdn, client = self._cdn(world)
        resp = direct_query(net, client, cdn.ip, "www.cdn.example",
                            qtype=RecordType.AAAA)
        assert resp.answer_addresses() == []  # pools are v4-only

    def test_empty_edges_rejected(self, world):
        topology, net, infra = world
        with pytest.raises(ValueError):
            CdnAuthoritative("1.1.1.1", [Name.from_text("c.")], [], topology)


class TestScanExperiment:
    def test_probe_name_roundtrip(self):
        domain = Name.from_text("scan.example.")
        qname = encode_probe_name("192.168.7.9", domain)
        assert decode_probe_name(qname, domain) == "192.168.7.9"

    def test_probe_name_with_nonce(self):
        domain = Name.from_text("scan.example.")
        qname = encode_probe_name("10.0.0.1", domain, nonce="t42")
        assert decode_probe_name(qname, domain) == "10.0.0.1"

    def test_decode_rejects_other_names(self):
        domain = Name.from_text("scan.example.")
        assert decode_probe_name(Name.from_text("www.scan.example."),
                                 domain) is None
        assert decode_probe_name(Name.from_text("ip-1-2-3-4.other."),
                                 domain) is None

    def test_decode_rejects_bad_octets(self):
        domain = Name.from_text("scan.example.")
        assert decode_probe_name(Name.from_text("ip-999-2-3-4.scan.example."),
                                 domain) is None

    def test_server_answers_and_logs(self, world):
        topology, net, infra = world
        domain = Name.from_text("scan.example.")
        ip = infra.host_in(city("Cleveland"))
        server = ScanExperimentServer(ip, domain, "203.0.113.80")
        net.attach(server)
        client = infra.host_in(city("Cleveland"))
        qname = encode_probe_name("10.1.2.3", domain)
        ecs = EcsOption.from_client_address("85.0.0.0", 24)
        resp = direct_query(net, client, ip, qname.to_text(), ecs=ecs)
        assert resp.answer_addresses() == ["203.0.113.80"]
        # Scope = source − 4, per the paper's configuration.
        assert resp.ecs().scope_prefix_length == 20
        assert server.observations[-1].ingress_ip == "10.1.2.3"
        assert server.observations[-1].egress_ip == client

    def test_server_no_ecs_response_for_plain_query(self, world):
        topology, net, infra = world
        domain = Name.from_text("scan.example.")
        ip = infra.host_in(city("Cleveland"))
        server = ScanExperimentServer(ip, domain, "203.0.113.80")
        net.attach(server)
        client = infra.host_in(city("Cleveland"))
        resp = direct_query(net, client, ip, "ip-1-2-3-4.scan.example.")
        assert resp.ecs() is None


class TestHierarchy:
    def test_root_delegates_tlds(self, world):
        topology, net, infra = world
        hierarchy = DnsHierarchy(net, infra)
        zone = Zone(Name.from_text("example.com"))
        zone.add_soa()
        zone.add_text("www", "A", "1.2.3.4")
        hierarchy.host_zone(zone)
        client = infra.host_in(city("Ashburn"))
        root_resp = direct_query(net, client, hierarchy.root_ips[0],
                                 "www.example.com")
        assert not root_resp.authoritative
        ns = [rr for rr in root_resp.authority if rr.rdtype == RecordType.NS]
        assert ns and ns[0].name == Name.from_text("com.")
        assert root_resp.additional  # glue

    def test_shallow_delegation_rejected(self, world):
        topology, net, infra = world
        hierarchy = DnsHierarchy(net, infra)
        with pytest.raises(ValueError):
            hierarchy.delegate(Name.from_text("com."), ["1.1.1.1"])
