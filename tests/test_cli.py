"""Tests for the command-line interface."""

import pytest

from repro.cli import _Reporter, build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_seed_default(self):
        args = build_parser().parse_args(["scan"])
        assert args.seed == 0 and args.command == "scan"

    def test_all_command_has_every_knob(self):
        args = build_parser().parse_args(["all"])
        for attr in ("ingress", "scale", "allnames_scale", "hours", "probes",
                     "workers", "shards"):
            assert hasattr(args, attr)

    @pytest.mark.parametrize("argv", [
        ["generate", "allnames", "t.jsonl"],
        ["replay", "allnames", "t.jsonl"],
        ["blowup"],
        ["all"],
    ])
    def test_engine_flags_on_sharded_commands(self, argv):
        args = build_parser().parse_args(argv + ["--workers", "4",
                                                 "--shards", "6"])
        assert args.workers == 4 and args.shards == 6
        defaults = build_parser().parse_args(argv)
        assert defaults.workers == 1 and defaults.shards >= 1

    def test_quiet_flag(self):
        args = build_parser().parse_args(["--quiet", "scan"])
        assert args.quiet is True
        assert build_parser().parse_args(["scan"]).quiet is False


class TestReporter:
    def test_emit_creates_parent_directories_per_file(self, tmp_path):
        reporter = _Reporter(str(tmp_path / "deep" / "out"), quiet=True)
        reporter.emit("nested/section7/fig1", "hello")
        target = tmp_path / "deep" / "out" / "nested" / "section7" / "fig1.txt"
        assert target.read_text() == "hello\n"

    def test_quiet_suppresses_stdout_but_writes_files(self, tmp_path,
                                                      capsys):
        reporter = _Reporter(str(tmp_path), quiet=True)
        reporter.emit("report", "body")
        reporter.note("progress line")
        assert capsys.readouterr().out == ""
        assert (tmp_path / "report.txt").read_text() == "body\n"

    def test_loud_reporter_prints(self, capsys):
        reporter = _Reporter(None)
        reporter.emit("report", "body")
        reporter.note("progress")
        out = capsys.readouterr().out
        assert "body" in out and "progress" in out


class TestCommands:
    def test_census_prints_reports(self, capsys):
        rc = main(["--seed", "2", "census", "--scale", "0.004",
                   "--hours", "1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "probing strategies" in out
        assert "Table 1" in out
        assert "root-server ECS violations" in out

    def test_caching_command(self, capsys):
        rc = main(["--seed", "2", "caching", "--ingress", "30"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "caching behavior classes" in out

    def test_scan_command_writes_reports(self, tmp_path, capsys):
        rc = main(["--seed", "2", "--out", str(tmp_path), "scan",
                   "--ingress", "40"])
        assert rc == 0
        written = {p.name for p in tmp_path.glob("*.txt")}
        assert {"scan_summary.txt", "discovery.txt", "table1_scan.txt",
                "hidden.txt"} <= written
        assert "Scan dataset" in capsys.readouterr().out

    def test_pitfalls_command(self, capsys):
        rc = main(["--seed", "2", "pitfalls", "--probes", "25"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Table 2" in out
        assert "FIG6" in out and "FIG7" in out
        assert "penalty" in out

    def test_blowup_command(self, capsys):
        rc = main(["--seed", "2", "blowup", "--scale", "0.002",
                   "--allnames-scale", "0.05", "--hours", "0.1"])
        out = capsys.readouterr().out
        assert rc == 0
        assert "Figure 1" in out and "Figure 3" in out

    def test_generate_then_replay_roundtrip(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        rc = main(["--seed", "2", "generate", "allnames", str(trace),
                   "--scale", "0.01"])
        assert rc == 0 and trace.exists()
        rc = main(["replay", "allnames", str(trace)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "blow-up factor" in out

    def test_generate_public_cdn(self, tmp_path, capsys):
        trace = tmp_path / "pc.jsonl"
        rc = main(["--seed", "2", "generate", "public-cdn", str(trace),
                   "--scale", "0.002", "--hours", "0.05"])
        assert rc == 0
        rc = main(["replay", "public-cdn", str(trace)])
        assert rc == 0
        assert "records replayed" in capsys.readouterr().out

    def test_generate_cdn_dataset(self, tmp_path):
        trace = tmp_path / "cdn.jsonl"
        rc = main(["--seed", "2", "generate", "cdn", str(trace),
                   "--scale", "0.002", "--hours", "0.2"])
        assert rc == 0 and trace.stat().st_size > 0

    def test_generate_cleans_up_shard_files(self, tmp_path):
        trace = tmp_path / "trace.jsonl"
        rc = main(["--seed", "2", "--quiet", "generate", "allnames",
                   str(trace), "--scale", "0.01", "--workers", "2"])
        assert rc == 0
        assert [p.name for p in tmp_path.iterdir()] == ["trace.jsonl"]

    def test_generate_creates_parent_directories(self, tmp_path):
        trace = tmp_path / "sub" / "dir" / "trace.jsonl"
        rc = main(["--seed", "2", "--quiet", "generate", "allnames",
                   str(trace), "--scale", "0.01"])
        assert rc == 0 and trace.stat().st_size > 0

    def test_quiet_replay_writes_report_silently(self, tmp_path, capsys):
        trace = tmp_path / "trace.jsonl"
        main(["--seed", "2", "--quiet", "generate", "allnames", str(trace),
              "--scale", "0.01"])
        out_dir = tmp_path / "reports"
        rc = main(["--quiet", "--out", str(out_dir), "replay", "allnames",
                   str(trace), "--workers", "2"])
        assert rc == 0
        assert capsys.readouterr().out == ""
        assert "blow-up factor" in (out_dir / "replay.txt").read_text()


class TestColumnarCommands:
    def _generate(self, tmp_path, fmt=None):
        trace = tmp_path / ("trace.col" if fmt == "columnar"
                            else "trace.jsonl")
        argv = ["--seed", "2", "--quiet", "generate", "allnames",
                str(trace), "--scale", "0.01"]
        if fmt:
            argv += ["--format", fmt]
        assert main(argv) == 0
        return trace

    def test_convert_roundtrip_is_byte_identical(self, tmp_path, capsys):
        jsonl = self._generate(tmp_path)
        col = tmp_path / "trace.col"
        rc = main(["convert", "allnames", str(jsonl), str(col)])
        assert rc == 0
        assert "columnar" in capsys.readouterr().out
        back = tmp_path / "back.jsonl"
        # --to auto detects the columnar source and converts back.
        assert main(["--quiet", "convert", "allnames", str(col),
                     str(back)]) == 0
        assert back.read_bytes() == jsonl.read_bytes()

    def test_generate_format_columnar_matches_convert(self, tmp_path):
        jsonl = self._generate(tmp_path)
        direct = self._generate(tmp_path, fmt="columnar")
        converted = tmp_path / "converted.col"
        assert main(["--quiet", "convert", "allnames", str(jsonl),
                     str(converted)]) == 0
        assert direct.read_bytes() == converted.read_bytes()

    def test_dataset_info_reports_layout(self, tmp_path, capsys):
        col = self._generate(tmp_path, fmt="columnar")
        rc = main(["dataset", "info", str(col)])
        out = capsys.readouterr().out
        assert rc == 0
        assert "allnames" in out
        assert "bytes/row" in out
        assert "qname" in out

    def test_dataset_info_on_jsonl(self, tmp_path, capsys):
        jsonl = self._generate(tmp_path)
        rc = main(["dataset", "info", str(jsonl)])
        out = capsys.readouterr().out
        assert rc == 0 and "jsonl" in out

    def test_replay_autodetects_columnar(self, tmp_path):
        jsonl = self._generate(tmp_path)
        col = self._generate(tmp_path, fmt="columnar")
        out_j = tmp_path / "rj"
        out_c = tmp_path / "rc"
        assert main(["--quiet", "--out", str(out_j), "replay", "allnames",
                     str(jsonl)]) == 0
        assert main(["--quiet", "--out", str(out_c), "replay", "allnames",
                     str(col), "--workers", "2"]) == 0
        report_j = (out_j / "replay.txt").read_text().splitlines()
        report_c = (out_c / "replay.txt").read_text().splitlines()
        # Identical bodies; only the title line embeds the file name.
        assert report_j[2:] == report_c[2:]
        assert "blow-up factor" in "\n".join(report_c)
