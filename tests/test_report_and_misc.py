"""Tests for report rendering, workload helpers, and cross-cutting
consistency checks."""

import pytest

from repro.analysis.report import (Comparison, cdf_table,
                                   format_comparisons, format_table)
from repro.datasets import paper_numbers as paper
from repro.datasets.cdn_dataset import _jammed, _profile_lengths
from repro.datasets.workload import (ClientPopulation, HostnameUniverse,
                                     SldPolicy, assign_sld_policies)
import random


class TestFormatTable:
    def test_alignment(self):
        text = format_table(("a", "bbbb"), [("x", 1), ("yyyy", 22)])
        lines = text.splitlines()
        assert len({line.index("bbbb") if "bbbb" in line else
                    lines[0].index("bbbb") for line in lines[:1]}) == 1
        assert all(len(line) >= 6 for line in lines)

    def test_title_underlined(self):
        text = format_table(("a",), [("x",)], title="My Title")
        lines = text.splitlines()
        assert lines[0] == "My Title"
        assert lines[1] == "=" * len("My Title")

    def test_none_rendered_as_dash(self):
        text = format_table(("a", "b"), [("x", None)])
        assert "-" in text.splitlines()[-1]

    def test_floats_two_decimals(self):
        text = format_table(("v",), [(3.14159,)])
        assert "3.14" in text and "3.142" not in text

    def test_comparisons(self):
        text = format_comparisons(
            [Comparison("metric", 10, 9, note="close")], "T")
        assert "metric" in text and "close" in text

    def test_cdf_table_quantiles(self):
        text = cdf_table({"s": [1.0, 2.0, 3.0, 4.0]}, quantiles=(0.5, 1.0))
        assert "p50" in text and "p100" in text
        assert "4.00" in text

    def test_cdf_table_empty_series(self):
        text = cdf_table({"empty": []}, quantiles=(0.5,))
        assert "-" in text


class TestWorkloadHelpers:
    def test_hostname_universe_structure(self):
        rng = random.Random(1)
        universe = HostnameUniverse.generate(20, 3.0, rng)
        assert len(universe.slds) == 20
        assert len(universe.hostnames) >= 20
        assert all(h.endswith(".com.") for h in universe.hostnames)

    def test_client_population(self):
        rng = random.Random(1)
        pop = ClientPopulation.generate(10, 2, 3.0, rng)
        assert len(pop.v4_clients) >= 10
        assert len(pop.v6_clients) >= 2
        assert pop.all_clients == pop.v4_clients + pop.v6_clients

    def test_client_sample(self):
        rng = random.Random(1)
        pop = ClientPopulation.generate(5, 0, 2.0, rng)
        for _ in range(20):
            assert pop.sample(rng) in pop.all_clients

    def test_sld_policies_stable_mapping(self):
        rng = random.Random(2)
        policies = assign_sld_policies(["a.com.", "b.com."], rng)
        assert set(policies) == {"a.com.", "b.com."}
        assert all(isinstance(p, SldPolicy) for p in policies.values())


class TestCdnDatasetHelpers:
    def test_profile_lengths_simple(self):
        assert _profile_lengths("24") == [24]

    def test_profile_lengths_combo(self):
        assert _profile_lengths("24,25,32/jammed last byte") == [24, 25, 32]

    def test_profile_lengths_v6(self):
        assert _profile_lengths("56 (IPv6)") == [56]

    def test_jammed_detection(self):
        assert _jammed("32/jammed last byte")
        assert not _jammed("24")


class TestPaperNumbersConsistency:
    """The constants module is the contract between generators and
    benches; keep it internally consistent."""

    def test_probing_counts_sum_to_population(self):
        total = (paper.PROBING_ALWAYS + paper.PROBING_HOSTNAME_PROBES
                 + paper.PROBING_INTERVAL_LOOPBACK + paper.PROBING_ON_MISS
                 + paper.PROBING_MIXED)
        assert total == paper.CDN_NON_WHITELISTED

    def test_caching_counts_sum(self):
        assert (paper.CACHING_CORRECT + paper.CACHING_IGNORES_SCOPE
                + paper.CACHING_OVER_24 + paper.CACHING_CLAMP_22
                + paper.CACHING_PRIVATE_PREFIX) == paper.CACHING_STUDIED

    def test_discovery_consistency(self):
        assert paper.DISCOVERY_OVERLAP < paper.DISCOVERY_SCAN_NON_GOOGLE
        assert paper.DISCOVERY_SCAN_NON_GOOGLE \
            < paper.DISCOVERY_CDN_NON_WHITELISTED

    def test_scan_egress_split(self):
        assert paper.SCAN_GOOGLE_EGRESS + paper.SCAN_NON_GOOGLE_EGRESS \
            == paper.SCAN_EGRESS_IPS

    def test_whitelist_split(self):
        assert paper.CDN_WHITELISTED + paper.CDN_NON_WHITELISTED \
            == paper.CDN_ECS_ENABLED_RESOLVERS

    def test_hidden_validation_totals(self):
        assert paper.HIDDEN_VALIDATED_MP + paper.HIDDEN_VALIDATED_OTHER \
            == paper.HIDDEN_VALIDATED_TOTAL
        assert paper.HIDDEN_VALIDATED_TOTAL < paper.HIDDEN_PREFIXES

    def test_fig1_monotone_in_ttl(self):
        values = [paper.FIG1_MAX_BLOWUP[t] for t in (20, 40, 60)]
        assert values == sorted(values)

    def test_table1_rows_nonnegative(self):
        for label, (scan, cdn) in paper.TABLE1_ROWS.items():
            assert scan >= 0 and cdn >= 0, label

    def test_table2_rows_complete(self):
        assert set(paper.TABLE2_ROWS) == {
            "none", "/24 of src addr", "127.0.0.1/32", "127.0.0.0/24",
            "169.254.252.0/24"}


class TestVersionAndExports:
    def test_version_string(self):
        import repro
        assert repro.__version__.count(".") == 2

    def test_all_exports_resolve(self):
        import repro
        for name in repro.__all__:
            assert getattr(repro, name, None) is not None, name

    def test_subpackage_all_exports(self):
        import repro.analysis as analysis
        import repro.dnslib as dnslib
        import repro.net as net
        for module in (analysis, dnslib, net):
            for name in module.__all__:
                assert getattr(module, name, None) is not None, \
                    f"{module.__name__}.{name}"
