"""Tests for domain names: parsing, algebra, comparisons."""

import pytest

from repro.dnslib import Name, NameError_, ROOT


class TestParsing:
    def test_from_text_basic(self):
        name = Name.from_text("www.example.com")
        assert name.to_text() == "www.example.com."

    def test_trailing_dot_equivalent(self):
        assert Name.from_text("a.b.") == Name.from_text("a.b")

    def test_root_from_dot(self):
        assert Name.from_text(".").is_root()

    def test_root_from_empty(self):
        assert Name.from_text("").is_root()

    def test_root_renders_as_dot(self):
        assert ROOT.to_text() == "."

    def test_case_preserved_in_text(self):
        assert Name.from_text("WwW.Example.COM").to_text() == "WwW.Example.COM."

    def test_non_ascii_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("exämple.com")

    def test_label_too_long_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("a" * 64 + ".com")

    def test_63_octet_label_accepted(self):
        name = Name.from_text("a" * 63 + ".com")
        assert len(name.labels[0]) == 63

    def test_name_too_long_rejected(self):
        labels = ".".join(["a" * 60] * 5)
        with pytest.raises(NameError_):
            Name.from_text(labels)

    def test_empty_label_rejected(self):
        with pytest.raises(NameError_):
            Name.from_text("a..b")


class TestComparison:
    def test_case_insensitive_equality(self):
        assert Name.from_text("WWW.Example.COM") == Name.from_text("www.example.com")

    def test_case_insensitive_hash(self):
        assert hash(Name.from_text("A.B")) == hash(Name.from_text("a.b"))

    def test_different_names_unequal(self):
        assert Name.from_text("a.example.com") != Name.from_text("b.example.com")

    def test_not_equal_to_string(self):
        assert Name.from_text("a.b") != "a.b."

    def test_ordering_by_reversed_labels(self):
        # DNS canonical order sorts by most-senior label first.
        a = Name.from_text("a.example.com")
        z = Name.from_text("z.example.com")
        assert a < z

    def test_usable_in_sets(self):
        s = {Name.from_text("a.b"), Name.from_text("A.B")}
        assert len(s) == 1


class TestAlgebra:
    def test_parent(self):
        assert Name.from_text("www.example.com").parent() == \
            Name.from_text("example.com")

    def test_parent_of_root_raises(self):
        with pytest.raises(NameError_):
            ROOT.parent()

    def test_child(self):
        assert Name.from_text("example.com").child("www") == \
            Name.from_text("www.example.com")

    def test_concatenate(self):
        left = Name.from_text("www")
        right = Name.from_text("example.com")
        assert left.concatenate(right) == Name.from_text("www.example.com")

    def test_is_subdomain_of_self(self):
        name = Name.from_text("example.com")
        assert name.is_subdomain_of(name)

    def test_is_subdomain_of_parent(self):
        assert Name.from_text("a.b.example.com").is_subdomain_of(
            Name.from_text("example.com"))

    def test_everything_is_subdomain_of_root(self):
        assert Name.from_text("x.y").is_subdomain_of(ROOT)

    def test_sibling_not_subdomain(self):
        assert not Name.from_text("a.example.com").is_subdomain_of(
            Name.from_text("b.example.com"))

    def test_suffix_label_boundary_respected(self):
        # "notexample.com" must not count as under "example.com".
        assert not Name.from_text("notexample.com").is_subdomain_of(
            Name.from_text("example.com"))

    def test_subdomain_case_insensitive(self):
        assert Name.from_text("A.EXAMPLE.COM").is_subdomain_of(
            Name.from_text("example.com"))

    def test_ancestors_chain(self):
        chain = list(Name.from_text("a.b.c").ancestors())
        assert [n.to_text() for n in chain] == ["a.b.c.", "b.c.", "c.", "."]

    def test_split(self):
        prefix, suffix = Name.from_text("www.example.com").split(2)
        assert suffix == Name.from_text("example.com")
        assert prefix == Name.from_text("www")

    def test_split_bad_depth(self):
        with pytest.raises(NameError_):
            Name.from_text("a.b").split(5)

    def test_relativize(self):
        name = Name.from_text("www.example.com")
        assert name.relativize(Name.from_text("example.com")) == (b"www",)

    def test_relativize_outside_raises(self):
        with pytest.raises(NameError_):
            Name.from_text("www.other.com").relativize(
                Name.from_text("example.com"))

    def test_len_is_label_count(self):
        assert len(Name.from_text("a.b.c")) == 3
        assert len(ROOT) == 0

    def test_iter_yields_labels(self):
        assert list(Name.from_text("a.b")) == [b"a", b"b"]
