"""Chaos test layer for :mod:`repro.faults`.

Certifies the fault-injection contract end to end: injector streams are
deterministic functions of (plan, fault seed, shard index); composed
plans fold actions predictably; the shared retry ladder honors its
bounds and the RFC 7871 §7.1 no-ECS downgrade; and a chaos campaign
produces byte-identical reports and metrics at every ``--workers``
count while degrading gracefully — never crashing — up to 30% loss.
"""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.dnslib import (EcsOption, Message, Name, Rcode, RecordType,
                          decode_message, encode_message)
from repro.faults import (BurstLossSpec, EcsStripSpec, FaultPlan,
                          LatencyJitterSpec, LatencySpikeSpec, OutageSpec,
                          PacketLossSpec, RcodeFaultSpec, RetryPolicy,
                          TruncationSpec, backoff_delay_ms, backoff_jitter,
                          execute_with_retries, preset, preset_names,
                          run_chaos)
from repro.measure.digclient import StubClient
from repro.net import Network, Topology, city
from repro.obs import observe
from repro.obs.export import to_prometheus

QNAME = Name.from_text("www.example.com.")
ECS = EcsOption.from_client_address("192.0.2.77", 24)


def _query(ecs=None, use_edns=True, msg_id=1):
    return Message.make_query(QNAME, RecordType.A, msg_id=msg_id,
                              use_edns=use_edns, ecs=ecs)


def _drop_pattern(bound, n, ecs=None):
    """The drop/no-drop decision sequence of a bound injector or plan."""
    pattern = []
    for i in range(n):
        action = bound.on_query("10.0.0.1", "10.0.0.2",
                                _query(ecs=ecs, msg_id=i + 1), False, 0.0)
        pattern.append(action is not None and action.drop)
    return pattern


# -- endpoints with scripted pathologies -----------------------------------


class _Echo:
    """Answers every query with an empty NOERROR response."""

    def __init__(self, ip):
        self.ip = ip
        self.queries = []

    def handle_datagram(self, wire, src_ip, net, tcp=False):
        msg = decode_message(wire)
        self.queries.append((msg, tcp))
        return encode_message(self._respond(msg, tcp))

    def _respond(self, msg, tcp):
        return msg.make_response()


class _FormerrOnEcs(_Echo):
    """An authoritative that chokes on the ECS option (RFC 7871 §7.1)."""

    def _respond(self, msg, tcp):
        resp = msg.make_response()
        if msg.ecs() is not None:
            resp.rcode = Rcode.FORMERR
        return resp


class _FormerrOnEdns(_Echo):
    """A pre-EDNS0 server: FORMERR on any OPT record (RFC 6891 §7)."""

    def _respond(self, msg, tcp):
        resp = msg.make_response()
        if msg.edns is not None:
            resp.rcode = Rcode.FORMERR
        return resp


class _Truncating(_Echo):
    """Truncates every UDP answer; completes over TCP."""

    def _respond(self, msg, tcp):
        resp = msg.make_response()
        if not tcp:
            resp.truncated = True
        return resp


def _net_pair():
    topo = Topology()
    net = Network(topo)
    as_ = topo.create_as("t", "US")
    return net, as_.host_in(city("Cleveland")), as_.host_in(city("Tokyo"))


# -- injector specs --------------------------------------------------------


class TestInjectors:
    def test_loss_stream_deterministic(self):
        spec = PacketLossSpec(rate=0.5)
        first = _drop_pattern(spec.bind(random.Random(42)), 64)
        again = _drop_pattern(spec.bind(random.Random(42)), 64)
        assert first == again
        assert True in first and False in first

    @settings(max_examples=20, deadline=None)
    @given(rate=st.floats(min_value=0.05, max_value=0.5),
           seed=st.integers(min_value=0, max_value=2 ** 32 - 1))
    def test_loss_rate_converges(self, rate, seed):
        bound = PacketLossSpec(rate=rate).bind(random.Random(seed))
        n = 2000
        drops = sum(_drop_pattern(bound, n))
        assert abs(drops / n - rate) < 0.06

    def test_loss_direction_filter(self):
        bound = PacketLossSpec(rate=1.0, direction="response").bind(
            random.Random(0))
        assert bound.on_query("a", "b", _query(), False, 0.0) is None
        action = bound.on_response("a", "b", _query(), False, 0.0)
        assert action is not None and action.drop

    def test_loss_dst_filter(self):
        bound = PacketLossSpec(rate=1.0, dst="10.9.9.9").bind(
            random.Random(0))
        assert bound.on_query("a", "10.0.0.1", _query(), False, 0.0) is None
        assert bound.on_query("a", "10.9.9.9", _query(), False, 0.0).drop

    def test_burst_loss_is_correlated_and_deterministic(self):
        spec = BurstLossSpec(p_enter_burst=0.1, p_exit_burst=0.3,
                             loss_good=0.0, loss_burst=1.0)
        pattern = _drop_pattern(spec.bind(random.Random(7)), 400)
        assert pattern == _drop_pattern(spec.bind(random.Random(7)), 400)
        # With loss only inside bursts, drops must arrive in runs: at
        # least one run of >= 2 consecutive drops in 400 datagrams.
        runs = []
        current = 0
        for dropped in pattern:
            current = current + 1 if dropped else 0
            runs.append(current)
        assert max(runs) >= 2

    def test_burst_loss_links_independent(self):
        bound = BurstLossSpec(loss_good=0.0, loss_burst=1.0,
                              p_enter_burst=1.0, p_exit_burst=0.0).bind(
            random.Random(0))
        # First datagram on a fresh link advances good->burst, then drops.
        assert bound.on_query("a", "b", _query(), False, 0.0).drop
        assert bound.on_query("c", "d", _query(), False, 0.0).drop
        assert set(bound._burst) == {("a", "b"), ("c", "d")}

    def test_jitter_bounds(self):
        bound = LatencyJitterSpec(max_extra_ms=25.0).bind(random.Random(3))
        for i in range(100):
            action = bound.on_query("a", "b", _query(msg_id=i + 1),
                                    False, 0.0)
            assert action is not None
            assert 0.0 <= action.extra_one_way_ms <= 25.0
            assert not action.drop

    def test_spike_probability_extremes(self):
        never = LatencySpikeSpec(probability=0.0).bind(random.Random(0))
        always = LatencySpikeSpec(probability=1.0, extra_ms=500.0).bind(
            random.Random(0))
        assert never.on_query("a", "b", _query(), False, 0.0) is None
        action = always.on_query("a", "b", _query(), False, 0.0)
        assert action.extra_one_way_ms == 500.0

    def test_truncation_skips_tcp_and_already_truncated(self):
        bound = TruncationSpec(probability=1.0).bind(random.Random(0))
        resp = _query().make_response()
        assert bound.on_response("a", "b", resp, True, 0.0) is None
        resp.truncated = True
        assert bound.on_response("a", "b", resp, False, 0.0) is None
        fresh = _query().make_response()
        action = bound.on_response("a", "b", fresh, False, 0.0)
        assert action is not None and action.truncate

    def test_rcode_fault_only_hits_ecs_queries(self):
        bound = RcodeFaultSpec(rcode=Rcode.FORMERR, probability=1.0,
                               only_ecs=True).bind(random.Random(0))
        assert bound.on_query("a", "b", _query(), False, 0.0) is None
        action = bound.on_query("a", "b", _query(ecs=ECS), False, 0.0)
        assert action.rcode == Rcode.FORMERR
        assert action.kind == "rcode-formerr"

    def test_ecs_strip_replaces_without_mutating_original(self):
        bound = EcsStripSpec().bind(random.Random(0))
        assert bound.on_query("a", "b", _query(), False, 0.0) is None
        original = _query(ecs=ECS)
        action = bound.on_query("a", "b", original, False, 0.0)
        assert action.replace is not None
        assert action.replace.ecs() is None
        assert original.ecs() == ECS  # middlebox rewrote a copy

    def test_outage_window_is_time_driven(self):
        bound = OutageSpec(start_s=10.0, end_s=20.0).bind(random.Random(0))
        assert bound.on_query("a", "b", _query(), False, 9.999) is None
        assert bound.on_query("a", "b", _query(), False, 10.0).drop
        assert bound.on_response("a", "b", _query(), False, 19.999).drop
        assert bound.on_query("a", "b", _query(), False, 20.0) is None


# -- plan composition ------------------------------------------------------


class TestFaultPlan:
    def test_bind_is_deterministic_per_seed_and_shard(self):
        plan = FaultPlan("p", (PacketLossSpec(rate=0.5),))
        same = [_drop_pattern(plan.bind(11, 0), 64) for _ in range(2)]
        assert same[0] == same[1]
        other_shard = _drop_pattern(plan.bind(11, 1), 64)
        other_seed = _drop_pattern(plan.bind(12, 0), 64)
        assert same[0] != other_shard
        assert same[0] != other_seed

    def test_injector_streams_independent(self):
        # Adding an injector must not perturb another's stream.
        lone = FaultPlan("p", (PacketLossSpec(rate=0.5),))
        paired = FaultPlan("p", (PacketLossSpec(rate=0.5),
                                 LatencyJitterSpec(max_extra_ms=5.0)))
        assert _drop_pattern(lone.bind(3, 0), 64) == \
            _drop_pattern(paired.bind(3, 0), 64)

    def test_latencies_sum_and_kinds_join(self):
        plan = FaultPlan("p", (LatencyJitterSpec(max_extra_ms=10.0),
                               LatencySpikeSpec(probability=1.0,
                                                extra_ms=500.0)))
        bound = plan.bind(0)
        action = bound.on_query("a", "b", _query(), False, 0.0)
        assert action.kind == "jitter+spike"
        assert 500.0 <= action.extra_one_way_ms <= 510.0
        assert bound.injected == {"jitter": 1, "spike": 1}

    def test_drop_short_circuits_later_injectors(self):
        plan = FaultPlan("p", (PacketLossSpec(rate=1.0),
                               LatencySpikeSpec(probability=1.0)))
        bound = plan.bind(0)
        action = bound.on_query("a", "b", _query(), False, 0.0)
        assert action.drop and action.kind == "loss"
        assert bound.injected == {"loss": 1}

    def test_replacement_visible_downstream(self):
        # The ECS-stripping middlebox runs first, so the rcode fault
        # (only_ecs) sees a query without the option and stays quiet.
        plan = FaultPlan("p", (EcsStripSpec(),
                               RcodeFaultSpec(only_ecs=True)))
        action = plan.bind(0).on_query("a", "b", _query(ecs=ECS),
                                       False, 0.0)
        assert action.kind == "ecs-strip"
        assert action.rcode is None
        assert action.replace.ecs() is None

    def test_no_fault_returns_none(self):
        plan = FaultPlan("p", (RcodeFaultSpec(only_ecs=True),))
        assert plan.bind(0).on_query("a", "b", _query(), False, 0.0) is None

    def test_describe_lists_injectors(self):
        text = preset("ecs-hostile").describe()
        assert "ecs-hostile" in text and "EcsStripSpec" in text
        assert "clean" in preset("clean").describe()

    def test_preset_registry(self):
        assert "lossy" in preset_names()
        with pytest.raises(KeyError):
            preset("no-such-scenario")


# -- retry policy and ladder -----------------------------------------------


class TestRetryLadder:
    @settings(max_examples=30, deadline=None)
    @given(max_attempts=st.integers(min_value=1, max_value=4),
           servers=st.integers(min_value=1, max_value=3),
           failover=st.booleans(),
           tcp_on_truncation=st.booleans())
    def test_attempts_bounded_under_total_loss(self, max_attempts, servers,
                                               failover, tcp_on_truncation):
        net = Network(advance_clock=False)
        policy = RetryPolicy(max_attempts=max_attempts, failover=failover,
                             tcp_on_truncation=tcp_on_truncation,
                             retry_without_ecs_on_formerr=True)
        ips = [f"203.0.113.{i + 1}" for i in range(servers)]  # no endpoints
        outcome = execute_with_retries(
            net, "10.0.0.1", ips, lambda edns, ecs: _query(), policy)
        assert outcome.timed_out and outcome.response is None
        assert outcome.attempts <= policy.max_queries(len(ips))
        reached = len(ips) if failover else 1
        assert outcome.attempts == reached * max_attempts
        # Failover is not a retry; only re-attempts of one server count.
        assert outcome.retries == outcome.attempts - reached
        assert outcome.elapsed_ms == outcome.attempts * Network.TIMEOUT_MS

    def test_requires_a_server(self):
        with pytest.raises(ValueError):
            execute_with_retries(Network(), "10.0.0.1", (),
                                 lambda edns, ecs: _query(), RetryPolicy())

    def test_failover_reaches_second_server(self):
        net, a, b = _net_pair()
        net.attach(_Echo(b))
        outcome = execute_with_retries(
            net, a, ("203.0.113.1", b), lambda edns, ecs: _query(),
            RetryPolicy(max_attempts=1))
        assert outcome.response is not None
        assert outcome.server_ip == b
        assert outcome.attempts == 2 and not outcome.timed_out

    def test_formerr_triggers_noecs_downgrade(self):
        net, a, b = _net_pair()
        server = _FormerrOnEcs(b)
        net.attach(server)
        policy = RetryPolicy(retry_without_ecs_on_formerr=True)
        with observe(metrics=True) as session:
            outcome = execute_with_retries(
                net, a, (b,),
                lambda edns, ecs: _query(ecs=ECS if ecs else None),
                policy, site="testsite")
        assert outcome.response.rcode == Rcode.NOERROR
        assert outcome.ecs_downgraded and not outcome.edns_downgraded
        assert outcome.attempts == 2 and outcome.retries == 1
        assert outcome.query_ecs is None  # the answered query had no ECS
        assert [q.ecs() is not None for q, _ in server.queries] == \
            [True, False]
        snap = session.registry.as_dict()
        assert snap["repro_ecs_downgrades_total"]["values"]["testsite"] == 1
        assert snap["repro_retries_total"]["values"][
            "testsite|formerr_noecs"] == 1

    def test_formerr_walks_full_ladder_to_plain_dns(self):
        net, a, b = _net_pair()
        server = _FormerrOnEdns(b)
        net.attach(server)
        policy = RetryPolicy(retry_without_ecs_on_formerr=True,
                             retry_without_edns_on_formerr=True)
        outcome = execute_with_retries(
            net, a, (b,),
            lambda edns, ecs: _query(ecs=ECS if ecs else None,
                                     use_edns=edns),
            policy)
        assert outcome.response.rcode == Rcode.NOERROR
        assert outcome.ecs_downgraded and outcome.edns_downgraded
        assert outcome.attempts == 3
        assert server.queries[-1][0].edns is None

    def test_formerr_reported_when_downgrades_disabled(self):
        net, a, b = _net_pair()
        net.attach(_FormerrOnEcs(b))
        outcome = execute_with_retries(
            net, a, (b,), lambda edns, ecs: _query(ecs=ECS),
            RetryPolicy())  # dig-like: no silent downgrades
        assert outcome.response.rcode == Rcode.FORMERR
        assert outcome.attempts == 1 and outcome.retries == 0

    def test_truncation_retried_over_tcp(self):
        net, a, b = _net_pair()
        server = _Truncating(b)
        net.attach(server)
        outcome = execute_with_retries(
            net, a, (b,), lambda edns, ecs: _query(), RetryPolicy())
        assert outcome.response is not None
        assert not outcome.response.truncated
        assert outcome.attempts == 2 and outcome.retries == 1
        assert [tcp for _, tcp in server.queries] == [False, True]

    def test_max_queries_counts_every_rung(self):
        policy = RetryPolicy(max_attempts=2, tcp_on_truncation=True,
                             retry_without_ecs_on_formerr=True,
                             retry_without_edns_on_formerr=True)
        # (2 budgeted + 2 downgrade rungs) x 2 for TCP, per server.
        assert policy.max_queries(1) == 8
        assert policy.max_queries(3) == 24
        assert RetryPolicy().max_queries(1) == 2
        assert RetryPolicy(failover=False).max_queries(5) == 2


class TestBackoff:
    def test_jitter_pure_and_bounded(self):
        values = {backoff_jitter("site", "1.2.3.4", attempt)
                  for attempt in range(32)}
        assert len(values) == 32
        assert all(-1.0 <= v <= 1.0 for v in values)
        assert backoff_jitter("site", "1.2.3.4", 0) == \
            backoff_jitter("site", "1.2.3.4", 0)

    def test_delay_grows_exponentially(self):
        policy = RetryPolicy(backoff_base_ms=100.0, backoff_factor=2.0)
        delays = [backoff_delay_ms(policy, "s", "ip", i, i)
                  for i in range(3)]
        assert delays == [100.0, 200.0, 400.0]

    def test_jittered_delay_stays_in_band(self):
        policy = RetryPolicy(backoff_base_ms=100.0, jitter_fraction=0.5)
        for attempt in range(16):
            delay = backoff_delay_ms(policy, "s", "ip", 0, attempt)
            assert 50.0 <= delay <= 150.0

    def test_backoff_advances_virtual_clock(self):
        net = Network()
        policy = RetryPolicy(max_attempts=2, backoff_base_ms=300.0)
        before = net.clock.now()
        outcome = execute_with_retries(
            net, "10.0.0.1", ("203.0.113.1",),
            lambda edns, ecs: _query(), policy)
        delta_ms = (net.clock.now() - before) * 1000.0
        # Two timeouts plus one backoff wait, all on the virtual clock.
        assert delta_ms == pytest.approx(2 * Network.TIMEOUT_MS + 300.0)
        assert outcome.elapsed_ms == pytest.approx(delta_ms)


# -- stub client elapsed-time regression -----------------------------------


class TestStubClientElapsed:
    def test_tcp_fallback_charges_both_legs_once(self):
        # Regression: elapsed_ms on a UDP->TCP truncation fallback must
        # equal the virtual time the exchange actually took — the UDP
        # leg plus the TCP leg, each counted exactly once.
        net, a, b = _net_pair()
        net.attach(_Truncating(b))
        client = StubClient(a, net)
        before = net.clock.now()
        result = client.query(b, "www.example.com.")
        delta_ms = (net.clock.now() - before) * 1000.0
        assert result.elapsed_ms == pytest.approx(delta_ms)
        assert result.response is not None
        assert not result.response.truncated
        assert client.attempts == 2 and client.retries == 1

    def test_single_leg_unchanged(self):
        net, a, b = _net_pair()
        net.attach(_Echo(b))
        client = StubClient(a, net)
        before = net.clock.now()
        result = client.query(b, "www.example.com.")
        delta_ms = (net.clock.now() - before) * 1000.0
        assert result.elapsed_ms == pytest.approx(delta_ms)
        assert client.attempts == 1 and client.retries == 0

    def test_retry_on_truncation_opt_out(self):
        net, a, b = _net_pair()
        net.attach(_Truncating(b))
        client = StubClient(a, net)
        result = client.query(b, "www.example.com.",
                              retry_on_truncation=False)
        assert result.response.truncated
        assert client.attempts == 1 and client.retries == 0


# -- chaos campaigns -------------------------------------------------------


class TestChaos:
    def test_workers_do_not_change_results_or_metrics(self):
        # The acceptance bar: same plan + seeds at --workers 1 vs 4
        # produce an identical report and byte-identical metrics.
        runs = {}
        for workers in (1, 4):
            with observe(metrics=True) as session:
                result, engine = run_chaos(
                    preset("lossy"), seed=3, fault_seed=7, ingress=24,
                    shards=4, workers=workers)
            runs[workers] = (result, engine,
                             to_prometheus(session.registry))
        r1, e1, prom1 = runs[1]
        r4, e4, prom4 = runs[4]
        assert r1.report() == r4.report()
        assert prom1 == prom4
        assert [s.records for s in e1.shards] == \
            [s.records for s in e4.shards]
        assert r1.totals == r4.totals

    def test_fault_seed_changes_the_fault_stream(self):
        plan = preset("lossy")
        assert _drop_pattern(plan.bind(1, 0), 64) != \
            _drop_pattern(plan.bind(2, 0), 64)

    def test_heavy_loss_degrades_gracefully(self):
        # 30% per-datagram loss: the campaign must complete without
        # raising, flag itself partial, and keep its tallies coherent.
        result, engine = run_chaos(preset("heavy-loss"), seed=1,
                                   fault_seed=2, ingress=12, shards=2)
        totals = result.totals
        assert totals.probes > 0
        assert totals.responded + totals.unanswered == totals.probes
        assert result.degraded
        assert totals.network.faults_injected > 0
        assert totals.faults_by_kind.get("loss", 0) > 0
        assert 0.0 <= result.response_rate <= 1.0
        assert totals.attempts >= totals.probes
        assert "partial results" in result.report()

    def test_clean_preset_is_not_degraded(self):
        result, _ = run_chaos(preset("clean"), seed=1, fault_seed=2,
                              ingress=8, shards=1)
        totals = result.totals
        assert totals.network.faults_injected == 0
        assert not result.degraded
        assert result.response_rate == 1.0
