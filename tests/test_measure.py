"""Tests for the measurement tooling: scanner, caching prober, Atlas."""

import pytest

from repro.core.classify import CachingCategory
from repro.datasets import ScanUniverseBuilder
from repro.measure import (AtlasPlatform, CachingBehaviorProber, Scanner,
                           StubClient)
from repro.net import Network, Topology, same_prefix


class TestScanner:
    def test_all_forwarders_respond(self, scan_universe, scan_result):
        assert scan_result.responding_ingress == \
            set(scan_universe.forwarder_ips)

    def test_every_probe_logged_with_ingress(self, scan_result):
        with_ingress = [r for r in scan_result.records if r.ingress_ip]
        assert len(with_ingress) == len(scan_result.records)

    def test_ecs_fraction_substantial(self, scan_universe, scan_result):
        # Most chains go through MegaDNS or other ECS egress.
        assert len(scan_result.ecs_ingress) > \
            0.5 * len(scan_universe.forwarder_ips)

    def test_no_ecs_egress_absent_from_ecs_set(self, scan_universe,
                                               scan_result):
        no_ecs_ips = {s.ip for s in scan_universe.egress_specs
                      if s.policy_name == "no_ecs"}
        assert not (no_ecs_ips & scan_result.ecs_egress)

    def test_megadns_egress_discovered(self, scan_universe, scan_result):
        assert set(scan_universe.megadns.egress_ips) & scan_result.ecs_egress

    def test_ingress_as_egress_chains_observed(self, scan_universe,
                                               scan_result):
        self_chains = [c for c in scan_universe.chains
                       if c.forwarder_ip == c.egress_ip]
        assert self_chains
        by_ingress = scan_result.records_by_ingress()
        for chain in self_chains[:3]:
            records = by_ingress.get(chain.forwarder_ip, [])
            assert records and records[0].egress_ip == chain.forwarder_ip

    def test_hidden_chain_ecs_is_hidden_prefix(self, scan_universe,
                                               scan_result):
        # Restrict to MegaDNS chains: fixed-prefix egress (loopback
        # senders etc.) put their configured prefix in ECS instead.
        hidden_chains = [c for c in scan_universe.chains
                         if c.hidden_ips and c.via_megadns]
        by_ingress = scan_result.records_by_ingress()
        checked = 0
        for chain in hidden_chains:
            for record in by_ingress.get(chain.forwarder_ip, []):
                if not record.has_ecs or record.ecs_address is None:
                    continue
                assert same_prefix(record.ecs_address, chain.hidden_ips[0],
                                   24)
                checked += 1
        assert checked > 0

    def test_direct_chain_ecs_covers_forwarder(self, scan_universe,
                                               scan_result):
        direct = [c for c in scan_universe.chains
                  if not c.hidden_ips and c.forwarder_ip != c.egress_ip]
        by_ingress = scan_result.records_by_ingress()
        checked = 0
        for chain in direct[:20]:
            for record in by_ingress.get(chain.forwarder_ip, []):
                if record.has_ecs and record.ecs_address:
                    assert same_prefix(record.ecs_address, chain.forwarder_ip,
                                       24)
                    checked += 1
        assert checked > 0


class TestCachingProber:
    @pytest.fixture(scope="class")
    def reports(self):
        universe = ScanUniverseBuilder(seed=13, ingress_count=40).build()
        prober = CachingBehaviorProber(universe)
        truth = {s.ip: s.policy_name for s in universe.egress_specs}
        return universe, prober.probe_all(), prober.probe_megadns(), truth

    def _by_policy(self, reports, truth, policy):
        return [r for r in reports if truth[r.resolver_ip] == policy]

    def test_compliant_classified_correct(self, reports):
        _, all_reports, _, truth = reports
        for r in self._by_policy(all_reports, truth, "compliant"):
            assert r.category is CachingCategory.CORRECT

    def test_scope_ignorers_detected(self, reports):
        _, all_reports, _, truth = reports
        found = self._by_policy(all_reports, truth, "scope_ignorer")
        assert found
        assert all(r.category is CachingCategory.IGNORES_SCOPE for r in found)

    def test_over_24_detected(self, reports):
        _, all_reports, _, truth = reports
        found = self._by_policy(all_reports, truth, "over_24_acceptor")
        assert found
        assert all(r.category is CachingCategory.ACCEPTS_OVER_24
                   for r in found)
        assert all(r.outcome.max_prefix_forwarded == 32 for r in found)

    def test_clamp_22_detected(self, reports):
        _, all_reports, _, truth = reports
        found = self._by_policy(all_reports, truth, "clamp_22")
        assert found
        assert all(r.category is CachingCategory.CLAMPS_AT_22 for r in found)

    def test_private_prefix_detected(self, reports):
        _, all_reports, _, truth = reports
        found = self._by_policy(all_reports, truth, "private_prefix_sender")
        assert found
        assert all(r.category is CachingCategory.PRIVATE_PREFIX
                   for r in found)

    def test_megadns_is_correct(self, reports):
        _, _, megadns_report, _ = reports
        assert megadns_report is not None
        assert megadns_report.category is CachingCategory.CORRECT

    def test_no_ecs_resolvers_skipped(self, reports):
        _, all_reports, _, truth = reports
        assert all(truth[r.resolver_ip] != "no_ecs" for r in all_reports)


class TestAtlas:
    def test_probe_population(self):
        net = Network(Topology())
        atlas = AtlasPlatform(net, probe_count=60, seed=1)
        assert len(atlas.probes) == 60
        assert atlas.countries() > 5
        assert atlas.ases() == atlas.countries()

    def test_handshake_scales_with_distance(self):
        from repro.net import city
        net = Network(Topology(), advance_clock=False)
        atlas = AtlasPlatform(net, probe_count=30, seed=1)
        target_as = net.topology.create_as("t", "US")
        near_target = target_as.host_in(atlas.probes[0].city)
        far_city = city("Tokyo") if atlas.probes[0].city.name != "Tokyo" \
            else city("London")
        far_target = target_as.host_in(far_city)
        probe = atlas.probes[0]
        assert probe.tcp_handshake_ms(net, near_target) < \
            probe.tcp_handshake_ms(net, far_target)

    def test_deterministic_with_seed(self):
        net1 = Network(Topology())
        net2 = Network(Topology())
        a1 = AtlasPlatform(net1, probe_count=25, seed=9)
        a2 = AtlasPlatform(net2, probe_count=25, seed=9)
        assert [p.ip for p in a1.probes] == [p.ip for p in a2.probes]


class TestStubClient:
    def test_dig_result_fields(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query(small_world.resolver_ip, "www.example.com")
        assert result.first_address == "93.184.216.34"
        assert result.elapsed_ms > 0
        assert result.scope is None

    def test_query_with_subnet(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query_with_subnet(small_world.cdn.ip,
                                          "video.cdn.example",
                                          "16.50.0.0", 24)
        assert result.scope is not None

    def test_timeout_result(self, small_world):
        client = StubClient(small_world.client_ip, small_world.net)
        result = client.query("200.200.200.200", "www.example.com")
        assert result.response is None
        assert result.rcode is None
        assert result.addresses == []
