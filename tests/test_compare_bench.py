"""Unit tests for the bench-diff gate (benchmarks/compare_bench.py)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

SCRIPT = Path(__file__).parent.parent / "benchmarks" / "compare_bench.py"

spec = importlib.util.spec_from_file_location("compare_bench", SCRIPT)
compare_bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(compare_bench)


OLD = {
    "prefix_keying": {"records": 1000, "reference_rps": 100_000.0,
                      "fast_rps": 1_000_000.0, "speedup": 10.0},
    "replay": {"records_per_second": 50_000.0, "workers": 4},
    "retired_bench": {"fast_rps": 123.0},
}


def test_no_regression_within_threshold():
    new = json.loads(json.dumps(OLD))
    new["prefix_keying"]["fast_rps"] = 900_000.0      # -10%: fine
    del new["retired_bench"]
    new["brand_new"] = {"fast_rps": 42.0}
    lines, regressions = compare_bench.compare(OLD, new, threshold=0.25)
    assert regressions == []
    assert any("RETIRED" in line for line in lines)
    assert any("NEW" in line for line in lines)


def test_regression_beyond_threshold():
    new = json.loads(json.dumps(OLD))
    new["replay"]["records_per_second"] = 30_000.0    # -40%: regression
    _, regressions = compare_bench.compare(OLD, new, threshold=0.25)
    assert len(regressions) == 1
    assert "replay.records_per_second" in regressions[0]


def test_non_throughput_fields_ignored():
    new = json.loads(json.dumps(OLD))
    new["prefix_keying"]["records"] = 1               # not a throughput key
    new["prefix_keying"]["speedup"] = 0.1             # ratio, not rec/s
    _, regressions = compare_bench.compare(OLD, new, threshold=0.25)
    assert regressions == []


def test_main_exit_codes(tmp_path):
    old_path = tmp_path / "old.json"
    new_path = tmp_path / "new.json"
    old_path.write_text(json.dumps(OLD))
    new_path.write_text(json.dumps(OLD))
    assert compare_bench.main([str(old_path), str(new_path)]) == 0
    bad = json.loads(json.dumps(OLD))
    bad["replay"]["records_per_second"] = 1.0
    new_path.write_text(json.dumps(bad))
    assert compare_bench.main([str(old_path), str(new_path)]) == 1
