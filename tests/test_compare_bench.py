"""Unit tests for the bench-diff gate (benchmarks/compare_bench.py)."""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

SCRIPT = Path(__file__).parent.parent / "benchmarks" / "compare_bench.py"

spec = importlib.util.spec_from_file_location("compare_bench", SCRIPT)
compare_bench = importlib.util.module_from_spec(spec)
spec.loader.exec_module(compare_bench)


OLD = {
    "prefix_keying": {"records": 1000, "reference_rps": 100_000.0,
                      "fast_rps": 1_000_000.0, "speedup": 10.0},
    "replay": {"records_per_second": 50_000.0, "workers": 4},
    "retired_bench": {"fast_rps": 123.0},
}


def test_no_regression_within_threshold():
    new = json.loads(json.dumps(OLD))
    new["prefix_keying"]["fast_rps"] = 900_000.0      # -10%: fine
    del new["retired_bench"]
    new["brand_new"] = {"fast_rps": 42.0}
    lines, regressions = compare_bench.compare(OLD, new, threshold=0.25)
    assert regressions == []
    assert any("RETIRED" in line for line in lines)
    assert any("NEW" in line for line in lines)


def test_regression_beyond_threshold():
    new = json.loads(json.dumps(OLD))
    new["replay"]["records_per_second"] = 30_000.0    # -40%: regression
    _, regressions = compare_bench.compare(OLD, new, threshold=0.25)
    assert len(regressions) == 1
    assert "replay.records_per_second" in regressions[0]


def test_non_throughput_fields_ignored():
    new = json.loads(json.dumps(OLD))
    new["prefix_keying"]["records"] = 1               # not a throughput key
    new["prefix_keying"]["speedup"] = 0.1             # ratio, not rec/s
    _, regressions = compare_bench.compare(OLD, new, threshold=0.25)
    assert regressions == []


def test_main_exit_codes(tmp_path):
    old_path = tmp_path / "old.json"
    new_path = tmp_path / "new.json"
    old_path.write_text(json.dumps(OLD))
    new_path.write_text(json.dumps(OLD))
    assert compare_bench.main([str(old_path), str(new_path)]) == 0
    bad = json.loads(json.dumps(OLD))
    bad["replay"]["records_per_second"] = 1.0
    new_path.write_text(json.dumps(bad))
    assert compare_bench.main([str(old_path), str(new_path)]) == 1


# ---------------------------------------------------------------------------
# The parallel-speedup gate (--check-speedup).


def _engine_doc(workers1_rps, workers4_rps, cpu_count):
    return {
        "replay_workers1": {"records_per_second": workers1_rps,
                            "workers": 1, "cpu_count": cpu_count},
        "replay_workers4": {"records_per_second": workers4_rps,
                            "workers": 4, "cpu_count": cpu_count},
        "unrelated_bench": {"records_per_second": 10.0},
    }


def test_worker_families_groups_by_base():
    families = compare_bench.worker_families(_engine_doc(100.0, 200.0, 8))
    assert set(families) == {"replay"}
    assert set(families["replay"]) == {1, 4}


def test_speedup_gate_passes_on_scaling_host():
    doc = _engine_doc(100_000.0, 180_000.0, cpu_count=8)   # 1.8x
    lines, failures = compare_bench.check_speedup(doc)
    assert failures == []
    assert any("1.80x" in line and "ok" in line for line in lines)


def test_speedup_gate_fails_below_min_on_scaling_host():
    doc = _engine_doc(100_000.0, 120_000.0, cpu_count=8)   # 1.2x < 1.5x
    _, failures = compare_bench.check_speedup(doc)
    assert len(failures) == 1
    assert "workers4/workers1 = 1.20x" in failures[0]


def test_speedup_gate_degrades_to_floor_on_starved_host():
    # 0.55x on a 1-core container: no scaling possible, floor applies.
    doc = _engine_doc(100_000.0, 55_000.0, cpu_count=1)
    lines, failures = compare_bench.check_speedup(doc)
    assert failures == []
    assert any("no-pessimization floor" in line for line in lines)
    # The legacy ship-everything pessimization (~0.1x) still fails.
    doc = _engine_doc(100_000.0, 10_000.0, cpu_count=1)
    _, failures = compare_bench.check_speedup(doc)
    assert len(failures) == 1


def test_speedup_gate_ignores_unpaired_and_missing_rps():
    doc = {
        "solo_workers4": {"records_per_second": 5.0, "cpu_count": 8},
        "norps_workers1": {"workers": 1},
        "norps_workers4": {"records_per_second": 5.0, "cpu_count": 8},
    }
    lines, failures = compare_bench.check_speedup(doc)
    assert lines == [] and failures == []


def test_main_speedup_mode_single_file(tmp_path):
    path = tmp_path / "bench.json"
    path.write_text(json.dumps(_engine_doc(100_000.0, 180_000.0, 8)))
    assert compare_bench.main([str(path), "--check-speedup"]) == 0
    path.write_text(json.dumps(_engine_doc(100_000.0, 120_000.0, 8)))
    assert compare_bench.main([str(path), "--check-speedup"]) == 1
    # A custom threshold is honored.
    assert compare_bench.main([str(path), "--check-speedup",
                               "--min-speedup", "1.1"]) == 0


def test_main_combined_compare_and_speedup(tmp_path):
    old_path = tmp_path / "old.json"
    new_path = tmp_path / "new.json"
    doc = _engine_doc(100_000.0, 180_000.0, 8)
    old_path.write_text(json.dumps(doc))
    new_path.write_text(json.dumps(doc))
    assert compare_bench.main([str(old_path), str(new_path),
                               "--check-speedup"]) == 0


# ---------------------------------------------------------------------------
# the live-telemetry overhead gate (--check-obs-overhead)


def _obs_doc(off_rps, on_rps):
    return {
        "replay_allnames_live": {
            "records": 10_000,
            "live_off_rps": off_rps,
            "live_on_rps": on_rps,
        },
        "replay_allnames_obs": {"disabled_rps": 100.0, "metrics_rps": 95.0},
    }


def test_obs_overhead_within_bound_passes():
    lines, failures = compare_bench.check_obs_overhead(
        _obs_doc(100_000.0, 97_000.0))
    assert failures == []
    assert any("live-on/live-off" in line for line in lines)


def test_obs_overhead_beyond_bound_fails():
    _, failures = compare_bench.check_obs_overhead(
        _obs_doc(100_000.0, 90_000.0))
    assert len(failures) == 1
    assert "replay_allnames_live" in failures[0]


def test_obs_overhead_custom_bound():
    doc = _obs_doc(100_000.0, 90_000.0)
    _, failures = compare_bench.check_obs_overhead(doc, max_overhead=0.15)
    assert failures == []


def test_obs_overhead_skips_samples_without_pair():
    lines, failures = compare_bench.check_obs_overhead(
        {"other": {"disabled_rps": 1.0}})
    assert lines == [] and failures == []


def test_main_obs_overhead_mode(tmp_path):
    path = tmp_path / "BENCH_obs.json"
    path.write_text(json.dumps(_obs_doc(100_000.0, 99_000.0)))
    assert compare_bench.main([str(path), "--check-obs-overhead"]) == 0
    path.write_text(json.dumps(_obs_doc(100_000.0, 80_000.0)))
    assert compare_bench.main([str(path), "--check-obs-overhead"]) == 1
    assert compare_bench.main([str(path), "--check-obs-overhead",
                               "--max-obs-overhead", "0.3"]) == 0


# ---------------------------------------------------------------------------
# The columnar-substrate gate (--check-columnar), out-of-core bars included.


def _datasets_doc(**overrides):
    sample = {
        "rows": 550_000,
        "object_replay_rps": 100_000.0,
        "columnar_replay_rps": 500_000.0,
        "jsonl_bytes_per_row": 100.0,
        "columnar_bytes_per_row": 30.0,
        "columnar_resident_bytes_per_row": 32.0,
        "rowgroup_replay_rps": 490_000.0,
        "rowgroup_peak_bytes_per_row": 2.0,
    }
    sample.update(overrides)
    return {"allnames": sample, "section4_note": "not-a-dict-is-skipped"}


def test_columnar_gate_passes_healthy_sample():
    lines, failures = compare_bench.check_columnar(_datasets_doc())
    assert failures == []
    assert len(lines) == 4        # speedup, bytes, rowgroup rps, peak


def test_columnar_gate_fails_each_bar_independently():
    _, failures = compare_bench.check_columnar(
        _datasets_doc(columnar_replay_rps=200_000.0,
                      rowgroup_replay_rps=190_000.0))  # 2x < 3x speedup
    assert len(failures) == 1 and "columnar/object" in failures[0]
    _, failures = compare_bench.check_columnar(
        _datasets_doc(columnar_bytes_per_row=60.0))    # 0.6 > 0.5
    assert len(failures) == 1 and "bytes per row" in failures[0]
    _, failures = compare_bench.check_columnar(
        _datasets_doc(rowgroup_replay_rps=400_000.0))  # 0.8x < 0.9x
    assert len(failures) == 1 and "rowgroup/columnar" in failures[0]
    _, failures = compare_bench.check_columnar(
        _datasets_doc(rowgroup_peak_bytes_per_row=20.0))  # 0.625 > 0.5
    assert len(failures) == 1 and "peak/resident" in failures[0]


def test_columnar_gate_skips_samples_without_rowgroup_fields():
    doc = _datasets_doc()
    del doc["allnames"]["rowgroup_replay_rps"]
    del doc["allnames"]["rowgroup_peak_bytes_per_row"]
    lines, failures = compare_bench.check_columnar(doc)
    assert failures == []
    assert len(lines) == 2        # pre-row-group files still gate cleanly


def test_columnar_gate_custom_bounds():
    doc = _datasets_doc(rowgroup_replay_rps=400_000.0,
                        rowgroup_peak_bytes_per_row=20.0)
    _, failures = compare_bench.check_columnar(
        doc, min_rowgroup_ratio=0.7, max_rowgroup_peak_fraction=0.7)
    assert failures == []


def test_main_columnar_mode(tmp_path):
    path = tmp_path / "BENCH_datasets.json"
    path.write_text(json.dumps(_datasets_doc()))
    assert compare_bench.main([str(path), "--check-columnar"]) == 0
    path.write_text(json.dumps(_datasets_doc(
        rowgroup_replay_rps=400_000.0)))
    assert compare_bench.main([str(path), "--check-columnar"]) == 1
    assert compare_bench.main([str(path), "--check-columnar",
                               "--min-rowgroup-ratio", "0.7"]) == 0
