"""Tests for the message model and the wire codec (RFC 1035 / 6891)."""

import pytest

from repro.dnslib import (A, AAAA, CNAME, MX, NS, PTR, SOA, TXT,
                          BadPointerError, EcsOption, Message, Name, Opcode,
                          Question, Rcode, RecordType, ResourceRecord,
                          TruncatedMessageError, WireFormatError,
                          decode_message, encode_message)
from repro.dnslib.wire import decode_name, encode_name


def roundtrip(msg: Message) -> Message:
    return decode_message(encode_message(msg))


def make_rr(name: str, rdata, rdtype, ttl=300) -> ResourceRecord:
    return ResourceRecord(Name.from_text(name), rdtype, ttl, rdata)


class TestHeaderRoundtrip:
    def test_query_flags(self):
        msg = Message.make_query(Name.from_text("a.b"), RecordType.A,
                                 msg_id=77)
        out = roundtrip(msg)
        assert out.msg_id == 77
        assert not out.is_response
        assert out.recursion_desired

    def test_response_flags(self):
        msg = Message.make_query(Name.from_text("a.b"), RecordType.A)
        resp = msg.make_response()
        resp.authoritative = True
        resp.recursion_available = True
        resp.rcode = Rcode.NXDOMAIN
        out = roundtrip(resp)
        assert out.is_response and out.authoritative
        assert out.recursion_available
        assert out.rcode == Rcode.NXDOMAIN

    def test_truncated_flag(self):
        msg = Message.make_query(Name.from_text("a.b"), RecordType.A)
        msg.truncated = True
        assert roundtrip(msg).truncated

    def test_rd_false(self):
        msg = Message.make_query(Name.from_text("a.b"), RecordType.A,
                                 recursion_desired=False)
        assert not roundtrip(msg).recursion_desired

    def test_question_roundtrip(self):
        msg = Message.make_query(Name.from_text("www.example.com"),
                                 RecordType.AAAA)
        out = roundtrip(msg)
        assert out.question == Question(Name.from_text("www.example.com"),
                                        RecordType.AAAA)

    def test_opcode_roundtrip(self):
        msg = Message.make_query(Name.from_text("a."), RecordType.A)
        msg.opcode = Opcode.STATUS
        assert roundtrip(msg).opcode == Opcode.STATUS


class TestRdataRoundtrip:
    @pytest.mark.parametrize("rdata,rdtype", [
        (A("203.0.113.9"), RecordType.A),
        (AAAA("2001:db8::9"), RecordType.AAAA),
        (NS(Name.from_text("ns1.example.com")), RecordType.NS),
        (CNAME(Name.from_text("target.example.com")), RecordType.CNAME),
        (PTR(Name.from_text("host.example.com")), RecordType.PTR),
        (MX(10, Name.from_text("mail.example.com")), RecordType.MX),
        (TXT((b"hello", b"world"),), RecordType.TXT),
        (SOA(Name.from_text("ns1.example.com"),
             Name.from_text("hostmaster.example.com"),
             2024, 3600, 600, 86400, 300), RecordType.SOA),
    ])
    def test_answer_roundtrip(self, rdata, rdtype):
        msg = Message.make_query(Name.from_text("q.example.com"), rdtype)
        resp = msg.make_response()
        resp.answers.append(make_rr("q.example.com", rdata, rdtype))
        out = roundtrip(resp)
        assert out.answers[0].rdata == rdata
        assert out.answers[0].rdtype == rdtype

    def test_ttl_roundtrip(self):
        msg = Message.make_query(Name.from_text("q."), RecordType.A)
        resp = msg.make_response()
        resp.answers.append(make_rr("q.", A("1.2.3.4"), RecordType.A,
                                    ttl=86399))
        assert roundtrip(resp).answers[0].ttl == 86399

    def test_all_sections_roundtrip(self):
        msg = Message.make_query(Name.from_text("q.example.com"),
                                 RecordType.A)
        resp = msg.make_response()
        resp.answers.append(make_rr("q.example.com", A("1.1.1.1"),
                                    RecordType.A))
        resp.authority.append(make_rr("example.com",
                                      NS(Name.from_text("ns1.example.com")),
                                      RecordType.NS))
        resp.additional.append(make_rr("ns1.example.com", A("2.2.2.2"),
                                       RecordType.A))
        out = roundtrip(resp)
        assert len(out.answers) == 1
        assert len(out.authority) == 1
        assert len(out.additional) == 1

    def test_txt_multisegment(self):
        txt = TXT.from_text_value("x" * 600)
        assert len(txt.strings) == 3
        msg = Message.make_query(Name.from_text("t."), RecordType.TXT)
        resp = msg.make_response()
        resp.answers.append(make_rr("t.", txt, RecordType.TXT))
        assert roundtrip(resp).answers[0].rdata == txt


class TestEdnsRoundtrip:
    def test_edns_payload_size(self):
        msg = Message.make_query(Name.from_text("q."), RecordType.A)
        msg.edns.payload_size = 1232
        assert roundtrip(msg).edns.payload_size == 1232

    def test_ecs_option_roundtrip(self):
        ecs = EcsOption.from_client_address("192.0.2.200", 24)
        msg = Message.make_query(Name.from_text("q."), RecordType.A, ecs=ecs)
        assert roundtrip(msg).ecs() == ecs

    def test_no_edns_when_disabled(self):
        msg = Message.make_query(Name.from_text("q."), RecordType.A,
                                 use_edns=False)
        assert roundtrip(msg).edns is None

    def test_dnssec_ok_flag(self):
        msg = Message.make_query(Name.from_text("q."), RecordType.A)
        msg.edns.dnssec_ok = True
        assert roundtrip(msg).edns.dnssec_ok

    def test_opt_not_in_additional(self):
        msg = Message.make_query(Name.from_text("q."), RecordType.A)
        out = roundtrip(msg)
        assert out.additional == []
        assert out.edns is not None

    def test_badvers_extended_rcode(self):
        msg = Message.make_query(Name.from_text("q."), RecordType.A)
        resp = msg.make_response()
        resp.rcode = Rcode.BADVERS
        assert roundtrip(resp).rcode == Rcode.BADVERS


class TestNameCompression:
    def test_compression_shrinks_message(self):
        msg = Message.make_query(Name.from_text("a.verylonglabel.example.com"),
                                 RecordType.A, use_edns=False)
        resp = msg.make_response()
        for i in range(4):
            resp.answers.append(make_rr("a.verylonglabel.example.com",
                                        A(f"1.2.3.{i}"), RecordType.A))
        wire = encode_message(resp)
        # Owner name repeats 5 times; compression must beat naive encoding.
        naive = 5 * (len("a.verylonglabel.example.com") + 2)
        assert len(wire) < 12 + naive + 5 * 14

    def test_compressed_names_decode(self):
        msg = Message.make_query(Name.from_text("x.example.com"),
                                 RecordType.NS, use_edns=False)
        resp = msg.make_response()
        resp.answers.append(make_rr("x.example.com",
                                    NS(Name.from_text("ns.x.example.com")),
                                    RecordType.NS))
        out = roundtrip(resp)
        assert out.answers[0].rdata.target == Name.from_text("ns.x.example.com")

    def test_pointer_loop_rejected(self):
        # A name that points at itself: 0xC00C at offset 12.
        wire = bytearray(encode_message(
            Message.make_query(Name.from_text("ab."), RecordType.A,
                               use_edns=False)))
        wire[12] = 0xC0
        wire[13] = 0x0C
        with pytest.raises(BadPointerError):
            decode_message(bytes(wire))

    def test_forward_pointer_out_of_range(self):
        buf = bytearray(b"\x00" * 12)
        buf += b"\xc0\xff"  # pointer to offset 255 (past end)
        with pytest.raises((TruncatedMessageError, BadPointerError)):
            decode_name(bytes(buf), 12)

    def test_encode_name_helper_roundtrip(self):
        buf = bytearray()
        encode_name(Name.from_text("a.b.c"), buf, {})
        name, end = decode_name(bytes(buf), 0)
        assert name == Name.from_text("a.b.c")
        assert end == len(buf)


class TestMalformedInput:
    def test_short_header(self):
        with pytest.raises(TruncatedMessageError):
            decode_message(b"\x00\x01")

    def test_truncated_question(self):
        msg = encode_message(Message.make_query(Name.from_text("abc."),
                                                RecordType.A, use_edns=False))
        with pytest.raises(TruncatedMessageError):
            decode_message(msg[:-3])

    def test_multi_question_rejected(self):
        wire = bytearray(encode_message(Message.make_query(
            Name.from_text("a."), RecordType.A, use_edns=False)))
        wire[5] = 2  # qdcount = 2
        with pytest.raises(WireFormatError):
            decode_message(bytes(wire))

    def test_reserved_label_type_rejected(self):
        buf = b"\x00" * 12 + b"\x80abc"
        with pytest.raises(WireFormatError):
            decode_name(buf, 12)


class TestMessageHelpers:
    def test_answer_addresses(self):
        msg = Message()
        msg.answers = [make_rr("a.", A("1.1.1.1"), RecordType.A),
                       make_rr("a.", AAAA("2001:db8::1"), RecordType.AAAA),
                       make_rr("a.", CNAME(Name.from_text("b.")),
                               RecordType.CNAME)]
        assert msg.answer_addresses() == ["1.1.1.1", "2001:db8::1"]

    def test_min_ttl(self):
        msg = Message()
        msg.answers = [make_rr("a.", A("1.1.1.1"), RecordType.A, ttl=20),
                       make_rr("a.", A("1.1.1.2"), RecordType.A, ttl=60)]
        assert msg.min_ttl() == 20

    def test_min_ttl_empty(self):
        assert Message().min_ttl() is None

    def test_copy_is_deep(self):
        msg = Message()
        msg.answers = [make_rr("a.", A("1.1.1.1"), RecordType.A)]
        clone = msg.copy()
        clone.answers.clear()
        assert len(msg.answers) == 1

    def test_set_ecs_strip(self):
        msg = Message.make_query(Name.from_text("q."), RecordType.A,
                                 ecs=EcsOption.from_client_address("1.2.3.4"))
        msg.set_ecs(None)
        assert msg.ecs() is None

    def test_set_ecs_on_plain_message(self):
        msg = Message()
        msg.set_ecs(EcsOption.from_client_address("1.2.3.4"))
        assert msg.ecs() is not None

    def test_make_response_echoes_question_and_id(self):
        q = Message.make_query(Name.from_text("q."), RecordType.A, msg_id=9)
        r = q.make_response()
        assert r.msg_id == 9 and r.question == q.question and r.is_response
