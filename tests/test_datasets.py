"""Tests for workload models, record IO, and the dataset generators."""

import random

import pytest

from repro.core.classify import classify_probing, prefix_length_profile
from repro.datasets import (AllNamesBuilder, CdnDatasetBuilder,
                            PublicCdnBuilder, ScanUniverseBuilder,
                            ZipfSampler, poisson_arrivals, read_jsonl,
                            write_csv, write_jsonl)
from repro.datasets.allnames import _sld_of
from repro.datasets.ditl import count_root_ecs_violators, generate_root_trace
from repro.datasets.records import AllNamesRecord, CdnQueryRecord, iter_jsonl
from repro.net import same_prefix


class TestZipf:
    def test_rank_zero_most_likely(self):
        sampler = ZipfSampler(100, 1.0)
        rng = random.Random(7)
        counts = [0] * 100
        for _ in range(5000):
            counts[sampler.sample(rng)] += 1
        assert counts[0] == max(counts)
        assert counts[0] > 3 * counts[50]

    def test_all_ranks_reachable(self):
        sampler = ZipfSampler(5, 0.5)
        rng = random.Random(1)
        seen = {sampler.sample(rng) for _ in range(2000)}
        assert seen == set(range(5))

    def test_bad_n_rejected(self):
        with pytest.raises(ValueError):
            ZipfSampler(0)

    def test_deterministic(self):
        s = ZipfSampler(50, 1.1)
        a = [s.sample(random.Random(3)) for _ in range(10)]
        b = [s.sample(random.Random(3)) for _ in range(10)]
        assert a == b


class TestPoisson:
    def test_rate_matches(self):
        ts = poisson_arrivals(10.0, 1000.0, random.Random(5))
        assert 9000 < len(ts) < 11000

    def test_sorted_in_window(self):
        ts = poisson_arrivals(1.0, 100.0, random.Random(5), start=50.0)
        assert ts == sorted(ts)
        assert all(50 <= t < 150 for t in ts)

    def test_zero_rate(self):
        assert poisson_arrivals(0, 100, random.Random(1)) == []


class TestRecordIO:
    def test_jsonl_roundtrip(self, tmp_path):
        records = [AllNamesRecord(1.0, "10.0.0.1", "a.com.", 1, 24, 60),
                   AllNamesRecord(2.0, "10.0.0.2", "b.com.", 28, 48, 20)]
        path = tmp_path / "records.jsonl"
        assert write_jsonl(records, path) == 2
        loaded = read_jsonl(path, AllNamesRecord)
        assert loaded == records

    def test_iter_jsonl_streams(self, tmp_path):
        records = [CdnQueryRecord(float(i), "r", "q.", 1, False)
                   for i in range(5)]
        path = tmp_path / "records.jsonl"
        write_jsonl(records, path)
        assert list(iter_jsonl(path, CdnQueryRecord)) == records

    def test_csv_header_and_rows(self, tmp_path):
        records = [AllNamesRecord(1.0, "10.0.0.1", "a.com.", 1, 24, 60)]
        path = tmp_path / "records.csv"
        write_csv(records, path)
        lines = path.read_text().strip().splitlines()
        assert lines[0].startswith("ts,client_ip")
        assert len(lines) == 2

    def test_csv_empty(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_csv([], path) == 0


class TestCdnDataset:
    def test_population_mix_scaled(self, cdn_dataset):
        from collections import Counter
        truth = Counter(s.probing for s in cdn_dataset.resolvers)
        # ALWAYS dominates, as in the paper (3382 of 4147).
        assert truth["always_ecs"] > truth["mixed"] > truth["hostname_probes"]

    def test_every_resolver_has_records(self, cdn_dataset):
        by = cdn_dataset.by_resolver()
        assert all(by.get(s.ip) for s in cdn_dataset.resolvers)

    def test_records_sorted(self, cdn_dataset):
        ts = [r.ts for r in cdn_dataset.records]
        assert ts == sorted(ts)

    def test_classifier_recovers_ground_truth(self, cdn_dataset):
        by = cdn_dataset.by_resolver()
        correct = 0
        for spec in cdn_dataset.resolvers:
            verdict = classify_probing(by[spec.ip], record_ttl=20)
            if verdict.category.value == spec.probing:
                correct += 1
        assert correct / len(cdn_dataset.resolvers) >= 0.95

    def test_prefix_profiles_match_assignment(self, cdn_dataset):
        by = cdn_dataset.by_resolver()
        checked = 0
        for spec in cdn_dataset.resolvers:
            if spec.probing != "always_ecs" or spec.is_v6:
                continue
            profile = prefix_length_profile(by[spec.ip])
            assert profile.table1_label() == spec.profile
            checked += 1
        assert checked > 5

    def test_dominant_as_is_jammed_chinese(self, cdn_dataset):
        dominant = [s for s in cdn_dataset.resolvers if s.dominant_as]
        assert dominant
        assert all(s.country == "CN" for s in dominant)
        assert all("jammed" in s.profile for s in dominant)

    def test_v6_resolvers_present(self, cdn_dataset):
        assert any(s.is_v6 for s in cdn_dataset.resolvers)

    def test_deterministic(self):
        a = CdnDatasetBuilder(scale=0.005, seed=9, duration_s=600).build()
        b = CdnDatasetBuilder(scale=0.005, seed=9, duration_s=600).build()
        assert a.records == b.records

    def test_bad_scale_rejected(self):
        with pytest.raises(ValueError):
            CdnDatasetBuilder(scale=0)


class TestAllNamesDataset:
    def test_schema_complete(self, allnames_dataset):
        record = allnames_dataset.records[0]
        assert record.client_ip and record.qname.endswith(".")
        assert record.scope >= 0 and record.ttl > 0

    def test_scope_zero_absent(self, allnames_dataset):
        # By construction the dataset only holds non-zero-scope responses.
        assert all(r.scope > 0 for r in allnames_dataset.records)

    def test_sld_policies_stable(self, allnames_dataset):
        per_sld = {}
        for record in allnames_dataset.records:
            sld = _sld_of(record.qname)
            if record.qtype == 1:
                per_sld.setdefault(sld, set()).add((record.scope, record.ttl))
        assert all(len(v) == 1 for v in per_sld.values())

    def test_v6_clients_get_v6_scope(self, allnames_dataset):
        v6 = [r for r in allnames_dataset.records if ":" in r.client_ip]
        assert v6 and all(r.scope == 48 for r in v6)
        assert all(r.qtype == 28 for r in v6)

    def test_duration_respected(self, allnames_dataset):
        assert max(r.ts for r in allnames_dataset.records) <= \
            allnames_dataset.duration_s * 1.2

    def test_sld_of(self):
        assert _sld_of("h1.s00001.com.") == "s00001.com."
        assert _sld_of("a.b.c.example.org.") == "example.org."


class TestPublicCdnDataset:
    def test_all_records_carry_ecs(self, public_cdn_dataset):
        assert all(r.ecs_source_len == 24 and r.scope == 24
                   for r in public_cdn_dataset.records)

    def test_fixed_ttl(self, public_cdn_dataset):
        assert all(r.ttl == 20 for r in public_cdn_dataset.records)

    def test_heterogeneous_volumes(self, public_cdn_dataset):
        by = public_cdn_dataset.by_resolver()
        sizes = sorted(len(v) for v in by.values() if v)
        assert sizes[-1] > 5 * max(1, sizes[0])

    def test_grouping_covers_all_records(self, public_cdn_dataset):
        by = public_cdn_dataset.by_resolver()
        assert sum(len(v) for v in by.values()) == \
            len(public_cdn_dataset.records)


class TestScanUniverse:
    def test_paired_forwarders_exist_for_specs(self, scan_universe):
        from itertools import combinations
        for spec in scan_universe.egress_specs[:5]:
            chains = scan_universe.chains_for_egress(spec.ip)
            pairs = [(a, b) for a, b in combinations(chains, 2)
                     if not a.hidden_ips and not b.hidden_ips
                     and same_prefix(a.forwarder_ip, b.forwarder_ip, 16)
                     and not same_prefix(a.forwarder_ip, b.forwarder_ip, 24)]
            assert pairs

    def test_hidden_fraction_rough(self, scan_universe):
        with_hidden = sum(1 for c in scan_universe.chains if c.hidden_ips)
        fraction = with_hidden / len(scan_universe.chains)
        assert 0.2 < fraction < 0.7

    def test_ground_truth_cities_recorded(self, scan_universe):
        for chain in scan_universe.chains[:10]:
            assert chain.forwarder_city
            city = scan_universe.topology.city_of(chain.forwarder_ip)
            assert city and city.name == chain.forwarder_city

    def test_deterministic(self):
        a = ScanUniverseBuilder(seed=3, ingress_count=20).build()
        b = ScanUniverseBuilder(seed=3, ingress_count=20).build()
        assert [c.forwarder_ip for c in a.chains] == \
            [c.forwarder_ip for c in b.chains]
        assert [s.policy_name for s in a.egress_specs] == \
            [s.policy_name for s in b.egress_specs]


class TestDitl:
    def test_violator_count_exact(self):
        trace = generate_root_trace(resolver_count=100, violators=7, seed=2)
        assert count_root_ecs_violators(trace.records) == 7
        assert len(trace.violator_ips) == 7

    def test_regular_resolvers_clean(self):
        trace = generate_root_trace(resolver_count=50, violators=0, seed=2)
        assert count_root_ecs_violators(trace.records) == 0

    def test_too_many_violators_rejected(self):
        with pytest.raises(ValueError):
            generate_root_trace(resolver_count=5, violators=6)
