"""Root-server (DITL-like) trace generator.

Section 6.1 closes with a check for the grossest probing violation: sending
ECS to the root servers, which RFC 7871 rules out.  Analyzing a day of
A-root DITL data, the paper finds 15 such resolvers.  This generator emits a
root-trace with a configurable violator count buried in ordinary traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import List

from .records import RootQueryRecord
from .workload import poisson_arrivals

_TLDS = ("com.", "net.", "org.", "io.", "de.", "cn.", "uk.", "jp.", "br.")


@dataclass
class RootTrace:
    """Generated root-server log plus ground truth."""

    records: List[RootQueryRecord]
    violator_ips: List[str]


def generate_root_trace(resolver_count: int = 400, violators: int = 15,
                        duration_s: float = 3600.0, seed: int = 0,
                        mean_qps: float = 0.01) -> RootTrace:
    """A root-server trace where ``violators`` resolvers attach ECS.

    Ordinary resolvers send priming/NS/TLD queries without ECS; the
    violators attach ECS to (some of) their queries, as the 15 resolvers in
    the DITL data did.
    """
    if violators > resolver_count:
        raise ValueError("more violators than resolvers")
    rng = random.Random(seed)
    records: List[RootQueryRecord] = []
    violator_ips: List[str] = []
    for i in range(resolver_count):
        ip = f"77.{(i >> 8) & 0xFF}.{i & 0xFF}.53"
        is_violator = i < violators
        if is_violator:
            violator_ips.append(ip)
        rate = mean_qps * rng.uniform(0.3, 3.0)
        for ts in poisson_arrivals(rate, duration_s, rng) or \
                [rng.uniform(0, duration_s)]:
            qname = rng.choice(_TLDS)
            qtype = rng.choice((2, 1, 28))
            has_ecs = is_violator and rng.random() < 0.8
            records.append(RootQueryRecord(ts, ip, qname, qtype, has_ecs))
        if is_violator and not any(r.resolver_ip == ip and r.has_ecs
                                   for r in records):
            records.append(RootQueryRecord(rng.uniform(0, duration_s), ip,
                                           "com.", 1, True))
    records.sort(key=lambda r: r.ts)
    return RootTrace(records, violator_ips)


def count_root_ecs_violators(records: List[RootQueryRecord]) -> int:
    """Resolvers sending at least one ECS query to the root."""
    return len({r.resolver_ip for r in records if r.has_ecs})
