"""Root-server (DITL-like) trace generator.

Section 6.1 closes with a check for the grossest probing violation: sending
ECS to the root servers, which RFC 7871 rules out.  Analyzing a day of
A-root DITL data, the paper finds 15 such resolvers.  This generator emits a
root-trace with a configurable violator count buried in ordinary traffic.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Sequence

from ..engine.seeding import derive_seed
from ..engine.sharding import shard_bounds
from .records import RootQueryRecord
from .workload import merge_sorted_records, poisson_arrivals

_TLDS = ("com.", "net.", "org.", "io.", "de.", "cn.", "uk.", "jp.", "br.")


@dataclass
class RootTrace:
    """Generated root-server log plus ground truth."""

    records: List[RootQueryRecord]
    violator_ips: List[str]


def generate_root_trace(resolver_count: int = 400, violators: int = 15,
                        duration_s: float = 3600.0, seed: int = 0,
                        mean_qps: float = 0.01) -> RootTrace:
    """A root-server trace where ``violators`` resolvers attach ECS.

    Ordinary resolvers send priming/NS/TLD queries without ECS; the
    violators attach ECS to (some of) their queries, as the 15 resolvers in
    the DITL data did.
    """
    if violators > resolver_count:
        raise ValueError("more violators than resolvers")
    rng = random.Random(seed)
    records: List[RootQueryRecord] = []
    violator_ips: List[str] = []
    for i in range(resolver_count):
        ip = f"77.{(i >> 8) & 0xFF}.{i & 0xFF}.53"
        is_violator = i < violators
        if is_violator:
            violator_ips.append(ip)
        rate = mean_qps * rng.uniform(0.3, 3.0)
        for ts in poisson_arrivals(rate, duration_s, rng) or \
                [rng.uniform(0, duration_s)]:
            qname = rng.choice(_TLDS)
            qtype = rng.choice((2, 1, 28))
            has_ecs = is_violator and rng.random() < 0.8
            records.append(RootQueryRecord(ts, ip, qname, qtype, has_ecs))
        if is_violator and not any(r.resolver_ip == ip and r.has_ecs
                                   for r in records):
            records.append(RootQueryRecord(rng.uniform(0, duration_s), ip,
                                           "com.", 1, True))
    records.sort(key=lambda r: r.ts)
    return RootTrace(records, violator_ips)


def count_root_ecs_violators(records: List[RootQueryRecord]) -> int:
    """Resolvers sending at least one ECS query to the root."""
    return len({r.resolver_ip for r in records if r.has_ecs})


class RootTraceBuilder:
    """Shardable builder form of :func:`generate_root_trace`.

    ``build()`` is the legacy sequential generator; ``build_shard`` /
    ``assemble`` let :mod:`repro.engine` spread the resolver universe
    across workers.  A resolver's violator status depends only on its
    index, so ground truth is identical under any shard decomposition.
    """

    _SEED_NS = "ditl"

    def __init__(self, resolver_count: int = 400, violators: int = 15,
                 duration_s: float = 3600.0, seed: int = 0,
                 mean_qps: float = 0.01):
        if violators > resolver_count:
            raise ValueError("more violators than resolvers")
        self.resolver_count = resolver_count
        self.violators = violators
        self.duration_s = duration_s
        self.seed = seed
        self.mean_qps = mean_qps

    @staticmethod
    def _resolver_ip(i: int) -> str:
        return f"77.{(i >> 8) & 0xFF}.{i & 0xFF}.53"

    def build(self) -> RootTrace:
        """The legacy single-stream generator (unchanged semantics)."""
        return generate_root_trace(self.resolver_count, self.violators,
                                   self.duration_s, self.seed,
                                   self.mean_qps)

    def shard_units(self) -> int:
        """The unit universe sharded over: resolvers."""
        return self.resolver_count

    def iter_shard(self, shard_index: int,
                   shard_count: int) -> Iterator[RootQueryRecord]:
        """Stream one resolver range's queries, in emission order.

        Resolver-major (not globally ts-sorted); pairs with an external
        sort in out-of-core writers.  Consumes the shard's random
        stream in exactly the :meth:`build_shard` order.
        """
        lo, hi = shard_bounds(self.resolver_count, shard_count)[shard_index]
        rng = random.Random(derive_seed(self.seed, shard_index,
                                        self._SEED_NS))
        for i in range(lo, hi):
            ip = self._resolver_ip(i)
            is_violator = i < self.violators
            rate = self.mean_qps * rng.uniform(0.3, 3.0)
            sent_ecs = False
            for ts in poisson_arrivals(rate, self.duration_s, rng) or \
                    [rng.uniform(0, self.duration_s)]:
                qname = rng.choice(_TLDS)
                qtype = rng.choice((2, 1, 28))
                has_ecs = is_violator and rng.random() < 0.8
                sent_ecs = sent_ecs or has_ecs
                yield RootQueryRecord(ts, ip, qname, qtype, has_ecs)
            if is_violator and not sent_ecs:
                yield RootQueryRecord(rng.uniform(0, self.duration_s),
                                      ip, "com.", 1, True)

    def build_shard(self, shard_index: int,
                    shard_count: int) -> List[RootQueryRecord]:
        """Emit the streams of one contiguous resolver-index range."""
        records = list(self.iter_shard(shard_index, shard_count))
        records.sort(key=lambda r: r.ts)
        return records

    def assemble(self,
                 shard_records: Sequence[List[RootQueryRecord]]) -> RootTrace:
        """Order-stable merge of shard outputs into a full trace."""
        records = merge_sorted_records(shard_records)
        violator_ips = [self._resolver_ip(i) for i in range(self.violators)]
        return RootTrace(records, violator_ips)
