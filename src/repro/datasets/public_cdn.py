"""Generator for the Public Resolver/CDN dataset (section 4).

The real dataset: 3 busy hours of ECS queries from a major public DNS
service (2 370 egress resolver IPs, heterogeneous per-IP volumes) to a major
CDN's authoritative nameservers.  Every query carries ECS, every response a
non-zero scope, and the CDN always returns a 20-second TTL — the exact
inputs the Fig 1 cache-blow-up replay needs.

Per-resolver heterogeneity is the load-bearing property: busy egress
resolvers serve clients from many /24s concurrently (high blow-up), idle
ones from few (blow-up near 1), producing Fig 1's wide CDF.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence

from ..engine.seeding import derive_seed
from ..engine.sharding import shard_bounds
from . import paper_numbers as paper
from .records import PublicCdnRecord
from .workload import ZipfSampler, merge_sorted_records, poisson_arrivals


@dataclass
class PublicCdnDataset:
    """The generated trace, grouped by egress resolver on demand."""

    records: List[PublicCdnRecord]
    resolver_ips: List[str]
    duration_s: float
    ttl: int

    def by_resolver(self) -> Dict[str, List[PublicCdnRecord]]:
        out: Dict[str, List[PublicCdnRecord]] = {ip: [] for ip in self.resolver_ips}
        for record in self.records:
            out[record.resolver_ip].append(record)
        return out


class PublicCdnBuilder:
    """Builds a :class:`PublicCdnDataset` at a configurable scale."""

    def __init__(self, scale: float = 0.02, seed: int = 0,
                 duration_s: float = 3 * 3600.0,
                 hostname_count: int = 40,
                 ttl: int = 20,
                 zipf_alpha: float = 1.0,
                 mean_qps: float = 4.0,
                 volume_spread_decades: float = 0.9,
                 subnet_multiplier: tuple = (60, 260)):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed
        self.duration_s = duration_s
        self.hostname_count = hostname_count
        self.ttl = ttl
        self.zipf_alpha = zipf_alpha
        self.mean_qps = mean_qps
        self.volume_spread_decades = volume_spread_decades
        self.subnet_multiplier = subnet_multiplier

    def resolver_count(self) -> int:
        return max(4, round(paper.PUBLIC_CDN_RESOLVER_IPS * self.scale))

    @staticmethod
    def _resolver_ip(r: int) -> str:
        return f"8.{(r >> 8) & 0xFF}.{r & 0xFF}.53"

    def _iter_resolver(self, r: int, hostnames: Sequence[str],
                       zipf: ZipfSampler, rng: random.Random
                       ) -> Iterator[PublicCdnRecord]:
        """One egress resolver's query stream, in its own arrival order."""
        ip = self._resolver_ip(r)
        # Log-uniform volume: busy front-line resolvers vs near-idle ones.
        spread = self.volume_spread_decades
        qps = self.mean_qps * (10.0 ** rng.uniform(-spread, spread))
        # Client diversity grows with volume (busier egress = more
        # front-ends routing to it = more client subnets).
        lo, hi = self.subnet_multiplier
        subnet_count = max(1, int(qps / self.mean_qps * rng.uniform(lo, hi)))
        subnets = [f"{rng.randrange(90, 120)}.{rng.randrange(256)}"
                   f".{rng.randrange(256)}.0" for _ in range(subnet_count)]
        for ts in poisson_arrivals(qps, self.duration_s, rng):
            subnet = rng.choice(subnets)
            hostname = hostnames[zipf.sample(rng)]
            yield PublicCdnRecord(ts, ip, hostname, 1, subnet, 24, 24,
                                  self.ttl)

    def _emit_resolver(self, r: int, hostnames: Sequence[str],
                       zipf: ZipfSampler, rng: random.Random,
                       records: List[PublicCdnRecord]) -> None:
        """Append one egress resolver's query stream to ``records``."""
        records.extend(self._iter_resolver(r, hostnames, zipf, rng))

    def build(self) -> PublicCdnDataset:
        rng = random.Random(self.seed)
        resolver_count = self.resolver_count()
        hostnames = [f"a{i:04d}.cdn.example." for i in range(self.hostname_count)]
        zipf = ZipfSampler(len(hostnames), self.zipf_alpha)

        records: List[PublicCdnRecord] = []
        resolver_ips: List[str] = []
        for r in range(resolver_count):
            resolver_ips.append(self._resolver_ip(r))
            self._emit_resolver(r, hostnames, zipf, rng, records)
        records.sort(key=lambda rec: rec.ts)
        return PublicCdnDataset(records, resolver_ips, self.duration_s, self.ttl)

    # -- sharded generation (repro.engine) ---------------------------------

    _SEED_NS = "public-cdn"

    def shard_units(self) -> int:
        """The unit universe sharded over: egress resolvers."""
        return self.resolver_count()

    def iter_shard(self, shard_index: int,
                   shard_count: int) -> Iterator[PublicCdnRecord]:
        """Stream one resolver range's queries, in emission order.

        Resolver-major, *not* globally ts-sorted (each resolver's
        arrivals are time-ordered but resolvers overlap): out-of-core
        writers pair this with an external sort.  The random stream is
        consumed in exactly the :meth:`build_shard` order, so both paths
        generate identical records.
        """
        hostnames = [f"a{i:04d}.cdn.example."
                     for i in range(self.hostname_count)]
        zipf = ZipfSampler(len(hostnames), self.zipf_alpha)
        lo, hi = shard_bounds(self.resolver_count(), shard_count)[shard_index]
        rng = random.Random(derive_seed(self.seed, shard_index,
                                        self._SEED_NS))
        for r in range(lo, hi):
            yield from self._iter_resolver(r, hostnames, zipf, rng)

    def build_shard(self, shard_index: int,
                    shard_count: int) -> List[PublicCdnRecord]:
        """Emit the query streams of one contiguous resolver range."""
        records = list(self.iter_shard(shard_index, shard_count))
        records.sort(key=lambda rec: rec.ts)
        return records

    def assemble(self,
                 shard_records: Sequence[List[PublicCdnRecord]]
                 ) -> PublicCdnDataset:
        """Order-stable merge of shard outputs into a full dataset."""
        records = merge_sorted_records(shard_records)
        resolver_ips = [self._resolver_ip(r)
                        for r in range(self.resolver_count())]
        return PublicCdnDataset(records, resolver_ips, self.duration_s,
                                self.ttl)
