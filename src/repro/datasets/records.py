"""Canonical log-record schemas for the four datasets, with JSONL/CSV IO.

Every dataset in the paper is, at bottom, a log of DNS interactions seen
from one vantage point.  These dataclasses pin down the fields each
analysis needs; generators emit them, IO helpers persist them, and the
analyses are pure functions over sequences of them — mirroring how the
paper's pipelines consume the operators' logs.
"""

from __future__ import annotations

import contextlib
import csv
import dataclasses
import heapq
import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Iterator, List, Optional, Sequence, Type, TypeVar, Union

T = TypeVar("T")


@dataclass(slots=True)
class CdnQueryRecord:
    """One query in the CDN dataset (authoritative vantage, section 4).

    Field names match :class:`repro.core.classify.QueryObservation` so the
    probing/prefix classifiers consume these records directly.
    """

    ts: float
    resolver_ip: str
    qname: str
    qtype: int
    has_ecs: bool
    ecs_address: Optional[str] = None
    ecs_source_len: Optional[int] = None
    #: Scope the CDN returned (None: resolver not whitelisted → no ECS echo).
    ecs_scope: Optional[int] = None
    ttl: int = 20


@dataclass(slots=True)
class ScanQueryRecord:
    """One arrival at the experimental nameserver (Scan dataset)."""

    ts: float
    ingress_ip: Optional[str]
    egress_ip: str
    qname: str
    has_ecs: bool
    ecs_address: Optional[str] = None
    ecs_source_len: Optional[int] = None


@dataclass(slots=True)
class PublicCdnRecord:
    """One ECS query from the public service to the CDN (section 4's
    Public Resolver/CDN dataset: all queries carry ECS, all responses a
    non-zero scope)."""

    ts: float
    resolver_ip: str
    qname: str
    qtype: int
    ecs_address: str
    ecs_source_len: int
    scope: int
    ttl: int = 20


@dataclass(slots=True)
class AllNamesRecord:
    """One query/response pair at the busy anycast resolver (All-Names
    Resolver dataset): both the client IP and the authoritative scope are
    known — the dataset's unique feature."""

    ts: float
    client_ip: str
    qname: str
    qtype: int
    scope: int
    ttl: int


@dataclass(slots=True)
class RootQueryRecord:
    """One query in a root-server (DITL-like) trace."""

    ts: float
    resolver_ip: str
    qname: str
    qtype: int
    has_ecs: bool


# ---------------------------------------------------------------------------
# IO


def write_jsonl(records: Iterable[object], path: Union[str, Path]) -> int:
    """Write dataclass records as JSON lines; returns the count written."""
    count = 0
    with open(path, "w", encoding="utf-8") as fh:
        for record in records:
            fh.write(json.dumps(dataclasses.asdict(record),
                                separators=(",", ":")))
            fh.write("\n")
            count += 1
    return count


def read_jsonl(path: Union[str, Path], record_type: Type[T]) -> List[T]:
    """Load JSONL records back into dataclass instances."""
    out: List[T] = []
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                out.append(record_type(**json.loads(line)))
    return out


def iter_jsonl(path: Union[str, Path], record_type: Type[T]) -> Iterator[T]:
    """Stream JSONL records without materializing the whole list."""
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield record_type(**json.loads(line))


def shard_path(base_path: Union[str, Path], shard_index: int) -> Path:
    """The conventional on-disk name of one shard of ``base_path``."""
    base = Path(base_path)
    return base.with_name(f"{base.name}.shard{shard_index:02d}")


def write_jsonl_shards(shard_lists: Sequence[Iterable[object]],
                       base_path: Union[str, Path]) -> List[Path]:
    """Write one JSONL file per shard next to ``base_path``.

    Shard workers can call :func:`write_jsonl` on their own shard file
    concurrently; this helper is the serial equivalent, used once the
    per-shard record lists are back in the parent.  Returns the shard
    paths in shard order — the order :func:`merge_jsonl_shards` expects.
    """
    paths: List[Path] = []
    for index, records in enumerate(shard_lists):
        path = shard_path(base_path, index)
        write_jsonl(records, path)
        paths.append(path)
    return paths


def merge_jsonl_shards(paths: Sequence[Union[str, Path]],
                       out_path: Union[str, Path],
                       ts_field: str = "ts") -> int:
    """Order-stable k-way merge of timestamp-sorted shard files.

    Lines are merged by their ``ts_field`` value; ties break toward the
    earlier shard in ``paths``, matching a stable sort of the shard
    concatenation.  Streams line-by-line, so merging never materializes a
    whole dataset in memory.  Returns the number of records written.
    """

    def stream(index: int, handle) -> Iterator[tuple]:
        for line in handle:
            line = line.strip()
            if line:
                yield (json.loads(line)[ts_field], index, line)

    count = 0
    with contextlib.ExitStack() as stack:
        handles = [stack.enter_context(open(p, "r", encoding="utf-8"))
                   for p in paths]
        out = stack.enter_context(open(out_path, "w", encoding="utf-8"))
        streams = [stream(i, h) for i, h in enumerate(handles)]
        for _, _, line in heapq.merge(*streams):
            out.write(line)
            out.write("\n")
            count += 1
    return count


def write_csv(records: Sequence[object], path: Union[str, Path]) -> int:
    """Write dataclass records as CSV with a header row."""
    records = list(records)
    if not records:
        Path(path).write_text("")
        return 0
    fields = [f.name for f in dataclasses.fields(records[0])]
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.DictWriter(fh, fieldnames=fields)
        writer.writeheader()
        for record in records:
            writer.writerow(dataclasses.asdict(record))
    return len(records)
