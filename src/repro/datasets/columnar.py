"""Columnar, mmap-able storage for the trace record schemas.

The paper's real datasets are 1.5B (All-Names) and 3.8B (CDN) queries;
Python-object record lists cap out far below that.  This module stores a
trace as *columns* instead: one struct-packed :mod:`array` per numeric
field, a dictionary-encoded code column per string field (qnames,
resolver and client IPs repeat constantly in DNS traces), and a packed
null bitmap per Optional field.  The on-disk format is a versioned
header plus raw per-column segments, so an opened file is a single
:func:`mmap.mmap` and every column is a zero-copy ``memoryview.cast``
into it — workers replaying shards of one trace map the same file and
share its pages instead of pickling records or re-parsing JSONL.

Layout of a ``.col`` file::

    offset 0   MAGIC            b"RPRCOL01" (8 bytes)
    offset 8   header length    u32, little-endian
    offset 12  header           UTF-8 JSON (schema name, row count,
                                per-column segment table)
    ...        segments         8-byte aligned; offsets in the header
                                are relative to the first segment

Per column the header records a ``data`` segment (the packed values —
dictionary codes for string columns), an optional ``nulls`` segment
(bitmap, bit ``i`` set when row ``i`` is None) and an optional ``dict``
segment (the string dictionary as a JSON array, in code order).  The
header is pure JSON so ``repro-ecs dataset info`` can describe a file
without touching any segment.

Everything here is deterministic: dictionaries assign codes in first-
appearance order, merges are stable k-way merges keyed on ``(ts, shard
index, row index)`` — the exact tie-break of
:func:`repro.datasets.records.merge_jsonl_shards` — and no content ever
depends on process or machine identity.
"""

from __future__ import annotations

import dataclasses
import heapq
import json
import mmap
import struct
from array import array
from dataclasses import dataclass
from pathlib import Path
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Type, Union)

from ..engine.sharding import stable_bucket
from .records import (AllNamesRecord, CdnQueryRecord, PublicCdnRecord,
                      RootQueryRecord, ScanQueryRecord, iter_jsonl,
                      write_jsonl)

#: Declared for the whole-program linter (RS202): a store wraps an
#: mmap'd file, so instances must never cross a pickle boundary —
#: workers reopen by path (see ``repro.engine.replay._columnar_store``).
STATICCHECK_UNPICKLABLE = ("repro.datasets.columnar:ColumnarStore",)

#: File magic: format name + two-digit major version.
MAGIC = b"RPRCOL01"
#: Header ``version`` field; bump on any incompatible layout change.
FORMAT_VERSION = 1
#: Segment alignment, so typed memoryview casts are always aligned.
ALIGN = 8

#: Column kind -> :mod:`array` typecode.  ``str`` columns store u32
#: dictionary codes; ``bool`` columns store u8 flags.
KIND_TYPECODES: Dict[str, str] = {
    "f8": "d",      # timestamps
    "i4": "i",      # qtype / scope / prefix lengths
    "i8": "q",      # TTLs and other wide counters
    "bool": "B",
    "str": "I",     # dictionary code
}


@dataclass(frozen=True)
class ColumnSpec:
    """One column of a record schema."""

    name: str
    kind: str
    nullable: bool = False

    @property
    def typecode(self) -> str:
        return KIND_TYPECODES[self.kind]


@dataclass(frozen=True)
class Schema:
    """A record dataclass mapped onto columns, in field order."""

    name: str
    record_type: Type[Any]
    columns: Tuple[ColumnSpec, ...]

    def __post_init__(self) -> None:
        fields = tuple(f.name for f in dataclasses.fields(self.record_type))
        names = tuple(c.name for c in self.columns)
        if fields != names:
            raise ValueError(f"schema {self.name!r} columns {names} do not "
                             f"match {self.record_type.__name__} fields "
                             f"{fields}")

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)


def _c(name: str, kind: str, nullable: bool = False) -> ColumnSpec:
    return ColumnSpec(name, kind, nullable)


#: The five trace schemas, keyed by the CLI/registry dataset names.
SCHEMAS: Dict[str, Schema] = {s.name: s for s in (
    Schema("allnames", AllNamesRecord, (
        _c("ts", "f8"), _c("client_ip", "str"), _c("qname", "str"),
        _c("qtype", "i4"), _c("scope", "i4"), _c("ttl", "i8"))),
    Schema("public-cdn", PublicCdnRecord, (
        _c("ts", "f8"), _c("resolver_ip", "str"), _c("qname", "str"),
        _c("qtype", "i4"), _c("ecs_address", "str"),
        _c("ecs_source_len", "i4"), _c("scope", "i4"), _c("ttl", "i8"))),
    Schema("cdn", CdnQueryRecord, (
        _c("ts", "f8"), _c("resolver_ip", "str"), _c("qname", "str"),
        _c("qtype", "i4"), _c("has_ecs", "bool"),
        _c("ecs_address", "str", nullable=True),
        _c("ecs_source_len", "i4", nullable=True),
        _c("ecs_scope", "i4", nullable=True), _c("ttl", "i8"))),
    Schema("scan", ScanQueryRecord, (
        _c("ts", "f8"), _c("ingress_ip", "str", nullable=True),
        _c("egress_ip", "str"), _c("qname", "str"), _c("has_ecs", "bool"),
        _c("ecs_address", "str", nullable=True),
        _c("ecs_source_len", "i4", nullable=True))),
    Schema("root-trace", RootQueryRecord, (
        _c("ts", "f8"), _c("resolver_ip", "str"), _c("qname", "str"),
        _c("qtype", "i4"), _c("has_ecs", "bool"))),
)}


def schema_for(dataset: Union[str, Type[Any], Any]) -> Schema:
    """Resolve a schema from its name, record class, or a record instance."""
    if isinstance(dataset, str):
        try:
            return SCHEMAS[dataset]
        except KeyError:
            raise KeyError(f"unknown columnar schema {dataset!r}; "
                           f"known: {sorted(SCHEMAS)}") from None
    cls = dataset if isinstance(dataset, type) else type(dataset)
    for schema in SCHEMAS.values():
        if schema.record_type is cls:
            return schema
    raise KeyError(f"no columnar schema for record type {cls.__name__!r}")


@dataclass(frozen=True)
class ColumnarStats:
    """Size accounting for one store or shard, mergeable across shards.

    Every field sums when shards are concatenated or merged, so shard
    stats fold associatively into whole-trace stats (``dict_entries``
    sums the per-shard dictionary sizes — an upper bound on the merged
    dictionary, exact when shard dictionaries are disjoint).
    """

    rows: int = 0
    data_bytes: int = 0
    null_bytes: int = 0
    dict_bytes: int = 0
    dict_entries: int = 0

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.null_bytes + self.dict_bytes

    @property
    def bytes_per_row(self) -> float:
        return self.total_bytes / self.rows if self.rows else 0.0

    def merge_segments(self, other: "ColumnarStats") -> "ColumnarStats":
        """Fold another shard's stats in (field-wise sum)."""
        return ColumnarStats(
            self.rows + other.rows,
            self.data_bytes + other.data_bytes,
            self.null_bytes + other.null_bytes,
            self.dict_bytes + other.dict_bytes,
            self.dict_entries + other.dict_entries)


def _align_pad(offset: int) -> int:
    return (-offset) % ALIGN


def _raw_bytes(column: Any) -> bytes:
    """Packed bytes of a raw column (array or typed memoryview)."""
    return column.tobytes()


class ColumnarWriter:
    """Streaming columnar builder: append records, then save or wrap.

    Appending never touches disk; :meth:`save` serializes the columns in
    one pass and :meth:`store` wraps them as an in-memory
    :class:`ColumnarStore` without copying.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.rows = 0
        self._arrays: Dict[str, "array[Any]"] = {
            c.name: array(c.typecode) for c in schema.columns}
        self._interns: Dict[str, Dict[str, int]] = {
            c.name: {} for c in schema.columns if c.kind == "str"}
        self._nulls: Dict[str, bytearray] = {
            c.name: bytearray() for c in schema.columns if c.nullable}

    def _intern(self, column: str, value: str) -> int:
        codes = self._interns[column]
        code = codes.get(value)
        if code is None:
            code = len(codes)
            codes[value] = code
        return code

    def _set_null(self, column: str, row: int) -> None:
        bitmap = self._nulls[column]
        byte = row >> 3
        if byte >= len(bitmap):
            bitmap.extend(b"\x00" * (byte + 1 - len(bitmap)))
        bitmap[byte] |= 1 << (row & 7)

    def append_values(self, values: Sequence[Any]) -> None:
        """Append one row given its field values in schema order."""
        row = self.rows
        for spec, value in zip(self.schema.columns, values):
            arr = self._arrays[spec.name]
            if value is None:
                if not spec.nullable:
                    raise ValueError(f"column {spec.name!r} of schema "
                                     f"{self.schema.name!r} is not nullable")
                self._set_null(spec.name, row)
                arr.append(0)
            elif spec.kind == "str":
                arr.append(self._intern(spec.name, value))
            elif spec.kind == "bool":
                arr.append(1 if value else 0)
            else:
                arr.append(value)
        self.rows = row + 1

    def append(self, record: Any) -> None:
        """Append one record (a dataclass instance of the schema's type)."""
        self.append_values(tuple(getattr(record, name)
                                 for name in self.schema.field_names))

    def extend(self, records: Iterable[Any]) -> int:
        """Append many records; returns how many were appended."""
        before = self.rows
        for record in records:
            self.append(record)
        return self.rows - before

    def extend_store(self, store: "ColumnarStore") -> int:
        """Concatenate another store's segments onto this writer.

        The segment-level fast path for shard concatenation: numeric and
        bool columns append their packed bytes wholesale; string columns
        remap the incoming dictionary codes onto this writer's merged
        dictionary (one lookup per *dictionary entry*, one integer per
        row); null bitmaps re-pack at the new row offset.
        """
        if store.schema.name != self.schema.name:
            raise ValueError(f"cannot concatenate schema "
                             f"{store.schema.name!r} onto "
                             f"{self.schema.name!r}")
        base = self.rows
        for spec in self.schema.columns:
            raw = store.raw_column(spec.name)
            arr = self._arrays[spec.name]
            if spec.kind != "str":
                arr.frombytes(_raw_bytes(raw))
            else:
                remap = [self._intern(spec.name, value)
                         for value in store.dictionary(spec.name)]
                if spec.nullable:
                    null_of = store.null_checker(spec.name)
                    arr.extend(0 if null_of(row) else remap[raw[row]]
                               for row in range(store.rows))
                else:
                    arr.extend(remap[code] for code in raw)
            if spec.nullable:
                null_of = store.null_checker(spec.name)
                for row in range(store.rows):
                    if null_of(row):
                        self._set_null(spec.name, base + row)
        self.rows = base + store.rows
        return store.rows

    def _dict_list(self, column: str) -> List[str]:
        # Insertion order == code order for the interning dicts.
        return list(self._interns[column])

    def store(self) -> "ColumnarStore":
        """Wrap the accumulated columns as an in-memory store (no copy)."""
        # Bitmaps grow lazily on _set_null; pad to full row coverage so
        # readers can index any row's bit without a bounds check.
        needed = (self.rows + 7) >> 3
        for bitmap in self._nulls.values():
            if len(bitmap) < needed:
                bitmap.extend(b"\x00" * (needed - len(bitmap)))
        nulls = {name: (bitmap, 0) for name, bitmap in self._nulls.items()}
        return ColumnarStore(self.schema, self.rows, dict(self._arrays),
                             nulls, {name: self._dict_list(name)
                                     for name in self._interns})

    def save(self, path: Union[str, Path]) -> int:
        """Serialize to ``path``; returns the number of rows written."""
        return self.store().save(path)


class ColumnarStore:
    """A columnar trace: in memory, or zero-copy over an mmap'd file.

    Opened stores keep one :func:`mmap.mmap` (or one bytes object with
    ``use_mmap=False``) and expose every column as a typed
    ``memoryview`` into it.  :meth:`slice` shares those buffers, so
    row-range shards of one file cost O(1) memory each.
    """

    def __init__(self, schema: Schema, rows: int,
                 data: Dict[str, Any],
                 nulls: Dict[str, Tuple[Any, int]],
                 dicts: Dict[str, List[str]],
                 closer: Optional[Callable[[], None]] = None) -> None:
        self.schema = schema
        self.rows = rows
        self._data = data
        self._nulls = nulls
        self._dicts = dicts
        self._closer = closer
        self._bucket_memo: Dict[Tuple[str, int], List["array[Any]"]] = {}
        self._getter_cache: Optional[List[Callable[[int], Any]]] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[Any],
                     schema: Union[str, Schema]) -> "ColumnarStore":
        """Columnarize an iterable of records (streaming, single pass)."""
        resolved = schema if isinstance(schema, Schema) else schema_for(schema)
        writer = ColumnarWriter(resolved)
        writer.extend(records)
        return writer.store()

    @classmethod
    def open(cls, path: Union[str, Path],
             use_mmap: bool = True) -> "ColumnarStore":
        """Open an on-disk store; columns are views into one mapping."""
        fh = open(path, "rb")
        try:
            prelude = fh.read(12)
            if len(prelude) < 12 or prelude[:8] != MAGIC:
                raise ValueError(f"{path}: not a columnar trace "
                                 f"(bad magic)")
            (header_len,) = struct.unpack("<I", prelude[8:12])
            header = json.loads(fh.read(header_len).decode("utf-8"))
            if header.get("version") != FORMAT_VERSION:
                raise ValueError(f"{path}: unsupported columnar format "
                                 f"version {header.get('version')!r} "
                                 f"(expected {FORMAT_VERSION})")
            buf: Any
            closer: Optional[Callable[[], None]]
            if use_mmap:
                mapping = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
                buf = memoryview(mapping)
                closer = _make_closer(buf, mapping)
            else:
                fh.seek(0)
                buf = memoryview(fh.read())
                closer = None
        finally:
            fh.close()
        schema = schema_for(header["schema"])
        rows = int(header["rows"])
        start = 12 + header_len + _align_pad(12 + header_len)
        data: Dict[str, Any] = {}
        nulls: Dict[str, Tuple[Any, int]] = {}
        dicts: Dict[str, List[str]] = {}
        for entry in header["columns"]:
            name = entry["name"]
            spec = next(c for c in schema.columns if c.name == name)
            off, length = entry["data"]
            data[name] = buf[start + off:start + off + length] \
                .cast(spec.typecode)
            if entry.get("nulls") is not None:
                off, length = entry["nulls"]
                nulls[name] = (buf[start + off:start + off + length], 0)
            if entry.get("dict") is not None:
                off, length = entry["dict"]
                dicts[name] = json.loads(
                    bytes(buf[start + off:start + off + length])
                    .decode("utf-8"))
        return cls(schema, rows, data, nulls, dicts, closer)

    def close(self) -> None:
        """Release the underlying mapping (no-op for in-memory stores).

        Every column view is released first — an mmap cannot close while
        exported buffers exist.  Live :meth:`slice` children keep their
        own views, so close the parent only after its slices are done.
        """
        self._getter_cache = None
        for view in self._data.values():
            if isinstance(view, memoryview):
                view.release()
        for bitmap, _ in self._nulls.values():
            if isinstance(bitmap, memoryview):
                bitmap.release()
        if self._closer is not None:
            closer, self._closer = self._closer, None
            closer()

    def __enter__(self) -> "ColumnarStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __len__(self) -> int:
        return self.rows

    # -- serialization -----------------------------------------------------

    def _null_bitmap_bytes(self, name: str) -> bytes:
        """The column's null bitmap re-packed to bit offset zero."""
        checker = self.null_checker(name)
        bitmap = bytearray((self.rows + 7) >> 3)
        for row in range(self.rows):
            if checker(row):
                bitmap[row >> 3] |= 1 << (row & 7)
        return bytes(bitmap)

    def save(self, path: Union[str, Path]) -> int:
        """Write the versioned header + aligned segments; returns rows."""
        segments: List[bytes] = []
        columns: List[Dict[str, Any]] = []
        offset = 0

        def add_segment(payload: bytes) -> Tuple[int, int]:
            nonlocal offset
            pad = _align_pad(offset)
            if pad:
                segments.append(b"\x00" * pad)
                offset += pad
            start = offset
            segments.append(payload)
            offset += len(payload)
            return (start, len(payload))

        for spec in self.schema.columns:
            entry: Dict[str, Any] = {
                "name": spec.name, "kind": spec.kind,
                "typecode": spec.typecode,
                "data": add_segment(_raw_bytes(self._data[spec.name])),
                "nulls": None, "dict": None}
            if spec.nullable:
                entry["nulls"] = add_segment(
                    self._null_bitmap_bytes(spec.name))
            if spec.kind == "str":
                dictionary = self._dicts.get(spec.name, [])
                payload = json.dumps(dictionary, separators=(",", ":"),
                                     ensure_ascii=False).encode("utf-8")
                entry["dict"] = add_segment(payload)
                entry["dict_entries"] = len(dictionary)
            columns.append(entry)

        header = json.dumps(
            {"version": FORMAT_VERSION, "schema": self.schema.name,
             "rows": self.rows, "columns": columns},
            separators=(",", ":")).encode("utf-8")
        with open(path, "wb") as fh:
            fh.write(MAGIC)
            fh.write(struct.pack("<I", len(header)))
            fh.write(header)
            fh.write(b"\x00" * _align_pad(12 + len(header)))
            for segment in segments:
                fh.write(segment)
        return self.rows

    # -- column access -----------------------------------------------------

    def raw_column(self, name: str) -> Any:
        """The packed value sequence (dictionary codes for str columns)."""
        return self._data[name]

    def column(self, name: str) -> Any:
        """Alias of :meth:`raw_column`; the replay hot path's entry."""
        return self._data[name]

    def dictionary(self, name: str) -> List[str]:
        """Code -> string table of a dictionary-encoded column."""
        return self._dicts[name]

    def null_checker(self, name: str) -> Callable[[int], bool]:
        """A ``row -> is-null`` predicate (always False when not nullable)."""
        entry = self._nulls.get(name)
        if entry is None:
            return lambda row: False
        bitmap, base = entry

        def is_null(row: int) -> bool:
            bit = base + row
            return bool(bitmap[bit >> 3] & (1 << (bit & 7)))

        return is_null

    def _value_getter(self, spec: ColumnSpec) -> Callable[[int], Any]:
        raw = self._data[spec.name]
        if spec.kind == "str":
            dictionary = self._dicts[spec.name]
            plain: Callable[[int], Any] = lambda row: dictionary[raw[row]]
        elif spec.kind == "bool":
            plain = lambda row: bool(raw[row])
        else:
            plain = lambda row: raw[row]
        if not spec.nullable:
            return plain
        null_of = self.null_checker(spec.name)
        return lambda row: None if null_of(row) else plain(row)

    def row_values(self, row: int) -> Tuple[Any, ...]:
        """One row's decoded field values, in schema order."""
        return tuple(g(row) for g in self._getters())

    def _getters(self) -> List[Callable[[int], Any]]:
        getters = self._getter_cache
        if getters is None:
            getters = [self._value_getter(spec)
                       for spec in self.schema.columns]
            self._getter_cache = getters
        return getters

    def record(self, row: int) -> Any:
        """Materialize one row as its record dataclass."""
        return self.schema.record_type(*self.row_values(row))

    def iter_records(self, lo: int = 0,
                     hi: Optional[int] = None) -> Iterator[Any]:
        """Stream rows ``[lo, hi)`` as record instances."""
        stop = self.rows if hi is None else hi
        getters = self._getters()
        cls = self.schema.record_type
        for row in range(lo, stop):
            yield cls(*[g(row) for g in getters])

    def to_records(self) -> List[Any]:
        """Materialize the whole store as a record list."""
        return list(self.iter_records())

    # -- shard arithmetic --------------------------------------------------

    def slice(self, lo: int, hi: int) -> "ColumnarStore":
        """Rows ``[lo, hi)`` as a store sharing this one's buffers.

        Zero-copy: numeric columns are memoryview slices, dictionaries
        are shared outright, and null bitmaps carry a bit offset instead
        of being re-packed.  The parent store must stay open for the
        slice's lifetime.
        """
        if not 0 <= lo <= hi <= self.rows:
            raise ValueError(f"slice [{lo}, {hi}) out of range for "
                             f"{self.rows} rows")
        data = {name: (memoryview(col) if isinstance(col, array) else col)
                [lo:hi] for name, col in self._data.items()}
        # Each child gets its own bitmap *view* so closing one slice
        # cannot release a buffer its siblings (or the parent) still use.
        nulls = {name: (memoryview(bitmap) if isinstance(bitmap, memoryview)
                        else bitmap, base + lo)
                 for name, (bitmap, base) in self._nulls.items()}
        return ColumnarStore(self.schema, hi - lo, data, nulls, self._dicts)

    def row_buckets(self, column: str, shards: int) -> List["array[Any]"]:
        """Row indices per :func:`stable_bucket` shard of a str column.

        The bucket of every row is decided by its *dictionary entry*, so
        the hash runs once per unique string, then bucketing the rows is
        a table lookup per row.  Memoized per (column, shards): workers
        replaying several shards of one mapped file pay the scan once.
        """
        memo_key = (column, shards)
        buckets = self._bucket_memo.get(memo_key)
        if buckets is None:
            by_code = array("i", (stable_bucket(value, shards)
                                  for value in self._dicts[column]))
            buckets = [array("q") for _ in range(shards)]
            appends = [bucket.append for bucket in buckets]
            for row, code in enumerate(self._data[column]):
                appends[by_code[code]](row)
            self._bucket_memo[memo_key] = buckets
        return buckets

    # -- accounting --------------------------------------------------------

    def stats(self) -> ColumnarStats:
        """Byte/row accounting over the packed segments."""
        data_bytes = sum(len(_raw_bytes(self._data[c.name]))
                         for c in self.schema.columns)
        null_bytes = sum((self.rows + 7) >> 3
                         for c in self.schema.columns if c.nullable)
        dict_bytes = 0
        dict_entries = 0
        for name, dictionary in self._dicts.items():
            dict_entries += len(dictionary)
            dict_bytes += len(json.dumps(dictionary, separators=(",", ":"),
                                         ensure_ascii=False).encode("utf-8"))
        return ColumnarStats(self.rows, data_bytes, null_bytes, dict_bytes,
                             dict_entries)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the packed representation."""
        return self.stats().total_bytes


def _make_closer(view: memoryview, mapping: mmap.mmap
                 ) -> Callable[[], None]:
    def closer() -> None:
        view.release()
        mapping.close()

    return closer


# ---------------------------------------------------------------------------
# File-level helpers


def is_columnar(path: Union[str, Path]) -> bool:
    """True when ``path`` starts with the columnar magic."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MAGIC)) == MAGIC
    except OSError:
        return False


def file_info(path: Union[str, Path]) -> Dict[str, Any]:
    """Describe a columnar file from its header alone (no segment reads)."""
    target = Path(path)
    with open(target, "rb") as fh:
        prelude = fh.read(12)
        if len(prelude) < 12 or prelude[:8] != MAGIC:
            raise ValueError(f"{path}: not a columnar trace (bad magic)")
        (header_len,) = struct.unpack("<I", prelude[8:12])
        header = json.loads(fh.read(header_len).decode("utf-8"))
    rows = int(header["rows"])
    columns = []
    for entry in header["columns"]:
        data_bytes = entry["data"][1]
        null_bytes = entry["nulls"][1] if entry.get("nulls") else 0
        dict_bytes = entry["dict"][1] if entry.get("dict") else 0
        columns.append({
            "name": entry["name"], "kind": entry["kind"],
            "typecode": entry["typecode"], "data_bytes": data_bytes,
            "null_bytes": null_bytes, "dict_bytes": dict_bytes,
            "dict_entries": entry.get("dict_entries", 0)})
    file_bytes = target.stat().st_size
    return {"path": str(target), "version": header["version"],
            "schema": header["schema"], "rows": rows,
            "header_bytes": header_len, "file_bytes": file_bytes,
            "bytes_per_row": file_bytes / rows if rows else 0.0,
            "columns": columns}


def write_columnar(records: Iterable[Any], path: Union[str, Path],
                   schema: Union[str, Schema]) -> int:
    """Columnarize and save an iterable of records; returns the count."""
    return ColumnarStore.from_records(records, schema).save(path)


def read_columnar(path: Union[str, Path]) -> List[Any]:
    """Load a columnar file back into a record list (convenience)."""
    with ColumnarStore.open(path) as store:
        return store.to_records()


def jsonl_to_columnar(src: Union[str, Path], dst: Union[str, Path],
                      schema: Union[str, Schema]) -> int:
    """Convert a JSONL trace to columnar, streaming record by record."""
    resolved = schema if isinstance(schema, Schema) else schema_for(schema)
    writer = ColumnarWriter(resolved)
    writer.extend(iter_jsonl(src, resolved.record_type))
    writer.save(dst)
    return writer.rows


def columnar_to_jsonl(src: Union[str, Path],
                      dst: Union[str, Path]) -> int:
    """Convert a columnar trace back to JSONL, streaming row by row.

    Round-trips byte-identically with :func:`jsonl_to_columnar` for any
    trace the JSONL writers produced: values decode to the exact Python
    objects the records held, and ``json.dumps`` is deterministic.
    """
    with ColumnarStore.open(src) as store:
        return write_jsonl(store.iter_records(), dst)


def merge_columnar_shards(paths: Sequence[Union[str, Path]],
                          out_path: Union[str, Path],
                          ts_column: str = "ts") -> int:
    """Order-stable k-way merge of ts-sorted columnar shard files.

    Rows merge by ``(ts, shard index, row index)`` — ties break toward
    the earlier shard, exactly like
    :func:`repro.datasets.records.merge_jsonl_shards` — so a columnar
    generate merged this way holds the same canonical record order as
    the JSONL route.  String columns re-intern into one merged
    dictionary.  Returns the number of rows written.
    """
    stores = [ColumnarStore.open(p) for p in paths]
    try:
        schemas = {store.schema.name for store in stores}
        if len(schemas) > 1:
            raise ValueError(f"cannot merge mixed schemas: "
                             f"{sorted(schemas)}")
        writer = ColumnarWriter(stores[0].schema)

        def stream(index: int,
                   store: ColumnarStore) -> Iterator[Tuple[float, int, int]]:
            ts_col = store.raw_column(ts_column)
            for row in range(store.rows):
                yield (ts_col[row], index, row)

        for _, index, row in heapq.merge(*[stream(i, s)
                                           for i, s in enumerate(stores)]):
            writer.append_values(stores[index].row_values(row))
        writer.save(out_path)
        return writer.rows
    finally:
        for store in stores:
            store.close()


def concat_columnar_shards(paths: Sequence[Union[str, Path]],
                           out_path: Union[str, Path]) -> int:
    """Pure segment concatenation of shard files, in path order.

    The cheap merge for shards that are already globally ordered (e.g.
    contiguous time windows): numeric segments append bytewise, string
    columns remap codes onto a merged dictionary, null bitmaps re-pack
    at their new row offsets.  No per-row ordering pass.
    """
    stores = [ColumnarStore.open(p) for p in paths]
    try:
        schemas = {store.schema.name for store in stores}
        if len(schemas) > 1:
            raise ValueError(f"cannot concatenate mixed schemas: "
                             f"{sorted(schemas)}")
        writer = ColumnarWriter(stores[0].schema)
        for store in stores:
            writer.extend_store(store)
        writer.save(out_path)
        return writer.rows
    finally:
        for store in stores:
            store.close()
