"""Columnar, mmap-able storage for the trace record schemas.

The paper's real datasets are 1.5B (All-Names) and 3.8B (CDN) queries;
Python-object record lists cap out far below that.  This module stores a
trace as *columns* instead: one struct-packed :mod:`array` per numeric
field, a dictionary-encoded code column per string field (qnames,
resolver and client IPs repeat constantly in DNS traces), and a packed
null bitmap per Optional field.  The on-disk format is a versioned
header plus raw per-column segments, so an opened file is a single
:func:`mmap.mmap` and every column is a zero-copy ``memoryview.cast``
into it — workers replaying shards of one trace map the same file and
share its pages instead of pickling records or re-parsing JSONL.

Layout of a v1 ``.col`` file::

    offset 0   MAGIC            b"RPRCOL01" (8 bytes)
    offset 8   header length    u32, little-endian
    offset 12  header           UTF-8 JSON (schema name, row count,
                                per-column segment table)
    ...        segments         8-byte aligned; offsets in the header
                                are relative to the first segment

Per column the header records a ``data`` segment (the packed values —
dictionary codes for string columns), an optional ``nulls`` segment
(bitmap, bit ``i`` set when row ``i`` is None) and an optional ``dict``
segment (the string dictionary as a JSON array, in code order).  The
header is pure JSON so ``repro-ecs dataset info`` can describe a file
without touching any segment.

Version 2 (``RPRCOL02``) chunks the same segments into *row groups* so
generation, merge and replay all run out-of-core: writers stream groups
through a bounded buffer (:class:`GroupedColumnarWriter`), readers walk
one group at a time (:class:`RowGroupReader`), and every group carries
its own group-local string dictionaries so merges can copy whole groups
verbatim.  See the layout comment above :class:`GroupedColumnarWriter`
and ``docs/datasets.md`` for the v2 header diagram and dictionary remap
rules.  v1 files still open everywhere (and remain the default output
of ``generate``), and :func:`convert_columnar` moves files between the
two layouts losslessly.

Everything here is deterministic: dictionaries assign codes in first-
appearance order, merges are stable k-way merges keyed on ``(ts, shard
index, row index)`` — the exact tie-break of
:func:`repro.datasets.records.merge_jsonl_shards` — and no content ever
depends on process or machine identity.
"""

from __future__ import annotations

import bisect
import dataclasses
import heapq
import json
import mmap
import struct
import weakref
from array import array
from dataclasses import dataclass
from operator import attrgetter
from pathlib import Path
from typing import (Any, Callable, Dict, Iterable, Iterator, List, Optional,
                    Sequence, Tuple, Type, Union)

from ..engine.sharding import bucket_group_ranges, stable_bucket
from ..obs import metrics as _obs_metrics
from .records import (AllNamesRecord, CdnQueryRecord, PublicCdnRecord,
                      RootQueryRecord, ScanQueryRecord, iter_jsonl,
                      write_jsonl)

#: Declared for the whole-program linter (RS202): stores and readers wrap
#: mmap'd files, so instances must never cross a pickle boundary —
#: workers reopen by path (see ``repro.engine.replay._columnar_store``).
STATICCHECK_UNPICKLABLE = ("repro.datasets.columnar:ColumnarStore",
                           "repro.datasets.columnar:RowGroupReader")

#: File magic: format name + two-digit major version.
MAGIC = b"RPRCOL01"
#: Row-group layout magic (format version 2; see ``docs/datasets.md``).
MAGIC_V2 = b"RPRCOL02"
#: Header ``version`` field; bump on any incompatible layout change.
FORMAT_VERSION = 1
#: Header ``version`` of the row-group layout.
FORMAT_VERSION_V2 = 2
#: Segment alignment, so typed memoryview casts are always aligned.
ALIGN = 8
#: v2 prelude: magic (8 bytes) + u64 header offset, patched at close.
_V2_PRELUDE = 16
#: Default rows per row group for the v2 streaming writers: large enough
#: that per-group overheads (dictionaries, header entries) amortize,
#: small enough that a buffered group stays a few MiB.
DEFAULT_ROW_GROUP_ROWS = 65536


def record_row_groups(op: str, schema: str, groups: int) -> None:
    """Count row groups written / merged / replayed (out-of-band).

    The single RS003-guarded read of the ambient metrics registry for
    the columnar layer; callers never touch ``ACTIVE`` themselves.
    """
    reg = _obs_metrics.ACTIVE
    if reg is not None:
        reg.counter("repro_columnar_row_groups_total",
                    "Columnar row groups, by operation and schema.",
                    ("op", "schema")).inc(groups, op, schema)

#: Column kind -> :mod:`array` typecode.  ``str`` columns store u32
#: dictionary codes; ``bool`` columns store u8 flags.
KIND_TYPECODES: Dict[str, str] = {
    "f8": "d",      # timestamps
    "i4": "i",      # qtype / scope / prefix lengths
    "i8": "q",      # TTLs and other wide counters
    "bool": "B",
    "str": "I",     # dictionary code
}


@dataclass(frozen=True)
class ColumnSpec:
    """One column of a record schema."""

    name: str
    kind: str
    nullable: bool = False

    @property
    def typecode(self) -> str:
        return KIND_TYPECODES[self.kind]


@dataclass(frozen=True)
class Schema:
    """A record dataclass mapped onto columns, in field order."""

    name: str
    record_type: Type[Any]
    columns: Tuple[ColumnSpec, ...]

    def __post_init__(self) -> None:
        fields = tuple(f.name for f in dataclasses.fields(self.record_type))
        names = tuple(c.name for c in self.columns)
        if fields != names:
            raise ValueError(f"schema {self.name!r} columns {names} do not "
                             f"match {self.record_type.__name__} fields "
                             f"{fields}")

    @property
    def field_names(self) -> Tuple[str, ...]:
        return tuple(c.name for c in self.columns)


def _c(name: str, kind: str, nullable: bool = False) -> ColumnSpec:
    return ColumnSpec(name, kind, nullable)


#: The five trace schemas, keyed by the CLI/registry dataset names.
SCHEMAS: Dict[str, Schema] = {s.name: s for s in (
    Schema("allnames", AllNamesRecord, (
        _c("ts", "f8"), _c("client_ip", "str"), _c("qname", "str"),
        _c("qtype", "i4"), _c("scope", "i4"), _c("ttl", "i8"))),
    Schema("public-cdn", PublicCdnRecord, (
        _c("ts", "f8"), _c("resolver_ip", "str"), _c("qname", "str"),
        _c("qtype", "i4"), _c("ecs_address", "str"),
        _c("ecs_source_len", "i4"), _c("scope", "i4"), _c("ttl", "i8"))),
    Schema("cdn", CdnQueryRecord, (
        _c("ts", "f8"), _c("resolver_ip", "str"), _c("qname", "str"),
        _c("qtype", "i4"), _c("has_ecs", "bool"),
        _c("ecs_address", "str", nullable=True),
        _c("ecs_source_len", "i4", nullable=True),
        _c("ecs_scope", "i4", nullable=True), _c("ttl", "i8"))),
    Schema("scan", ScanQueryRecord, (
        _c("ts", "f8"), _c("ingress_ip", "str", nullable=True),
        _c("egress_ip", "str"), _c("qname", "str"), _c("has_ecs", "bool"),
        _c("ecs_address", "str", nullable=True),
        _c("ecs_source_len", "i4", nullable=True))),
    Schema("root-trace", RootQueryRecord, (
        _c("ts", "f8"), _c("resolver_ip", "str"), _c("qname", "str"),
        _c("qtype", "i4"), _c("has_ecs", "bool"))),
)}


def schema_for(dataset: Union[str, Type[Any], Any]) -> Schema:
    """Resolve a schema from its name, record class, or a record instance."""
    if isinstance(dataset, str):
        try:
            return SCHEMAS[dataset]
        except KeyError:
            raise KeyError(f"unknown columnar schema {dataset!r}; "
                           f"known: {sorted(SCHEMAS)}") from None
    cls = dataset if isinstance(dataset, type) else type(dataset)
    for schema in SCHEMAS.values():
        if schema.record_type is cls:
            return schema
    raise KeyError(f"no columnar schema for record type {cls.__name__!r}")


@dataclass(frozen=True)
class ColumnarStats:
    """Size accounting for one store or shard, mergeable across shards.

    Every field sums when shards are concatenated or merged, so shard
    stats fold associatively into whole-trace stats (``dict_entries``
    sums the per-shard dictionary sizes — an upper bound on the merged
    dictionary, exact when shard dictionaries are disjoint).
    """

    rows: int = 0
    data_bytes: int = 0
    null_bytes: int = 0
    dict_bytes: int = 0
    dict_entries: int = 0

    @property
    def total_bytes(self) -> int:
        return self.data_bytes + self.null_bytes + self.dict_bytes

    @property
    def bytes_per_row(self) -> float:
        return self.total_bytes / self.rows if self.rows else 0.0

    def merge_segments(self, other: "ColumnarStats") -> "ColumnarStats":
        """Fold another shard's stats in (field-wise sum)."""
        return ColumnarStats(
            self.rows + other.rows,
            self.data_bytes + other.data_bytes,
            self.null_bytes + other.null_bytes,
            self.dict_bytes + other.dict_bytes,
            self.dict_entries + other.dict_entries)


def _align_pad(offset: int) -> int:
    return (-offset) % ALIGN


def _raw_bytes(column: Any) -> bytes:
    """Packed bytes of a raw column (array or typed memoryview)."""
    return column.tobytes()


class ColumnarWriter:
    """Streaming columnar builder: append records, then save or wrap.

    Appending never touches disk; :meth:`save` serializes the columns in
    one pass and :meth:`store` wraps them as an in-memory
    :class:`ColumnarStore` without copying.
    """

    def __init__(self, schema: Schema) -> None:
        self.schema = schema
        self.rows = 0
        self._arrays: Dict[str, "array[Any]"] = {
            c.name: array(c.typecode) for c in schema.columns}
        self._interns: Dict[str, Dict[str, int]] = {
            c.name: {} for c in schema.columns if c.kind == "str"}
        self._nulls: Dict[str, bytearray] = {
            c.name: bytearray() for c in schema.columns if c.nullable}

    def _intern(self, column: str, value: str) -> int:
        codes = self._interns[column]
        code = codes.get(value)
        if code is None:
            code = len(codes)
            codes[value] = code
        return code

    def _set_null(self, column: str, row: int) -> None:
        bitmap = self._nulls[column]
        byte = row >> 3
        if byte >= len(bitmap):
            bitmap.extend(b"\x00" * (byte + 1 - len(bitmap)))
        bitmap[byte] |= 1 << (row & 7)

    def append_values(self, values: Sequence[Any]) -> None:
        """Append one row given its field values in schema order."""
        row = self.rows
        for spec, value in zip(self.schema.columns, values):
            arr = self._arrays[spec.name]
            if value is None:
                if not spec.nullable:
                    raise ValueError(f"column {spec.name!r} of schema "
                                     f"{self.schema.name!r} is not nullable")
                self._set_null(spec.name, row)
                arr.append(0)
            elif spec.kind == "str":
                arr.append(self._intern(spec.name, value))
            elif spec.kind == "bool":
                arr.append(1 if value else 0)
            else:
                arr.append(value)
        self.rows = row + 1

    def append(self, record: Any) -> None:
        """Append one record (a dataclass instance of the schema's type)."""
        self.append_values(tuple(getattr(record, name)
                                 for name in self.schema.field_names))

    def extend(self, records: Iterable[Any]) -> int:
        """Append many records; returns how many were appended."""
        before = self.rows
        for record in records:
            self.append(record)
        return self.rows - before

    def extend_store(self, store: "ColumnarStore") -> int:
        """Concatenate another store's segments onto this writer.

        The segment-level fast path for shard concatenation: numeric and
        bool columns append their packed bytes wholesale; string columns
        remap the incoming dictionary codes onto this writer's merged
        dictionary (one lookup per *dictionary entry*, one integer per
        row); null bitmaps re-pack at the new row offset.
        """
        if store.schema.name != self.schema.name:
            raise ValueError(f"cannot concatenate schema "
                             f"{store.schema.name!r} onto "
                             f"{self.schema.name!r}")
        base = self.rows
        for spec in self.schema.columns:
            raw = store.raw_column(spec.name)
            arr = self._arrays[spec.name]
            if spec.kind != "str":
                arr.frombytes(_raw_bytes(raw))
            else:
                remap = [self._intern(spec.name, value)
                         for value in store.dictionary(spec.name)]
                if spec.nullable:
                    null_of = store.null_checker(spec.name)
                    arr.extend(0 if null_of(row) else remap[raw[row]]
                               for row in range(store.rows))
                else:
                    arr.extend(remap[code] for code in raw)
            if spec.nullable:
                null_of = store.null_checker(spec.name)
                for row in range(store.rows):
                    if null_of(row):
                        self._set_null(spec.name, base + row)
        self.rows = base + store.rows
        return store.rows

    def extend_rows(self, store: "ColumnarStore", lo: int = 0,
                    hi: Optional[int] = None,
                    rows: Optional[Sequence[int]] = None,
                    code_maps: Optional[Dict[str, List[int]]] = None) -> int:
        """Append a row range (or row selection) of another store.

        The canonical-order twin of :meth:`extend_store`: where that
        method interns the incoming store's *entire* dictionary in
        dictionary order (right for whole-shard concatenation), this one
        interns a string the first time an appended row references it —
        exactly the order a row-by-row ``append_values`` loop would
        produce.  Run-granular merges built on it therefore stay
        byte-identical to the per-row reference merge.

        ``rows`` selects arbitrary row indices instead of ``[lo, hi)``
        (used by the pre-bucketing writer).  ``code_maps`` is an optional
        per-source cache of incoming-code -> local-code tables keyed by
        column name, reusable across calls for the *same* source store;
        pass a fresh dict per source (codes are store-local).
        """
        if store.schema.name != self.schema.name:
            raise ValueError(f"cannot append rows of schema "
                             f"{store.schema.name!r} onto "
                             f"{self.schema.name!r}")
        stop = store.rows if hi is None else hi
        if rows is None:
            if not 0 <= lo <= stop <= store.rows:
                raise ValueError(f"row range [{lo}, {stop}) out of range "
                                 f"for {store.rows} rows")
            selection: Sequence[int] = range(lo, stop)
        else:
            selection = rows
        base = self.rows
        for spec in self.schema.columns:
            raw = store.raw_column(spec.name)
            arr = self._arrays[spec.name]
            if spec.kind == "str":
                dictionary = store.dictionary(spec.name)
                cmap: Optional[List[int]]
                cmap = None if code_maps is None else code_maps.get(spec.name)
                if cmap is None:
                    cmap = [-1] * len(dictionary)
                    if code_maps is not None:
                        code_maps[spec.name] = cmap
                null_of = (store.null_checker(spec.name)
                           if spec.nullable else None)
                codes: List[int] = []
                for row in selection:
                    if null_of is not None and null_of(row):
                        codes.append(0)
                        continue
                    code = raw[row]
                    mapped = cmap[code]
                    if mapped < 0:
                        mapped = self._intern(spec.name, dictionary[code])
                        cmap[code] = mapped
                    codes.append(mapped)
                arr.extend(codes)
            elif rows is None:
                arr.frombytes(raw[lo:stop].tobytes())
            else:
                arr.extend(raw[row] for row in selection)
            if spec.nullable:
                null_of = store.null_checker(spec.name)
                offset = base
                for row in selection:
                    if null_of(row):
                        self._set_null(spec.name, offset)
                    offset += 1
        self.rows = base + len(selection)
        return len(selection)

    def _dict_list(self, column: str) -> List[str]:
        # Insertion order == code order for the interning dicts.
        return list(self._interns[column])

    def store(self) -> "ColumnarStore":
        """Wrap the accumulated columns as an in-memory store (no copy)."""
        # Bitmaps grow lazily on _set_null; pad to full row coverage so
        # readers can index any row's bit without a bounds check.
        needed = (self.rows + 7) >> 3
        for bitmap in self._nulls.values():
            if len(bitmap) < needed:
                bitmap.extend(b"\x00" * (needed - len(bitmap)))
        nulls = {name: (bitmap, 0) for name, bitmap in self._nulls.items()}
        return ColumnarStore(self.schema, self.rows, dict(self._arrays),
                             nulls, {name: self._dict_list(name)
                                     for name in self._interns})

    def save(self, path: Union[str, Path]) -> int:
        """Serialize to ``path``; returns the number of rows written."""
        return self.store().save(path)


class ColumnarStore:
    """A columnar trace: in memory, or zero-copy over an mmap'd file.

    Opened stores keep one :func:`mmap.mmap` (or one bytes object with
    ``use_mmap=False``) and expose every column as a typed
    ``memoryview`` into it.  :meth:`slice` shares those buffers, so
    row-range shards of one file cost O(1) memory each.
    """

    def __init__(self, schema: Schema, rows: int,
                 data: Dict[str, Any],
                 nulls: Dict[str, Tuple[Any, int]],
                 dicts: Dict[str, List[str]],
                 closer: Optional[Callable[[], None]] = None) -> None:
        self.schema = schema
        self.rows = rows
        self._data = data
        self._nulls = nulls
        self._dicts = dicts
        self._closer = closer
        self._bucket_memo: Dict[Tuple[str, int], List["array[Any]"]] = {}
        self._getter_cache: Optional[List[Callable[[int], Any]]] = None

    # -- construction ------------------------------------------------------

    @classmethod
    def from_records(cls, records: Iterable[Any],
                     schema: Union[str, Schema]) -> "ColumnarStore":
        """Columnarize an iterable of records (streaming, single pass)."""
        resolved = schema if isinstance(schema, Schema) else schema_for(schema)
        writer = ColumnarWriter(resolved)
        writer.extend(records)
        return writer.store()

    @classmethod
    def open(cls, path: Union[str, Path],
             use_mmap: bool = True) -> "ColumnarStore":
        """Open an on-disk store; columns are views into one mapping.

        A v1 (``RPRCOL01``) file opens zero-copy.  A v2 row-group file
        opens through :class:`RowGroupReader` and is *flattened* into
        one in-memory store — the O(rows) compatibility path; readers
        that care about bounded memory should walk the groups via
        :class:`RowGroupReader` directly.
        """
        fh = open(path, "rb")
        try:
            prelude = fh.read(12)
            if len(prelude) >= 8 and prelude[:8] == MAGIC_V2:
                fh.close()
                with RowGroupReader(path) as reader:
                    writer = ColumnarWriter(reader.schema)
                    for index in range(reader.group_count):
                        group = reader.group(index)
                        writer.extend_rows(group)
                        group.close()
                    return writer.store()
            if len(prelude) < 12 or prelude[:8] != MAGIC:
                raise ValueError(f"{path}: not a columnar trace "
                                 f"(bad magic)")
            (header_len,) = struct.unpack("<I", prelude[8:12])
            header = json.loads(fh.read(header_len).decode("utf-8"))
            if header.get("version") != FORMAT_VERSION:
                raise ValueError(f"{path}: unsupported columnar format "
                                 f"version {header.get('version')!r} "
                                 f"(expected {FORMAT_VERSION})")
            buf: Any
            closer: Optional[Callable[[], None]]
            if use_mmap:
                mapping = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
                buf = memoryview(mapping)
                closer = _make_closer(buf, mapping)
            else:
                fh.seek(0)
                buf = memoryview(fh.read())
                closer = None
        finally:
            fh.close()
        schema = schema_for(header["schema"])
        rows = int(header["rows"])
        start = 12 + header_len + _align_pad(12 + header_len)
        data: Dict[str, Any] = {}
        nulls: Dict[str, Tuple[Any, int]] = {}
        dicts: Dict[str, List[str]] = {}
        for entry in header["columns"]:
            name = entry["name"]
            spec = next(c for c in schema.columns if c.name == name)
            off, length = entry["data"]
            data[name] = buf[start + off:start + off + length] \
                .cast(spec.typecode)
            if entry.get("nulls") is not None:
                off, length = entry["nulls"]
                nulls[name] = (buf[start + off:start + off + length], 0)
            if entry.get("dict") is not None:
                off, length = entry["dict"]
                dicts[name] = json.loads(
                    bytes(buf[start + off:start + off + length])
                    .decode("utf-8"))
        return cls(schema, rows, data, nulls, dicts, closer)

    def close(self) -> None:
        """Release the underlying mapping (no-op for in-memory stores).

        Every column view is released first — an mmap cannot close while
        exported buffers exist.  Live :meth:`slice` children keep their
        own views, so close the parent only after its slices are done.
        """
        self._getter_cache = None
        for view in self._data.values():
            if isinstance(view, memoryview):
                view.release()
        for bitmap, _ in self._nulls.values():
            if isinstance(bitmap, memoryview):
                bitmap.release()
        if self._closer is not None:
            closer, self._closer = self._closer, None
            closer()

    def __enter__(self) -> "ColumnarStore":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()

    def __len__(self) -> int:
        return self.rows

    # -- serialization -----------------------------------------------------

    def _null_bitmap_bytes(self, name: str) -> bytes:
        """The column's null bitmap re-packed to bit offset zero."""
        checker = self.null_checker(name)
        bitmap = bytearray((self.rows + 7) >> 3)
        for row in range(self.rows):
            if checker(row):
                bitmap[row >> 3] |= 1 << (row & 7)
        return bytes(bitmap)

    def _column_payloads(self) -> Iterator[Tuple[ColumnSpec, bytes,
                                                 Optional[bytes],
                                                 Optional[bytes], int]]:
        """Per column: (spec, data, nulls, dict payload, dict entries).

        The single serialization order both the v1 :meth:`save` and the
        v2 :class:`GroupedColumnarWriter` group flush emit: data, then
        null bitmap, then dictionary — per column, in schema order.
        """
        for spec in self.schema.columns:
            data = _raw_bytes(self._data[spec.name])
            nulls = (self._null_bitmap_bytes(spec.name)
                     if spec.nullable else None)
            dict_payload: Optional[bytes] = None
            dict_entries = 0
            if spec.kind == "str":
                dictionary = self._dicts.get(spec.name, [])
                dict_payload = json.dumps(
                    dictionary, separators=(",", ":"),
                    ensure_ascii=False).encode("utf-8")
                dict_entries = len(dictionary)
            yield spec, data, nulls, dict_payload, dict_entries

    def save(self, path: Union[str, Path]) -> int:
        """Write the versioned header + aligned segments; returns rows."""
        segments: List[bytes] = []
        columns: List[Dict[str, Any]] = []
        offset = 0

        def add_segment(payload: bytes) -> Tuple[int, int]:
            nonlocal offset
            pad = _align_pad(offset)
            if pad:
                segments.append(b"\x00" * pad)
                offset += pad
            start = offset
            segments.append(payload)
            offset += len(payload)
            return (start, len(payload))

        for spec, data, nulls, dict_payload, entries in \
                self._column_payloads():
            entry: Dict[str, Any] = {
                "name": spec.name, "kind": spec.kind,
                "typecode": spec.typecode,
                "data": add_segment(data),
                "nulls": None, "dict": None}
            if nulls is not None:
                entry["nulls"] = add_segment(nulls)
            if dict_payload is not None:
                entry["dict"] = add_segment(dict_payload)
                entry["dict_entries"] = entries
            columns.append(entry)

        header = json.dumps(
            {"version": FORMAT_VERSION, "schema": self.schema.name,
             "rows": self.rows, "columns": columns},
            separators=(",", ":")).encode("utf-8")
        with open(path, "wb") as fh:
            fh.write(MAGIC)
            fh.write(struct.pack("<I", len(header)))
            fh.write(header)
            fh.write(b"\x00" * _align_pad(12 + len(header)))
            for segment in segments:
                fh.write(segment)
        return self.rows

    # -- column access -----------------------------------------------------

    def raw_column(self, name: str) -> Any:
        """The packed value sequence (dictionary codes for str columns)."""
        return self._data[name]

    def column(self, name: str) -> Any:
        """Alias of :meth:`raw_column`; the replay hot path's entry."""
        return self._data[name]

    def dictionary(self, name: str) -> List[str]:
        """Code -> string table of a dictionary-encoded column."""
        return self._dicts[name]

    def null_checker(self, name: str) -> Callable[[int], bool]:
        """A ``row -> is-null`` predicate (always False when not nullable)."""
        entry = self._nulls.get(name)
        if entry is None:
            return lambda row: False
        bitmap, base = entry

        def is_null(row: int) -> bool:
            bit = base + row
            return bool(bitmap[bit >> 3] & (1 << (bit & 7)))

        return is_null

    def _value_getter(self, spec: ColumnSpec) -> Callable[[int], Any]:
        raw = self._data[spec.name]
        if spec.kind == "str":
            dictionary = self._dicts[spec.name]
            plain: Callable[[int], Any] = lambda row: dictionary[raw[row]]
        elif spec.kind == "bool":
            plain = lambda row: bool(raw[row])
        else:
            plain = lambda row: raw[row]
        if not spec.nullable:
            return plain
        null_of = self.null_checker(spec.name)
        return lambda row: None if null_of(row) else plain(row)

    def row_values(self, row: int) -> Tuple[Any, ...]:
        """One row's decoded field values, in schema order."""
        return tuple(g(row) for g in self._getters())

    def _getters(self) -> List[Callable[[int], Any]]:
        getters = self._getter_cache
        if getters is None:
            getters = [self._value_getter(spec)
                       for spec in self.schema.columns]
            self._getter_cache = getters
        return getters

    def record(self, row: int) -> Any:
        """Materialize one row as its record dataclass."""
        return self.schema.record_type(*self.row_values(row))

    def iter_records(self, lo: int = 0,
                     hi: Optional[int] = None) -> Iterator[Any]:
        """Stream rows ``[lo, hi)`` as record instances."""
        stop = self.rows if hi is None else hi
        getters = self._getters()
        cls = self.schema.record_type
        for row in range(lo, stop):
            yield cls(*[g(row) for g in getters])

    def to_records(self) -> List[Any]:
        """Materialize the whole store as a record list."""
        return list(self.iter_records())

    # -- shard arithmetic --------------------------------------------------

    def slice(self, lo: int, hi: int) -> "ColumnarStore":
        """Rows ``[lo, hi)`` as a store sharing this one's buffers.

        Zero-copy: numeric columns are memoryview slices, dictionaries
        are shared outright, and null bitmaps carry a bit offset instead
        of being re-packed.  The parent store must stay open for the
        slice's lifetime.
        """
        if not 0 <= lo <= hi <= self.rows:
            raise ValueError(f"slice [{lo}, {hi}) out of range for "
                             f"{self.rows} rows")
        data = {name: (memoryview(col) if isinstance(col, array) else col)
                [lo:hi] for name, col in self._data.items()}
        # Each child gets its own bitmap *view* so closing one slice
        # cannot release a buffer its siblings (or the parent) still use.
        nulls = {name: (memoryview(bitmap) if isinstance(bitmap, memoryview)
                        else bitmap, base + lo)
                 for name, (bitmap, base) in self._nulls.items()}
        return ColumnarStore(self.schema, hi - lo, data, nulls, self._dicts)

    def row_buckets(self, column: str, shards: int) -> List["array[Any]"]:
        """Row indices per :func:`stable_bucket` shard of a str column.

        The bucket of every row is decided by its *dictionary entry*, so
        the hash runs once per unique string, then bucketing the rows is
        a table lookup per row.  Memoized per (column, shards): workers
        replaying several shards of one mapped file pay the scan once.
        """
        memo_key = (column, shards)
        buckets = self._bucket_memo.get(memo_key)
        if buckets is None:
            by_code = array("i", (stable_bucket(value, shards)
                                  for value in self._dicts[column]))
            buckets = [array("q") for _ in range(shards)]
            appends = [bucket.append for bucket in buckets]
            for row, code in enumerate(self._data[column]):
                appends[by_code[code]](row)
            self._bucket_memo[memo_key] = buckets
        return buckets

    # -- accounting --------------------------------------------------------

    def stats(self) -> ColumnarStats:
        """Byte/row accounting over the packed segments."""
        data_bytes = sum(len(_raw_bytes(self._data[c.name]))
                         for c in self.schema.columns)
        null_bytes = sum((self.rows + 7) >> 3
                         for c in self.schema.columns if c.nullable)
        dict_bytes = 0
        dict_entries = 0
        for name, dictionary in self._dicts.items():
            dict_entries += len(dictionary)
            dict_bytes += len(json.dumps(dictionary, separators=(",", ":"),
                                         ensure_ascii=False).encode("utf-8"))
        return ColumnarStats(self.rows, data_bytes, null_bytes, dict_bytes,
                             dict_entries)

    @property
    def nbytes(self) -> int:
        """Resident bytes of the packed representation."""
        return self.stats().total_bytes


def _make_closer(view: memoryview, mapping: mmap.mmap
                 ) -> Callable[[], None]:
    def closer() -> None:
        view.release()
        mapping.close()

    return closer


# ---------------------------------------------------------------------------
# The v2 row-group layout (RPRCOL02)
#
# Layout of a v2 ``.col`` file::
#
#     offset 0   MAGIC_V2        b"RPRCOL02" (8 bytes)
#     offset 8   header offset   u64 LE, patched when the file closes
#     offset 16  segment area    row groups back to back, 8-byte aligned
#     ...        header          UTF-8 JSON, runs to end of file
#
# The header moved to the *tail* so a writer can stream groups through a
# bounded buffer and never seek except to patch the u64 — no reader or
# writer ever holds a full shard in memory.  Each group carries its own
# per-column segments *including its own string dictionaries* (codes are
# group-local), so a group's bytes are position-independent: merges copy
# whole groups verbatim, and readers remap codes across groups on read.


class GroupedColumnarWriter:
    """Stream records into a v2 row-group file with bounded memory.

    Rows buffer in an ordinary :class:`ColumnarWriter`; every
    ``row_group_rows`` rows the buffer flushes to disk as one row group
    and resets, so peak memory is one group regardless of trace length.
    Group dictionaries intern in first-appearance order *within the
    group* automatically, because each group starts from an empty
    buffer.  :meth:`close` writes the JSON header at the tail and
    patches the header-offset word; use as a context manager.
    """

    def __init__(self, schema: Union[str, Schema], path: Union[str, Path],
                 row_group_rows: int = DEFAULT_ROW_GROUP_ROWS,
                 buckets: Optional[int] = None) -> None:
        if row_group_rows < 1:
            raise ValueError("row_group_rows must be >= 1")
        self.schema = schema if isinstance(schema, Schema) \
            else schema_for(schema)
        self.path = Path(path)
        self.row_group_rows = row_group_rows
        self.rows = 0
        self._buckets = buckets
        self._bucket: Optional[int] = None
        self._groups: List[Dict[str, Any]] = []
        self._offset = 0
        self._buffer = ColumnarWriter(self.schema)
        self._fh: Optional[Any] = open(self.path, "wb")
        self._fh.write(MAGIC_V2)
        self._fh.write(struct.pack("<Q", 0))

    # -- appending ---------------------------------------------------------

    @property
    def pending_rows(self) -> int:
        """Rows buffered but not yet flushed as a group."""
        return self._buffer.rows

    def append_values(self, values: Sequence[Any]) -> None:
        """Append one row given its field values in schema order."""
        self._buffer.append_values(values)
        if self._buffer.rows >= self.row_group_rows:
            self._flush_group()

    def append(self, record: Any) -> None:
        """Append one record (a dataclass instance of the schema's type)."""
        self._buffer.append(record)
        if self._buffer.rows >= self.row_group_rows:
            self._flush_group()

    def extend(self, records: Iterable[Any]) -> int:
        """Append a record stream; returns how many were appended."""
        before = self.rows + self._buffer.rows
        for record in records:
            self.append(record)
        return self.rows + self._buffer.rows - before

    def extend_store(self, store: ColumnarStore, lo: int = 0,
                     hi: Optional[int] = None,
                     rows: Optional[Sequence[int]] = None) -> int:
        """Append a row range (or row selection) of another store.

        Chunks through the group buffer so group boundaries land exactly
        on ``row_group_rows`` regardless of incoming run sizes; string
        codes re-intern per group in first-appearance order (see
        :meth:`ColumnarWriter.extend_rows`).
        """
        appended = 0
        if rows is not None:
            pos, total = 0, len(rows)
            while pos < total:
                take = min(self.row_group_rows - self._buffer.rows,
                           total - pos)
                self._buffer.extend_rows(store, rows=rows[pos:pos + take])
                pos += take
                appended += take
                if self._buffer.rows >= self.row_group_rows:
                    self._flush_group()
            return appended
        stop = store.rows if hi is None else hi
        while lo < stop:
            take = min(self.row_group_rows - self._buffer.rows, stop - lo)
            self._buffer.extend_rows(store, lo, lo + take)
            lo += take
            appended += take
            if self._buffer.rows >= self.row_group_rows:
                self._flush_group()
        return appended

    def set_bucket(self, bucket: Optional[int]) -> None:
        """Tag subsequent groups with a qname-bucket index.

        Flushes the pending group first, so no group ever spans two
        buckets — the invariant row-range replay depends on.
        """
        if self._buffer.rows:
            self._flush_group()
        self._bucket = bucket

    # -- group emission ----------------------------------------------------

    def _add_segment(self, payload: bytes) -> Tuple[int, int]:
        assert self._fh is not None
        pad = _align_pad(self._offset)
        if pad:
            self._fh.write(b"\x00" * pad)
            self._offset += pad
        start = self._offset
        self._fh.write(payload)
        self._offset += len(payload)
        return (start, len(payload))

    def _flush_group(self) -> None:
        if self._buffer.rows == 0:
            return
        store = self._buffer.store()
        columns: List[Dict[str, Any]] = []
        for spec, data, nulls, dict_payload, entries in \
                store._column_payloads():
            entry: Dict[str, Any] = {
                "name": spec.name, "kind": spec.kind,
                "typecode": spec.typecode,
                "data": self._add_segment(data),
                "nulls": None, "dict": None}
            if nulls is not None:
                entry["nulls"] = self._add_segment(nulls)
            if dict_payload is not None:
                entry["dict"] = self._add_segment(dict_payload)
                entry["dict_entries"] = entries
            columns.append(entry)
        self._groups.append({"rows": store.rows, "bucket": self._bucket,
                             "columns": columns})
        self.rows += store.rows
        self._buffer = ColumnarWriter(self.schema)
        record_row_groups("written", self.schema.name, 1)

    def flush(self) -> None:
        """Force the buffered rows out as a (possibly short) group."""
        self._flush_group()

    def copy_group(self, reader: "RowGroupReader", group_index: int) -> int:
        """Append one of ``reader``'s groups by verbatim segment copy.

        The non-overlapping fast path of the k-way merge: a group's
        dictionaries are group-local, so its segment bytes are
        position-independent and re-encoding them row by row would
        reproduce exactly these bytes.  Flushes any pending buffered
        rows first (as their own group).  Only v2 sources have
        position-independent groups; copying from a v1 reader raises.
        """
        if reader.format_version != FORMAT_VERSION_V2:
            raise ValueError("copy_group requires a v2 (row-group) source")
        if reader.schema.name != self.schema.name:
            raise ValueError(f"cannot copy a {reader.schema.name!r} group "
                             f"into a {self.schema.name!r} file")
        if self._buffer.rows:
            self._flush_group()
        entry = reader.group_entry(group_index)
        columns: List[Dict[str, Any]] = []
        for col in entry["columns"]:
            new_col: Dict[str, Any] = {
                "name": col["name"], "kind": col["kind"],
                "typecode": col["typecode"],
                "data": self._add_segment(reader.segment_bytes(col["data"])),
                "nulls": None, "dict": None}
            if col.get("nulls") is not None:
                new_col["nulls"] = self._add_segment(
                    reader.segment_bytes(col["nulls"]))
            if col.get("dict") is not None:
                new_col["dict"] = self._add_segment(
                    reader.segment_bytes(col["dict"]))
                new_col["dict_entries"] = col.get("dict_entries", 0)
            columns.append(new_col)
        rows = int(entry["rows"])
        self._groups.append({"rows": rows, "bucket": self._bucket,
                             "columns": columns})
        self.rows += rows
        record_row_groups("written", self.schema.name, 1)
        return rows

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> int:
        """Flush, write the tail header, patch the offset; returns rows."""
        if self._fh is None:
            return self.rows
        self._flush_group()
        header: Dict[str, Any] = {
            "version": FORMAT_VERSION_V2, "schema": self.schema.name,
            "rows": self.rows, "row_group_rows": self.row_group_rows,
            "groups": self._groups}
        if self._buckets is not None:
            header["buckets"] = self._buckets
        payload = json.dumps(header, separators=(",", ":")).encode("utf-8")
        header_offset = _V2_PRELUDE + self._offset
        self._fh.write(payload)
        self._fh.seek(8)
        self._fh.write(struct.pack("<Q", header_offset))
        self._fh.close()
        self._fh = None
        return self.rows

    def __enter__(self) -> "GroupedColumnarWriter":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


class RowGroupReader:
    """Format-agnostic row-group view of a columnar file.

    A v2 file maps once and exposes each row group as a zero-copy
    :class:`ColumnarStore` over its own segments; a v1 file opens as a
    single group covering the whole store, so streaming consumers
    (merge, conversion, row-range replay) read both layouts through one
    interface.  Group stores are built on demand and not memoized —
    sequential scans drop each group's decoded dictionaries as they go,
    which is what keeps reader memory bounded.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._store: Optional[ColumnarStore] = None
        self._mapping: Optional[mmap.mmap] = None
        self._buf: Optional[memoryview] = None
        self._issued: "weakref.WeakSet[ColumnarStore]" = weakref.WeakSet()
        with open(self.path, "rb") as probe:
            magic = probe.read(8)
        if magic == MAGIC:
            self.format_version = FORMAT_VERSION
            self._store = ColumnarStore.open(self.path)
            self.schema = self._store.schema
            self.rows = self._store.rows
            self.row_group_rows: Optional[int] = None
            self.buckets: Optional[int] = None
            self._groups: List[Dict[str, Any]] = [
                {"rows": self.rows, "bucket": None}]
            return
        if magic != MAGIC_V2:
            raise ValueError(f"{path}: not a columnar trace (bad magic)")
        self.format_version = FORMAT_VERSION_V2
        fh = open(self.path, "rb")
        try:
            prelude = fh.read(_V2_PRELUDE)
            (header_offset,) = struct.unpack("<Q", prelude[8:16])
            if header_offset < _V2_PRELUDE:
                raise ValueError(f"{path}: truncated columnar file "
                                 f"(header offset not patched)")
            mapping = mmap.mmap(fh.fileno(), 0, access=mmap.ACCESS_READ)
        finally:
            fh.close()
        self._mapping = mapping
        self._buf = memoryview(mapping)
        header = json.loads(bytes(self._buf[header_offset:])
                            .decode("utf-8"))
        if header.get("version") != FORMAT_VERSION_V2:
            raise ValueError(f"{path}: unsupported columnar format "
                             f"version {header.get('version')!r} "
                             f"(expected {FORMAT_VERSION_V2})")
        self.schema = schema_for(header["schema"])
        self.rows = int(header["rows"])
        self.row_group_rows = header.get("row_group_rows")
        self.buckets = header.get("buckets")
        self._groups = header["groups"]

    # -- group access ------------------------------------------------------

    @property
    def group_count(self) -> int:
        return len(self._groups)

    def group_rows(self, index: int) -> int:
        return int(self._groups[index]["rows"])

    def group_bucket(self, index: int) -> Optional[int]:
        return self._groups[index].get("bucket")

    def group_entry(self, index: int) -> Dict[str, Any]:
        """The raw header entry of one group (segment offsets included)."""
        return self._groups[index]

    def segment_bytes(self, segment: Sequence[int]) -> bytes:
        """One segment's payload bytes (copied; bounded by group size)."""
        if self._buf is None:
            raise ValueError("raw segments are only available on v2 files")
        off, length = segment
        start = _V2_PRELUDE + off
        return bytes(self._buf[start:start + length])

    def bucket_ranges(self) -> Optional[List[Tuple[int, int]]]:
        """Per-bucket contiguous group ranges of a pre-bucketed file.

        ``None`` when the file was not written by
        :func:`prebucket_columnar`; otherwise one ``[start, end)`` group
        range per bucket, validated contiguous.
        """
        if self.buckets is None:
            return None
        return bucket_group_ranges([g.get("bucket") for g in self._groups],
                                   self.buckets)

    def group(self, index: int) -> ColumnarStore:
        """Row group ``index`` as a store (zero-copy for v2 segments)."""
        if self._store is not None:
            return self._store
        assert self._buf is not None
        entry = self._groups[index]
        buf = self._buf
        data: Dict[str, Any] = {}
        nulls: Dict[str, Tuple[Any, int]] = {}
        dicts: Dict[str, List[str]] = {}
        for col in entry["columns"]:
            name = col["name"]
            spec = next(c for c in self.schema.columns if c.name == name)
            off, length = col["data"]
            start = _V2_PRELUDE + off
            data[name] = buf[start:start + length].cast(spec.typecode)
            if col.get("nulls") is not None:
                off, length = col["nulls"]
                start = _V2_PRELUDE + off
                nulls[name] = (buf[start:start + length], 0)
            if col.get("dict") is not None:
                off, length = col["dict"]
                start = _V2_PRELUDE + off
                dicts[name] = json.loads(
                    bytes(buf[start:start + length]).decode("utf-8"))
        store = ColumnarStore(self.schema, int(entry["rows"]), data, nulls,
                              dicts)
        self._issued.add(store)
        return store

    def iter_records(self) -> Iterator[Any]:
        """Stream every row as a record, one group resident at a time."""
        for index in range(self.group_count):
            store = self.group(index)
            yield from store.iter_records()
            if self._store is None:   # v1 shares one store; keep it open
                store.close()

    # -- lifecycle ---------------------------------------------------------

    def close(self) -> None:
        """Release every issued group view and the file mapping."""
        if self._store is not None:
            self._store.close()
            self._store = None
            return
        for store in list(self._issued):
            store.close()
        if self._buf is not None:
            self._buf.release()
            self._buf = None
        if self._mapping is not None:
            self._mapping.close()
            self._mapping = None

    def __enter__(self) -> "RowGroupReader":
        return self

    def __exit__(self, *exc: Any) -> None:
        self.close()


# ---------------------------------------------------------------------------
# File-level helpers


def is_columnar(path: Union[str, Path]) -> bool:
    """True when ``path`` starts with either columnar magic (v1 or v2)."""
    try:
        with open(path, "rb") as fh:
            return fh.read(len(MAGIC)) in (MAGIC, MAGIC_V2)
    except OSError:
        return False


def file_info(path: Union[str, Path]) -> Dict[str, Any]:
    """Describe a columnar file from its header alone (no segment reads).

    Works for both layouts: a v1 header sits behind the magic, a v2
    header at the tail (one seek).  v2 results add ``row_groups``,
    ``row_group_rows`` and ``buckets``, and per-column byte totals are
    aggregated across groups.
    """
    target = Path(path)
    with open(target, "rb") as fh:
        magic = fh.read(8)
        if magic == MAGIC_V2:
            (header_offset,) = struct.unpack("<Q", fh.read(8))
            fh.seek(header_offset)
            header = json.loads(fh.read().decode("utf-8"))
            header_len = target.stat().st_size - header_offset
        elif magic == MAGIC:
            (header_len,) = struct.unpack("<I", fh.read(4))
            header = json.loads(fh.read(header_len).decode("utf-8"))
        else:
            raise ValueError(f"{path}: not a columnar trace (bad magic)")
    rows = int(header["rows"])
    columns: List[Dict[str, Any]] = []
    if header["version"] == FORMAT_VERSION_V2:
        by_name: Dict[str, Dict[str, Any]] = {}
        for group in header["groups"]:
            for entry in group["columns"]:
                agg = by_name.get(entry["name"])
                if agg is None:
                    agg = {"name": entry["name"], "kind": entry["kind"],
                           "typecode": entry["typecode"], "data_bytes": 0,
                           "null_bytes": 0, "dict_bytes": 0,
                           "dict_entries": 0}
                    by_name[entry["name"]] = agg
                    columns.append(agg)
                agg["data_bytes"] += entry["data"][1]
                if entry.get("nulls"):
                    agg["null_bytes"] += entry["nulls"][1]
                if entry.get("dict"):
                    agg["dict_bytes"] += entry["dict"][1]
                    agg["dict_entries"] += entry.get("dict_entries", 0)
    else:
        for entry in header["columns"]:
            columns.append({
                "name": entry["name"], "kind": entry["kind"],
                "typecode": entry["typecode"],
                "data_bytes": entry["data"][1],
                "null_bytes": entry["nulls"][1] if entry.get("nulls") else 0,
                "dict_bytes": entry["dict"][1] if entry.get("dict") else 0,
                "dict_entries": entry.get("dict_entries", 0)})
    file_bytes = target.stat().st_size
    info = {"path": str(target), "version": header["version"],
            "schema": header["schema"], "rows": rows,
            "header_bytes": header_len, "file_bytes": file_bytes,
            "bytes_per_row": file_bytes / rows if rows else 0.0,
            "columns": columns}
    if header["version"] == FORMAT_VERSION_V2:
        info["row_groups"] = len(header["groups"])
        info["row_group_rows"] = header.get("row_group_rows")
        info["buckets"] = header.get("buckets")
    return info


def bucketed_group_ranges(path: Union[str, Path]
                          ) -> Optional[List[Tuple[int, int]]]:
    """Per-bucket group ranges of a pre-bucketed v2 file, header-only.

    ``None`` for v1 files and for v2 files without bucket tags — the
    replay parent uses that to fall back to the flat bucketing path.
    Reads only the prelude and the tail header, never a segment, so the
    parent's dispatch decision is O(header) regardless of trace size.
    """
    with open(path, "rb") as fh:
        prelude = fh.read(_V2_PRELUDE)
        if len(prelude) < _V2_PRELUDE or prelude[:8] != MAGIC_V2:
            return None
        (header_offset,) = struct.unpack("<Q", prelude[8:16])
        fh.seek(header_offset)
        header = json.loads(fh.read().decode("utf-8"))
    buckets = header.get("buckets")
    if buckets is None:
        return None
    return bucket_group_ranges([g.get("bucket") for g in header["groups"]],
                               buckets)


def write_columnar(records: Iterable[Any], path: Union[str, Path],
                   schema: Union[str, Schema]) -> int:
    """Columnarize and save an iterable of records; returns the count."""
    return ColumnarStore.from_records(records, schema).save(path)


def read_columnar(path: Union[str, Path]) -> List[Any]:
    """Load a columnar file back into a record list (convenience)."""
    with ColumnarStore.open(path) as store:
        return store.to_records()


def write_columnar_stream(records: Iterable[Any], path: Union[str, Path],
                          schema: Union[str, Schema],
                          row_group_rows: int = DEFAULT_ROW_GROUP_ROWS
                          ) -> int:
    """Stream an already-ordered record iterable into a v2 file.

    Bounded memory: at most ``row_group_rows`` records' worth of columns
    buffer at once.  The stream's order is preserved — use
    :func:`write_columnar_sorted` when the source emits out of ts order.
    """
    with GroupedColumnarWriter(schema, path, row_group_rows) as writer:
        writer.extend(records)
    return writer.rows


def write_columnar_sorted(records: Iterable[Any], path: Union[str, Path],
                          schema: Union[str, Schema],
                          row_group_rows: int = DEFAULT_ROW_GROUP_ROWS,
                          ts_column: str = "ts") -> int:
    """External sort of a record stream into a ts-ordered v2 file.

    Buffers ``row_group_rows`` records, stable-sorts each full buffer by
    ``ts_column`` and spills it as a sorted *run* file, then k-way
    merges the runs.  The merge breaks ts ties toward the earlier run,
    and each run is a consecutive chunk of the input stream stably
    sorted — so the result is exactly the global stable sort the
    in-memory ``records.sort(key=...)`` path produces, row for row.
    Peak memory is one buffer plus one group per run.
    """
    resolved = schema if isinstance(schema, Schema) else schema_for(schema)
    target = Path(path)
    key = attrgetter(ts_column)
    buffer: List[Any] = []
    run_paths: List[Path] = []

    def spill() -> None:
        buffer.sort(key=key)
        run_path = target.with_name(f"{target.name}.run{len(run_paths):04d}")
        with GroupedColumnarWriter(resolved, run_path,
                                   row_group_rows) as run:
            run.extend(buffer)
        run_paths.append(run_path)
        buffer.clear()

    try:
        for record in records:
            buffer.append(record)
            if len(buffer) >= row_group_rows:
                spill()
        if not run_paths:
            buffer.sort(key=key)
            with GroupedColumnarWriter(resolved, target,
                                       row_group_rows) as writer:
                writer.extend(buffer)
            return writer.rows
        if buffer:
            spill()
        return merge_columnar_shards(run_paths, target, ts_column,
                                     row_group_rows)
    finally:
        for run_path in run_paths:
            if run_path.exists():
                run_path.unlink()


def jsonl_to_columnar(src: Union[str, Path], dst: Union[str, Path],
                      schema: Union[str, Schema],
                      row_group_rows: Optional[int] = None) -> int:
    """Convert a JSONL trace to columnar, streaming record by record.

    ``row_group_rows=None`` writes the v1 single-block layout (the
    byte-canonical default); setting it writes a v2 row-group file with
    bounded conversion memory.
    """
    resolved = schema if isinstance(schema, Schema) else schema_for(schema)
    if row_group_rows is not None:
        return write_columnar_stream(iter_jsonl(src, resolved.record_type),
                                     dst, resolved, row_group_rows)
    writer = ColumnarWriter(resolved)
    writer.extend(iter_jsonl(src, resolved.record_type))
    writer.save(dst)
    return writer.rows


def columnar_to_jsonl(src: Union[str, Path],
                      dst: Union[str, Path]) -> int:
    """Convert a columnar trace back to JSONL, streaming row by row.

    Round-trips byte-identically with :func:`jsonl_to_columnar` for any
    trace the JSONL writers produced: values decode to the exact Python
    objects the records held, and ``json.dumps`` is deterministic.
    Reads v2 files one group at a time, so memory stays bounded.
    """
    with RowGroupReader(src) as reader:
        return write_jsonl(reader.iter_records(), dst)


def convert_columnar(src: Union[str, Path], dst: Union[str, Path],
                     row_group_rows: Optional[int] = None,
                     bucket_shards: Optional[int] = None,
                     key_column: str = "qname") -> int:
    """Re-layout a columnar file between v1 and v2 (and pre-bucketing).

    ``row_group_rows=None`` emits v1; a value emits v2 with that group
    budget.  Either direction is value-identical, and the v1 -> v2 ->
    v1 round trip is *byte*-identical: flattening a v2 file re-interns
    strings in first-appearance order, which is exactly the order the
    original v1 writer assigned codes in.  ``bucket_shards`` routes to
    :func:`prebucket_columnar` instead, producing a bucket-tagged v2
    file for row-range replay.
    """
    if bucket_shards is not None:
        return prebucket_columnar(src, dst, bucket_shards, key_column,
                                  row_group_rows)
    with RowGroupReader(src) as reader:
        if row_group_rows is None:
            writer = ColumnarWriter(reader.schema)
            for index in range(reader.group_count):
                store = reader.group(index)
                writer.extend_rows(store)
                store.close()
            return writer.save(dst)
        with GroupedColumnarWriter(reader.schema, dst,
                                   row_group_rows) as out:
            for index in range(reader.group_count):
                store = reader.group(index)
                out.extend_store(store)
                store.close()
        return out.rows


def prebucket_columnar(src: Union[str, Path], dst: Union[str, Path],
                       shards: int, key_column: str = "qname",
                       row_group_rows: Optional[int] = None) -> int:
    """Rewrite a columnar trace with rows grouped by qname bucket.

    Rows land in :func:`stable_bucket` order of ``key_column`` — every
    group of the output belongs to exactly one bucket, buckets appear in
    ascending order, and the header records the bucket count — so
    sharded replay can dispatch disjoint ``(group_start, group_end)``
    ranges instead of having every worker scan the whole file.  Row
    order *within* a bucket is preserved, which keeps replay results
    identical to the flat per-worker bucketing path.

    Streams group by group through per-bucket spill files: peak memory
    is ``shards`` buffered groups, independent of trace length.
    """
    if shards <= 0:
        raise ValueError("shards must be >= 1")
    rows_per_group = row_group_rows or DEFAULT_ROW_GROUP_ROWS
    target = Path(dst)
    with RowGroupReader(src) as reader:
        schema = reader.schema
        spill_paths = [target.with_name(f"{target.name}.bucket{b:02d}")
                       for b in range(shards)]
        spills = [GroupedColumnarWriter(schema, p, rows_per_group)
                  for p in spill_paths]
        try:
            for index in range(reader.group_count):
                store = reader.group(index)
                for b, rows in enumerate(store.row_buckets(key_column,
                                                           shards)):
                    if rows:
                        spills[b].extend_store(store, rows=rows)
                store.close()
        finally:
            for spill in spills:
                spill.close()
        final = GroupedColumnarWriter(schema, target, rows_per_group,
                                      buckets=shards)
        try:
            for b, spill_path in enumerate(spill_paths):
                final.set_bucket(b)
                with RowGroupReader(spill_path) as bucket_reader:
                    for index in range(bucket_reader.group_count):
                        final.copy_group(bucket_reader, index)
        finally:
            final.close()
            for spill_path in spill_paths:
                if spill_path.exists():
                    spill_path.unlink()
        return final.rows


class _MergeCursor:
    """One shard's read position inside the group-granular merge."""

    def __init__(self, reader: RowGroupReader, index: int,
                 ts_column: str) -> None:
        self.reader = reader
        self.index = index
        self.ts_column = ts_column
        self.group_index = -1
        self.store: Optional[ColumnarStore] = None
        self.ts: Any = None
        self.row = 0
        self.code_maps: Dict[str, List[int]] = {}

    def advance_group(self) -> bool:
        """Move to the next non-empty group; False when exhausted."""
        if self.store is not None:
            self.store.close()
            self.store = None
        while self.group_index + 1 < self.reader.group_count:
            self.group_index += 1
            if self.reader.group_rows(self.group_index) == 0:
                continue
            self.store = self.reader.group(self.group_index)
            self.ts = self.store.raw_column(self.ts_column)
            self.row = 0
            # Codes are group-local; a fresh map per group is mandatory.
            self.code_maps = {}
            return True
        return False

    def key(self) -> Tuple[float, int]:
        assert self.store is not None
        return (self.ts[self.row], self.index)


def merge_columnar_shards(paths: Sequence[Union[str, Path]],
                          out_path: Union[str, Path],
                          ts_column: str = "ts",
                          row_group_rows: Optional[int] = None) -> int:
    """Order-stable k-way merge of ts-sorted columnar shard files.

    Rows merge by ``(ts, shard index, row index)`` — ties break toward
    the earlier shard, exactly like
    :func:`repro.datasets.records.merge_jsonl_shards` — so a columnar
    generate merged this way holds the same canonical record order as
    the JSONL route.  Output is byte-identical to the per-row reference
    merge (:func:`merge_columnar_shards_rowwise`), but the walk is
    *run*-granular: whenever the head shard's next rows all sort before
    every other shard's head (found by bisecting the ts column), the
    whole run moves in one vectorized append instead of one heap pop
    per row.  Shards whose ts ranges do not overlap therefore merge at
    group-copy speed; only genuinely interleaved spans pay per-row
    work.

    Inputs may be v1 or v2 but not a mix — mixed format versions raise,
    as do mixed schemas.  ``row_group_rows=None`` writes a v1 file (the
    byte-canonical default for generate); a value writes a v2 row-group
    file with bounded memory, copying whole source groups verbatim when
    a run covers one.  Returns the number of rows written.
    """
    readers = [RowGroupReader(p) for p in paths]
    try:
        schemas = {reader.schema.name for reader in readers}
        if len(schemas) > 1:
            raise ValueError(f"cannot merge mixed schemas: "
                             f"{sorted(schemas)}")
        versions = {reader.format_version for reader in readers}
        if len(versions) > 1:
            raise ValueError(
                f"cannot merge mixed columnar format versions "
                f"{sorted(versions)}: convert the shards to one layout "
                f"first (see convert_columnar)")
        schema = readers[0].schema
        writer: Optional[ColumnarWriter] = None
        grouped: Optional[GroupedColumnarWriter] = None
        if row_group_rows is None:
            writer = ColumnarWriter(schema)
        else:
            grouped = GroupedColumnarWriter(schema, out_path,
                                            row_group_rows)

        def emit(cursor: _MergeCursor, lo: int, hi: int) -> None:
            store = cursor.store
            assert store is not None
            if grouped is not None:
                if (lo == 0 and hi == store.rows
                        and grouped.pending_rows == 0
                        and cursor.reader.format_version
                        == FORMAT_VERSION_V2):
                    grouped.copy_group(cursor.reader, cursor.group_index)
                else:
                    grouped.extend_store(store, lo, hi)
            else:
                assert writer is not None
                writer.extend_rows(store, lo, hi,
                                   code_maps=cursor.code_maps)

        active = [cursor for cursor in
                  (_MergeCursor(reader, index, ts_column)
                   for index, reader in enumerate(readers))
                  if cursor.advance_group()]
        merged_groups = 0
        while active:
            if len(active) == 1:
                cursor = active[0]
                while True:
                    assert cursor.store is not None
                    emit(cursor, cursor.row, cursor.store.rows)
                    merged_groups += 1
                    if not cursor.advance_group():
                        break
                break
            cursor = min(active, key=_MergeCursor.key)
            other = min((c.key() for c in active if c is not cursor))
            assert cursor.store is not None
            # Rows of the head shard that sort before every other head:
            # ties (equal ts) stay with the head only when its shard
            # index is lower, matching the (ts, shard, row) order.
            if cursor.index < other[1]:
                hi = bisect.bisect_right(cursor.ts, other[0], cursor.row,
                                         cursor.store.rows)
            else:
                hi = bisect.bisect_left(cursor.ts, other[0], cursor.row,
                                        cursor.store.rows)
            emit(cursor, cursor.row, hi)
            cursor.row = hi
            if cursor.row >= cursor.store.rows:
                merged_groups += 1
                if not cursor.advance_group():
                    active.remove(cursor)
        record_row_groups("merged", schema.name, merged_groups)
        if grouped is not None:
            grouped.close()
            return grouped.rows
        assert writer is not None
        writer.save(out_path)
        return writer.rows
    finally:
        for reader in readers:
            reader.close()


def merge_columnar_shards_rowwise(paths: Sequence[Union[str, Path]],
                                  out_path: Union[str, Path],
                                  ts_column: str = "ts") -> int:
    """Per-row heapq reference merge (the pre-row-group implementation).

    Kept as the byte-canonicity oracle: equivalence tests assert that
    :func:`merge_columnar_shards` produces identical bytes on
    overlapping-ts fixtures.  O(rows) memory — do not use on traces
    that do not fit in RAM.
    """
    stores = [ColumnarStore.open(p) for p in paths]
    try:
        schemas = {store.schema.name for store in stores}
        if len(schemas) > 1:
            raise ValueError(f"cannot merge mixed schemas: "
                             f"{sorted(schemas)}")
        writer = ColumnarWriter(stores[0].schema)

        def stream(index: int,
                   store: ColumnarStore) -> Iterator[Tuple[float, int, int]]:
            ts_col = store.raw_column(ts_column)
            for row in range(store.rows):
                yield (ts_col[row], index, row)

        for _, index, row in heapq.merge(*[stream(i, s)
                                           for i, s in enumerate(stores)]):
            writer.append_values(stores[index].row_values(row))
        writer.save(out_path)
        return writer.rows
    finally:
        for store in stores:
            store.close()


def concat_columnar_shards(paths: Sequence[Union[str, Path]],
                           out_path: Union[str, Path]) -> int:
    """Pure segment concatenation of shard files, in path order.

    The cheap merge for shards that are already globally ordered (e.g.
    contiguous time windows): numeric segments append bytewise, string
    columns remap codes onto a merged dictionary, null bitmaps re-pack
    at their new row offsets.  No per-row ordering pass.
    """
    stores = [ColumnarStore.open(p) for p in paths]
    try:
        schemas = {store.schema.name for store in stores}
        if len(schemas) > 1:
            raise ValueError(f"cannot concatenate mixed schemas: "
                             f"{sorted(schemas)}")
        writer = ColumnarWriter(stores[0].schema)
        for store in stores:
            writer.extend_store(store)
        writer.save(out_path)
        return writer.rows
    finally:
        for store in stores:
            store.close()
