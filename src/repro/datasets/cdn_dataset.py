"""Generator for the CDN dataset (passive authoritative vantage, section 4).

The real dataset is one day of query logs from a major CDN's authoritative
nameservers, reduced to the 4 147 ECS-enabled non-whitelisted resolvers.
This generator reproduces that population at any scale: each synthetic
resolver gets a probing strategy (with section 6.1's proportions) and a
source-prefix profile (Table 1's CDN column), then emits a query stream
whose timing realizes the strategy — probes inside TTL windows, loopback
probes at 30-minute multiples, on-miss probes spaced past the TTL, etc.

Ground-truth labels ride along, so the classifier analyses can report both
the recovered distribution and their own accuracy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from ..engine.seeding import derive_seed, world_seed
from ..engine.sharding import shard_bounds
from . import paper_numbers as paper
from .records import CdnQueryRecord
from .workload import ZipfSampler, merge_sorted_records, poisson_arrivals

#: (category label, paper count) — the section 6.1 buckets.
PROBING_MIX: Tuple[Tuple[str, int], ...] = (
    ("always_ecs", paper.PROBING_ALWAYS),
    ("hostname_probes", paper.PROBING_HOSTNAME_PROBES),
    ("interval_loopback", paper.PROBING_INTERVAL_LOOPBACK),
    ("hostnames_on_miss", paper.PROBING_ON_MISS),
    ("mixed", paper.PROBING_MIXED),
)

#: Table 1 CDN-column rows restricted to IPv4 resolvers (IPv6 handled apart).
_V4_PROFILES: Tuple[Tuple[str, int], ...] = tuple(
    (label, cdn) for label, (_, cdn) in paper.TABLE1_ROWS.items()
    if "IPv6" not in label and cdn > 0)
_V6_PROFILES: Tuple[Tuple[str, int], ...] = tuple(
    (label, cdn) for label, (_, cdn) in paper.TABLE1_ROWS.items()
    if "IPv6" in label and cdn > 0)


@dataclass
class ResolverSpec:
    """Ground truth for one synthetic resolver."""

    ip: str
    probing: str
    profile: str
    country: str
    dominant_as: bool
    is_v6: bool = False
    probe_names: Tuple[str, ...] = ()


@dataclass
class CdnDataset:
    """The generated log plus its ground truth."""

    records: List[CdnQueryRecord]
    resolvers: List[ResolverSpec]
    hostnames: List[str]
    duration_s: float

    def records_for(self, resolver_ip: str) -> List[CdnQueryRecord]:
        return [r for r in self.records if r.resolver_ip == resolver_ip]

    def by_resolver(self) -> Dict[str, List[CdnQueryRecord]]:
        out: Dict[str, List[CdnQueryRecord]] = {}
        for r in self.records:
            out.setdefault(r.resolver_ip, []).append(r)
        return out


def _profile_lengths(label: str) -> List[int]:
    """Parse a Table 1 row label into its source prefix lengths."""
    head = label.replace(" (IPv6)", "").split("/")[0]
    return [int(x) for x in head.split(",")]


def _jammed(label: str) -> bool:
    return "jammed" in label


class CdnDatasetBuilder:
    """Builds a :class:`CdnDataset` scaled against the paper's population."""

    def __init__(self, scale: float = 0.02, seed: int = 0,
                 duration_s: float = 6 * 3600.0,
                 hostname_count: int = 120,
                 base_rate_qps: float = 0.02,
                 record_ttl: int = 20):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.scale = scale
        self.seed = seed
        self.duration_s = duration_s
        self.hostname_count = hostname_count
        self.base_rate_qps = base_rate_qps
        self.record_ttl = record_ttl

    # -- population ----------------------------------------------------------

    def _scaled(self, count: int) -> int:
        return max(1, round(count * self.scale))

    def _build_resolvers(self, rng: random.Random) -> List[ResolverSpec]:
        specs: List[ResolverSpec] = []
        profile_pool: List[str] = []
        for label, count in _V4_PROFILES:
            profile_pool.extend([label] * self._scaled(count))
        rng.shuffle(profile_pool)

        idx = 0
        for probing, count in PROBING_MIX:
            for _ in range(self._scaled(count)):
                dominant = False
                if profile_pool:
                    profile = profile_pool[idx % len(profile_pool)]
                    idx += 1
                else:
                    profile = "24"
                # The dominant (Chinese) AS sends 100% ECS with jammed /32s.
                if probing == "always_ecs" and _jammed(profile) \
                        and "25" not in profile and "24," not in profile:
                    dominant = rng.random() < (
                        paper.CDN_DOMINANT_AS_RESOLVERS
                        / paper.TABLE1_ROWS["32/jammed last byte"][1])
                country = "CN" if dominant or (
                    _jammed(profile) and rng.random() < 0.9) else \
                    rng.choice(("US", "DE", "BR", "IN", "JP", "FR", "RU"))
                ip = f"66.{(len(specs) >> 8) & 0xFF}.{len(specs) & 0xFF}.53"
                probe_names = ()
                if probing in ("hostname_probes", "hostnames_on_miss"):
                    probe_names = (f"probe{len(specs) % 7}.cdn.example.",)
                elif probing == "interval_loopback":
                    probe_names = ("beacon.cdn.example.",)
                specs.append(ResolverSpec(ip, probing, profile, country,
                                          dominant, False, probe_names))
        # IPv6 resolvers (always-ECS per the paper's v6 rows).
        for label, count in _V6_PROFILES:
            for _ in range(self._scaled(count)):
                ip = f"2600:66::{len(specs):x}"
                specs.append(ResolverSpec(ip, "always_ecs", label, "US",
                                          False, True))
        return specs

    # -- ECS payloads ----------------------------------------------------------

    def _client_subnets(self, spec: ResolverSpec,
                        rng: random.Random) -> List[str]:
        """A resolver serves clients in a handful of /24s (or /48s)."""
        count = rng.randint(2, 8)
        if spec.is_v6:
            return [f"2610:{rng.randrange(1 << 16):x}:{rng.randrange(1 << 16):x}::"
                    for _ in range(count)]
        return [f"{rng.randrange(90, 110)}.{rng.randrange(256)}.{rng.randrange(256)}.0"
                for _ in range(count)]

    def _ecs_payload(self, spec: ResolverSpec, subnet: str,
                     rng: random.Random) -> Tuple[str, int]:
        """(address, source prefix length) for one ECS query."""
        lengths = _profile_lengths(spec.profile)
        length = rng.choice(lengths)
        if spec.is_v6:
            return subnet, length
        base = subnet.rsplit(".", 1)[0]
        if length == 32:
            last = 1 if _jammed(spec.profile) else rng.randrange(2, 254)
            return f"{base}.{last}", 32
        if length == 25:
            return f"{base}.{rng.choice((0, 128))}", 25
        octets = [int(x) for x in subnet.split(".")]
        kept = length // 8
        addr = octets[:kept] + [0] * (4 - kept)
        return ".".join(str(o) for o in addr), length

    # -- per-strategy streams ----------------------------------------------------

    def _emit(self, spec: ResolverSpec, hostnames: Sequence[str],
              zipf: ZipfSampler, rng: random.Random
              ) -> List[CdnQueryRecord]:
        subnets = self._client_subnets(spec, rng)
        rate = self.base_rate_qps * rng.uniform(0.5, 3.0)
        arrivals = poisson_arrivals(rate, self.duration_s, rng)
        qtype = 28 if spec.is_v6 else 1
        records: List[CdnQueryRecord] = []

        def rec(ts: float, qname: str, with_ecs: bool) -> CdnQueryRecord:
            if with_ecs:
                addr, srclen = self._ecs_payload(spec, rng.choice(subnets), rng)
                return CdnQueryRecord(ts, spec.ip, qname, qtype, True,
                                      addr, srclen, None, self.record_ttl)
            return CdnQueryRecord(ts, spec.ip, qname, qtype, False,
                                  ttl=self.record_ttl)

        if spec.probing == "always_ecs":
            if not arrivals:  # every resolver in the dataset sent something
                arrivals = [rng.uniform(0, self.duration_s) for _ in range(3)]
            for ts in arrivals:
                records.append(rec(ts, hostnames[zipf.sample(rng)], True))
        elif spec.probing == "hostname_probes":
            # Background non-ECS traffic, never touching the probe names.
            for ts in arrivals:
                records.append(rec(ts, hostnames[zipf.sample(rng)], False))
            # Probe names re-queried well inside the 20 s TTL.
            gap = rng.uniform(5.0, 0.8 * self.record_ttl)
            for name in spec.probe_names:
                t = rng.uniform(0, gap)
                while t < self.duration_s:
                    records.append(rec(t, name, True))
                    t += gap
        elif spec.probing == "interval_loopback":
            for ts in arrivals:
                records.append(rec(ts, hostnames[zipf.sample(rng)], False))
            interval = 1800.0 * rng.choice((1, 1, 2))
            name = spec.probe_names[0]
            t = rng.uniform(0, 60.0)
            while t < self.duration_s:
                records.append(CdnQueryRecord(
                    t, spec.ip, name, qtype, True, "127.0.0.1", 32,
                    None, self.record_ttl))
                t += interval * rng.choice((1, 1, 1, 2))
        elif spec.probing == "hostnames_on_miss":
            for ts in arrivals:
                records.append(rec(ts, hostnames[zipf.sample(rng)], False))
            for name in spec.probe_names:
                t = rng.uniform(0, 120.0)
                while t < self.duration_s:
                    records.append(rec(t, name, True))
                    # Past the TTL *and* the one-minute window.
                    t += rng.uniform(90.0, 900.0)
        else:  # mixed
            ecs_fraction = rng.uniform(0.2, 0.8)
            for ts in arrivals:
                records.append(rec(ts, hostnames[zipf.sample(rng)],
                                   rng.random() < ecs_fraction))
            # Guarantee the stream is genuinely mixed.
            if records:
                records.append(rec(self.duration_s / 2, hostnames[0], True))
                records.append(rec(self.duration_s / 2 + 1, hostnames[0], False))
        records.sort(key=lambda r: r.ts)
        return records

    # -- entry point --------------------------------------------------------------

    def build(self) -> CdnDataset:
        """Generate the dataset (deterministic in the builder's seed)."""
        rng = random.Random(self.seed)
        hostnames = [f"e{i:04d}.cdn.example." for i in range(self.hostname_count)]
        zipf = ZipfSampler(len(hostnames), alpha=1.0)
        specs = self._build_resolvers(rng)
        records: List[CdnQueryRecord] = []
        for spec in specs:
            records.extend(self._emit(spec, hostnames, zipf, rng))
        records.sort(key=lambda r: r.ts)
        return CdnDataset(records, specs, hostnames, self.duration_s)

    # -- sharded generation (repro.engine) ---------------------------------

    _SEED_NS = "cdn"

    def _hostnames(self) -> List[str]:
        return [f"e{i:04d}.cdn.example." for i in range(self.hostname_count)]

    def _world_specs(self) -> List[ResolverSpec]:
        """The resolver population, identical in every shard.

        Seeded only by the root seed, so shard workers rebuild the exact
        same ground truth without any shared state.
        """
        rng = random.Random(world_seed(self.seed, self._SEED_NS))
        return self._build_resolvers(rng)

    def shard_units(self) -> int:
        """The unit universe sharded over: resolvers."""
        return len(self._world_specs())

    def iter_shard(self, shard_index: int,
                   shard_count: int) -> Iterator[CdnQueryRecord]:
        """Stream one resolver slice's queries, in emission order.

        Resolver-major (each resolver's records are internally sorted,
        resolvers overlap in time), so out-of-core writers pair this
        with an external sort.  Consumes the shard's random stream in
        exactly the :meth:`build_shard` order.
        """
        specs = self._world_specs()
        hostnames = self._hostnames()
        zipf = ZipfSampler(len(hostnames), alpha=1.0)
        lo, hi = shard_bounds(len(specs), shard_count)[shard_index]
        rng = random.Random(derive_seed(self.seed, shard_index,
                                        self._SEED_NS))
        for spec in specs[lo:hi]:
            yield from self._emit(spec, hostnames, zipf, rng)

    def build_shard(self, shard_index: int,
                    shard_count: int) -> List[CdnQueryRecord]:
        """Emit the streams of one contiguous slice of the population."""
        records = list(self.iter_shard(shard_index, shard_count))
        records.sort(key=lambda r: r.ts)
        return records

    def assemble(self,
                 shard_records: Sequence[List[CdnQueryRecord]]) -> CdnDataset:
        """Order-stable merge of shard outputs into a full dataset."""
        records = merge_sorted_records(shard_records)
        return CdnDataset(records, self._world_specs(), self._hostnames(),
                          self.duration_s)
