"""The paper's reported figures, as constants.

Dataset generators scale their synthetic populations against these targets,
and the benchmark harness prints paper-vs-measured tables from them.  Where
the source text of Table 1 is ambiguous (the archived copy interleaves the
two count columns), the reconstruction below keeps every number the prose
states explicitly and distributes the remainder consistently; totals match
the dataset sizes in section 4.
"""

from __future__ import annotations

# --------------------------------------------------------------------------
# Section 4 — dataset summaries

CDN_TOTAL_RESOLVERS = 3_741_983
CDN_ECS_ENABLED_RESOLVERS = 7_737
CDN_WHITELISTED = 3_590
CDN_NON_WHITELISTED = 4_147
CDN_NON_WHITELISTED_V4 = 4_002
CDN_NON_WHITELISTED_V6 = 145
CDN_ASES = 83
CDN_DOMINANT_AS_RESOLVERS = 3_067
CDN_QUERIES = 1_500_000_000
CDN_ECS_QUERIES = 847_000_000

SCAN_OPEN_INGRESS = 2_743_000
SCAN_ECS_INGRESS = 1_530_000
SCAN_INGRESS_ASES = 7_900
SCAN_INGRESS_COUNTRIES = 195
SCAN_EGRESS_IPS = 1_534
SCAN_GOOGLE_EGRESS = 1_256
SCAN_NON_GOOGLE_EGRESS = 278
SCAN_NON_GOOGLE_ASES = 45
SCAN_CHINESE_ASES = 19
SCAN_RATE_QPS = 25_000

PUBLIC_CDN_QUERIES = 3_800_000_000
PUBLIC_CDN_RESOLVER_IPS = 2_370
PUBLIC_CDN_HOURS = 3

ALLNAMES_QUERIES = 11_100_000
ALLNAMES_CLIENT_IPS = 76_200
ALLNAMES_V4_CLIENTS = 37_400
ALLNAMES_V6_CLIENTS = 38_800
ALLNAMES_V4_SUBNETS = 12_300
ALLNAMES_V6_SUBNETS = 2_800
ALLNAMES_HOSTNAMES = 134_925
ALLNAMES_SLDS = 19_014
ALLNAMES_HOURS = 24

# --------------------------------------------------------------------------
# Section 5 — discovery

DISCOVERY_SCAN_NON_GOOGLE = 278
DISCOVERY_CDN_NON_WHITELISTED = 4_147
DISCOVERY_OVERLAP = 234

# --------------------------------------------------------------------------
# Section 6.1 — probing strategies (CDN dataset, 4 147 resolvers)

PROBING_ALWAYS = 3_382
PROBING_ALWAYS_DOMINANT_AS = 3_067
PROBING_HOSTNAME_PROBES = 258
PROBING_INTERVAL_LOOPBACK = 32
PROBING_ON_MISS = 88
PROBING_MIXED = 387
PROBING_ROOT_VIOLATORS = 15  # from the A-root DITL logs

# --------------------------------------------------------------------------
# Section 6.2 — Table 1: source prefix lengths.
# Keys: a label per table row; values: (scan count, cdn count).
# Reconstructed — see module docstring.

TABLE1_ROWS = {
    "18": (3, 60),
    "22": (8, 19),
    "24": (1384, 757),
    "24,25,32/jammed last byte": (0, 1),
    "24,32/jammed last byte": (0, 3),
    "25": (1, 1),
    "25,32/jammed last byte": (0, 78),
    "32/jammed last byte": (130, 3002),
    "32": (0, 221),
    "32 (IPv6)": (2, 44),
    "48 (IPv6)": (4, 56),
    "56 (IPv6)": (2, 33),
    "64 (IPv6)": (0, 1),
    "64,96,128 (IPv6)": (0, 3),
}

JAMMED_BYTE_VALUES = (0x01, 0x00)

# --------------------------------------------------------------------------
# Section 6.3 — caching behavior (203 studied resolvers)

CACHING_STUDIED = 203
CACHING_ARBITRARY_ECS = 32
CACHING_CORRECT = 76
CACHING_IGNORES_SCOPE = 103
CACHING_OVER_24 = 15
CACHING_CLAMP_22 = 8
CACHING_PRIVATE_PREFIX = 1

# --------------------------------------------------------------------------
# Section 7 — caching impact

FIG1_MAX_BLOWUP = {20: 15.95, 40: 23.68, 60: 29.85}
FIG1_MEDIAN_BLOWUP_TTL20 = 4.0
FIG2_FULL_POPULATION_BLOWUP = 4.3
FIG3_HIT_RATE_NO_ECS = 0.76
FIG3_HIT_RATE_WITH_ECS = 0.30

# --------------------------------------------------------------------------
# Section 8.1 — Table 2 (RTT in ms from a Cleveland lab machine)

TABLE2_ROWS = {
    "none": ("Chicago", 35),
    "/24 of src addr": ("Chicago", 35),
    "127.0.0.1/32": ("Zurich", 155),
    "127.0.0.0/24": ("Mountain View", 47),
    "169.254.252.0/24": ("Johannesburg", 285),
}
UNROUTABLE_RESOLVERS = 33
UNROUTABLE_ASES = 6

# --------------------------------------------------------------------------
# Section 8.2 — hidden resolvers

HIDDEN_PREFIXES = 32_170
HIDDEN_PREFIXES_MP = 31_011
HIDDEN_VALIDATED_MP = 28_892
HIDDEN_VALIDATED_OTHER = 815
HIDDEN_VALIDATED_TOTAL = 29_707
MP_COMBINATIONS = 725_000
MP_HIDDEN_FARTHER_FRAC = 0.08
MP_EQUIDISTANT_FRAC = 0.013
NONMP_COMBINATIONS = 217_000
NONMP_HIDDEN_FARTHER_FRAC = 0.078
NONMP_EQUIDISTANT_FRAC = 0.195
NONMP_HIDDEN_CLOSER_FRAC = 0.727

# --------------------------------------------------------------------------
# Section 8.3 — CDN prefix-length thresholds

CDN1_MIN_PREFIX = 24
CDN1_EDGES_AT_24 = 400
CDN1_EDGES_BELOW_24 = (5, 14)
CDN2_MIN_PREFIX = 21
CDN2_EDGES_AT_21 = (41, 42)
ATLAS_PROBES = 800
ATLAS_COUNTRIES = 174
ATLAS_ASES = 599

# --------------------------------------------------------------------------
# Section 8.4 — CNAME flattening case study

FLATTENING_HANDSHAKE_MS = 125
FLATTENING_TOTAL_PENALTY_MS = 650
FLATTENING_DIRECT_HANDSHAKE_MS = 45
