"""Dataset generators and log-record schemas for the four vantage points."""

from . import paper_numbers
from .allnames import AllNamesBuilder, AllNamesDataset
from .cdn_dataset import CdnDataset, CdnDatasetBuilder, ResolverSpec
from .ditl import RootTrace, RootTraceBuilder, generate_root_trace
from .public_cdn import PublicCdnBuilder, PublicCdnDataset
from .records import (AllNamesRecord, CdnQueryRecord, PublicCdnRecord,
                      RootQueryRecord, ScanQueryRecord, iter_jsonl,
                      merge_jsonl_shards, read_jsonl, shard_path, write_csv,
                      write_jsonl, write_jsonl_shards)
from .scan_dataset import (ChainSpec, EgressSpec, ScanUniverse,
                           ScanUniverseBuilder)
from .workload import (ClientPopulation, HostnameUniverse, SldPolicy,
                       ZipfSampler, assign_sld_policies,
                       merge_sorted_records, poisson_arrivals)

__all__ = [
    "AllNamesBuilder", "AllNamesDataset", "AllNamesRecord", "CdnDataset",
    "CdnDatasetBuilder", "CdnQueryRecord", "ChainSpec", "ClientPopulation",
    "EgressSpec", "HostnameUniverse", "PublicCdnBuilder", "PublicCdnDataset",
    "PublicCdnRecord", "ResolverSpec", "RootQueryRecord", "RootTrace",
    "RootTraceBuilder", "ScanQueryRecord", "ScanUniverse",
    "ScanUniverseBuilder", "SldPolicy", "ZipfSampler", "assign_sld_policies",
    "generate_root_trace", "iter_jsonl", "merge_jsonl_shards",
    "merge_sorted_records", "paper_numbers", "poisson_arrivals", "read_jsonl",
    "shard_path", "write_csv", "write_jsonl", "write_jsonl_shards",
]
