"""Dataset generators and log-record schemas for the four vantage points."""

from . import paper_numbers
from .allnames import AllNamesBuilder, AllNamesDataset
from .cdn_dataset import CdnDataset, CdnDatasetBuilder, ResolverSpec
from .public_cdn import PublicCdnBuilder, PublicCdnDataset
from .records import (AllNamesRecord, CdnQueryRecord, PublicCdnRecord,
                      RootQueryRecord, ScanQueryRecord, iter_jsonl,
                      read_jsonl, write_csv, write_jsonl)
from .scan_dataset import (ChainSpec, EgressSpec, ScanUniverse,
                           ScanUniverseBuilder)
from .workload import (ClientPopulation, HostnameUniverse, SldPolicy,
                       ZipfSampler, assign_sld_policies, poisson_arrivals)

__all__ = [
    "AllNamesBuilder", "AllNamesDataset", "AllNamesRecord", "CdnDataset",
    "CdnDatasetBuilder", "CdnQueryRecord", "ChainSpec", "ClientPopulation",
    "EgressSpec", "HostnameUniverse", "PublicCdnBuilder", "PublicCdnDataset",
    "PublicCdnRecord", "ResolverSpec", "RootQueryRecord", "ScanQueryRecord",
    "ScanUniverse", "ScanUniverseBuilder", "SldPolicy", "ZipfSampler",
    "assign_sld_policies", "iter_jsonl", "paper_numbers", "poisson_arrivals",
    "read_jsonl", "write_csv", "write_jsonl",
]
