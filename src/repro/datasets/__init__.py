"""Dataset generators and log-record schemas for the four vantage points."""

from . import paper_numbers
from .allnames import AllNamesBuilder, AllNamesDataset
from .cdn_dataset import CdnDataset, CdnDatasetBuilder, ResolverSpec
from .columnar import (SCHEMAS, ColumnarStats, ColumnarStore, ColumnarWriter,
                       columnar_to_jsonl, concat_columnar_shards, file_info,
                       is_columnar, jsonl_to_columnar, merge_columnar_shards,
                       read_columnar, schema_for, write_columnar)
from .ditl import RootTrace, RootTraceBuilder, generate_root_trace
from .public_cdn import PublicCdnBuilder, PublicCdnDataset
from .records import (AllNamesRecord, CdnQueryRecord, PublicCdnRecord,
                      RootQueryRecord, ScanQueryRecord, iter_jsonl,
                      merge_jsonl_shards, read_jsonl, shard_path, write_csv,
                      write_jsonl, write_jsonl_shards)
from .scan_dataset import (ChainSpec, EgressSpec, ScanUniverse,
                           ScanUniverseBuilder)
from .workload import (ClientPopulation, HostnameUniverse, SldPolicy,
                       ZipfSampler, assign_sld_policies,
                       merge_sorted_records, poisson_arrivals)

__all__ = [
    "AllNamesBuilder", "AllNamesDataset", "AllNamesRecord", "CdnDataset",
    "CdnDatasetBuilder", "CdnQueryRecord", "ChainSpec", "ClientPopulation",
    "ColumnarStats", "ColumnarStore", "ColumnarWriter", "EgressSpec",
    "HostnameUniverse", "PublicCdnBuilder", "PublicCdnDataset",
    "PublicCdnRecord", "ResolverSpec", "RootQueryRecord", "RootTrace",
    "RootTraceBuilder", "SCHEMAS", "ScanQueryRecord", "ScanUniverse",
    "ScanUniverseBuilder", "SldPolicy", "ZipfSampler", "assign_sld_policies",
    "columnar_to_jsonl", "concat_columnar_shards", "file_info",
    "generate_root_trace", "is_columnar", "iter_jsonl", "jsonl_to_columnar",
    "merge_columnar_shards", "merge_jsonl_shards", "merge_sorted_records",
    "paper_numbers", "poisson_arrivals", "read_columnar", "read_jsonl",
    "schema_for", "shard_path", "write_columnar", "write_csv", "write_jsonl",
    "write_jsonl_shards",
]
