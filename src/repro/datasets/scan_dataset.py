"""The Scan universe: a wire-level model of the open-resolver ecosystem.

Unlike the statistical generators, this builder stands up an actual
simulated Internet — delegation hierarchy, the authors' experimental
authoritative nameserver, a major anycast public DNS service ("MegaDNS",
playing the paper's dominant public resolver), Chinese ISP resolvers with
jammed-/32 ECS, a long tail of other egress resolvers with the behavior mix
of sections 6.2/6.3/8.1, and a population of open ingress forwarders, half
of them chained through *hidden* resolvers.  The IPv4 scan
(:class:`repro.measure.scanner.Scanner`) then runs against it exactly as the
paper's scan ran against the real Internet.

Everything is deterministic in the builder's seed, and ground-truth tables
(which chains have hidden resolvers, which egress has which policy) ride
along so analyses can validate themselves.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..auth.hierarchy import DnsHierarchy
from ..auth.scan_experiment import ScanExperimentServer
from ..core.policies import EcsPolicy
from ..dnslib import Name
from ..net.geo import WORLD_CITIES, City, city
from ..net.topology import AutonomousSystem, Topology
from ..net.transport import Network
from ..resolvers import (Forwarder, PublicDnsService, RecursiveResolver,
                         behaviors)

#: Cities hosting the Chinese ISP resolvers (section 8.2 finds the
#: Beijing / Shanghai / Guangzhou triangle dominating the distances).
CHINESE_CITIES = ("Beijing", "Shanghai", "Guangzhou", "Chengdu")

#: Caching/prefix behavior mix for non-MegaDNS egress resolvers, scaled
#: from the paper's counts (section 6.3: 76 correct, 103 scope-ignoring,
#: 15 over-/24, 8 clamp-22, 1 private; section 8.1: loopback senders).
OTHER_EGRESS_MIX: Tuple[Tuple[str, int], ...] = (
    ("compliant", 8),
    ("accepts_client_ecs", 4),      # open, arbitrary-prefix amenable, correct
    ("scope_ignorer", 18),
    ("over_24_acceptor", 2),
    ("clamp_22", 1),
    ("private_prefix_sender", 1),
    ("loopback_32_sender", 2),
    ("link_local_sender", 1),
    ("prefix_25", 1),
    ("always_ecs", 2),              # /24, correct caching
    ("no_ecs", 10),                 # the non-adopting majority
)


@dataclass
class ChainSpec:
    """Ground truth for one ingress resolution path."""

    forwarder_ip: str
    hidden_ips: Tuple[str, ...]
    egress_ip: str            # the IP the experiment server will see
    via_megadns: bool
    forwarder_city: str
    hidden_city: Optional[str]
    egress_city: str


@dataclass
class EgressSpec:
    """Ground truth for one non-MegaDNS egress resolver."""

    ip: str
    policy_name: str
    open_to_world: bool
    country: str
    city: str


@dataclass
class ScanUniverse:
    """The assembled simulated ecosystem."""

    net: Network
    topology: Topology
    hierarchy: DnsHierarchy
    domain: Name
    experiment_server: ScanExperimentServer
    megadns: PublicDnsService
    other_egress: List[RecursiveResolver]
    egress_specs: List[EgressSpec]
    chains: List[ChainSpec]
    scanner_ip: str

    @property
    def forwarder_ips(self) -> List[str]:
        return [c.forwarder_ip for c in self.chains]

    def egress_by_ip(self) -> Dict[str, RecursiveResolver]:
        return {r.ip: r for r in self.other_egress}

    def chains_for_egress(self, egress_ip: str) -> List[ChainSpec]:
        return [c for c in self.chains if c.egress_ip == egress_ip]


class ScanUniverseBuilder:
    """Assembles a :class:`ScanUniverse`."""

    def __init__(self, seed: int = 0,
                 ingress_count: int = 300,
                 megadns_share: float = 0.75,
                 hidden_fraction: float = 0.5,
                 hidden_far_fraction: float = 0.09,
                 hidden_same_city_as_egress_fraction: float = 0.13,
                 megadns_egress_count: int = 8,
                 eyeball_as_count: int = 24,
                 pairs_per_egress: int = 1,
                 ingress_as_egress_fraction: float = 0.08,
                 egress_mix: Sequence[Tuple[str, int]] = OTHER_EGRESS_MIX):
        self.seed = seed
        self.ingress_count = ingress_count
        self.megadns_share = megadns_share
        self.hidden_fraction = hidden_fraction
        self.hidden_far_fraction = hidden_far_fraction
        self.hidden_same_city_fraction = hidden_same_city_as_egress_fraction
        self.megadns_egress_count = megadns_egress_count
        self.eyeball_as_count = eyeball_as_count
        self.pairs_per_egress = pairs_per_egress
        self.ingress_as_egress_fraction = ingress_as_egress_fraction
        self.egress_mix = tuple(egress_mix)

    # -- pieces -----------------------------------------------------------

    def _build_megadns(self, net: Network, topology: Topology,
                       hierarchy: DnsHierarchy) -> PublicDnsService:
        service_as = topology.create_as("MegaDNS", "US")
        frontend_cities = [city(n) for n in
                           ("Ashburn", "Frankfurt", "Singapore", "Sao Paulo",
                            "Sydney", "Tokyo", "London", "Chicago")]
        return PublicDnsService(net, service_as, hierarchy.root_ips,
                                frontend_cities=frontend_cities,
                                egress_city=city("Ashburn"),
                                egress_count=self.megadns_egress_count,
                                policy=EcsPolicy())

    def _build_other_egress(self, net: Network, topology: Topology,
                            hierarchy: DnsHierarchy, rng: random.Random
                            ) -> Tuple[List[RecursiveResolver], List[EgressSpec]]:
        resolvers: List[RecursiveResolver] = []
        specs: List[EgressSpec] = []
        chinese_as = [topology.create_as(f"ChinaISP-{i}", "CN")
                      for i in range(3)]
        other_as = [topology.create_as(f"RegionalISP-{i}",
                                       rng.choice(("US", "DE", "BR", "IN",
                                                   "RU", "JP")))
                    for i in range(5)]
        # Chinese ISP egress: jammed /32, scope-ignoring half the time.
        for i, as_ in enumerate(chinese_as):
            for j in range(3):
                where = city(CHINESE_CITIES[(i + j) % len(CHINESE_CITIES)])
                ip = as_.host_in(where)
                policy_name = "jammed_last_byte" if j % 2 == 0 \
                    else "scope_ignorer_jammed"
                policy = behaviors.JAMMED_LAST_BYTE if j % 2 == 0 else \
                    behaviors.JAMMED_LAST_BYTE.with_(
                        scope_handling=behaviors.ScopeHandling.IGNORE)
                resolver = RecursiveResolver(ip, net.clock, hierarchy.root_ips,
                                             policy=policy)
                net.attach(resolver)
                resolvers.append(resolver)
                specs.append(EgressSpec(ip, policy_name, open_to_world=False,
                                        country="CN", city=where.name))
        # The long tail with the paper's behavior mix.
        for policy_name, count in self.egress_mix:
            for _ in range(count):
                as_ = rng.choice(other_as)
                where = rng.choice([c for c in WORLD_CITIES
                                    if c.country == as_.country]
                                   or list(WORLD_CITIES))
                ip = as_.host_in(where)
                policy = behaviors.PRESETS[policy_name]
                # The paper's 32 arbitrary-ECS resolvers (24 open + 8 via
                # ECS-passing forwarders) include the over-/24 and clamp-22
                # deviants; those policies accept client ECS here too.
                open_to_world = policy_name in ("accepts_client_ecs",
                                                "over_24_acceptor",
                                                "clamp_22",
                                                "compliant")
                resolver = RecursiveResolver(
                    ip, net.clock, hierarchy.root_ips, policy=policy,
                    allowed_clients=None)
                net.attach(resolver)
                resolvers.append(resolver)
                specs.append(EgressSpec(ip, policy_name, open_to_world,
                                        as_.country, where.name))
        return resolvers, specs

    def _nearest_frontend(self, megadns: PublicDnsService,
                          topology: Topology, from_ip: str) -> str:
        from_city = topology.city_of(from_ip)
        best_ip, best_d = megadns.frontend_ips[0], float("inf")
        for fe_ip in megadns.frontend_ips:
            fe_city = topology.city_of(fe_ip)
            if from_city is None or fe_city is None:
                continue
            d = from_city.distance_km(fe_city)
            if d < best_d:
                best_ip, best_d = fe_ip, d
        return best_ip

    # -- assembly ------------------------------------------------------------

    def build(self) -> ScanUniverse:
        rng = random.Random(self.seed)
        topology = Topology()
        net = Network(topology, rng=random.Random(self.seed + 1))
        infra_as = topology.create_as("infra", "US")
        hierarchy = DnsHierarchy(net, infra_as)

        domain = Name.from_text("scan-exp.example.")
        exp_as = topology.create_as("experiment", "US")
        exp_ip = exp_as.host_in(city("Cleveland"))
        exp_server = ScanExperimentServer(exp_ip, domain,
                                          answer_address="203.0.113.80")
        net.attach(exp_server)
        hierarchy.attach_authoritative(domain, exp_ip)
        scanner_ip = exp_as.host_in(city("Cleveland"))

        megadns = self._build_megadns(net, topology, hierarchy)
        other_egress, egress_specs = self._build_other_egress(
            net, topology, hierarchy, rng)

        eyeball_as = [topology.create_as(f"Eyeball-{i}",
                                         rng.choice(("US", "DE", "BR", "IN",
                                                     "CN", "JP", "FR", "RU",
                                                     "GB", "ZA", "AU", "CL",
                                                     "KR", "MX", "TR", "ID")))
                      for i in range(self.eyeball_as_count)]
        hidden_as = topology.create_as("HiddenHosting", "US")

        chains: List[ChainSpec] = []
        # Deterministic /16-sibling forwarder pairs for every closed egress
        # (the section 6.3 paired-forwarder technique needs them).
        for spec in egress_specs:
            as_ = rng.choice(eyeball_as)
            where = self._city_for(as_, rng)
            for _ in range(self.pairs_per_egress):
                for _sibling in range(2):
                    fwd_ip = as_.host_in_new_subnet(where)
                    fwd = Forwarder(fwd_ip, [spec.ip])
                    net.attach(fwd)
                    chains.append(ChainSpec(
                        fwd_ip, (), spec.ip, False, where.name, None,
                        self._city_name(topology, spec.ip)))
        # Paired hidden-resolver forwarders behind MegaDNS (section 6.3's
        # third technique) — two hidden resolvers in sibling /24s.
        for _ in range(2):
            as_ = rng.choice(eyeball_as)
            where = self._city_for(as_, rng)
            for _sibling in range(2):
                hid_ip = hidden_as.host_in_new_subnet(where)
                fe_ip = self._nearest_frontend(megadns, topology, hid_ip)
                hidden = Forwarder(hid_ip, [fe_ip])
                net.attach(hidden)
                fwd_ip = as_.host_in_new_subnet(where)
                fwd = Forwarder(fwd_ip, [hid_ip])
                net.attach(fwd)
                chains.append(ChainSpec(
                    fwd_ip, (hid_ip,), megadns.egress_ips[0], True,
                    where.name, where.name, "Ashburn"))

        # Some open ingress resolvers are themselves recursive resolvers
        # (ingress == egress), as the paper notes; the scan sees their own
        # IP at the authoritative server.
        ingress_as_egress = max(1, int(self.ingress_count
                                       * self.ingress_as_egress_fraction))
        for _ in range(ingress_as_egress):
            as_ = rng.choice(eyeball_as)
            where = self._city_for(as_, rng)
            ip = as_.host_in(where)
            policy = behaviors.PRESETS[
                rng.choice(("compliant", "no_ecs", "always_ecs"))]
            resolver = RecursiveResolver(ip, net.clock, hierarchy.root_ips,
                                         policy=policy)
            net.attach(resolver)
            chains.append(ChainSpec(ip, (), ip, False, where.name, None,
                                    where.name))

        # The general ingress population.
        for _ in range(self.ingress_count):
            as_ = rng.choice(eyeball_as)
            where = self._city_for(as_, rng)
            fwd_ip = as_.host_in(where)
            via_megadns = rng.random() < self.megadns_share
            hidden_ips: Tuple[str, ...] = ()
            hidden_city: Optional[str] = None

            if via_megadns:
                egress_ip = megadns.egress_ips[0]
                egress_city = "Ashburn"
            else:
                spec = rng.choice(egress_specs)
                egress_ip = spec.ip
                egress_city = spec.city

            next_hop: str
            if rng.random() < self.hidden_fraction:
                hidden_where = self._hidden_city(where, egress_city, rng)
                hid_ip = hidden_as.host_in(hidden_where)
                hidden_ips = (hid_ip,)
                hidden_city = hidden_where.name
                if via_megadns:
                    upstream = self._nearest_frontend(megadns, topology, hid_ip)
                else:
                    upstream = egress_ip
                hidden = Forwarder(hid_ip, [upstream])
                net.attach(hidden)
                next_hop = hid_ip
            else:
                next_hop = (self._nearest_frontend(megadns, topology, fwd_ip)
                            if via_megadns else egress_ip)

            fwd = Forwarder(fwd_ip, [next_hop])
            net.attach(fwd)
            chains.append(ChainSpec(fwd_ip, hidden_ips, egress_ip,
                                    via_megadns, where.name, hidden_city,
                                    egress_city))

        return ScanUniverse(net, topology, hierarchy, domain, exp_server,
                            megadns, other_egress, egress_specs, chains,
                            scanner_ip)

    # -- placement helpers ---------------------------------------------------

    @staticmethod
    def _city_name(topology: Topology, ip: str) -> str:
        c = topology.city_of(ip)
        return c.name if c else "?"

    @staticmethod
    def _city_for(as_: AutonomousSystem, rng: random.Random) -> City:
        candidates = [c for c in WORLD_CITIES if c.country == as_.country]
        return rng.choice(candidates or list(WORLD_CITIES))

    def _hidden_city(self, forwarder_city: City, egress_city_name: str,
                     rng: random.Random) -> City:
        """Place a hidden resolver relative to its forwarder.

        Most hidden resolvers sit near their forwarders; a configurable
        slice lands far away (the Santiago-forwarder/Italy-hidden pattern),
        and a small slice shares the egress's city (the on-diagonal,
        ECS-adds-nothing case).
        """
        roll = rng.random()
        if roll < self.hidden_far_fraction:
            far = [c for c in WORLD_CITIES
                   if c.point.distance_km(forwarder_city.point) > 6000]
            return rng.choice(far or list(WORLD_CITIES))
        if roll < self.hidden_far_fraction + self.hidden_same_city_fraction:
            try:
                return city(egress_city_name)
            except KeyError:
                return forwarder_city
        near = [c for c in WORLD_CITIES
                if c.point.distance_km(forwarder_city.point) < 1500]
        return rng.choice(near or [forwarder_city])
