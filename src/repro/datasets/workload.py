"""Workload models: hostname popularity, arrivals, client populations.

DNS query streams are famously skewed; the generators here provide the
standard building blocks — Zipf-distributed name popularity, Poisson
arrivals, and client subnet populations with configurable diversity — that
the four dataset generators compose.
"""

from __future__ import annotations

import heapq
import math
import random
from dataclasses import dataclass
from typing import Callable, List, Optional, Sequence, Tuple, TypeVar

from ..net.addr import host_in

R = TypeVar("R")


def merge_sorted_records(shard_lists: Sequence[Sequence[R]],
                         key: Callable[[R], float] = None) -> List[R]:
    """Order-stable k-way merge of per-shard, timestamp-sorted records.

    Equivalent to a stable sort of the concatenation in shard order —
    records with equal timestamps keep the earlier shard's entries first —
    but O(total · log shards).  This is the merge every sharded builder's
    ``assemble`` uses, and its stability is what makes merged output
    independent of how many workers generated the shards.
    """
    if key is None:
        key = lambda r: r.ts
    return list(heapq.merge(*shard_lists, key=key))


class ZipfSampler:
    """Samples ranks 0..n-1 with probability ∝ 1/(rank+1)^alpha.

    Uses an inverse-CDF table, so sampling is O(log n) and exactly
    reproducible from the caller's ``random.Random``.
    """

    def __init__(self, n: int, alpha: float = 1.0):
        if n <= 0:
            raise ValueError("ZipfSampler needs n >= 1")
        self.n = n
        self.alpha = alpha
        weights = [1.0 / (rank + 1) ** alpha for rank in range(n)]
        total = sum(weights)
        self._cdf: List[float] = []
        acc = 0.0
        for w in weights:
            acc += w / total
            self._cdf.append(acc)
        self._cdf[-1] = 1.0

    def sample(self, rng: random.Random) -> int:
        """Draw one rank."""
        u = rng.random()
        lo, hi = 0, self.n - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if self._cdf[mid] < u:
                lo = mid + 1
            else:
                hi = mid
        return lo


def poisson_arrivals(rate_per_s: float, duration_s: float,
                     rng: random.Random,
                     start: float = 0.0) -> List[float]:
    """Event timestamps of a Poisson process over [start, start+duration)."""
    if rate_per_s <= 0:
        return []
    ts: List[float] = []
    t = start
    end = start + duration_s
    while True:
        t += rng.expovariate(rate_per_s)
        if t >= end:
            return ts
        ts.append(t)


@dataclass
class HostnameUniverse:
    """A set of hostnames spread across second-level domains.

    The All-Names dataset spans 134,925 hostnames in 19,014 SLDs; this
    builder reproduces that structure at any scale.
    """

    hostnames: List[str]
    slds: List[str]

    @classmethod
    def generate(cls, sld_count: int, hostnames_per_sld: float,
                 rng: random.Random, tld: str = "com") -> "HostnameUniverse":
        """Create ``sld_count`` SLDs with a geometric number of hosts each."""
        hostnames: List[str] = []
        slds: List[str] = []
        labels = ("www", "api", "cdn", "static", "img", "video", "mail",
                  "app", "edge", "assets")
        for i in range(sld_count):
            sld = f"site{i:05d}.{tld}."
            slds.append(sld)
            count = max(1, min(len(labels),
                               int(rng.expovariate(1.0 / hostnames_per_sld)) + 1))
            for label in labels[:count]:
                hostnames.append(f"{label}.{sld}")
        return cls(hostnames, slds)


@dataclass
class ClientPopulation:
    """Clients grouped into /24 (IPv4) and /48 (IPv6) subnets."""

    v4_clients: List[str]
    v6_clients: List[str]

    @classmethod
    def generate(cls, v4_subnet_count: int, v6_subnet_count: int,
                 clients_per_subnet: float, rng: random.Random,
                 v4_base: str = "100.64.0.0/10",
                 v6_base: int = 0x2610) -> "ClientPopulation":
        """Spread clients over subnets (≥1 client per subnet).

        The v4 subnets are consecutive /24s inside ``v4_base``; v6 subnets
        are /48s under ``v6_base``::/16.
        """
        v4: List[str] = []
        for i in range(v4_subnet_count):
            base = f"100.{64 + (i >> 8) % 64}.{i & 0xFF}.0/24"
            count = max(1, int(rng.expovariate(1.0 / clients_per_subnet)))
            chosen = rng.sample(range(1, 255), min(count, 254))
            prefix = base.rsplit(".", 1)[0]
            v4.extend(f"{prefix}.{h}" for h in chosen)
        v6: List[str] = []
        for i in range(v6_subnet_count):
            count = max(1, int(rng.expovariate(1.0 / clients_per_subnet)))
            for _ in range(count):
                host = rng.randrange(1, 1 << 32)
                v6.append(f"{v6_base:x}:{(i >> 16) & 0xFFFF:x}:{i & 0xFFFF:x}::{host & 0xFFFF:x}:{(host >> 16) & 0xFFFF:x}")
        return cls(v4, v6)

    @property
    def all_clients(self) -> List[str]:
        return self.v4_clients + self.v6_clients

    def sample(self, rng: random.Random, skew: float = 1.0) -> str:
        """Draw a client; ``skew`` > 0 Zipf-weights toward early clients."""
        clients = self.all_clients
        if skew <= 0:
            return rng.choice(clients)
        # Rank-weighted choice without building a sampler per call.
        u = rng.random() ** (1.0 / skew) if skew != 1.0 else rng.random()
        idx = int(u * u * len(clients))  # quadratic skew toward low ranks
        return clients[min(idx, len(clients) - 1)]


@dataclass
class SldPolicy:
    """Per-SLD authoritative behavior: TTL and the ECS scope it returns."""

    ttl: int
    scope: int


def assign_sld_policies(slds: Sequence[str], rng: random.Random,
                        ttl_choices: Sequence[int] = (20, 30, 60, 300),
                        scope_choices: Sequence[Tuple[int, float]] = (
                            (24, 0.55), (16, 0.15), (20, 0.10),
                            (22, 0.10), (32, 0.10)),
                        ) -> dict:
    """Give each SLD a stable (TTL, scope) policy.

    The mixture defaults approximate the diversity of authoritative ECS
    deployments: most tailor at /24, some coarser, a few echo full length.
    """
    scopes = [s for s, _ in scope_choices]
    weights = [w for _, w in scope_choices]
    policies = {}
    for sld in slds:
        policies[sld] = SldPolicy(
            ttl=rng.choice(list(ttl_choices)),
            scope=rng.choices(scopes, weights=weights, k=1)[0],
        )
    return policies
