"""Generator for the All-Names Resolver dataset (section 4).

The real dataset is 24 hours of all ECS-carrying traffic at one busy egress
resolver of an anycast public DNS service: 11.1M A/AAAA queries from 76.2K
clients (12.3K IPv4 /24s + 2.8K IPv6 /48s) for 134,925 hostnames across
19,014 SLDs, each record carrying both the client IP and the authoritative
ECS scope — the combination the section 7 simulations need.

The generator's default parameters are *calibrated*: at ``scale=1.0`` the
trace is roughly 1/20th of the paper's volume, and the section 7 replays of
it land on the paper's reported shape — full-population blow-up near 4,
hit rate ≈0.77 without ECS vs ≈0.30 with, and a Fig 2 curve rising from
≈1.9 at 10% of clients without flattening at 100%.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, Iterator, List, Sequence, Tuple

from ..engine.seeding import derive_seed, world_seed
from ..engine.sharding import shard_bounds
from .records import AllNamesRecord
from .workload import SldPolicy, ZipfSampler, merge_sorted_records

#: Authoritative scope mixture (scope bits, weight): most ECS adopters
#: tailor at /24, some coarser, a few echo the full source length.
DEFAULT_SCOPE_MIX: Tuple[Tuple[int, float], ...] = (
    (24, 0.55), (16, 0.20), (20, 0.10), (22, 0.05), (32, 0.10))


@dataclass
class _Clients:
    """Client population grouped by address family."""

    v4_clients: List[str]
    v6_clients: List[str]

    @property
    def all_clients(self) -> List[str]:
        return self.v4_clients + self.v6_clients


@dataclass
class AllNamesDataset:
    """The generated trace plus the structures behind it."""

    records: List[AllNamesRecord]
    clients: _Clients
    hostnames: List[str]
    sld_policies: Dict[str, SldPolicy]
    duration_s: float

    @property
    def client_ips(self) -> List[str]:
        return self.clients.all_clients

    @property
    def v4_subnet_count(self) -> int:
        return len({c.rsplit(".", 1)[0] for c in self.clients.v4_clients})


def _sld_of(hostname: str) -> str:
    """The two most senior labels (``h.x.site.com.`` → ``site.com.``)."""
    parts = hostname.rstrip(".").split(".")
    return ".".join(parts[-2:]) + "."


class AllNamesBuilder:
    """Builds an :class:`AllNamesDataset`; defaults are calibrated."""

    def __init__(self, scale: float = 1.0, seed: int = 0,
                 duration_s: float = 24 * 3600.0,
                 hostname_count: int = 700,
                 v4_subnet_count: int = 260,
                 v6_subnet_count: int = 80,
                 clients_per_subnet: float = 3.0,
                 total_queries: int = 550_000,
                 zipf_alpha: float = 1.08,
                 client_alpha: float = 0.65,
                 ttl_choices: Sequence[int] = (60, 120, 300, 600),
                 scope_mix: Sequence[Tuple[int, float]] = DEFAULT_SCOPE_MIX):
        if scale <= 0:
            raise ValueError("scale must be positive")
        self.seed = seed
        self.duration_s = duration_s
        self.hostname_count = max(10, round(hostname_count * scale))
        self.v4_subnet_count = max(4, round(v4_subnet_count * scale))
        self.v6_subnet_count = max(1, round(v6_subnet_count * scale))
        self.clients_per_subnet = clients_per_subnet
        self.total_queries = max(100, round(total_queries * scale))
        self.zipf_alpha = zipf_alpha
        self.client_alpha = client_alpha
        self.ttl_choices = tuple(ttl_choices)
        self.scope_mix = tuple(scope_mix)

    def _clients(self, rng: random.Random) -> _Clients:
        v4: List[str] = []
        for i in range(self.v4_subnet_count):
            # Spread /24s across up to 48 /16s so scope-16 responses group
            # a stable number of subnets at any scale.
            prefix = f"100.{64 + (i % 48)}.{i // 48}"
            count = max(1, min(254,
                               int(rng.expovariate(1.0 / self.clients_per_subnet)) + 1))
            for host in rng.sample(range(1, 255), count):
                v4.append(f"{prefix}.{host}")
        v6 = [f"2610:{i % 48:x}:{i // 48:x}::{j:x}"
              for i in range(self.v6_subnet_count) for j in range(1, 3)]
        return _Clients(v4, v6)

    def _policies(self, slds: Sequence[str],
                  rng: random.Random) -> Dict[str, SldPolicy]:
        scopes = [s for s, _ in self.scope_mix]
        weights = [w for _, w in self.scope_mix]
        return {sld: SldPolicy(ttl=rng.choice(list(self.ttl_choices)),
                               scope=rng.choices(scopes, weights=weights, k=1)[0])
                for sld in slds}

    def build(self) -> AllNamesDataset:
        """Generate the trace (deterministic in the builder's seed)."""
        rng = random.Random(self.seed)
        sld_count = max(2, self.hostname_count // 7)
        hostnames = [f"h{i}.s{i % sld_count:05d}.com."
                     for i in range(self.hostname_count)]
        policies = self._policies(sorted({_sld_of(h) for h in hostnames}), rng)
        clients = self._clients(rng)
        all_clients = clients.all_clients
        name_sampler = ZipfSampler(len(hostnames), self.zipf_alpha)
        client_sampler = ZipfSampler(len(all_clients), self.client_alpha)

        records: List[AllNamesRecord] = []
        t = 0.0
        step = self.duration_s / self.total_queries
        for _ in range(self.total_queries):
            t += rng.expovariate(1.0) * step
            hostname = hostnames[name_sampler.sample(rng)]
            policy = policies[_sld_of(hostname)]
            client = all_clients[client_sampler.sample(rng)]
            if ":" in client:
                qtype = 28
                scope = 0 if policy.scope == 0 else 48
            else:
                qtype = 1
                scope = policy.scope
            records.append(AllNamesRecord(t, client, hostname, qtype,
                                          scope, policy.ttl))
        return AllNamesDataset(records, clients, hostnames, policies,
                               self.duration_s)

    # -- sharded generation (repro.engine) ---------------------------------

    _SEED_NS = "allnames"

    def _world(self) -> Tuple[List[str], Dict[str, SldPolicy], _Clients]:
        """Shard-independent structures, seeded only by the root seed.

        Every shard rebuilds the same world (it is tiny next to the query
        stream), so shard workers need no shared state.
        """
        rng = random.Random(world_seed(self.seed, self._SEED_NS))
        sld_count = max(2, self.hostname_count // 7)
        hostnames = [f"h{i}.s{i % sld_count:05d}.com."
                     for i in range(self.hostname_count)]
        policies = self._policies(sorted({_sld_of(h) for h in hostnames}), rng)
        clients = self._clients(rng)
        return hostnames, policies, clients

    def shard_units(self) -> int:
        """The unit universe sharded over: individual queries."""
        return self.total_queries

    #: The query clock only moves forward, so :meth:`iter_shard` yields
    #: in global ts order and streaming writers need no sort pass.
    ITER_SHARD_SORTED = True

    def iter_shard(self, shard_index: int,
                   shard_count: int) -> Iterator[AllNamesRecord]:
        """Generate one shard's queries as a stream (ts-ascending).

        The generator path of :meth:`build_shard`: same records in the
        same order, but one at a time, so out-of-core writers never hold
        a shard's record list.  Shard ``i`` of ``n`` emits the queries
        with global indices in ``shard_bounds(total_queries, n)[i]``,
        starting its clock at the window boundary; its random stream is
        seeded by ``derive_seed(seed, i)`` so output depends only on the
        shard decomposition, never on the worker that ran it.
        """
        hostnames, policies, clients = self._world()
        all_clients = clients.all_clients
        name_sampler = ZipfSampler(len(hostnames), self.zipf_alpha)
        client_sampler = ZipfSampler(len(all_clients), self.client_alpha)
        lo, hi = shard_bounds(self.total_queries, shard_count)[shard_index]

        rng = random.Random(derive_seed(self.seed, shard_index,
                                        self._SEED_NS))
        step = self.duration_s / self.total_queries
        t = lo * step
        for _ in range(lo, hi):
            t += rng.expovariate(1.0) * step
            hostname = hostnames[name_sampler.sample(rng)]
            policy = policies[_sld_of(hostname)]
            client = all_clients[client_sampler.sample(rng)]
            if ":" in client:
                qtype = 28
                scope = 0 if policy.scope == 0 else 48
            else:
                qtype = 1
                scope = policy.scope
            yield AllNamesRecord(t, client, hostname, qtype, scope,
                                 policy.ttl)

    def build_shard(self, shard_index: int,
                    shard_count: int) -> List[AllNamesRecord]:
        """Generate the queries of one shard (a contiguous time window).

        The materialized form of :meth:`iter_shard` — one definition of
        the record stream, two consumption modes.
        """
        return list(self.iter_shard(shard_index, shard_count))

    def assemble(self,
                 shard_records: Sequence[List[AllNamesRecord]]
                 ) -> AllNamesDataset:
        """Order-stable merge of shard outputs into a full dataset."""
        hostnames, policies, clients = self._world()
        records = merge_sorted_records(shard_records)
        return AllNamesDataset(records, clients, hostnames, policies,
                               self.duration_s)
