"""Command-line entry point: ``python -m repro.staticcheck [paths...]``.

Exit status: 0 clean, 1 violations found, 2 usage/configuration error.
The same driver backs the ``repro-ecs lint`` subcommand
(:func:`add_lint_arguments` + :func:`run_from_args` are shared with
:mod:`repro.cli`).

``--graph`` switches to the whole-program pass
(:mod:`repro.staticcheck.graph`): the interprocedural RS2xx rules run on
top of the per-file families, per-file indexing fans out over
``--workers`` pool processes, and ``--cache`` keeps an incremental index
on disk so unchanged files are never re-parsed.  ``--changed`` lints
only files that differ from ``--base`` (plus, under ``--graph``, their
reverse import closure).
"""

from __future__ import annotations

import argparse
import subprocess
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Set, Tuple

from .config import Config, load_config
from .core import all_rule_ids, lint_paths
from .reporters import render

#: Default location of the incremental graph index, relative to CWD.
DEFAULT_CACHE = ".repro-staticcheck-cache.json"


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint option surface to ``parser`` (shared with the CLI)."""
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json", "sarif"),
                        default="text", help="report format")
    parser.add_argument("--select", default=None, metavar="RS001,RS003",
                        help="comma-separated rule IDs to run exclusively")
    parser.add_argument("--ignore", default=None, metavar="RS004",
                        help="comma-separated rule IDs to skip")
    parser.add_argument("--prom", action="append", default=[],
                        metavar="FILE",
                        help="Prometheus exposition file to validate "
                             "(RS100); may repeat")
    parser.add_argument("--config", default=None, metavar="PYPROJECT",
                        help="explicit pyproject.toml (default: nearest "
                             "one above the current directory)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print registered rule IDs and exit")
    parser.add_argument("--graph", action="store_true",
                        help="run the whole-program pass (RS201-RS204) "
                             "on top of the per-file rules")
    parser.add_argument("--workers", type=int, default=1, metavar="N",
                        help="worker processes for --graph indexing "
                             "(default: 1; reports are byte-identical "
                             "at any value)")
    parser.add_argument("--cache", default=DEFAULT_CACHE, metavar="FILE",
                        help="incremental index cache for --graph "
                             f"(default: {DEFAULT_CACHE})")
    parser.add_argument("--no-cache", action="store_true",
                        help="ignore and do not write the --graph cache")
    parser.add_argument("--stats", action="store_true",
                        help="print cache hit/miss counters to stderr "
                             "after a --graph run")
    parser.add_argument("--changed", action="store_true",
                        help="lint only files changed vs --base "
                             "(widened to their reverse import closure "
                             "under --graph)")
    parser.add_argument("--base", default="HEAD", metavar="REF",
                        help="git ref --changed diffs against "
                             "(default: HEAD)")


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="AST-based invariant linter for the ECS reproduction "
                    "(determinism, merge algebra, obs guards, RFC 7871 "
                    "bounds, worker-reachability, pickle safety).")
    add_lint_arguments(parser)
    return parser


def _split_ids(raw: Optional[str]) -> Tuple[str, ...]:
    if not raw:
        return ()
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def _git_lines(args: List[str]) -> Optional[List[str]]:
    try:
        proc = subprocess.run(["git", *args], capture_output=True,
                              text=True, check=True)
    except (OSError, subprocess.CalledProcessError):
        return None
    return [line.strip() for line in proc.stdout.splitlines()
            if line.strip()]


def changed_files(base: str) -> Optional[Set[str]]:
    """Resolved paths of files changed vs ``base`` (plus untracked).

    ``None`` means git itself failed (not a repository, unknown ref) —
    the caller reports a usage error rather than silently linting
    nothing.
    """
    diff = _git_lines(["diff", "--name-only", base, "--"])
    if diff is None:
        return None
    untracked = _git_lines(["ls-files", "--others", "--exclude-standard"])
    top = _git_lines(["rev-parse", "--show-toplevel"])
    root = Path(top[0]) if top else Path.cwd()
    out: Set[str] = set()
    for name in diff + (untracked or []):
        candidate = root / name
        if candidate.is_file():
            out.add(str(candidate.resolve()))
    return out


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run from a parsed namespace; returns the exit code."""
    if args.list_rules:
        for rule_id in all_rule_ids():
            print(rule_id)
        return 0
    try:
        config = load_config(
            explicit=Path(args.config) if args.config else None)
    except (OSError, ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    select = _split_ids(args.select)
    ignore = _split_ids(args.ignore)
    unknown = [rid for rid in (*select, *ignore)
               if rid not in all_rule_ids()]
    if unknown:
        print(f"error: unknown rule id(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    if select or ignore:
        config = Config(select=select or config.select,
                        ignore=tuple(sorted({*config.ignore, *ignore})),
                        exclude=config.exclude,
                        determinism_allow=config.determinism_allow,
                        test_paths=config.test_paths,
                        source=config.source)
    paths: List[str] = list(args.paths or [])
    paths.extend(args.prom)
    if not paths:
        default = Path("src/repro")
        if not default.is_dir():
            print("error: no paths given and ./src/repro does not exist",
                  file=sys.stderr)
            return 2
        paths = [str(default)]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    report_paths: Optional[Set[str]] = None
    if getattr(args, "changed", False):
        changed = changed_files(getattr(args, "base", "HEAD"))
        if changed is None:
            print("error: --changed requires a git checkout and a valid "
                  "--base ref", file=sys.stderr)
            return 2
        report_paths = changed
    if getattr(args, "graph", False):
        return _run_graph(args, config, paths, report_paths)
    if report_paths is not None:
        # Without the graph there is nothing to widen: lint exactly the
        # changed files that fall under the requested paths.
        from .core import iter_lintable_files
        universe = iter_lintable_files(paths, config)
        paths = [str(p) for p in universe
                 if str(p.resolve()) in report_paths]
        if not paths:
            print(render([], 0, args.format))
            return 0
    violations, files_checked = lint_paths(paths, config)
    print(render(violations, files_checked, args.format))
    return 1 if violations else 0


def _run_graph(args: argparse.Namespace, config: Config,
               paths: List[str],
               report_paths: Optional[Set[str]]) -> int:
    from .graph import lint_paths_graph
    if getattr(args, "workers", 1) < 1:
        print("error: --workers must be >= 1", file=sys.stderr)
        return 2
    cache_path = None if getattr(args, "no_cache", False) \
        else getattr(args, "cache", DEFAULT_CACHE)
    resolved_report: Optional[Set[str]] = None
    if report_paths is not None:
        from .core import iter_lintable_files
        universe = iter_lintable_files(paths, config)
        resolved_report = {str(p) for p in universe
                           if str(p.resolve()) in report_paths}
    result = lint_paths_graph(paths, config, workers=args.workers,
                              cache_path=cache_path,
                              report_paths=resolved_report,
                              widen_to_importers=resolved_report
                              is not None)
    print(render(result.violations, result.files_checked, args.format))
    if getattr(args, "stats", False):
        print(result.stats.summary(), file=sys.stderr)
    return 1 if result.violations else 0


def run(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_arg_parser()
    return run_from_args(parser.parse_args(argv))


def main() -> int:
    return run(sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main())
