"""Command-line entry point: ``python -m repro.staticcheck [paths...]``.

Exit status: 0 clean, 1 violations found, 2 usage/configuration error.
The same driver backs the ``repro-ecs lint`` subcommand
(:func:`add_lint_arguments` + :func:`run_from_args` are shared with
:mod:`repro.cli`).
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path
from typing import List, Optional, Sequence, Tuple

from .config import Config, load_config
from .core import all_rule_ids, lint_paths
from .reporters import render


def add_lint_arguments(parser: argparse.ArgumentParser) -> None:
    """Attach the lint option surface to ``parser`` (shared with the CLI)."""
    parser.add_argument("paths", nargs="*", default=None,
                        help="files or directories to lint "
                             "(default: src/repro)")
    parser.add_argument("--format", choices=("text", "json"),
                        default="text", help="report format")
    parser.add_argument("--select", default=None, metavar="RS001,RS003",
                        help="comma-separated rule IDs to run exclusively")
    parser.add_argument("--ignore", default=None, metavar="RS004",
                        help="comma-separated rule IDs to skip")
    parser.add_argument("--prom", action="append", default=[],
                        metavar="FILE",
                        help="Prometheus exposition file to validate "
                             "(RS100); may repeat")
    parser.add_argument("--config", default=None, metavar="PYPROJECT",
                        help="explicit pyproject.toml (default: nearest "
                             "one above the current directory)")
    parser.add_argument("--list-rules", action="store_true",
                        help="print registered rule IDs and exit")


def build_arg_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.staticcheck",
        description="AST-based invariant linter for the ECS reproduction "
                    "(determinism, merge algebra, obs guards, RFC 7871 "
                    "bounds).")
    add_lint_arguments(parser)
    return parser


def _split_ids(raw: Optional[str]) -> Tuple[str, ...]:
    if not raw:
        return ()
    return tuple(part.strip() for part in raw.split(",") if part.strip())


def run_from_args(args: argparse.Namespace) -> int:
    """Execute a lint run from a parsed namespace; returns the exit code."""
    if args.list_rules:
        for rule_id in all_rule_ids():
            print(rule_id)
        return 0
    try:
        config = load_config(
            explicit=Path(args.config) if args.config else None)
    except (OSError, ValueError, RuntimeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    select = _split_ids(args.select)
    ignore = _split_ids(args.ignore)
    unknown = [rid for rid in (*select, *ignore)
               if rid not in all_rule_ids()]
    if unknown:
        print(f"error: unknown rule id(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2
    if select or ignore:
        config = Config(select=select or config.select,
                        ignore=tuple(sorted({*config.ignore, *ignore})),
                        exclude=config.exclude,
                        determinism_allow=config.determinism_allow,
                        test_paths=config.test_paths,
                        source=config.source)
    paths: List[str] = list(args.paths or [])
    paths.extend(args.prom)
    if not paths:
        default = Path("src/repro")
        if not default.is_dir():
            print("error: no paths given and ./src/repro does not exist",
                  file=sys.stderr)
            return 2
        paths = [str(default)]
    missing = [p for p in paths if not Path(p).exists()]
    if missing:
        print(f"error: no such path(s): {', '.join(missing)}",
              file=sys.stderr)
        return 2
    violations, files_checked = lint_paths(paths, config)
    print(render(violations, files_checked, args.format))
    return 1 if violations else 0


def run(argv: Optional[Sequence[str]] = None) -> int:
    parser = build_arg_parser()
    return run_from_args(parser.parse_args(argv))


def main() -> int:
    return run(sys.argv[1:])


if __name__ == "__main__":
    sys.exit(main())
