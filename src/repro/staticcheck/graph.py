"""Whole-program analysis: project index, call graph, incremental cache.

The per-file rules (RS001–RS100) see one module at a time, so a helper
three calls away from a worker entrypoint can reach ambient entropy, or
smuggle an unpicklable object into a :class:`~repro.engine.sharding.ShardSpec`,
without any lint firing.  This module closes that gap:

* :class:`ModuleIndex` — one file's contribution to the program: import
  map, symbol table, per-function call sites (with receiver-type
  inference from annotations and local constructor bindings), ambient
  nondeterminism uses, and the introspection *facts* other layers
  declare for the analyzer (``@worker_entrypoint`` decorations,
  ``BUILDER_REGISTRY`` literals, ``STATICCHECK_PICKLE_BOUNDARIES`` /
  ``STATICCHECK_WORKER_SEEDS`` / ``STATICCHECK_UNPICKLABLE`` tuples).
* :class:`ProjectIndex` — the linked whole: an approximate call graph
  resolved through imports, methods, protocols and the builder/spec
  registries, plus the worker-reachability closure the RS2xx rules run
  over.
* :class:`IndexCache` — an on-disk JSON cache keyed by per-file content
  SHA-256: unchanged files are never re-parsed or re-indexed, a fully
  unchanged project reuses the previous graph-rule report wholesale, and
  closure-cacheable rules (RS202/RS204) re-run only on modules whose
  forward import closure a change touched.
* :func:`lint_paths_graph` — the ``--graph`` driver: per-file indexing
  fans out on the engine's own :class:`~repro.engine.pool.WorkerPool`,
  results merge in sorted path order, and the report is byte-identical
  at any worker count and across cold/warm caches.

Everything here is deterministic: traversals iterate sorted structures,
the cache serializes with sorted keys, and no wall clock, hash salt or
ambient RNG is ever consulted.
"""

from __future__ import annotations

import ast
import hashlib
import json
import os
from dataclasses import dataclass, field
from pathlib import Path
from typing import (Any, Dict, Iterator, List, Optional, Sequence, Set,
                    Tuple)

from ..engine.pool import worker_entrypoint
from .config import Config
from .core import (FileAnalysis, Suppressions, Violation, _selected_ids,
                   all_rule_ids, analyze_source, file_rules, graph_rules,
                   iter_lintable_files, settle_file)
from .rules.determinism import _CLOCK_SOURCES, _ImportMap, dotted_name
from .rules.obsguard import _active_name_aliases, _obs_module_aliases

#: Bump when the on-disk cache layout changes; stale caches reload cold.
CACHE_VERSION = 1

#: The decorator (by canonical dotted name) marking pool dispatch targets.
_ENTRYPOINT_DECORATOR = "repro.engine.pool.worker_entrypoint"

#: Module-level declarations the indexer collects as analyzer facts.
_FACT_TUPLES = ("STATICCHECK_PICKLE_BOUNDARIES",
                "STATICCHECK_WORKER_SEEDS",
                "STATICCHECK_UNPICKLABLE")

#: ``register_builder("name", "module:Class")`` call targets.
_REGISTER_BUILDER = ("repro.engine.sharding.register_builder",
                     "repro.engine.register_builder")


# ---------------------------------------------------------------------------
# Index data model.  Every field is JSON-representable (str/int/bool,
# lists, string-keyed dicts) so the cache round-trips without pickle.


@dataclass
class ArgInfo:
    """One argument at a call site, classified for taint/pickle rules."""

    pos: Optional[int]
    kw: Optional[str]
    kind: str  # "const" | "name" | "lambda" | "genexp" | "other"
    value: Optional[str]  # repr for const, identifier for name
    params: List[str]  # enclosing-function parameters inside the expr

    def to_dict(self) -> Dict[str, Any]:
        return {"pos": self.pos, "kw": self.kw, "kind": self.kind,
                "value": self.value, "params": self.params}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ArgInfo":
        return cls(data["pos"], data["kw"], data["kind"], data["value"],
                   list(data["params"]))


@dataclass
class CallSite:
    """One call expression, with whatever the indexer could resolve locally."""

    line: int
    col: int
    text: Optional[str]  # dotted source text ("spec.bind", "ShardSpec.create")
    recv_type: Optional[str]  # inferred receiver type, dotted class name
    recv_obs: bool  # receiver was bound from a repro.obs ACTIVE slot
    args: List[ArgInfo]

    @property
    def method(self) -> Optional[str]:
        """The attribute being called, for receiver-based resolution."""
        if self.text and "." in self.text:
            return self.text.rsplit(".", 1)[1]
        return None

    def to_dict(self) -> Dict[str, Any]:
        return {"line": self.line, "col": self.col, "text": self.text,
                "recv_type": self.recv_type, "recv_obs": self.recv_obs,
                "args": [a.to_dict() for a in self.args]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "CallSite":
        return cls(data["line"], data["col"], data["text"],
                   data["recv_type"], data["recv_obs"],
                   [ArgInfo.from_dict(a) for a in data["args"]])


@dataclass
class AmbientUse:
    """One ambient nondeterminism source inside a function body."""

    line: int
    col: int
    source: str  # canonical dotted name ("time.time", "random.random", ...)
    category: str  # "random" | "clock" | "hash" | "set-order"

    def to_dict(self) -> Dict[str, Any]:
        return {"line": self.line, "col": self.col, "source": self.source,
                "category": self.category}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "AmbientUse":
        return cls(data["line"], data["col"], data["source"],
                   data["category"])


@dataclass
class FunctionInfo:
    """One function or method, as the graph rules see it."""

    qualname: str  # "f", "C.m", or "<module>" for module-level code
    line: int
    col: int
    params: List[str]
    calls: List[CallSite] = field(default_factory=list)
    ambient: List[AmbientUse] = field(default_factory=list)
    #: Parameters whose value flows into a ``random.Random(...)`` seed.
    rng_seed_params: List[str] = field(default_factory=list)
    #: Local bindings the pickle rule consults: name -> classification
    #: ("lambda" | "nested" | "call:<dotted>" | "obs_active").
    local_binds: Dict[str, str] = field(default_factory=dict)
    #: Line of a ``return`` handing out the raw obs ACTIVE slot, if any.
    returns_obs_active: Optional[int] = None
    is_entrypoint: bool = False

    def to_dict(self) -> Dict[str, Any]:
        return {
            "qualname": self.qualname, "line": self.line, "col": self.col,
            "params": self.params,
            "calls": [c.to_dict() for c in self.calls],
            "ambient": [a.to_dict() for a in self.ambient],
            "rng_seed_params": self.rng_seed_params,
            "local_binds": self.local_binds,
            "returns_obs_active": self.returns_obs_active,
            "is_entrypoint": self.is_entrypoint,
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "FunctionInfo":
        return cls(data["qualname"], data["line"], data["col"],
                   list(data["params"]),
                   [CallSite.from_dict(c) for c in data["calls"]],
                   [AmbientUse.from_dict(a) for a in data["ambient"]],
                   list(data["rng_seed_params"]),
                   dict(data["local_binds"]),
                   data["returns_obs_active"], data["is_entrypoint"])


@dataclass
class ClassInfo:
    """One class definition: bases, methods, merge/protocol facts."""

    name: str
    line: int
    bases: List[str]  # dotted, resolved through the import map where possible
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    is_protocol: bool = False
    merge_methods: List[str] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {"name": self.name, "line": self.line, "bases": self.bases,
                "methods": {name: m.to_dict()
                            for name, m in sorted(self.methods.items())},
                "is_protocol": self.is_protocol,
                "merge_methods": self.merge_methods}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ClassInfo":
        return cls(data["name"], data["line"], list(data["bases"]),
                   {name: FunctionInfo.from_dict(m)
                    for name, m in data["methods"].items()},
                   data["is_protocol"], list(data["merge_methods"]))


@dataclass
class ModuleIndex:
    """Everything the graph layer keeps about one Python file."""

    path: str  # posix path, as linted
    sha: str  # content SHA-256 (the cache key)
    module: str  # dotted module name ("repro.engine.pool")
    #: local name -> "module" or "module:attr" (absolute, relative resolved)
    imports: Dict[str, str] = field(default_factory=dict)
    imported_modules: List[str] = field(default_factory=list)
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: builder name -> "module:Class" (literal dict + register_builder calls)
    builder_registry: Dict[str, str] = field(default_factory=dict)
    #: declared analyzer facts, keyed by declaration name
    facts: Dict[str, List[str]] = field(default_factory=dict)
    #: module-level ``NAME = <obs module>.ACTIVE`` aliases: (name, line)
    obs_slot_aliases: List[Tuple[str, int]] = field(default_factory=list)

    def to_dict(self) -> Dict[str, Any]:
        return {
            "path": self.path, "sha": self.sha, "module": self.module,
            "imports": dict(sorted(self.imports.items())),
            "imported_modules": self.imported_modules,
            "functions": {name: f.to_dict()
                          for name, f in sorted(self.functions.items())},
            "classes": {name: c.to_dict()
                        for name, c in sorted(self.classes.items())},
            "builder_registry": dict(sorted(self.builder_registry.items())),
            "facts": {name: values
                      for name, values in sorted(self.facts.items())},
            "obs_slot_aliases": [list(pair)
                                 for pair in self.obs_slot_aliases],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "ModuleIndex":
        return cls(
            data["path"], data["sha"], data["module"],
            dict(data["imports"]), list(data["imported_modules"]),
            {name: FunctionInfo.from_dict(f)
             for name, f in data["functions"].items()},
            {name: ClassInfo.from_dict(c)
             for name, c in data["classes"].items()},
            dict(data["builder_registry"]),
            {name: list(values) for name, values in data["facts"].items()},
            [(str(name), int(line))
             for name, line in data["obs_slot_aliases"]],
        )


# ---------------------------------------------------------------------------
# Module-name derivation and content hashing.


def file_sha256(source: str) -> str:
    """The cache key for one file's content."""
    return hashlib.sha256(source.encode("utf-8")).hexdigest()


def module_name_for(path: Path) -> str:
    """Dotted module name, walking up while ``__init__.py`` exists.

    Files outside any package index under their stem, so loose scripts
    still participate in the graph (with no cross-file resolution).
    """
    resolved = path.resolve()
    parts = [resolved.stem] if resolved.stem != "__init__" else []
    parent = resolved.parent
    while (parent / "__init__.py").is_file():
        parts.insert(0, parent.name)
        if parent.parent == parent:
            break
        parent = parent.parent
    return ".".join(parts) if parts else resolved.stem


# ---------------------------------------------------------------------------
# The per-file indexer.


_MERGE_METHODS = ("merge", "merge_from", "merge_into", "merge_segments")


def _annotation_dotted(node: Optional[ast.expr]) -> Optional[str]:
    """Dotted text of a simple annotation, unwrapping Optional/| None."""
    if node is None:
        return None
    if isinstance(node, ast.Subscript):
        base = dotted_name(node.slice) if not isinstance(
            node.slice, ast.Tuple) else None
        outer = dotted_name(node.value)
        if outer in ("Optional", "typing.Optional"):
            return base
        return None
    if isinstance(node, ast.BinOp) and isinstance(node.op, ast.BitOr):
        left = _annotation_dotted(node.left)
        right = _annotation_dotted(node.right)
        if left == "None":
            return right
        if right == "None" or right is None:
            return left
        return None
    if isinstance(node, ast.Constant) and isinstance(node.value, str):
        text = node.value.strip()
        return text if text.replace(".", "").isidentifier() else None
    return dotted_name(node)


def _const_tuple(node: ast.expr) -> Optional[List[str]]:
    """The string elements of a literal tuple/list, or ``None``."""
    if not isinstance(node, (ast.Tuple, ast.List)):
        return None
    out: List[str] = []
    for element in node.elts:
        if not (isinstance(element, ast.Constant)
                and isinstance(element.value, str)):
            return None
        out.append(element.value)
    return out


class _FileIndexer:
    """Builds a :class:`ModuleIndex` from one parsed module."""

    def __init__(self, path: str, source: str, tree: ast.Module) -> None:
        self.tree = tree
        self.import_map = _ImportMap(tree)
        self.obs_modules = _obs_module_aliases(tree)
        self.obs_names = _active_name_aliases(tree)
        self.index = ModuleIndex(path=path, sha=file_sha256(source),
                                 module=module_name_for(Path(path)))
        self._collect_imports(tree)

    # -- imports -------------------------------------------------------------

    def _collect_imports(self, tree: ast.Module) -> None:
        index = self.index
        modules: Set[str] = set()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    target = alias.name if alias.asname \
                        else alias.name.split(".")[0]
                    index.imports[local] = target
                    modules.add(alias.name)
            elif isinstance(node, ast.ImportFrom):
                base = self._resolve_from(node)
                if base is None:
                    continue
                modules.add(base)
                for alias in node.names:
                    if alias.name == "*":
                        continue
                    local = alias.asname or alias.name
                    index.imports[local] = f"{base}:{alias.name}"
        index.imported_modules = sorted(modules)

    def _resolve_from(self, node: ast.ImportFrom) -> Optional[str]:
        """Absolute module a ``from ... import`` pulls from (dots resolved)."""
        if node.level == 0:
            return node.module
        parts = self.index.module.split(".")
        # for a regular module a.b.c, level 1 is package a.b; __init__
        # indexes as the package itself, so the same arithmetic holds.
        if len(parts) < node.level:
            return node.module
        base = parts[:len(parts) - node.level]
        if node.module:
            base = base + node.module.split(".")
        return ".".join(base) if base else None

    def canonical(self, dotted: Optional[str]) -> Optional[str]:
        """Absolute dotted path of a local dotted reference, if importable."""
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = self.index.imports.get(head)
        if target is None:
            return None
        target = target.replace(":", ".")
        return f"{target}.{rest}" if rest else target

    # -- the walk ------------------------------------------------------------

    def build(self) -> ModuleIndex:
        module_fn = FunctionInfo(qualname="<module>", line=1, col=0,
                                 params=[])
        for stmt in self.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self.index.functions[stmt.name] = \
                    self._index_function(stmt, stmt.name, None)
            elif isinstance(stmt, ast.ClassDef):
                self._index_class(stmt)
            else:
                self._index_module_stmt(stmt, module_fn)
        self.index.functions["<module>"] = module_fn
        return self.index

    def _index_module_stmt(self, stmt: ast.stmt,
                           module_fn: FunctionInfo) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign)):
            targets = stmt.targets if isinstance(stmt, ast.Assign) \
                else [stmt.target]
            value = stmt.value
            if value is not None and len(targets) == 1 \
                    and isinstance(targets[0], ast.Name):
                self._module_assignment(targets[0].id, value)
        self._scan_body([stmt], module_fn, params=set(),
                        local_binds=module_fn.local_binds)

    def _module_assignment(self, name: str, value: ast.expr) -> None:
        """Collect registry literals, fact tuples, and ACTIVE aliases."""
        index = self.index
        if name == "BUILDER_REGISTRY" and isinstance(value, ast.Dict):
            for key, val in zip(value.keys, value.values):
                if (isinstance(key, ast.Constant)
                        and isinstance(key.value, str)
                        and isinstance(val, ast.Constant)
                        and isinstance(val.value, str)):
                    index.builder_registry[key.value] = val.value
            return
        if name in _FACT_TUPLES:
            values = _const_tuple(value)
            if values is not None:
                index.facts.setdefault(name, []).extend(values)
            return
        if self._is_obs_active(value):
            index.obs_slot_aliases.append((name, value.lineno))

    def _is_obs_active(self, node: ast.expr) -> bool:
        """``<obs module>.ACTIVE`` / ``active()`` / an imported ACTIVE."""
        if isinstance(node, ast.Attribute) and node.attr == "ACTIVE":
            base = dotted_name(node.value)
            return (isinstance(node.value, ast.Name)
                    and node.value.id in self.obs_modules) or (
                        base is not None
                        and base.endswith(("obs.metrics", "obs.trace",
                                           "obs.live")))
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "active":
                return (isinstance(func.value, ast.Name)
                        and func.value.id in self.obs_modules)
            return isinstance(func, ast.Name) and func.id in self.obs_names
        if isinstance(node, ast.Name):
            return node.id in self.obs_names
        return False

    # -- classes -------------------------------------------------------------

    def _index_class(self, node: ast.ClassDef) -> None:
        bases: List[str] = []
        is_protocol = False
        for base in node.bases:
            dotted = dotted_name(base)
            if dotted is None:
                continue
            resolved = self.canonical(dotted) or dotted
            bases.append(resolved)
            if resolved.rsplit(".", 1)[-1] == "Protocol":
                is_protocol = True
        info = ClassInfo(name=node.name, line=node.lineno, bases=bases,
                         is_protocol=is_protocol)
        for stmt in node.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                info.methods[stmt.name] = self._index_function(
                    stmt, f"{node.name}.{stmt.name}", node.name)
                if stmt.name in _MERGE_METHODS:
                    info.merge_methods.append(stmt.name)
        self.index.classes[node.name] = info

    # -- functions -----------------------------------------------------------

    def _index_function(self, node: "ast.FunctionDef | ast.AsyncFunctionDef",
                        qualname: str,
                        class_name: Optional[str]) -> FunctionInfo:
        args = node.args
        params = [a.arg for a in (*args.posonlyargs, *args.args,
                                  *args.kwonlyargs)]
        info = FunctionInfo(qualname=qualname, line=node.lineno,
                            col=node.col_offset, params=params)
        info.is_entrypoint = self._is_entrypoint(node)
        # parameter annotations participate in receiver-type inference
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            dotted = _annotation_dotted(arg.annotation)
            if dotted is not None:
                resolved = self.canonical(dotted) or dotted
                info.local_binds[arg.arg] = f"type:{resolved}"
        self._scan_body(node.body, info, params=set(params),
                        local_binds=info.local_binds)
        return info

    def _is_entrypoint(self,
                       node: "ast.FunctionDef | ast.AsyncFunctionDef"
                       ) -> bool:
        for deco in node.decorator_list:
            target = deco.func if isinstance(deco, ast.Call) else deco
            dotted = dotted_name(target)
            if dotted is None:
                continue
            if (self.canonical(dotted) or dotted) == _ENTRYPOINT_DECORATOR:
                return True
            if dotted.rsplit(".", 1)[-1] == "worker_entrypoint":
                return True
        return False

    def _scan_body(self, body: Sequence[ast.stmt], info: FunctionInfo,
                   params: Set[str], local_binds: Dict[str, str]) -> None:
        """One pass over a body: bindings, calls, ambient uses, returns."""
        for stmt in body:
            for node in ast.walk(stmt):
                if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)) \
                        and node is not stmt:
                    local_binds.setdefault(node.name, "nested")
                elif isinstance(node, ast.Assign) and len(node.targets) == 1 \
                        and isinstance(node.targets[0], ast.Name):
                    self._classify_binding(node.targets[0].id, node.value,
                                           local_binds)
                elif isinstance(node, ast.Call):
                    self._index_call(node, info, params, local_binds)
                    self._index_ambient_call(node, info)
                elif isinstance(node, (ast.For, ast.comprehension)):
                    self._index_set_iteration(node, info)
                elif isinstance(node, ast.Return) and node.value is not None:
                    if self._returns_obs_slot(node.value, local_binds):
                        info.returns_obs_active = node.lineno

    def _classify_binding(self, name: str, value: ast.expr,
                          local_binds: Dict[str, str]) -> None:
        if self._is_obs_active(value):
            local_binds[name] = "obs_active"
            return
        if isinstance(value, ast.Lambda):
            local_binds[name] = "lambda"
            return
        if isinstance(value, ast.GeneratorExp):
            local_binds[name] = "genexp"
            return
        if isinstance(value, ast.Call):
            dotted = dotted_name(value.func)
            if dotted is not None:
                resolved = self.canonical(dotted) or dotted
                local_binds[name] = f"call:{resolved}"

    def _returns_obs_slot(self, value: ast.expr,
                          local_binds: Dict[str, str]) -> bool:
        if self._is_obs_active(value):
            return True
        return (isinstance(value, ast.Name)
                and local_binds.get(value.id) == "obs_active")

    def _index_call(self, node: ast.Call, info: FunctionInfo,
                    params: Set[str], local_binds: Dict[str, str]) -> None:
        text = dotted_name(node.func)
        recv_type: Optional[str] = None
        recv_obs = False
        if isinstance(node.func, ast.Attribute):
            base = node.func.value
            if self._is_obs_active(base):
                recv_obs = True
            elif isinstance(base, ast.Name):
                bind = local_binds.get(base.id)
                if bind == "obs_active":
                    recv_obs = True
                elif bind is not None and bind.startswith(("call:", "type:")):
                    recv_type = bind.split(":", 1)[1]
            elif isinstance(base, ast.Call):
                # chained constructor: Cls(...).method()
                dotted = dotted_name(base.func)
                if dotted is not None:
                    recv_type = self.canonical(dotted) or dotted
        args: List[ArgInfo] = []
        for position, arg in enumerate(node.args):
            if isinstance(arg, ast.Starred):
                continue
            args.append(self._arg_info(arg, position, None, params))
        for keyword in node.keywords:
            if keyword.arg is None:
                continue
            args.append(self._arg_info(keyword.value, None, keyword.arg,
                                       params))
        info.calls.append(CallSite(line=node.lineno, col=node.col_offset,
                                   text=text, recv_type=recv_type,
                                   recv_obs=recv_obs, args=args))

    def _arg_info(self, expr: ast.expr, pos: Optional[int],
                  kw: Optional[str], params: Set[str]) -> ArgInfo:
        inner = sorted({n.id for n in ast.walk(expr)
                        if isinstance(n, ast.Name) and n.id in params})
        if isinstance(expr, ast.Constant):
            return ArgInfo(pos, kw, "const", repr(expr.value), inner)
        if isinstance(expr, ast.Lambda):
            return ArgInfo(pos, kw, "lambda", None, inner)
        if isinstance(expr, ast.GeneratorExp):
            return ArgInfo(pos, kw, "genexp", None, inner)
        if isinstance(expr, ast.Name):
            return ArgInfo(pos, kw, "name", expr.id, inner)
        return ArgInfo(pos, kw, "other", None, inner)

    def _index_ambient_call(self, node: ast.Call,
                            info: FunctionInfo) -> None:
        canonical = self.import_map.canonical(node.func)
        if canonical is not None:
            if canonical.startswith("random.") \
                    and canonical != "random.Random":
                info.ambient.append(AmbientUse(node.lineno, node.col_offset,
                                               canonical, "random"))
            elif canonical in _CLOCK_SOURCES:
                info.ambient.append(AmbientUse(node.lineno, node.col_offset,
                                               canonical, "clock"))
            elif canonical == "random.Random":
                self._index_rng_seed(node, info)
        if isinstance(node.func, ast.Name) and node.func.id == "hash":
            info.ambient.append(AmbientUse(node.lineno, node.col_offset,
                                           "hash", "hash"))

    def _index_rng_seed(self, node: ast.Call, info: FunctionInfo) -> None:
        """Parameters whose value reaches this ``random.Random`` seed."""
        seed_exprs: List[ast.expr] = list(node.args)
        seed_exprs.extend(k.value for k in node.keywords)
        for expr in seed_exprs:
            for name in ast.walk(expr):
                if isinstance(name, ast.Name) and name.id in info.params \
                        and name.id not in info.rng_seed_params:
                    info.rng_seed_params.append(name.id)

    def _index_set_iteration(self, node: "ast.For | ast.comprehension",
                             info: FunctionInfo) -> None:
        iterable = node.iter
        is_set = isinstance(iterable, (ast.Set, ast.SetComp)) or (
            isinstance(iterable, ast.Call)
            and isinstance(iterable.func, ast.Name)
            and iterable.func.id in ("set", "frozenset"))
        if is_set:
            anchor = iterable if isinstance(node, ast.comprehension) else node
            info.ambient.append(AmbientUse(anchor.lineno, anchor.col_offset,
                                           "set-iteration", "set-order"))


def index_source(source: str, path: str) -> ModuleIndex:
    """Index one Python source string (raises ``SyntaxError`` if broken)."""
    tree = ast.parse(source, filename=path)
    return _FileIndexer(path, source, tree).build()


# ---------------------------------------------------------------------------
# The linked project.


@dataclass
class Resolution:
    """One resolved call edge: target function key plus binding shape."""

    target: str  # "module:qualname"
    bound: bool  # receiver-bound call (self param consumed by binding)


class ProjectIndex:
    """All module indexes, linked into symbol tables and a call graph."""

    def __init__(self, modules: Sequence[ModuleIndex],
                 runtime_facts: Optional[Dict[str, List[str]]] = None
                 ) -> None:
        #: posix path -> index, iteration order sorted for determinism
        self.modules: Dict[str, ModuleIndex] = {
            m.path: m for m in sorted(modules, key=lambda m: m.path)}
        self.by_name: Dict[str, ModuleIndex] = {}
        for module in self.modules.values():
            self.by_name.setdefault(module.module, module)
        #: "module:Class" -> (owning index, class info)
        self.classes: Dict[str, Tuple[ModuleIndex, ClassInfo]] = {}
        #: "module:qualname" -> (owning index, function info)
        self.functions: Dict[str, Tuple[ModuleIndex, FunctionInfo]] = {}
        for module in self.modules.values():
            for name, cls in module.classes.items():
                self.classes[f"{module.module}:{name}"] = (module, cls)
                for mname, method in cls.methods.items():
                    self.functions[f"{module.module}:{name}.{mname}"] = \
                        (module, method)
            for name, fn in module.functions.items():
                self.functions[f"{module.module}:{name}"] = (module, fn)
        self.facts: Dict[str, List[str]] = {}
        for module in self.modules.values():
            for fact, values in sorted(module.facts.items()):
                self.facts.setdefault(fact, []).extend(values)
        for fact, values in sorted((runtime_facts or {}).items()):
            self.facts.setdefault(fact, []).extend(values)
        self.builder_registry: Dict[str, str] = {}
        for module in self.modules.values():
            self.builder_registry.update(module.builder_registry)
        self._method_index: Dict[str, List[str]] = {}
        for key, (_, cls) in sorted(self.classes.items()):
            if cls.is_protocol:
                continue
            for mname in sorted(cls.methods):
                self._method_index.setdefault(mname, []).append(
                    f"{key}.{mname}")
        self._edges: Optional[Dict[str, List[Tuple[Resolution,
                                                   CallSite]]]] = None
        self._constructed: Optional[Dict[str, List[Tuple[str,
                                                         CallSite]]]] = None

    # -- symbol resolution ---------------------------------------------------

    def resolve_absolute(self, dotted: str) -> Optional[str]:
        """``a.b.c.f`` -> a project symbol key, by longest module prefix."""
        parts = dotted.split(".")
        for cut in range(len(parts) - 1, 0, -1):
            module = ".".join(parts[:cut])
            index = self.by_name.get(module)
            if index is None:
                continue
            rest = parts[cut:]
            head = rest[0]
            if head in index.classes:
                if len(rest) == 1:
                    return f"{module}:{head}"
                if len(rest) == 2 and rest[1] in index.classes[head].methods:
                    return f"{module}:{head}.{rest[1]}"
                return None
            if len(rest) == 1 and head in index.functions:
                return f"{module}:{head}"
            return None
        return None

    def _canonicalize(self, module: ModuleIndex,
                      dotted: str) -> Optional[str]:
        head, _, rest = dotted.partition(".")
        target = module.imports.get(head)
        if target is None:
            if head in module.classes or head in module.functions:
                absolute = f"{module.module}.{dotted}"
                return self.resolve_absolute(absolute)
            return None
        return self.resolve_absolute(
            target.replace(":", ".") + (f".{rest}" if rest else ""))

    def canonical_text(self, module: ModuleIndex,
                       dotted: Optional[str]) -> Optional[str]:
        """Fully-dotted form of a reference, via the import map alone.

        Unlike :meth:`_canonicalize` this never requires the target
        module to be indexed, so boundary declarations can point at
        modules outside the linted tree (fixture projects matching the
        engine's real boundaries, for example).  The result uses dots
        throughout — compare against ``"mod:Qual"`` keys by normalizing
        the colon away.
        """
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        target = module.imports.get(head)
        if target is None:
            if head in module.classes or head in module.functions:
                return f"{module.module}.{dotted}"
            return None
        base = target.replace(":", ".")
        return f"{base}.{rest}" if rest else base

    def lookup_method(self, class_key: str,
                      method: str) -> Optional[str]:
        """Resolve ``method`` on a class, walking project-local bases."""
        seen: Set[str] = set()
        stack = [class_key]
        while stack:
            key = stack.pop(0)
            if key in seen:
                continue
            seen.add(key)
            entry = self.classes.get(key)
            if entry is None:
                continue
            index, cls = entry
            if method in cls.methods:
                return f"{key}.{method}"
            for base in cls.bases:
                resolved = self._canonicalize(index, base) \
                    or self.resolve_absolute(base)
                if resolved is not None:
                    stack.append(resolved)
        return None

    def resolve_call(self, module: ModuleIndex, fn: FunctionInfo,
                     site: CallSite) -> Tuple[List[Resolution], List[str]]:
        """(call edges, classes constructed) for one call site."""
        edges: List[Resolution] = []
        constructed: List[str] = []
        method = site.method
        if site.text is not None:
            head = site.text.split(".", 1)[0]
            if head in ("self", "cls") and "." in fn.qualname:
                class_key = f"{module.module}:{fn.qualname.split('.')[0]}"
                if method is not None:
                    target = self.lookup_method(class_key, method)
                    if target is not None:
                        edges.append(Resolution(target, bound=True))
                return edges, constructed
            resolved = self._canonicalize(module, site.text)
            if resolved is not None:
                if resolved in self.classes:
                    constructed.append(resolved)
                    init = self.lookup_method(resolved, "__init__")
                    if init is not None:
                        edges.append(Resolution(init, bound=True))
                elif resolved in self.functions:
                    # "Class.method" resolves here too; treat a dotted
                    # text with a resolved class prefix as bound.
                    edges.append(Resolution(
                        resolved, bound="." in resolved.split(":", 1)[1]))
                return edges, constructed
        if method is not None and site.recv_type is not None:
            class_key = self.resolve_absolute(site.recv_type) \
                or self._canonicalize(module, site.recv_type)
            if class_key is not None and class_key in self.classes:
                _, cls = self.classes[class_key]
                if cls.is_protocol:
                    for target in self._method_index.get(method, []):
                        edges.append(Resolution(target, bound=True))
                else:
                    target = self.lookup_method(class_key, method)
                    if target is not None:
                        edges.append(Resolution(target, bound=True))
        return edges, constructed

    # -- the call graph ------------------------------------------------------

    def _link(self) -> None:
        if self._edges is not None:
            return
        self._edges = {}
        self._constructed = {}
        for key in sorted(self.functions):
            module, fn = self.functions[key]
            edge_list: List[Tuple[Resolution, CallSite]] = []
            built: List[Tuple[str, CallSite]] = []
            for site in fn.calls:
                edges, constructed = self.resolve_call(module, fn, site)
                edge_list.extend((edge, site) for edge in edges)
                built.extend((cls, site) for cls in constructed)
            self._edges[key] = edge_list
            self._constructed[key] = built

    def edges(self) -> Dict[str, List[Tuple[Resolution, CallSite]]]:
        self._link()
        assert self._edges is not None
        return self._edges

    def constructed(self) -> Dict[str, List[Tuple[str, CallSite]]]:
        self._link()
        assert self._constructed is not None
        return self._constructed

    def module_of(self, fn_key: str) -> ModuleIndex:
        return self.functions[fn_key][0]

    def is_obs_path(self, path: str) -> bool:
        return "/obs/" in path or path.endswith("/obs.py")

    # -- worker entrypoints and reachability ---------------------------------

    def worker_seeds(self) -> List[str]:
        """Function keys the worker-reachability closure starts from.

        Read from the introspection hooks, never hard-coded names:
        ``@worker_entrypoint`` decorations, every method of every class
        the builder/spec registry points at, and the explicit
        ``STATICCHECK_WORKER_SEEDS`` declarations (``module:Qual.name``).
        """
        seeds: Set[str] = set()
        for key in sorted(self.functions):
            _, fn = self.functions[key]
            if fn.is_entrypoint:
                seeds.add(key)
        builder_paths = set(self.builder_registry.values())
        builder_paths.update(self.facts.get("BUILDER_REGISTRY", []))
        for class_key in sorted(builder_paths):
            entry = self.classes.get(class_key)
            if entry is None:
                continue
            _, cls = entry
            for mname in sorted(cls.methods):
                seeds.add(f"{class_key}.{mname}")
        for declared in sorted(self.facts.get(
                "STATICCHECK_WORKER_SEEDS", [])):
            if declared in self.functions:
                seeds.add(declared)
        return sorted(seeds)

    def worker_reachable(self) -> Tuple[Set[str], Dict[str, str]]:
        """(reachable function keys, first-reach predecessor map).

        Deterministic BFS in sorted order from :meth:`worker_seeds`.
        Traversal never enters ``repro.obs`` modules: the live plane is
        out-of-band by contract and audited by its own rules.
        """
        edges = self.edges()
        parents: Dict[str, str] = {}
        reachable: Set[str] = set()
        queue = list(self.worker_seeds())
        reachable.update(queue)
        while queue:
            current = queue.pop(0)
            neighbors: Set[str] = set()
            for resolution, _ in edges.get(current, []):
                neighbors.add(resolution.target)
            for target in sorted(neighbors):
                if target in reachable:
                    continue
                if self.is_obs_path(self.module_of(target).path):
                    continue
                reachable.add(target)
                parents[target] = current
                queue.append(target)
        return reachable, parents

    def chain_to(self, fn_key: str, parents: Dict[str, str],
                 limit: int = 6) -> str:
        """Render the entrypoint -> ... -> fn chain for a message."""
        chain = [fn_key]
        while chain[-1] in parents and len(chain) < limit:
            chain.append(parents[chain[-1]])
        return " <- ".join(part.split(":", 1)[1] for part in chain)

    # -- import closure (for the incremental cache and --changed) ------------

    def import_closure(self, path: str) -> List[str]:
        """Paths of the module plus everything it transitively imports."""
        start = self.modules.get(path)
        if start is None:
            return [path]
        seen: Set[str] = {start.module}
        queue = [start.module]
        while queue:
            index = self.by_name.get(queue.pop(0))
            if index is None:
                continue
            for imported in index.imported_modules:
                if imported in self.by_name and imported not in seen:
                    seen.add(imported)
                    queue.append(imported)
        return sorted(self.by_name[name].path for name in sorted(seen)
                      if name in self.by_name)

    def reverse_import_closure(self, paths: Set[str]) -> Set[str]:
        """``paths`` plus every module whose import closure touches them."""
        out = set(paths)
        for path in self.modules:
            if path in out:
                continue
            if any(dep in paths for dep in self.import_closure(path)):
                out.add(path)
        return out


# ---------------------------------------------------------------------------
# Runtime introspection of the engine's declared hooks.


def runtime_engine_facts() -> Dict[str, List[str]]:
    """Facts imported from the engine's own declarations.

    The analyzer reads :data:`repro.engine.pool.PICKLE_BOUNDARIES` and
    the builder registry instead of hard-coding the names; projects
    under analysis that cannot import the engine (pure fixtures) simply
    contribute their own ``STATICCHECK_*`` declarations.
    """
    facts: Dict[str, List[str]] = {}
    try:
        from ..engine import pool as engine_pool
        from ..engine import sharding as engine_sharding
    except Exception:  # pragma: no cover - engine always importable here
        return facts
    facts["STATICCHECK_PICKLE_BOUNDARIES"] = \
        list(engine_pool.PICKLE_BOUNDARIES)
    facts["STATICCHECK_WORKER_SEEDS"] = \
        list(engine_pool.WORKER_SEEDS) + list(engine_pool.WORKER_ENTRYPOINTS)
    facts["BUILDER_REGISTRY"] = sorted(
        path for _, path in engine_sharding.registered_builders())
    return facts


# ---------------------------------------------------------------------------
# The incremental cache.


@dataclass
class CacheStats:
    """Hit/miss accounting the acceptance tests assert on (not timing)."""

    files: int = 0
    hits: int = 0
    misses: int = 0
    graph_reused: bool = False
    closure_hits: int = 0
    closure_misses: int = 0

    def summary(self) -> str:
        return (f"cache: {self.hits} hits, {self.misses} misses "
                f"over {self.files} files; graph "
                f"{'reused' if self.graph_reused else 'recomputed'} "
                f"({self.closure_hits} closure hits, "
                f"{self.closure_misses} misses)")


def _config_digest(config: Config,
                   rule_ids: Optional[Sequence[str]]) -> str:
    payload = json.dumps({
        "version": CACHE_VERSION,
        "select": sorted(config.select),
        "ignore": sorted(config.ignore),
        "exclude": sorted(config.exclude),
        "determinism_allow": sorted(config.determinism_allow),
        "test_paths": sorted(config.test_paths),
        "rule_ids": sorted(rule_ids) if rule_ids is not None else None,
        "rules": all_rule_ids(),
    }, sort_keys=True)
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()


class IndexCache:
    """On-disk JSON cache of per-file indexes and graph-rule results."""

    def __init__(self, path: Optional[Path], digest: str) -> None:
        self.path = path
        self.digest = digest
        self.files: Dict[str, Dict[str, Any]] = {}
        self.graph: Dict[str, Any] = {}
        self.closures: Dict[str, Dict[str, Any]] = {}
        if path is not None and path.is_file():
            self._load(path)

    def _load(self, path: Path) -> None:
        try:
            data = json.loads(path.read_text(encoding="utf-8"))
        except (OSError, ValueError):
            return
        if not isinstance(data, dict) \
                or data.get("cache_version") != CACHE_VERSION \
                or data.get("config_digest") != self.digest:
            return  # cold: layout or configuration changed
        self.files = dict(data.get("files", {}))
        self.graph = dict(data.get("graph", {}))
        self.closures = dict(data.get("closures", {}))

    def lookup(self, path: str, sha: str) -> Optional[Dict[str, Any]]:
        entry = self.files.get(path)
        if entry is not None and entry.get("sha") == sha:
            return entry
        return None

    def store(self, path: str, entry: Dict[str, Any]) -> None:
        self.files[path] = entry

    def save(self, live_paths: Set[str]) -> None:
        """Persist (atomically), dropping entries for vanished files."""
        if self.path is None:
            return
        document = {
            "cache_version": CACHE_VERSION,
            "config_digest": self.digest,
            "files": {path: self.files[path]
                      for path in sorted(self.files)
                      if path in live_paths},
            "graph": self.graph,
            "closures": {path: self.closures[path]
                         for path in sorted(self.closures)
                         if path in live_paths},
        }
        tmp = self.path.with_suffix(self.path.suffix + ".tmp")
        self.path.parent.mkdir(parents=True, exist_ok=True)
        tmp.write_text(json.dumps(document, sort_keys=True,
                                  separators=(",", ":")) + "\n",
                       encoding="utf-8")
        os.replace(tmp, self.path)


# ---------------------------------------------------------------------------
# Parallel per-file indexing (dogfooding the engine's WorkerPool).


def _analyze_one(path_str: str, config: Config,
                 rule_ids: Optional[Tuple[str, ...]]) -> Dict[str, Any]:
    """Index + per-file lint one Python file; JSON-ready payload."""
    path = Path(path_str)
    try:
        source = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        violation = Violation(path_str, 1, 0, "RS999", "syntax-error",
                              f"cannot read file: {exc}")
        return {"path": path_str, "sha": "", "broken": True,
                "index": None, "suppressions": Suppressions().to_dict(),
                "violations": [violation.to_dict()]}
    analysis = analyze_source(source, path_str, config, rule_ids)
    payload: Dict[str, Any] = {
        "path": path_str,
        "sha": file_sha256(source),
        "broken": analysis.broken,
        "suppressions": analysis.suppressions.to_dict(),
        "violations": [v.to_dict() for v in analysis.violations],
        "index": None,
    }
    if not analysis.broken:
        payload["index"] = index_source(source, path_str).to_dict()
    return payload


@worker_entrypoint
def _analyze_chunk(paths: Tuple[str, ...], config: Config,
                   rule_ids: Optional[Tuple[str, ...]]
                   ) -> List[Dict[str, Any]]:
    """Pool worker entrypoint: analyze a chunk of files."""
    return [_analyze_one(path, config, rule_ids) for path in paths]


def _analyze_parallel(paths: Sequence[str], config: Config,
                      rule_ids: Optional[Tuple[str, ...]],
                      workers: int) -> List[Dict[str, Any]]:
    """Fan per-file analysis out over a WorkerPool; order-stable merge."""
    if workers <= 1 or len(paths) <= 1:
        return [_analyze_one(path, config, rule_ids) for path in paths]
    from ..engine.pool import WorkerPool
    chunk = max(1, (len(paths) + workers * 4 - 1) // (workers * 4))
    chunks = [tuple(paths[lo:lo + chunk])
              for lo in range(0, len(paths), chunk)]
    with WorkerPool(workers) as pool:
        results = pool.run_batch(
            _analyze_chunk, [(part, config, rule_ids) for part in chunks],
            task="staticcheck-index")
    out: List[Dict[str, Any]] = []
    for part in results:
        out.extend(part)
    return out


# ---------------------------------------------------------------------------
# The --graph driver.


@dataclass
class GraphRunResult:
    """Everything a ``--graph`` run produced."""

    violations: List[Violation]
    files_checked: int
    stats: CacheStats
    project: Optional[ProjectIndex] = None


def _closure_digest(project: ProjectIndex, path: str) -> str:
    pairs = [[dep, project.modules[dep].sha]
             for dep in project.import_closure(path)
             if dep in project.modules]
    return hashlib.sha256(
        json.dumps(pairs, sort_keys=True).encode("utf-8")).hexdigest()


def _graph_violations(project: ProjectIndex, config: Config,
                      active: Set[str], cache: IndexCache,
                      stats: CacheStats) -> List[Violation]:
    """Run the graph rules, reusing cached results where sound."""
    project_digest = hashlib.sha256(json.dumps(
        [[path, index.sha] for path, index
         in sorted(project.modules.items())],
        sort_keys=True).encode("utf-8")).hexdigest()
    selected = [rule for rule in graph_rules() if rule.id in active]
    if cache.graph.get("project_digest") == project_digest:
        stats.graph_reused = True
        stats.closure_hits += len(project.modules)
        return [Violation.from_dict(v)
                for v in cache.graph.get("violations", [])]
    violations: List[Violation] = []
    whole = [rule for rule in selected if not rule.closure_cacheable]
    per_module = [rule for rule in selected if rule.closure_cacheable]
    for rule in whole:
        violations.extend(rule.check_project(project, config))
    fresh_closures: Dict[str, Dict[str, Any]] = {}
    for path in sorted(project.modules):
        digest = _closure_digest(project, path)
        cached = cache.closures.get(path)
        if cached is not None and cached.get("digest") == digest:
            stats.closure_hits += 1
            module_violations = [Violation.from_dict(v)
                                 for v in cached.get("violations", [])]
        else:
            stats.closure_misses += 1
            module_violations = []
            for rule in per_module:
                module_violations.extend(
                    rule.check_module(project, project.modules[path],
                                      config))
            module_violations.sort()
        fresh_closures[path] = {
            "digest": digest,
            "violations": [v.to_dict() for v in module_violations]}
        violations.extend(module_violations)
    cache.closures = fresh_closures
    violations.sort()
    cache.graph = {"project_digest": project_digest,
                   "violations": [v.to_dict() for v in violations]}
    return violations


def lint_paths_graph(paths: Sequence["str | Path"],
                     config: Optional[Config] = None,
                     rule_ids: Optional[Sequence[str]] = None,
                     workers: int = 1,
                     cache_path: Optional["str | Path"] = None,
                     report_paths: Optional[Set[str]] = None,
                     widen_to_importers: bool = False) -> GraphRunResult:
    """Whole-program lint: per-file rules plus the RS2xx graph family.

    ``report_paths`` (posix strings) restricts which files *report*
    violations — ``--changed`` widens a git diff to its import closure
    and passes it here — while indexing still covers every path so the
    graph stays whole-program.  The rendered report is byte-identical
    for any ``workers`` value and across cold/warm caches.
    """
    config = config or Config()
    active = _selected_ids(config)
    if rule_ids is not None:
        active &= set(rule_ids)
    rule_tuple = tuple(sorted(rule_ids)) if rule_ids is not None else None
    files = iter_lintable_files(paths, config)
    py_files = [f for f in files if f.suffix == ".py"]
    other_files = [f for f in files if f.suffix != ".py"]
    stats = CacheStats(files=len(py_files))
    cache = IndexCache(Path(cache_path) if cache_path else None,
                       _config_digest(config, rule_ids))

    # -- per-file pass (cached, parallel) ------------------------------------
    entries: Dict[str, Dict[str, Any]] = {}
    misses: List[str] = []
    for path in py_files:
        path_str = str(path)
        try:
            sha = file_sha256(path.read_text(encoding="utf-8"))
        except (OSError, UnicodeDecodeError):
            sha = ""
        hit = cache.lookup(path_str, sha) if sha else None
        if hit is not None:
            stats.hits += 1
            entries[path_str] = hit
        else:
            misses.append(path_str)
    stats.misses = len(misses)
    for payload in _analyze_parallel(misses, config, rule_tuple, workers):
        entries[payload["path"]] = payload
        cache.store(payload["path"], payload)

    # -- link and run the graph rules ----------------------------------------
    indexes = [ModuleIndex.from_dict(entry["index"])
               for _, entry in sorted(entries.items())
               if entry["index"] is not None]
    project = ProjectIndex(indexes, runtime_facts=runtime_engine_facts())
    if report_paths is not None and widen_to_importers:
        # --changed under --graph: a change can introduce violations in
        # every module that (transitively) imports it, so report on the
        # whole reverse import closure, not just the diff.
        report_paths = project.reverse_import_closure(report_paths)
    graph_violations = _graph_violations(project, config, active, cache,
                                         stats)
    by_path: Dict[str, List[Violation]] = {}
    for violation in graph_violations:
        by_path.setdefault(violation.path, []).append(violation)

    # -- settle suppressions per file ----------------------------------------
    violations: List[Violation] = []
    reported = 0
    for path_str, entry in sorted(entries.items()):
        if report_paths is not None and path_str not in report_paths:
            continue
        reported += 1
        analysis = FileAnalysis(
            path_str,
            [Violation.from_dict(v) for v in entry["violations"]],
            Suppressions.from_dict(entry["suppressions"]),
            broken=bool(entry["broken"]))
        violations.extend(settle_file(analysis, active,
                                      extra=by_path.get(path_str, [])))
    for path in other_files:
        if report_paths is not None and str(path) not in report_paths:
            continue
        reported += 1
        for rule in file_rules():
            if rule.id in active and rule.applies(path):
                violations.extend(rule.check_file(path, config))
    cache.save(live_paths={str(p) for p in py_files})
    return GraphRunResult(sorted(violations), reported, stats, project)
