"""``repro.staticcheck`` — AST-based invariant linting (zero-dependency).

The reproduction's headline claims are *invariants*: shard-count
independence (every RNG seeded and plumbed), byte-identical output with
observability on or off (every obs call guarded), RFC 7871 conformance
(every ECS literal in bounds), and lossless shard merging (every field
folded).  This package machine-checks them on every change instead of
relying on review discipline:

- :mod:`repro.staticcheck.core` — rule registry, per-file AST dispatch,
  ``# repro-lint: disable=RULE`` suppressions with unused-suppression
  detection.
- :mod:`repro.staticcheck.rules` — the domain rules RS001-RS005, the
  non-AST Prometheus exposition rule RS100, and the interprocedural
  family RS201-RS204 (worker-reachability determinism, pickle
  safety, merge reachability, obs-slot escape).
- :mod:`repro.staticcheck.graph` — the whole-program pass behind
  ``--graph``: project index, approximate call graph, incremental
  SHA-256 cache, WorkerPool-parallel indexing.
- :mod:`repro.staticcheck.reporters` — text, schema-stable JSON, and
  SARIF 2.1.0 output.
- :mod:`repro.staticcheck.config` — ``[tool.repro-staticcheck]`` in
  ``pyproject.toml``.

Run it as ``python -m repro.staticcheck src/repro`` or ``repro-ecs lint``;
see ``docs/static-analysis.md`` for the rule catalogue and how to add a
rule.
"""

from __future__ import annotations

from .config import Config, load_config
from .core import (SYNTAX_ID, UNUSED_ID, AstRule, FileRule, GraphRule,
                   LintContext, Violation, all_rule_ids, ast_rules,
                   file_rules, graph_rules, lint_paths, lint_source,
                   register)
from .reporters import (SCHEMA_VERSION, render_json, render_sarif,
                        render_text, violations_to_dict)

__all__ = [
    "AstRule", "Config", "FileRule", "GraphRule", "LintContext",
    "SCHEMA_VERSION", "SYNTAX_ID", "UNUSED_ID", "Violation",
    "all_rule_ids", "ast_rules", "file_rules", "graph_rules",
    "lint_paths", "lint_source", "load_config", "render_json",
    "render_sarif", "render_text", "register", "violations_to_dict",
]
