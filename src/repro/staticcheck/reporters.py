"""Violation reporters: human text, machine-stable JSON, SARIF 2.1.0.

The JSON schema is versioned and pinned by ``tests/test_staticcheck.py``;
bump ``SCHEMA_VERSION`` when changing any key so downstream consumers
(CI annotations, dashboards) can branch on it.  The SARIF document
targets the 2.1.0 schema so CI can upload it via
``github/codeql-action/upload-sarif`` and findings annotate PR diffs.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Sequence, Tuple

from .core import (SYNTAX_ID, UNUSED_ID, Violation, ast_rules, file_rules,
                   graph_rules)

SCHEMA_VERSION = 1

#: Pinned SARIF identity (the upload action validates both).
SARIF_VERSION = "2.1.0"
SARIF_SCHEMA = "https://json.schemastore.org/sarif-2.1.0.json"


def render_text(violations: Sequence[Violation], files_checked: int) -> str:
    """One ``path:line:col: RSnnn [name] message`` line per violation."""
    lines = [violation.render() for violation in violations]
    noun = "file" if files_checked == 1 else "files"
    if violations:
        lines.append(f"{len(violations)} violation"
                     f"{'' if len(violations) == 1 else 's'} "
                     f"in {files_checked} {noun}")
    else:
        lines.append(f"clean: 0 violations in {files_checked} {noun}")
    return "\n".join(lines)


def violations_to_dict(violations: Sequence[Violation],
                       files_checked: int) -> Dict[str, object]:
    """The JSON document as a plain dict (stable keys, sorted output)."""
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
    return {
        "schema_version": SCHEMA_VERSION,
        "files_checked": files_checked,
        "violation_count": len(violations),
        "counts_by_rule": {rid: counts[rid] for rid in sorted(counts)},
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule_id": v.rule_id,
                "rule_name": v.rule_name,
                "message": v.message,
            }
            for v in violations
        ],
    }


def render_json(violations: Sequence[Violation], files_checked: int) -> str:
    return json.dumps(violations_to_dict(violations, files_checked),
                      indent=2, sort_keys=True)


def _rule_catalog() -> List[Tuple[str, str, str]]:
    """Sorted ``(id, name, short description)`` for every known rule.

    The description is the first line of the rule class docstring, so
    SARIF metadata stays in lockstep with the implementation.
    """
    catalog: Dict[str, Tuple[str, str]] = {
        UNUSED_ID: ("unused-suppression",
                    "A repro-lint suppression comment matched nothing."),
        SYNTAX_ID: ("syntax-error", "The file does not parse."),
    }
    rules = (*ast_rules(), *file_rules(), *graph_rules())
    for rule in rules:
        doc = (rule.__class__.__doc__ or "").strip()
        first = doc.splitlines()[0].strip() if doc else rule.name
        catalog[rule.id] = (rule.name, first)
    return [(rid, catalog[rid][0], catalog[rid][1])
            for rid in sorted(catalog)]


def render_sarif(violations: Sequence[Violation],
                 files_checked: int) -> str:
    """The run as a SARIF 2.1.0 document (deterministic, sorted keys)."""
    catalog = _rule_catalog()
    rule_index = {rid: index for index, (rid, _, _) in enumerate(catalog)}
    results = []
    for violation in violations:
        results.append({
            "ruleId": violation.rule_id,
            "ruleIndex": rule_index.get(violation.rule_id, -1),
            "level": "error",
            "message": {"text": violation.message},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {
                        "uri": Path(violation.path).as_posix(),
                        "uriBaseId": "SRCROOT",
                    },
                    "region": {
                        "startLine": max(1, violation.line),
                        "startColumn": violation.col + 1,
                    },
                },
            }],
        })
    document = {
        "$schema": SARIF_SCHEMA,
        "version": SARIF_VERSION,
        "runs": [{
            "tool": {
                "driver": {
                    "name": "repro-staticcheck",
                    "rules": [
                        {
                            "id": rid,
                            "name": name,
                            "shortDescription": {"text": description},
                        }
                        for rid, name, description in catalog
                    ],
                },
            },
            "originalUriBaseIds": {"SRCROOT": {"uri": "file:///"}},
            "results": results,
        }],
    }
    return json.dumps(document, indent=2, sort_keys=True)


def render(violations: List[Violation], files_checked: int,
           fmt: str) -> str:
    if fmt == "json":
        return render_json(violations, files_checked)
    if fmt == "text":
        return render_text(violations, files_checked)
    if fmt == "sarif":
        return render_sarif(violations, files_checked)
    raise ValueError(f"unknown report format {fmt!r}")
