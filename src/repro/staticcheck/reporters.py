"""Violation reporters: human text and machine-stable JSON.

The JSON schema is versioned and pinned by ``tests/test_staticcheck.py``;
bump ``SCHEMA_VERSION`` when changing any key so downstream consumers
(CI annotations, dashboards) can branch on it.
"""

from __future__ import annotations

import json
from typing import Dict, List, Sequence

from .core import Violation

SCHEMA_VERSION = 1


def render_text(violations: Sequence[Violation], files_checked: int) -> str:
    """One ``path:line:col: RSnnn [name] message`` line per violation."""
    lines = [violation.render() for violation in violations]
    noun = "file" if files_checked == 1 else "files"
    if violations:
        lines.append(f"{len(violations)} violation"
                     f"{'' if len(violations) == 1 else 's'} "
                     f"in {files_checked} {noun}")
    else:
        lines.append(f"clean: 0 violations in {files_checked} {noun}")
    return "\n".join(lines)


def violations_to_dict(violations: Sequence[Violation],
                       files_checked: int) -> Dict[str, object]:
    """The JSON document as a plain dict (stable keys, sorted output)."""
    counts: Dict[str, int] = {}
    for violation in violations:
        counts[violation.rule_id] = counts.get(violation.rule_id, 0) + 1
    return {
        "schema_version": SCHEMA_VERSION,
        "files_checked": files_checked,
        "violation_count": len(violations),
        "counts_by_rule": {rid: counts[rid] for rid in sorted(counts)},
        "violations": [
            {
                "path": v.path,
                "line": v.line,
                "col": v.col,
                "rule_id": v.rule_id,
                "rule_name": v.rule_name,
                "message": v.message,
            }
            for v in violations
        ],
    }


def render_json(violations: Sequence[Violation], files_checked: int) -> str:
    return json.dumps(violations_to_dict(violations, files_checked),
                      indent=2, sort_keys=True)


def render(violations: List[Violation], files_checked: int,
           fmt: str) -> str:
    if fmt == "json":
        return render_json(violations, files_checked)
    if fmt == "text":
        return render_text(violations, files_checked)
    raise ValueError(f"unknown report format {fmt!r}")
