"""Rule registry, suppression handling, and the per-file lint driver.

The framework is deliberately tiny: a *rule* is an object with an ``id``
(``RSnnn``), a ``name``, and a ``check`` hook.  AST rules receive a
:class:`LintContext` wrapping one parsed Python file and append
:class:`Violation` records to it; file rules (e.g. the Prometheus
exposition check) receive a path and return violations directly, so
non-Python artifacts ride the same reporting pipeline.

Suppressions are source comments::

    risky_line()  # repro-lint: disable=RS001
    # repro-lint: disable-file=RS002   (anywhere in the file)

A ``disable`` comment silences matching violations *on its own line*; a
``disable-file`` comment silences them for the whole file.  Suppressions
that silence nothing are themselves reported (rule :data:`UNUSED_ID`),
so stale escapes cannot linger after the code they excused is fixed.
"""

from __future__ import annotations

import ast
import io
import re
import tokenize
from dataclasses import dataclass
from pathlib import Path
from typing import Any, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .config import Config

#: Reported when a suppression comment matches no violation.
UNUSED_ID = "RS000"
UNUSED_NAME = "unused-suppression"

#: Reported when a Python file does not parse.
SYNTAX_ID = "RS999"
SYNTAX_NAME = "syntax-error"


@dataclass(frozen=True, order=True)
class Violation:
    """One finding: where, which rule, and what went wrong."""

    path: str
    line: int
    col: int
    rule_id: str
    rule_name: str
    message: str

    def render(self) -> str:
        return (f"{self.path}:{self.line}:{self.col}: "
                f"{self.rule_id} [{self.rule_name}] {self.message}")

    def to_dict(self) -> Dict[str, Any]:
        """JSON-cache form (field order pinned for byte-stable caches)."""
        return {"path": self.path, "line": self.line, "col": self.col,
                "rule_id": self.rule_id, "rule_name": self.rule_name,
                "message": self.message}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Violation":
        return cls(data["path"], data["line"], data["col"],
                   data["rule_id"], data["rule_name"], data["message"])


class LintContext:
    """Everything an AST rule needs about the file under inspection."""

    def __init__(self, path: str, source: str, tree: ast.Module,
                 config: Config) -> None:
        self.path = path
        self.posix_path = Path(path).as_posix()
        self.source = source
        self.tree = tree
        self.config = config
        self.violations: List[Violation] = []

    @property
    def is_test(self) -> bool:
        return self.config.is_test_path(self.posix_path)

    @property
    def allows_clock(self) -> bool:
        return self.config.allows_clock(self.posix_path)

    @property
    def in_obs(self) -> bool:
        """True inside ``repro.obs`` (the layer RS003 protects callers of)."""
        return "/obs/" in self.posix_path or \
            self.posix_path.endswith("/obs.py")

    def report(self, rule: "AstRule", node: ast.AST, message: str) -> None:
        self.violations.append(Violation(
            self.path, getattr(node, "lineno", 1),
            getattr(node, "col_offset", 0), rule.id, rule.name, message))


class AstRule:
    """Base class for rules that walk one parsed Python module."""

    id: str = ""
    name: str = ""

    def check(self, ctx: LintContext) -> None:
        raise NotImplementedError


class FileRule:
    """Base class for rules over non-Python files (matched by suffix)."""

    id: str = ""
    name: str = ""

    def applies(self, path: Path) -> bool:
        raise NotImplementedError

    def check_file(self, path: Path, config: Config) -> List[Violation]:
        raise NotImplementedError


class GraphRule:
    """Base class for whole-program rules over the project index.

    Graph rules run only under ``--graph`` (:mod:`repro.staticcheck.graph`
    builds the index and drives them); they are registered here so the
    selection machinery, ``--list-rules`` and unused-suppression
    accounting treat RS2xx exactly like the per-file families.
    ``closure_cacheable`` marks rules whose findings for a module depend
    only on that module's forward import closure — those re-run only on
    the closure a change touched; the rest re-run whole-program (their
    findings depend on reverse reachability, which any module can alter).
    """

    id: str = ""
    name: str = ""
    closure_cacheable: bool = False

    def check_project(self, project: "object",
                      config: Config) -> List[Violation]:
        raise NotImplementedError

    def check_module(self, project: "object", module: "object",
                     config: Config) -> List[Violation]:
        """Per-module entry for ``closure_cacheable`` rules."""
        raise NotImplementedError


_AST_RULES: Dict[str, AstRule] = {}
_FILE_RULES: Dict[str, FileRule] = {}
_GRAPH_RULES: Dict[str, GraphRule] = {}


def _register_into(registry: Dict[str, Any], rule: Any) -> None:
    existing = registry.get(rule.id)
    if existing is not None and type(existing) is not type(rule):
        raise ValueError(f"rule id {rule.id} registered twice")
    registry[rule.id] = rule


def register(rule: "AstRule | FileRule | GraphRule"
             ) -> "AstRule | FileRule | GraphRule":
    """Add ``rule`` to the registry (idempotent per rule ID)."""
    if not rule.id or not rule.name:
        raise ValueError(f"rule {rule!r} must declare id and name")
    if isinstance(rule, AstRule):
        _register_into(_AST_RULES, rule)
    elif isinstance(rule, GraphRule):
        _register_into(_GRAPH_RULES, rule)
    else:
        _register_into(_FILE_RULES, rule)
    return rule


def ast_rules() -> List[AstRule]:
    _ensure_rules_loaded()
    return [_AST_RULES[rid] for rid in sorted(_AST_RULES)]


def file_rules() -> List[FileRule]:
    _ensure_rules_loaded()
    return [_FILE_RULES[rid] for rid in sorted(_FILE_RULES)]


def graph_rules() -> List[GraphRule]:
    _ensure_rules_loaded()
    return [_GRAPH_RULES[rid] for rid in sorted(_GRAPH_RULES)]


def all_rule_ids() -> List[str]:
    _ensure_rules_loaded()
    return sorted([*_AST_RULES, *_FILE_RULES, *_GRAPH_RULES])


def _ensure_rules_loaded() -> None:
    """Import the rule modules exactly once (they self-register)."""
    from . import rules  # noqa: F401  (import for side effect)


def _selected_ids(config: Config) -> Set[str]:
    ids = set(all_rule_ids())
    if config.select:
        ids &= set(config.select)
    ids -= set(config.ignore)
    return ids


# ---------------------------------------------------------------------------
# suppression comments


_SUPPRESS_RE = re.compile(
    r"repro-lint:\s*(disable(?:-file)?)\s*=\s*([A-Za-z0-9_,\s-]+)")


class Suppressions:
    """Per-file suppression table with use tracking."""

    def __init__(self) -> None:
        #: line -> rule IDs disabled on that line
        self.by_line: Dict[int, Set[str]] = {}
        self.file_level: Set[str] = set()
        #: comment line of each (line-or-0, rule) suppression, for RS000
        self.declared_at: Dict[Tuple[int, str], int] = {}
        self.used: Set[Tuple[int, str]] = set()

    def add(self, comment_line: int, directive: str, rule_ids: Iterable[str]
            ) -> None:
        for rule_id in rule_ids:
            if directive == "disable-file":
                self.file_level.add(rule_id)
                self.declared_at.setdefault((0, rule_id), comment_line)
            else:
                self.by_line.setdefault(comment_line, set()).add(rule_id)
                self.declared_at.setdefault((comment_line, rule_id),
                                            comment_line)

    def suppresses(self, violation: Violation) -> bool:
        """True (and marks the suppression used) when ``violation`` matches."""
        if violation.rule_id in self.by_line.get(violation.line, ()):
            self.used.add((violation.line, violation.rule_id))
            return True
        if violation.rule_id in self.file_level:
            self.used.add((0, violation.rule_id))
            return True
        return False

    def to_dict(self) -> Dict[str, Any]:
        """JSON-cache form; ``used`` is deliberately not persisted (it is
        per-run settlement state, not a property of the file)."""
        return {
            "by_line": {str(line): sorted(ids)
                        for line, ids in sorted(self.by_line.items())},
            "file_level": sorted(self.file_level),
            "declared_at": [[line, rule_id, comment]
                            for (line, rule_id), comment
                            in sorted(self.declared_at.items())],
        }

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "Suppressions":
        table = cls()
        table.by_line = {int(line): set(ids)
                         for line, ids in data["by_line"].items()}
        table.file_level = set(data["file_level"])
        table.declared_at = {(line, rule_id): comment
                             for line, rule_id, comment
                             in data["declared_at"]}
        return table

    def unused(self, active_ids: Set[str]) -> List[Tuple[int, str]]:
        """(comment line, rule id) of suppressions that silenced nothing.

        Suppressions for rules that were not run (deselected or unknown
        but plausibly from another toolchain) are not counted unused —
        except completely unknown IDs, which are always reported so
        typos like ``RS0001`` cannot silently disarm a suppression.
        """
        out: List[Tuple[int, str]] = []
        known = set(all_rule_ids())
        for key, comment_line in sorted(self.declared_at.items()):
            _, rule_id = key
            if key in self.used:
                continue
            if rule_id in known and rule_id not in active_ids:
                continue  # rule deselected this run; keep the suppression
            out.append((comment_line, rule_id))
        return out


def parse_suppressions(source: str) -> Suppressions:
    """Extract ``repro-lint`` comments (tokenize-accurate, string-safe)."""
    table = Suppressions()
    try:
        tokens = tokenize.generate_tokens(io.StringIO(source).readline)
        comments = [(tok.start[0], tok.string) for tok in tokens
                    if tok.type == tokenize.COMMENT]
    except (tokenize.TokenError, SyntaxError, IndentationError):
        comments = [(lineno, "#" + line.split("#", 1)[1])
                    for lineno, line in enumerate(source.splitlines(), 1)
                    if "#" in line]
    for lineno, text in comments:
        match = _SUPPRESS_RE.search(text)
        if match is None:
            continue
        directive = match.group(1)
        ids = [part.strip() for part in match.group(2).split(",")]
        table.add(lineno, directive, [rid for rid in ids if rid])
    return table


# ---------------------------------------------------------------------------
# the per-file driver


@dataclass
class FileAnalysis:
    """One Python file's per-file findings, before suppression settlement.

    ``violations`` are the raw AST-rule findings (RS999 alone on a parse
    failure); ``suppressions`` is the file's directive table, which the
    caller settles *after* any whole-program findings for the same file
    are merged in — that deferral is what lets a ``--graph`` run use one
    suppression both for a per-file and an interprocedural finding
    without RS000 flagging either half unused.
    """

    path: str
    violations: List[Violation]
    suppressions: Suppressions
    broken: bool = False


def analyze_source(source: str, path: str, config: Optional[Config] = None,
                   rule_ids: Optional[Sequence[str]] = None) -> FileAnalysis:
    """Run the AST rules over one source string (no suppression settling)."""
    config = config or Config()
    active = _selected_ids(config)
    if rule_ids is not None:
        active &= set(rule_ids)
    suppressions = parse_suppressions(source)
    try:
        tree = ast.parse(source, filename=path)
    except SyntaxError as exc:
        broken = [Violation(path, exc.lineno or 1, (exc.offset or 1) - 1,
                            SYNTAX_ID, SYNTAX_NAME,
                            f"file does not parse: {exc.msg}")]
        return FileAnalysis(path, broken, Suppressions(), broken=True)
    ctx = LintContext(path, source, tree, config)
    for rule in ast_rules():
        if rule.id in active:
            rule.check(ctx)
    return FileAnalysis(path, ctx.violations, suppressions)


def settle_file(analysis: FileAnalysis, active: Set[str],
                extra: Sequence[Violation] = ()) -> List[Violation]:
    """Apply suppressions to per-file + ``extra`` findings, report RS000.

    ``extra`` carries graph-rule findings attributed to this file; they
    consult the same line/file directives, so one suppression table
    serves both passes and unused-suppression accounting sees the union.
    """
    if analysis.broken:
        return sorted(analysis.violations)
    merged = [*analysis.violations, *extra]
    kept = [v for v in merged if not analysis.suppressions.suppresses(v)]
    for comment_line, rule_id in analysis.suppressions.unused(active):
        kept.append(Violation(
            analysis.path, comment_line, 0, UNUSED_ID, UNUSED_NAME,
            f"suppression for {rule_id} matches no violation; remove it"))
    return sorted(kept)


def lint_source(source: str, path: str, config: Optional[Config] = None,
                rule_ids: Optional[Sequence[str]] = None) -> List[Violation]:
    """Lint one Python source string; returns sorted violations.

    ``rule_ids`` restricts the run (mainly for tests); it composes with
    ``config.select``/``config.ignore``.
    """
    config = config or Config()
    # Graph rules (RS2xx) only run under --graph; a suppression held for
    # them must not count as unused in a plain per-file pass.
    active = _selected_ids(config) - set(_GRAPH_RULES)
    if rule_ids is not None:
        active &= set(rule_ids)
    return settle_file(analyze_source(source, path, config, rule_ids),
                       active)


def _lint_one_file(path: Path, config: Config,
                   rule_ids: Optional[Sequence[str]]) -> List[Violation]:
    if path.suffix == ".py":
        try:
            source = path.read_text(encoding="utf-8")
        except (OSError, UnicodeDecodeError) as exc:
            return [Violation(str(path), 1, 0, SYNTAX_ID, SYNTAX_NAME,
                              f"cannot read file: {exc}")]
        return lint_source(source, str(path), config, rule_ids)
    active = _selected_ids(config)
    if rule_ids is not None:
        active &= set(rule_ids)
    out: List[Violation] = []
    for rule in file_rules():
        if rule.id in active and rule.applies(path):
            out.extend(rule.check_file(path, config))
    return sorted(out)


def iter_lintable_files(paths: Sequence["str | Path"],
                        config: Config) -> List[Path]:
    """Expand ``paths``: directories walk to ``*.py``, files pass through.

    Non-Python files are only linted when named explicitly (or via
    ``--prom``): directory walks stick to Python sources, so a reports
    directory inside a lint root never drags artifacts into the run.
    """
    out: List[Path] = []
    seen: Set[Path] = set()
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            candidates: List[Path] = sorted(path.rglob("*.py"))
        else:
            candidates = [path]
        for candidate in candidates:
            if config.is_excluded(candidate.as_posix()):
                continue
            if candidate not in seen:
                seen.add(candidate)
                out.append(candidate)
    return out


def lint_paths(paths: Sequence["str | Path"],
               config: Optional[Config] = None,
               rule_ids: Optional[Sequence[str]] = None
               ) -> Tuple[List[Violation], int]:
    """Lint files/directories; returns (violations, files checked)."""
    config = config or Config()
    files = iter_lintable_files(paths, config)
    violations: List[Violation] = []
    for path in files:
        violations.extend(_lint_one_file(path, config, rule_ids))
    return sorted(violations), len(files)
