"""Configuration for the invariant linter.

Settings live in ``[tool.repro-staticcheck]`` of ``pyproject.toml``;
everything has a default so the tool also runs config-free.  Keys (all
optional, all lists of strings):

``select``
    Rule IDs to run; empty means every registered rule.
``ignore``
    Rule IDs to drop after selection.
``exclude``
    Posix-path fragments; files whose path contains one are skipped.
``determinism-allow``
    Path fragments where RS001's wall-clock/entropy sources are legal
    (the virtual clock and the out-of-band observability layer).
``test-paths``
    Path fragments treated as test code (RS001/RS005 relax there:
    tests may pin constant seeds and call ``hash()`` freely).

Parsing uses :mod:`tomllib` when available (Python 3.11+); on older
interpreters the defaults apply and an explicit ``--config`` is
rejected, which keeps the package zero-dependency on every supported
version.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Tuple

try:  # Python 3.11+
    import tomllib
except ImportError:  # pragma: no cover - exercised only on <3.11
    tomllib = None  # type: ignore[assignment]

#: RS001 time/entropy sources are allowed here: the virtual clock module
#: owns time by design and ``repro.obs`` is strictly out-of-band.
DEFAULT_DETERMINISM_ALLOW: Tuple[str, ...] = ("net/clock.py", "obs/")

#: Paths treated as test code (constant seeds and ``hash()`` are fine).
DEFAULT_TEST_PATHS: Tuple[str, ...] = ("tests/", "benchmarks/",
                                       "conftest.py", "/test_", "fixtures/")


@dataclass(frozen=True)
class Config:
    """Resolved linter configuration (immutable, hashable)."""

    select: Tuple[str, ...] = ()
    ignore: Tuple[str, ...] = ()
    exclude: Tuple[str, ...] = ()
    determinism_allow: Tuple[str, ...] = DEFAULT_DETERMINISM_ALLOW
    test_paths: Tuple[str, ...] = DEFAULT_TEST_PATHS
    source: Optional[str] = field(default=None, compare=False)

    def is_excluded(self, posix_path: str) -> bool:
        return any(frag in posix_path for frag in self.exclude)

    def is_test_path(self, posix_path: str) -> bool:
        name = posix_path.rsplit("/", 1)[-1]
        return (name.startswith("test_")
                or any(frag in posix_path for frag in self.test_paths))

    def allows_clock(self, posix_path: str) -> bool:
        """True when RS001's time/entropy sources are legal in this file."""
        return any(frag in posix_path for frag in self.determinism_allow)


def _tuple_of_str(section: Dict[str, Any], key: str,
                  default: Tuple[str, ...]) -> Tuple[str, ...]:
    value = section.get(key)
    if value is None:
        return default
    if not isinstance(value, list) or not all(isinstance(v, str)
                                              for v in value):
        raise ValueError(f"[tool.repro-staticcheck] {key} must be a "
                         f"list of strings, got {value!r}")
    return tuple(value)


def config_from_mapping(section: Dict[str, Any],
                        source: Optional[str] = None) -> Config:
    """Build a :class:`Config` from a parsed TOML section."""
    known = {"select", "ignore", "exclude", "determinism-allow",
             "test-paths"}
    unknown = sorted(set(section) - known)
    if unknown:
        raise ValueError(f"unknown [tool.repro-staticcheck] keys: "
                         f"{', '.join(unknown)}")
    return Config(
        select=_tuple_of_str(section, "select", ()),
        ignore=_tuple_of_str(section, "ignore", ()),
        exclude=_tuple_of_str(section, "exclude", ()),
        determinism_allow=_tuple_of_str(section, "determinism-allow",
                                        DEFAULT_DETERMINISM_ALLOW),
        test_paths=_tuple_of_str(section, "test-paths", DEFAULT_TEST_PATHS),
        source=source,
    )


def find_pyproject(start: Path) -> Optional[Path]:
    """The nearest ``pyproject.toml`` at or above ``start``."""
    here = start if start.is_dir() else start.parent
    for candidate in (here, *here.parents):
        pyproject = candidate / "pyproject.toml"
        if pyproject.is_file():
            return pyproject
    return None


def load_config(start: Optional[Path] = None,
                explicit: Optional[Path] = None) -> Config:
    """Load config from ``explicit`` or the nearest ``pyproject.toml``.

    Returns the defaults when no file (or no ``[tool.repro-staticcheck]``
    section) is found, or when :mod:`tomllib` is unavailable and no
    explicit path was demanded.
    """
    pyproject = explicit or find_pyproject(start or Path.cwd())
    if pyproject is None:
        return Config()
    if tomllib is None:  # pragma: no cover - exercised only on <3.11
        if explicit is not None:
            raise RuntimeError("--config requires Python 3.11+ (tomllib)")
        return Config()
    with open(pyproject, "rb") as handle:
        data = tomllib.load(handle)
    section = data.get("tool", {}).get("repro-staticcheck")
    if section is None:
        return Config(source=str(pyproject))
    return config_from_mapping(section, source=str(pyproject))
