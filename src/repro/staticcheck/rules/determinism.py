"""RS001 (determinism) and RS005 (seeded-RNG plumbing).

The reproduction's headline guarantee — identical output for every
``--workers`` value — holds only if no code path consults a source that
varies across runs or processes.  RS001 bans the ambient sources
statically:

- module-level :mod:`random` functions (``random.random()`` et al.)
  share one process-global stream whose state depends on call order
  across shards;
- ``time.time()`` / ``datetime.now()`` / ``os.urandom()`` /
  ``uuid.uuid1/uuid4`` read the wall clock or OS entropy (legal only in
  the virtual clock module and the out-of-band ``repro.obs`` layer);
- builtin ``hash()`` is salted per process (PYTHONHASHSEED), and
  iterating a set directly exposes that salt as an ordering.

RS005 closes the remaining holes: constructing ``random.Random`` with no
argument seeds from OS entropy, a hard-coded constant seed outside tests
silently decouples a stream from the experiment's root seed (it should
flow from a parameter or :mod:`repro.engine.seeding`), and reseeding a
generator in place (``rng.seed(...)``) rebases a stream someone else
derived — the fault-injection layer hands each injector a private
derived stream precisely so nothing ever needs to reseed.
"""

from __future__ import annotations

import ast
from typing import Dict, List, Optional

from ..core import AstRule, LintContext, register

#: Wall-clock / entropy callables, by canonical dotted name.
_CLOCK_SOURCES = {
    "time.time": "wall-clock time",
    "time.time_ns": "wall-clock time",
    "datetime.datetime.now": "wall-clock time",
    "datetime.datetime.utcnow": "wall-clock time",
    "datetime.datetime.today": "wall-clock time",
    "datetime.date.today": "wall-clock time",
    "os.urandom": "OS entropy",
    "uuid.uuid1": "host/time-derived UUIDs",
    "uuid.uuid4": "OS entropy",
}

#: The only attribute of the ``random`` module deterministic code may
#: touch: an owned, explicitly seeded generator instance.
_RANDOM_ALLOWED = {"Random"}


def dotted_name(node: ast.AST) -> Optional[str]:
    """``a.b.c`` for a Name/Attribute chain, else ``None``."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


class _ImportMap:
    """Resolves local names back to canonical stdlib dotted names."""

    def __init__(self, tree: ast.Module) -> None:
        #: local alias -> canonical module path ("random", "datetime"...)
        self.modules: Dict[str, str] = {}
        #: local alias -> canonical function path ("random.random", ...)
        self.functions: Dict[str, str] = {}
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.asname:
                        self.modules[alias.asname] = alias.name
                    else:
                        # "import os.path" binds the top-level name "os"
                        top = alias.name.split(".")[0]
                        self.modules[top] = top
            elif isinstance(node, ast.ImportFrom) and node.module:
                for alias in node.names:
                    local = alias.asname or alias.name
                    self.functions[local] = f"{node.module}.{alias.name}"

    def canonical(self, call_func: ast.AST) -> Optional[str]:
        """Canonical dotted path of a call target, if resolvable."""
        dotted = dotted_name(call_func)
        if dotted is None:
            return None
        head, _, rest = dotted.partition(".")
        if head in self.functions:
            return self.functions[head] + ("." + rest if rest else "")
        if head in self.modules:
            return self.modules[head] + ("." + rest if rest else "")
        return None


def _is_sorted_wrapped(node: ast.AST) -> bool:
    return (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("sorted", "len", "sum", "min", "max",
                                 "frozenset", "set", "any", "all"))


class DeterminismRule(AstRule):
    """RS001 — ban ambient nondeterminism sources."""

    id = "RS001"
    name = "determinism"

    def check(self, ctx: LintContext) -> None:
        imports = _ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                self._check_call(ctx, imports, node)
            elif isinstance(node, (ast.For, ast.comprehension)):
                self._check_iteration(ctx, node)

    def _check_call(self, ctx: LintContext, imports: _ImportMap,
                    node: ast.Call) -> None:
        canonical = imports.canonical(node.func)
        if canonical is not None:
            if (canonical.startswith("random.")
                    and canonical.split(".")[1] not in _RANDOM_ALLOWED):
                ctx.report(self, node,
                           f"{canonical}() uses the process-global random "
                           f"stream; construct a seeded random.Random and "
                           f"pass it explicitly")
                return
            why = _CLOCK_SOURCES.get(canonical)
            if why is not None and not (ctx.allows_clock or ctx.is_test):
                ctx.report(self, node,
                           f"{canonical}() reads {why}; experiment code "
                           f"must use the virtual clock (net/clock.py) or "
                           f"live in the out-of-band obs layer")
                return
        if (isinstance(node.func, ast.Name) and node.func.id == "hash"
                and not ctx.is_test):
            ctx.report(self, node,
                       "builtin hash() is salted per process "
                       "(PYTHONHASHSEED); derive stable keys via hashlib "
                       "or repro.engine.sharding.stable_bucket")

    def _check_iteration(self, ctx: LintContext,
                         node: "ast.For | ast.comprehension") -> None:
        """Flag ``for x in set(...)`` — iteration order leaks hash salt."""
        iterable = node.iter
        if _is_set_expr(iterable) and not ctx.is_test:
            anchor = iterable if isinstance(node, ast.comprehension) else node
            ctx.report(self, anchor,
                       "iterating a set exposes hash-salted ordering; "
                       "wrap it in sorted(...) before iterating")


def _is_set_expr(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (isinstance(node, ast.Call) and isinstance(node.func, ast.Name)
            and node.func.id in ("set", "frozenset")):
        return True
    return False


class SeededRngRule(AstRule):
    """RS005 — every ``random.Random`` must be plumbed a derived seed."""

    id = "RS005"
    name = "seeded-rng"

    def check(self, ctx: LintContext) -> None:
        if ctx.is_test:
            return
        imports = _ImportMap(ctx.tree)
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            canonical = imports.canonical(node.func)
            if (canonical is None and isinstance(node.func, ast.Attribute)
                    and node.func.attr == "seed"):
                # rng.seed(...) — module-level random.seed() is RS001's.
                ctx.report(self, node,
                           "reseeding a generator in place detaches its "
                           "stream from the seed it was derived with; "
                           "construct a fresh random.Random seeded via "
                           "repro.engine.seeding instead")
                continue
            if canonical not in ("random.Random", "random.SystemRandom"):
                continue
            if canonical == "random.SystemRandom":
                ctx.report(self, node,
                           "random.SystemRandom draws OS entropy and can "
                           "never replay; use a seeded random.Random")
                continue
            if not node.args and not node.keywords:
                ctx.report(self, node,
                           "random.Random() with no seed draws OS entropy; "
                           "pass a seed plumbed from the caller or derived "
                           "via repro.engine.seeding")
            elif node.args and isinstance(node.args[0], ast.Constant):
                ctx.report(self, node,
                           f"random.Random({node.args[0].value!r}) pins a "
                           f"constant seed outside tests; the seed must "
                           f"flow from a parameter or engine.seeding so "
                           f"shard streams stay derived from the root seed")


register(DeterminismRule())
register(SeededRngRule())
