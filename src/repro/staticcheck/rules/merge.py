"""RS002 — merge-completeness.

The engine's shard algebra rests on classes whose ``merge``/``merge_from``
methods fold *every* field: :class:`~repro.analysis.cache_sim.ReplayPartial`,
the :class:`~repro.obs.metrics.MetricsRegistry` instruments, and
:class:`~repro.engine.executor.EngineReport` snapshots.  Adding a field
without extending the merge silently drops data only when shards > 1 —
the exact class of bug property tests catch only probabilistically.
``merge_segments`` joins the family for the columnar substrate:
:class:`~repro.datasets.columnar.ColumnarStats` folds per-shard segment
accounting the same way, and a segment-merge that skips a field
under-reports every multi-shard trace.

The rule collects a class's fields (dataclass annotations, plus
``self.x = ...`` assignments in ``__init__`` for plain classes) and
requires every field name to be referenced — as an attribute or as a
constructor keyword — somewhere in the union of the class's merge-family
methods.  Declaration-identity fields that a merge legitimately ignores
get a reviewed inline suppression.
"""

from __future__ import annotations

import ast
from typing import List, Set

from ..core import AstRule, LintContext, register

MERGE_METHODS = ("merge", "merge_from", "merge_into", "merge_segments")


def _is_dataclass(node: ast.ClassDef) -> bool:
    for deco in node.decorator_list:
        target = deco.func if isinstance(deco, ast.Call) else deco
        name = target.attr if isinstance(target, ast.Attribute) else \
            target.id if isinstance(target, ast.Name) else None
        if name == "dataclass":
            return True
    return False


def _annotation_is_classvar(annotation: ast.AST) -> bool:
    text = ast.dump(annotation)
    return "ClassVar" in text


def _dataclass_fields(node: ast.ClassDef) -> List[str]:
    fields: List[str] = []
    for stmt in node.body:
        if (isinstance(stmt, ast.AnnAssign)
                and isinstance(stmt.target, ast.Name)
                and not _annotation_is_classvar(stmt.annotation)):
            fields.append(stmt.target.id)
    return fields


def _init_fields(node: ast.ClassDef) -> List[str]:
    for stmt in node.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            fields: List[str] = []
            for sub in ast.walk(stmt):
                if isinstance(sub, (ast.Assign, ast.AnnAssign)):
                    targets = (sub.targets
                               if isinstance(sub, ast.Assign)
                               else [sub.target])
                    for target in targets:
                        if (isinstance(target, ast.Attribute)
                                and isinstance(target.value, ast.Name)
                                and target.value.id == "self"
                                and target.attr not in fields):
                            fields.append(target.attr)
            return fields
    return []


def _referenced_names(methods: List[ast.FunctionDef]) -> Set[str]:
    """Attribute names and constructor keywords used across the methods."""
    seen: Set[str] = set()
    for method in methods:
        for node in ast.walk(method):
            if isinstance(node, ast.Attribute):
                seen.add(node.attr)
            elif isinstance(node, ast.keyword) and node.arg is not None:
                seen.add(node.arg)
    return seen


class MergeCompletenessRule(AstRule):
    """RS002 — every field of a mergeable class must be merged."""

    id = "RS002"
    name = "merge-completeness"

    def check(self, ctx: LintContext) -> None:
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.ClassDef):
                self._check_class(ctx, node)

    def _check_class(self, ctx: LintContext, node: ast.ClassDef) -> None:
        merge_methods = [stmt for stmt in node.body
                         if isinstance(stmt, ast.FunctionDef)
                         and stmt.name in MERGE_METHODS]
        if not merge_methods:
            return
        if _is_dataclass(node):
            fields = _dataclass_fields(node)
        else:
            fields = _init_fields(node)
        fields = [f for f in fields if not f.startswith("__")]
        if not fields:
            return
        referenced = _referenced_names(merge_methods)
        missing = [f for f in fields if f not in referenced]
        if missing:
            anchor = merge_methods[0]
            ctx.report(self, anchor,
                       f"{node.name}.{anchor.name} never references "
                       f"field(s) {', '.join(missing)}; a field added "
                       f"without a merge clause silently drops data "
                       f"across shards")


register(MergeCompletenessRule())
