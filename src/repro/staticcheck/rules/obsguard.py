"""RS003 — obs-guard.

``repro.obs`` is strictly out-of-band: experiment outputs must be
byte-identical with observability on or off, and a *disabled* collector
must cost one global load per instrumented call site.  Both properties
hold only if every call site follows the guard idiom::

    reg = _obs_metrics.ACTIVE
    if reg is not None:
        reg.counter(...).inc(...)

This rule tracks names bound from the ``ACTIVE`` slot (or the
``active()`` accessor) of :mod:`repro.obs.metrics`,
:mod:`repro.obs.trace` and :mod:`repro.obs.live` (the heartbeat
emitter slot follows the exact same contract) and reports any use of
such a name that is not dominated by an
``is None`` / ``is not None`` check: an early ``if x is None: return``,
an ``if x is not None:`` block, the guarded arm of a conditional
expression, or the tail of an ``x is not None and ...`` BoolOp.  Plain
truthiness (``if reg:``) is deliberately rejected — an empty
``MetricsRegistry`` is falsy (it defines ``__len__``), so a truthiness
guard would drop metrics on the first instrument of a shard.

Modules inside ``repro/obs/`` and test code are exempt; helper functions
that *receive* an already-guarded collector as a parameter are out of
scope (the binding from ``ACTIVE`` is what starts tracking).
"""

from __future__ import annotations

import ast
from typing import List, Optional, Set, Tuple

from ..core import AstRule, LintContext, register

#: Module basenames whose ``ACTIVE``/``active()`` starts tracking.
_OBS_MODULES = ("metrics", "trace", "live")

#: Dotted-suffix forms of the same modules (``repro.obs.live`` etc.).
_OBS_SUFFIXES = ("obs.metrics", "obs.trace", "obs.live")


def _obs_module_aliases(tree: ast.Module) -> Set[str]:
    """Local names that refer to ``repro.obs.metrics`` / ``repro.obs.trace``."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module == "obs" or module.endswith(".obs"):
                for alias in node.names:
                    if alias.name in _OBS_MODULES:
                        aliases.add(alias.asname or alias.name)
            elif module.endswith(_OBS_SUFFIXES):
                pass  # "from repro.obs.metrics import ACTIVE" handled below
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.endswith(_OBS_SUFFIXES) and alias.asname:
                    aliases.add(alias.asname)
    return aliases


def _active_name_aliases(tree: ast.Module) -> Set[str]:
    """Names bound by ``from repro.obs.metrics import ACTIVE [as x]``."""
    aliases: Set[str] = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom):
            module = node.module or ""
            if module.endswith(_OBS_SUFFIXES):
                for alias in node.names:
                    if alias.name in ("ACTIVE", "active"):
                        aliases.add(alias.asname or alias.name)
    return aliases


class _Guards:
    """Names currently proven non-None, plus the tracked-binding set."""

    def __init__(self, tracked: Set[str], guarded: Set[str]) -> None:
        self.tracked = tracked
        self.guarded = guarded

    def child(self, extra_guarded: Optional[Set[str]] = None) -> "_Guards":
        return _Guards(set(self.tracked),
                       set(self.guarded) | (extra_guarded or set()))


def _none_compare(test: ast.AST) -> Optional[Tuple[str, bool]]:
    """``(name, is_none)`` for ``name is None`` / ``name is not None``."""
    if not isinstance(test, ast.Compare) or len(test.ops) != 1:
        return None
    op = test.ops[0]
    if not isinstance(op, (ast.Is, ast.IsNot)):
        return None
    left, right = test.left, test.comparators[0]
    name_node, none_node = (left, right) \
        if isinstance(left, ast.Name) else (right, left)
    if not isinstance(name_node, ast.Name):
        return None
    if not (isinstance(none_node, ast.Constant) and none_node.value is None):
        return None
    return name_node.id, isinstance(op, ast.Is)


def _terminates(body: List[ast.stmt]) -> bool:
    if not body:
        return False
    return isinstance(body[-1], (ast.Return, ast.Raise, ast.Continue,
                                 ast.Break))


class ObsGuardRule(AstRule):
    """RS003 — every ACTIVE-slot use must sit behind a None guard."""

    id = "RS003"
    name = "obs-guard"

    def check(self, ctx: LintContext) -> None:
        if ctx.in_obs or ctx.is_test:
            return
        self._ctx = ctx
        self._module_aliases = _obs_module_aliases(ctx.tree)
        self._active_names = _active_name_aliases(ctx.tree)
        if not self._module_aliases and not self._active_names:
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                self._check_body(node.body,
                                 _Guards(set(), set()))
        # module-level statements can misuse ACTIVE too
        self._check_body(ctx.tree.body, _Guards(set(), set()),
                         skip_defs=True)

    # -- ACTIVE expressions --------------------------------------------------

    def _is_active_expr(self, node: ast.AST) -> bool:
        """True for ``<obs module>.ACTIVE``, ``<obs module>.active()``,
        or a name imported directly from the obs modules."""
        if isinstance(node, ast.Call):
            func = node.func
            if isinstance(func, ast.Attribute) and func.attr == "active":
                return self._is_obs_module(func.value)
            return isinstance(func, ast.Name) \
                and func.id in self._active_names
        if isinstance(node, ast.Attribute) and node.attr == "ACTIVE":
            return self._is_obs_module(node.value)
        if isinstance(node, ast.Name):
            return node.id in self._active_names
        return False

    def _is_obs_module(self, node: ast.AST) -> bool:
        if isinstance(node, ast.Name):
            return node.id in self._module_aliases
        dotted = _dotted(node)
        return dotted is not None and dotted.endswith(_OBS_SUFFIXES)

    # -- statement walk ------------------------------------------------------

    def _check_body(self, body: List[ast.stmt], guards: _Guards,
                    skip_defs: bool = False) -> None:
        for stmt in body:
            if skip_defs and isinstance(stmt, (ast.FunctionDef,
                                               ast.AsyncFunctionDef,
                                               ast.ClassDef)):
                continue
            self._check_stmt(stmt, guards)

    def _check_stmt(self, stmt: ast.stmt, guards: _Guards) -> None:
        if isinstance(stmt, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
            value = stmt.value
            if value is not None:
                targets = stmt.targets if isinstance(stmt, ast.Assign) \
                    else [stmt.target]
                if self._is_active_expr(value) and len(targets) == 1 \
                        and isinstance(targets[0], ast.Name):
                    # a fresh unguarded binding from the ACTIVE slot
                    name = targets[0].id
                    guards.tracked.add(name)
                    guards.guarded.discard(name)
                    return
                self._scan_expr(value, guards)
                for target in targets:
                    if isinstance(target, ast.Name):
                        guards.tracked.discard(target.id)
                        guards.guarded.discard(target.id)
            return
        if isinstance(stmt, ast.If):
            self._check_if(stmt, guards)
            return
        if isinstance(stmt, (ast.For, ast.AsyncFor)):
            self._scan_expr(stmt.iter, guards)
            self._check_body(stmt.body, guards.child())
            self._check_body(stmt.orelse, guards.child())
            return
        if isinstance(stmt, ast.While):
            self._scan_expr(stmt.test, guards)
            self._check_body(stmt.body, guards.child())
            self._check_body(stmt.orelse, guards.child())
            return
        if isinstance(stmt, (ast.With, ast.AsyncWith)):
            for item in stmt.items:
                self._scan_expr(item.context_expr, guards)
            self._check_body(stmt.body, guards.child())
            return
        if isinstance(stmt, ast.Try):
            self._check_body(stmt.body, guards.child())
            for handler in stmt.handlers:
                self._check_body(handler.body, guards.child())
            self._check_body(stmt.orelse, guards.child())
            self._check_body(stmt.finalbody, guards.child())
            return
        if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef,
                             ast.ClassDef)):
            return  # walked separately with fresh state
        for child in ast.iter_child_nodes(stmt):
            if isinstance(child, ast.expr):
                self._scan_expr(child, guards)

    def _check_if(self, stmt: ast.If, guards: _Guards) -> None:
        compare = _none_compare(stmt.test)
        if compare is not None and compare[0] in guards.tracked:
            name, is_none = compare
            if is_none:  # if name is None: ...
                self._check_body(stmt.body, guards.child())
                self._check_body(stmt.orelse, guards.child({name}))
                if _terminates(stmt.body):
                    guards.guarded.add(name)
            else:  # if name is not None: ...
                self._check_body(stmt.body, guards.child({name}))
                self._check_body(stmt.orelse, guards.child())
                if _terminates(stmt.orelse):
                    guards.guarded.add(name)
            return
        if isinstance(stmt.test, ast.BoolOp) \
                and isinstance(stmt.test.op, ast.And):
            # ``if valid and reg is not None:`` — any is-not-None conjunct
            # guards the body (and later conjuncts, left-to-right).
            local = guards.child()
            guarded_names: Set[str] = set()
            for value in stmt.test.values:
                compare = _none_compare(value)
                if compare is not None and not compare[1]:
                    guarded_names.add(compare[0])
                    local.guarded.add(compare[0])
                    continue
                self._scan_expr(value, local)
            self._check_body(stmt.body, guards.child(guarded_names))
            self._check_body(stmt.orelse, guards.child())
            return
        self._scan_expr(stmt.test, guards)
        self._check_body(stmt.body, guards.child())
        self._check_body(stmt.orelse, guards.child())

    # -- expression scan -----------------------------------------------------

    def _scan_expr(self, node: ast.expr, guards: _Guards) -> None:
        """Report unguarded uses of tracked names inside one expression."""
        if isinstance(node, ast.Compare) and _none_compare(node) is not None:
            return  # the guard itself
        if isinstance(node, ast.BoolOp) and isinstance(node.op, ast.And):
            local = guards.child()
            for value in node.values:
                compare = _none_compare(value)
                if compare is not None and not compare[1]:
                    local.guarded.add(compare[0])
                    continue
                self._scan_expr(value, local)
            return
        if isinstance(node, ast.IfExp):
            compare = _none_compare(node.test)
            if compare is not None:
                name, is_none = compare
                guarded_arm = node.orelse if is_none else node.body
                other_arm = node.body if is_none else node.orelse
                self._scan_expr(guarded_arm, guards.child({name}))
                self._scan_expr(other_arm, guards)
                return
            self._scan_expr(node.test, guards)
            self._scan_expr(node.body, guards)
            self._scan_expr(node.orelse, guards)
            return
        if isinstance(node, ast.Attribute) and self._is_active_expr(node):
            return  # bare read of the slot (e.g. into a variable) is fine
        if self._is_direct_active_use(node):
            self._report(node, "repro.obs ACTIVE slot used inline without "
                               "a None guard")
            return
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Load) \
                and node.id in guards.tracked \
                and node.id not in guards.guarded:
            self._report(node, f"{node.id!r} is bound from the repro.obs "
                               f"ACTIVE slot but used without an "
                               f"'is not None' guard")
            return
        for child in ast.iter_child_nodes(node):
            if isinstance(child, ast.expr):
                self._scan_expr(child, guards)
            elif isinstance(child, ast.keyword):
                self._scan_expr(child.value, guards)

    def _is_direct_active_use(self, node: ast.expr) -> bool:
        """``_obs_metrics.ACTIVE.counter(...)`` — attribute on the raw slot."""
        return (isinstance(node, ast.Attribute)
                and self._is_active_expr(node.value))

    def _report(self, node: ast.AST, message: str) -> None:
        self._ctx.report(self, node, message)


def _dotted(node: ast.AST) -> Optional[str]:
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


register(ObsGuardRule())
