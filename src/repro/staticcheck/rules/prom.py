"""RS100 — Prometheus exposition conformance (a non-AST file rule).

Wraps the strict parser from :func:`repro.obs.export.parse_prometheus`
as a registered rule so ``repro lint --prom metrics.prom`` (or naming a
``.prom`` file directly) replaces the standalone
``tools/lint_prometheus.py`` script; the script remains as a thin shim
over :func:`lint_prom_file` for the existing CI obs-smoke job.
"""

from __future__ import annotations

import re
from pathlib import Path
from typing import List, Optional, Tuple

from ..config import Config
from ..core import FileRule, Violation, register

_LINE_RE = re.compile(r"line (\d+):")


def check_prom_text(text: str) -> Tuple[int, int]:
    """(family count, sample count); raises ``ValueError`` when invalid.

    The exporter import is deferred so ``repro.staticcheck`` stays
    importable (and fast) for pure-AST runs that never touch a ``.prom``
    file.
    """
    from ...obs.export import parse_prometheus
    families = parse_prometheus(text)
    samples = sum(len(info["samples"]) for info in families.values())
    return len(families), samples


def lint_prom_summary(path: Path
                      ) -> Tuple[List[Violation],
                                 Optional[Tuple[int, int]]]:
    """One parse of ``path``: (violations, (families, samples) if valid).

    The single home of the grammar check — both the registered rule and
    the ``tools/lint_prometheus.py`` shim call this, so a file is parsed
    exactly once per lint no matter which front end asked.
    """
    try:
        text = path.read_text(encoding="utf-8")
    except (OSError, UnicodeDecodeError) as exc:
        return [Violation(str(path), 1, 0, PromExpositionRule.id,
                          PromExpositionRule.name,
                          f"cannot read exposition file: {exc}")], None
    try:
        counts = check_prom_text(text)
    except ValueError as exc:
        message = str(exc)
        match = _LINE_RE.search(message)
        line = int(match.group(1)) if match else 1
        return [Violation(str(path), line, 0, PromExpositionRule.id,
                          PromExpositionRule.name,
                          f"invalid Prometheus exposition: {message}")], None
    return [], counts


def lint_prom_file(path: Path) -> List[Violation]:
    """Violations (rule RS100) for one Prometheus text-format file."""
    violations, _ = lint_prom_summary(path)
    return violations


class PromExpositionRule(FileRule):
    """RS100 — ``.prom``/``.scrape`` files must parse as Prometheus text.

    ``.scrape`` is the conventional suffix for bodies saved from the
    live ``/metrics`` endpoint (``repro.obs.server``), so CI can curl a
    mid-run scrape to a file and lint it with the same rule that covers
    ``--metrics-out`` exports.
    """

    id = "RS100"
    name = "prom-exposition"

    def applies(self, path: Path) -> bool:
        return path.suffix in (".prom", ".scrape")

    def check_file(self, path: Path, config: Config) -> List[Violation]:
        return lint_prom_file(path)


register(PromExpositionRule())
