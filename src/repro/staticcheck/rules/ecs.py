"""RS004 — ECS conformance (RFC 7871 section 6 bounds, checked statically).

The wire codec in :mod:`repro.dnslib.edns` validates ECS fields at
encode/decode time, but a literal that violates the RFC — a family code
outside {1, 2}, a source or scope prefix length beyond the family's
address width (32 for IPv4, 128 for IPv6) — is a bug the moment it is
written, not the moment it is serialized.  This rule bounds-checks
integer literals flowing into the known ECS constructors:

- ``EcsOption(family, source_prefix_length, scope_prefix_length, addr)``
- ``EcsOption.from_client_address(address, source_prefix_length,
  scope_prefix_length)`` (family inferred from a literal address string)
- ``<option>.response_to(scope_prefix_length)``

Only literals are judged; values computed at runtime are the codec's
job.  Family constants ``ECS_FAMILY_IPV4``/``ECS_FAMILY_IPV6`` resolve
to 1/2 so constant-by-name call sites are still checked exactly.
"""

from __future__ import annotations

import ast
from typing import Optional

from ..core import AstRule, LintContext, register

#: RFC 7871: ADDRESS FAMILY 1 = IPv4 (32-bit), 2 = IPv6 (128-bit).
_FAMILY_BITS = {1: 32, 2: 128}

_FAMILY_CONSTANTS = {"ECS_FAMILY_IPV4": 1, "ECS_FAMILY_IPV6": 2}


def _terminal_name(func: ast.AST) -> Optional[str]:
    if isinstance(func, ast.Attribute):
        return func.attr
    if isinstance(func, ast.Name):
        return func.id
    return None


def _int_literal(node: Optional[ast.AST]) -> Optional[int]:
    if isinstance(node, ast.UnaryOp) and isinstance(node.op, ast.USub):
        inner = _int_literal(node.operand)
        return -inner if inner is not None else None
    if isinstance(node, ast.Constant) and isinstance(node.value, int) \
            and not isinstance(node.value, bool):
        return node.value
    return None


def _family_of(node: Optional[ast.AST]) -> Optional[int]:
    literal = _int_literal(node)
    if literal is not None:
        return literal
    name = _terminal_name(node) if node is not None else None
    if name in _FAMILY_CONSTANTS:
        return _FAMILY_CONSTANTS[name]
    return None


def _arg(node: ast.Call, position: int, keyword: str) -> Optional[ast.AST]:
    for kw in node.keywords:
        if kw.arg == keyword:
            return kw.value
    if len(node.args) > position:
        return node.args[position]
    return None


class EcsConformanceRule(AstRule):
    """RS004 — ECS literals must satisfy RFC 7871 bounds."""

    id = "RS004"
    name = "ecs-conformance"

    def check(self, ctx: LintContext) -> None:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = _terminal_name(node.func)
            if name == "EcsOption":
                self._check_constructor(ctx, node)
            elif name == "from_client_address":
                self._check_from_client(ctx, node)
            elif name == "response_to":
                self._check_prefix(ctx, node, _arg(node, 0,
                                                   "scope_prefix_length"),
                                   "scope prefix length", 128)

    def _check_constructor(self, ctx: LintContext, node: ast.Call) -> None:
        family_node = _arg(node, 0, "family")
        family = _family_of(family_node)
        if family_node is not None and _int_literal(family_node) is not None \
                and family not in _FAMILY_BITS:
            ctx.report(self, node,
                       f"ECS family {family} is not defined by RFC 7871 "
                       f"(1 = IPv4, 2 = IPv6)")
            family = None
        bits = _FAMILY_BITS.get(family, 128) if family is not None else 128
        label = f"for family {family} ({bits}-bit)" if family is not None \
            else "(no ECS family is wider than 128 bits)"
        self._check_prefix(ctx, node, _arg(node, 1, "source_prefix_length"),
                           f"source prefix length {label}", bits)
        self._check_prefix(ctx, node, _arg(node, 2, "scope_prefix_length"),
                           f"scope prefix length {label}", bits)

    def _check_from_client(self, ctx: LintContext, node: ast.Call) -> None:
        address = _arg(node, 0, "address")
        bits = 128
        label = "(no ECS family is wider than 128 bits)"
        if isinstance(address, ast.Constant) \
                and isinstance(address.value, str):
            if ":" in address.value:
                bits, label = 128, "for an IPv6 client (128-bit)"
            else:
                bits, label = 32, "for an IPv4 client (32-bit)"
        self._check_prefix(ctx, node, _arg(node, 1, "source_prefix_length"),
                           f"source prefix length {label}", bits)
        self._check_prefix(ctx, node, _arg(node, 2, "scope_prefix_length"),
                           f"scope prefix length {label}", bits)

    def _check_prefix(self, ctx: LintContext, node: ast.Call,
                      value: Optional[ast.AST], what: str,
                      bits: int) -> None:
        literal = _int_literal(value)
        if literal is None:
            return
        if not 0 <= literal <= bits:
            ctx.report(self, node,
                       f"ECS {what} must be within 0..{bits}, "
                       f"got {literal} (RFC 7871 section 6)")


register(EcsConformanceRule())
