"""RS201/RS203/RS204: worker-reachability rules over the project graph.

These rules run only under ``--graph``.  They consume the
:class:`~repro.staticcheck.graph.ProjectIndex` built by the graph
driver: a call graph resolved through imports, methods, protocols, and
the engine's declared registries (``BUILDER_REGISTRY`` builders,
``@worker_entrypoint`` functions, ``STATICCHECK_WORKER_SEEDS``).

* **RS201 worker-reachability determinism** — the transitive upgrade of
  RS001/RS005.  Everything reachable from a worker entrypoint must stay
  deterministic: an ambient clock read three frames deep breaks replay
  byte-equivalence even when its own file carries a determinism-allow
  waiver, and a constant seed threaded through call arguments into
  ``random.Random`` collapses every shard onto one stream.
* **RS203 cross-module merge-algebra** — RS002 made whole-program: a
  mergeable class constructed in worker context whose merge method no
  caller anywhere ever invokes is a partial that silently drops data at
  the join point.
* **RS204 obs-guard escape** — helpers that *return* or *alias* the obs
  ``ACTIVE`` slot hand callers an unguarded reference, bypassing the
  local ``if slot is not None`` discipline RS003 enforces per file.
"""

from __future__ import annotations

from typing import Dict, List, Set, TYPE_CHECKING

from ..config import Config
from ..core import GraphRule, Violation, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph import ModuleIndex, ProjectIndex

#: Ambient categories RS201 reports per reachable-function context.
#: "clock" escapes per-file RS001 via determinism-allow fragments;
#: the others escape it only inside test paths.
_TEST_ONLY_CATEGORIES = ("random", "hash", "set-order")

_CATEGORY_WHY = {
    "random": "the process-global random stream ignores shard seeds",
    "clock": "wall-clock reads differ across workers and replays",
    "hash": "hash() is salted per process (PYTHONHASHSEED)",
    "set-order": "set iteration order is not deterministic",
}


def _seed_sink_params(project: "ProjectIndex") -> Dict[str, Set[str]]:
    """Fixpoint: parameters that flow (transitively) into an RNG seed.

    A parameter ``p`` of ``f`` is a *seed sink* if ``f`` passes it into
    ``random.Random(...)`` directly, or forwards it into a seed-sink
    parameter of a callee.  Iterates to a fixpoint over the call graph
    in sorted order, so the result is deterministic.
    """
    sinks: Dict[str, Set[str]] = {}
    for key in sorted(project.functions):
        _, fn = project.functions[key]
        if fn.rng_seed_params:
            sinks[key] = set(fn.rng_seed_params)
    edges = project.edges()
    changed = True
    while changed:
        changed = False
        for caller in sorted(project.functions):
            _, fn = project.functions[caller]
            for resolution, site in edges.get(caller, []):
                callee_sinks = sinks.get(resolution.target)
                if not callee_sinks:
                    continue
                _, callee = project.functions[resolution.target]
                for arg in site.args:
                    target_param = _map_param(callee.params, arg.pos,
                                              arg.kw, resolution.bound)
                    if target_param not in callee_sinks:
                        continue
                    for name in arg.params:
                        if name not in sinks.setdefault(caller, set()):
                            sinks[caller].add(name)
                            changed = True
    return sinks


def _map_param(params: List[str], pos: "int | None", kw: "str | None",
               bound: bool) -> "str | None":
    """The callee parameter an argument lands in (approximate)."""
    if kw is not None:
        return kw if kw in params else None
    if pos is None:
        return None
    offset = 1 if bound and params and params[0] in ("self", "cls") else 0
    index = pos + offset
    return params[index] if index < len(params) else None


class WorkerDeterminismRule(GraphRule):
    """RS201: worker-reachable code must be free of ambient entropy."""

    id = "RS201"
    name = "worker-determinism"
    closure_cacheable = False  # depends on reverse reachability

    def check_project(self, project: "ProjectIndex",
                      config: Config) -> List[Violation]:
        violations: List[Violation] = []
        reachable, parents = project.worker_reachable()
        for key in sorted(reachable):
            module, fn = project.functions[key]
            if project.is_obs_path(module.path):
                continue  # the live plane is out-of-band by contract
            allow_clock = config.allows_clock(module.path)
            is_test = config.is_test_path(module.path)
            for use in fn.ambient:
                # Only report what per-file RS001 could not see: sources
                # its waivers silenced in *this* file but which are now
                # known to run inside a worker.
                if use.category == "clock" and not (allow_clock or is_test):
                    continue
                if use.category in _TEST_ONLY_CATEGORIES and not is_test:
                    continue
                chain = project.chain_to(key, parents)
                violations.append(Violation(
                    module.path, use.line, use.col, self.id, self.name,
                    f"{use.source} is reachable from a worker entrypoint "
                    f"(via {chain}); {_CATEGORY_WHY[use.category]} — "
                    f"derive per-shard values from the bound seed instead",
                ))
        violations.extend(self._constant_seeds(project, config, reachable))
        return sorted(violations)

    def _constant_seeds(self, project: "ProjectIndex", config: Config,
                        reachable: Set[str]) -> List[Violation]:
        """Constant seeds threaded through calls into ``random.Random``."""
        sinks = _seed_sink_params(project)
        edges = project.edges()
        violations: List[Violation] = []
        for caller in sorted(reachable):
            module, _ = project.functions[caller]
            if config.is_test_path(module.path) \
                    or project.is_obs_path(module.path):
                continue
            for resolution, site in edges.get(caller, []):
                callee_sinks = sinks.get(resolution.target)
                if not callee_sinks:
                    continue
                _, callee = project.functions[resolution.target]
                for arg in site.args:
                    if arg.kind != "const":
                        continue
                    target_param = _map_param(callee.params, arg.pos,
                                              arg.kw, resolution.bound)
                    if target_param in callee_sinks:
                        short = resolution.target.split(":", 1)[1]
                        violations.append(Violation(
                            module.path, site.line, site.col, self.id,
                            self.name,
                            f"constant seed {arg.value} flows into "
                            f"random.Random via parameter "
                            f"'{target_param}' of {short}; every shard "
                            f"gets the same stream — thread the bound "
                            f"shard seed through instead",
                        ))
        return violations


class MergeReachabilityRule(GraphRule):
    """RS203: worker-built mergeables must be merged somewhere."""

    id = "RS203"
    name = "merge-reachability"
    closure_cacheable = False  # "is it ever merged" is a global property

    def check_project(self, project: "ProjectIndex",
                      config: Config) -> List[Violation]:
        reachable, _ = project.worker_reachable()
        constructed = project.constructed()
        built: Dict[str, int] = {}  # class key -> first construction line
        built_in: Dict[str, str] = {}
        for key in sorted(reachable):
            for class_key, site in constructed.get(key, []):
                if class_key not in built:
                    built[class_key] = site.line
                    built_in[class_key] = key
        merged = self._merged_methods(project)
        violations: List[Violation] = []
        for class_key in sorted(built):
            module, cls = project.classes[class_key]
            if not cls.merge_methods:
                continue
            if config.is_test_path(module.path):
                continue
            if any(m in merged.get(class_key, set())
                   for m in cls.merge_methods):
                continue
            builder = built_in[class_key].split(":", 1)[1]
            violations.append(Violation(
                module.path, cls.line, 0, self.id, self.name,
                f"{cls.name} is constructed in worker context "
                f"(in {builder}) but no caller ever invokes "
                f"{'/'.join(cls.merge_methods)}; shard results will be "
                f"dropped instead of merged — call its merge method on "
                f"the parent's merge path",
            ))
        return sorted(violations)

    def _merged_methods(self, project: "ProjectIndex"
                        ) -> Dict[str, Set[str]]:
        """class key -> merge-method names the project actually calls.

        Resolution is conservative: a call that resolves to the method
        counts, and so does any *unresolved* attribute call with a
        matching merge-method name (we cannot prove it is not this
        class's merge).
        """
        merge_names: Set[str] = set()
        for _, cls in project.classes.values():
            merge_names.update(cls.merge_methods)
        merged: Dict[str, Set[str]] = {}
        unresolved_names: Set[str] = set()
        edges = project.edges()
        for caller in sorted(project.functions):
            module, fn = project.functions[caller]
            resolved_lines = {(res.target, site.line)
                              for res, site in edges.get(caller, [])}
            for res, _ in edges.get(caller, []):
                target_module, _, qual = res.target.partition(":")
                if "." in qual:
                    class_name, method = qual.rsplit(".", 1)
                    if method in merge_names:
                        merged.setdefault(
                            f"{target_module}:{class_name}",
                            set()).add(method)
            for site in fn.calls:
                method = site.method
                if method in merge_names and not any(
                        line == site.line and target.endswith(f".{method}")
                        for target, line in resolved_lines):
                    unresolved_names.add(method)
        if unresolved_names:
            for class_key in sorted(project.classes):
                _, cls = project.classes[class_key]
                for name in cls.merge_methods:
                    if name in unresolved_names:
                        merged.setdefault(class_key, set()).add(name)
        return merged


class ObsEscapeRule(GraphRule):
    """RS204: no returning or module-aliasing the obs ACTIVE slot."""

    id = "RS204"
    name = "obs-escape"
    closure_cacheable = True  # purely local to each module

    def check_project(self, project: "ProjectIndex",
                      config: Config) -> List[Violation]:
        violations: List[Violation] = []
        for path in sorted(project.modules):
            violations.extend(self.check_module(
                project, project.modules[path], config))
        return sorted(violations)

    def check_module(self, project: "ProjectIndex",
                     module: "ModuleIndex",
                     config: Config) -> List[Violation]:
        if project.is_obs_path(module.path) \
                or config.is_test_path(module.path):
            return []
        violations: List[Violation] = []
        for name, line in module.obs_slot_aliases:
            violations.append(Violation(
                module.path, line, 0, self.id, self.name,
                f"module-level alias '{name}' captures the obs ACTIVE "
                f"slot at import time; it goes stale when the slot is "
                f"re-activated and bypasses RS003 guard tracking — read "
                f"the slot inside the function that uses it",
            ))
        for qualname in sorted(module.functions):
            fn = module.functions[qualname]
            if fn.returns_obs_active is not None:
                violations.append(Violation(
                    module.path, fn.returns_obs_active, 0, self.id,
                    self.name,
                    f"{qualname} returns the raw obs ACTIVE slot; "
                    f"callers receive an unguarded alias that escapes "
                    f"RS003's local None-guard — have callers take the "
                    f"slot themselves and guard it locally",
                ))
        for class_name in sorted(module.classes):
            cls = module.classes[class_name]
            for method_name in sorted(cls.methods):
                fn = cls.methods[method_name]
                if fn.returns_obs_active is not None:
                    violations.append(Violation(
                        module.path, fn.returns_obs_active, 0, self.id,
                        self.name,
                        f"{fn.qualname} returns the raw obs ACTIVE "
                        f"slot; callers receive an unguarded alias that "
                        f"escapes RS003's local None-guard — have "
                        f"callers take the slot themselves and guard it "
                        f"locally",
                    ))
        return sorted(violations)


register(WorkerDeterminismRule())
register(MergeReachabilityRule())
register(ObsEscapeRule())
