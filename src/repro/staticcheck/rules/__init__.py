"""Domain rules for the invariant linter.

Importing this package registers every rule with
:mod:`repro.staticcheck.core`:

========  ====================  ==============================================
ID        name                  invariant
========  ====================  ==============================================
RS001     determinism           no wall-clock/entropy/hash-order sources
RS002     merge-completeness    merge methods fold every field
RS003     obs-guard             obs calls guarded on the ACTIVE slot
RS004     ecs-conformance       ECS literals within RFC 7871 bounds
RS005     seeded-rng            every ``random.Random`` is plumbed a seed
RS100     prom-exposition       ``.prom`` files parse as strict Prometheus
========  ====================  ==============================================

(RS000 unused-suppression and RS999 syntax-error live in the core.)
"""

from __future__ import annotations

from . import determinism, ecs, merge, obsguard, prom  # noqa: F401

__all__ = ["determinism", "ecs", "merge", "obsguard", "prom"]
