"""Domain rules for the invariant linter.

Importing this package registers every rule with
:mod:`repro.staticcheck.core`:

========  ====================  ==============================================
ID        name                  invariant
========  ====================  ==============================================
RS001     determinism           no wall-clock/entropy/hash-order sources
RS002     merge-completeness    merge methods fold every field
RS003     obs-guard             obs calls guarded on the ACTIVE slot
RS004     ecs-conformance       ECS literals within RFC 7871 bounds
RS005     seeded-rng            every ``random.Random`` is plumbed a seed
RS100     prom-exposition       ``.prom`` files parse as strict Prometheus
RS201     worker-determinism    worker-reachable code free of ambient entropy
RS202     pickle-safety         nothing unpicklable crosses a spec boundary
RS203     merge-reachability    worker-built mergeables merged somewhere
RS204     obs-escape            the obs ACTIVE slot never returned or aliased
========  ====================  ==============================================

(RS000 unused-suppression and RS999 syntax-error live in the core.  The
RS2xx family is interprocedural: those rules run only under ``--graph``,
over the project index built by :mod:`repro.staticcheck.graph`.)
"""

from __future__ import annotations

from . import (determinism, ecs, merge, obsguard,  # noqa: F401
               pickle_safety, prom, reachability)

__all__ = ["determinism", "ecs", "merge", "obsguard", "pickle_safety",
           "prom", "reachability"]
