"""RS202: pickle-safety at the engine's spec/header/side-channel edges.

Spec dispatch keeps worker payloads O(1) only because everything that
crosses a process boundary — :class:`~repro.engine.sharding.ShardSpec`
kwargs, the ``encode_header`` shared tuple, the ``QueueEmitter`` side
channel — must survive ``pickle.dumps``.  A lambda, a nested closure, a
lock, a socket, or an mmap-backed store handle in any of those positions
fails at dispatch time (or, worse, only on the one code path that
crosses the boundary under load).

The analyzer never hard-codes the boundary list.  It reads the engine's
own declarations — :data:`repro.engine.pool.PICKLE_BOUNDARIES` at
runtime, plus any ``STATICCHECK_PICKLE_BOUNDARIES`` tuples found while
indexing — so fixtures and future subsystems can declare their own
edges.  Each entry is ``"module:Qual"`` naming a function, method, or
class (constructor), optionally suffixed ``"#kw1,kw2"`` to restrict the
check to the arguments that are actually pickled (e.g. ``run_sharded``
pickles ``shard_args`` and ``shared`` but not ``count_of``).
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..config import Config
from ..core import GraphRule, Violation, register

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..graph import ArgInfo, CallSite, ModuleIndex, ProjectIndex

#: Constructors whose instances never pickle (canonical dotted names).
_UNPICKLABLE_CTORS = frozenset({
    "threading.Lock", "threading.RLock", "threading.Condition",
    "threading.Semaphore", "threading.BoundedSemaphore",
    "threading.Event", "threading.local",
    "multiprocessing.Lock", "multiprocessing.RLock",
    "socket.socket", "socket.create_connection",
    "mmap.mmap", "open", "io.open", "sqlite3.connect",
})

_BIND_REASON = {
    "lambda": "a lambda (not picklable)",
    "nested": "a function defined inside a function (not picklable)",
    "genexp": "a generator (not picklable)",
    "obs_active": "a live emitter from the obs ACTIVE slot "
                  "(holds queues/sockets; workers get their own via "
                  "the pool initializer)",
}


def _parse_boundary(entry: str) -> Tuple[str, Optional[Set[str]]]:
    """``"module:Qual#kw1,kw2"`` -> (symbol key, arg filter or None)."""
    symbol, _, filt = entry.partition("#")
    if not filt:
        return symbol, None
    return symbol, {part for part in filt.split(",") if part}


class PickleSafetyRule(GraphRule):
    """RS202: nothing unpicklable may flow into a declared boundary."""

    id = "RS202"
    name = "pickle-safety"
    closure_cacheable = True  # resolution needs only the forward closure

    def check_project(self, project: "ProjectIndex",
                      config: Config) -> List[Violation]:
        violations: List[Violation] = []
        for path in sorted(project.modules):
            violations.extend(self.check_module(
                project, project.modules[path], config))
        return sorted(violations)

    def check_module(self, project: "ProjectIndex",
                     module: "ModuleIndex",
                     config: Config) -> List[Violation]:
        if config.is_test_path(module.path):
            return []
        boundaries: Dict[str, Optional[Set[str]]] = {}
        dotted_boundaries: Dict[str, Tuple[str, Optional[Set[str]]]] = {}
        boundary_methods: Dict[str, Optional[Set[str]]] = {}
        for entry in sorted(set(project.facts.get(
                "STATICCHECK_PICKLE_BOUNDARIES", []))):
            symbol, arg_filter = _parse_boundary(entry)
            boundaries[symbol] = arg_filter
            dotted_boundaries[symbol.replace(":", ".")] = (symbol,
                                                           arg_filter)
            _, _, qual = symbol.partition(":")
            if "." in qual:
                boundary_methods[qual.rsplit(".", 1)[1]] = arg_filter
        unpicklable_classes = {
            entry.replace(":", ".")
            for entry in project.facts.get("STATICCHECK_UNPICKLABLE", [])}
        violations: List[Violation] = []
        functions = dict(module.functions)
        for cls in module.classes.values():
            for method in cls.methods.values():
                functions[method.qualname] = method
        for qualname in sorted(functions):
            fn = functions[qualname]
            for site in fn.calls:
                match = self._match_boundary(project, module, fn, site,
                                             boundaries,
                                             dotted_boundaries,
                                             boundary_methods)
                if match is None:
                    continue
                symbol, arg_filter = match
                violations.extend(self._check_args(
                    project, module, fn, site, symbol, arg_filter,
                    unpicklable_classes))
        return sorted(violations)

    def _match_boundary(self, project: "ProjectIndex",
                        module: "ModuleIndex", fn: "object",
                        site: "CallSite",
                        boundaries: Dict[str, Optional[Set[str]]],
                        dotted_boundaries: Dict[
                            str, Tuple[str, Optional[Set[str]]]],
                        boundary_methods: Dict[str, Optional[Set[str]]]
                        ) -> Optional[Tuple[str, Optional[Set[str]]]]:
        """The boundary this call site crosses, if any."""
        resolutions, constructed = project.resolve_call(
            module, fn, site)  # type: ignore[arg-type]
        for class_key in constructed:
            if class_key in boundaries:
                return class_key, boundaries[class_key]
        for resolution in resolutions:
            if resolution.target in boundaries:
                return resolution.target, boundaries[resolution.target]
        # Textual fallback: boundary modules need not be indexed (a
        # fixture project calling the real engine's ShardSpec.create).
        dotted = project.canonical_text(module, site.text)
        if dotted is not None and dotted in dotted_boundaries:
            return dotted_boundaries[dotted]
        method = site.method
        if site.recv_obs and method is not None \
                and method in boundary_methods:
            return f"<obs emitter>.{method}", boundary_methods[method]
        return None

    def _check_args(self, project: "ProjectIndex",
                    module: "ModuleIndex", fn: "object",
                    site: "CallSite", symbol: str,
                    arg_filter: Optional[Set[str]],
                    unpicklable_classes: Set[str]) -> List[Violation]:
        target_params = self._target_params(project, symbol)
        violations: List[Violation] = []
        short = symbol.split(":", 1)[1] if ":" in symbol else symbol
        for arg in site.args:
            if arg_filter is not None:
                landed = arg.kw
                if landed is None and arg.pos is not None \
                        and target_params is not None:
                    index = arg.pos + target_params[1]
                    names = target_params[0]
                    landed = names[index] if index < len(names) else None
                if landed not in arg_filter:
                    continue
            reason = self._unpicklable_reason(module, fn, arg,
                                              unpicklable_classes)
            if reason is None:
                continue
            where = f"argument '{arg.kw}'" if arg.kw is not None \
                else f"argument {arg.pos}"
            violations.append(Violation(
                module.path, site.line, site.col, self.id, self.name,
                f"{where} of {short} is {reason}; this value crosses a "
                f"pickle boundary — pass a module-level function or "
                f"plain data and rebuild handles inside the worker",
            ))
        return violations

    def _target_params(self, project: "ProjectIndex", symbol: str
                       ) -> Optional[Tuple[List[str], int]]:
        """(param names, positional offset) for mapping filtered args."""
        entry = project.functions.get(symbol)
        if entry is None:
            return None
        _, fn = entry
        offset = 1 if fn.params and fn.params[0] in ("self", "cls") else 0
        return fn.params, offset

    def _unpicklable_reason(self, module: "ModuleIndex", fn: "object",
                            arg: "ArgInfo",
                            unpicklable_classes: Set[str]
                            ) -> Optional[str]:
        if arg.kind in ("lambda", "genexp"):
            return _BIND_REASON[arg.kind]
        if arg.kind != "name" or arg.value is None:
            return None
        bind = getattr(fn, "local_binds", {}).get(arg.value)
        if bind is None:
            return None
        if bind in _BIND_REASON:
            return f"bound to {_BIND_REASON[bind]}"
        if bind.startswith(("call:", "type:")):
            dotted = bind.split(":", 1)[1]
            if dotted in _UNPICKLABLE_CTORS:
                return (f"bound to a {dotted} instance "
                        f"(holds OS state; not picklable)")
            if dotted in unpicklable_classes:
                return (f"bound to a {dotted} handle "
                        f"(declared unpicklable; reopen it inside the "
                        f"worker instead)")
        return None


register(PickleSafetyRule())
