"""repro — a reproduction of "A Look at the ECS Behavior of DNS Resolvers".

(Al-Dalky, Rabinovich, Schomp; ACM IMC 2019.)

The library is organized bottom-up:

* :mod:`repro.dnslib` — a from-scratch DNS substrate (names, records,
  messages, full wire codec, EDNS0 and the RFC 7871 ECS option);
* :mod:`repro.net` — the simulated Internet (virtual time, geography and an
  EdgeScape-like geolocation DB, an RTT model, a datagram fabric that
  round-trips every message through the wire codec);
* :mod:`repro.core` — the ECS machinery the paper studies: scope-keyed
  caching with every observed deviation, probing policies, and the
  behavior classifiers;
* :mod:`repro.resolvers` / :mod:`repro.auth` — recursive resolvers,
  forwarders, hidden resolvers, an anycast public DNS service, CDN
  authoritative servers with ECS whitelisting and proximity mapping, the
  scan-experiment server, and a CNAME-flattening provider;
* :mod:`repro.measure` — the measurement tooling (IPv4 scanner, dig-like
  client, the section 6.3 caching prober, an Atlas-like probe platform);
* :mod:`repro.datasets` — generators for the paper's four datasets at any
  scale, with ground truth attached;
* :mod:`repro.analysis` — one analysis per paper section, each emitting the
  corresponding table or figure as data.

Quickstart::

    from repro import EcsOption, Message, Name, RecordType
    query = Message.make_query(Name.from_text("www.example.com"),
                               RecordType.A,
                               ecs=EcsOption.from_client_address("192.0.2.7"))
"""

from . import analysis, auth, core, datasets, dnslib, measure, net, resolvers
from .core import (EcsCache, EcsPolicy, ProbingStrategy, ScopeMode,
                   classify_caching, classify_probing)
from .dnslib import (EcsOption, Message, Name, Question, Rcode, RecordType,
                     ResourceRecord, Zone, decode_message, encode_message)
from .net import Network, SimClock, Topology
from .resolvers import Forwarder, PublicDnsService, RecursiveResolver

__version__ = "1.0.0"

__all__ = [
    "EcsCache", "EcsOption", "EcsPolicy", "Forwarder", "Message", "Name",
    "Network", "ProbingStrategy", "PublicDnsService", "Question", "Rcode",
    "RecordType", "RecursiveResolver", "ResourceRecord", "ScopeMode",
    "SimClock", "Topology", "Zone", "analysis", "auth", "classify_caching",
    "classify_probing", "core", "datasets", "decode_message", "dnslib",
    "encode_message", "measure", "net", "resolvers", "__version__",
]
