"""CNAME flattening at an authoritative DNS provider (section 8.4).

The DNS standard forbids a CNAME at a zone apex, so providers "flatten": on
a query for the apex they resolve the CDN-assigned name themselves on the
backend and return the final A records.  The pitfall the paper demonstrates
is that the backend resolution is performed *from the provider's own
vantage point*, typically without forwarding the client's ECS data — so the
CDN maps the user to an edge near the **DNS provider**, not near the user.

:class:`FlatteningProvider` models both the careless (no ECS on the backend
query — the measured real-world behavior) and the careful variant (ECS
forwarded), so the Fig 8 case study can quantify the penalty and verify the
suggested mitigation.
"""

from __future__ import annotations

from typing import List, Optional

from ..dnslib import (CNAME, EcsOption, Message, Name, Rcode, RecordType,
                      ResourceRecord)
from ..net.transport import Network
from .server import DnsServer


class FlatteningProvider(DnsServer):
    """Authoritative for a customer zone, onboarded to a CDN.

    * apex A query → backend-resolve ``apex_target`` at the CDN and return
      the flattened A records;
    * ``www`` A query → a regular CNAME to ``www_target`` (the resolver
      chases it to the CDN itself, carrying its own ECS).
    """

    span_name = "authoritative"

    def __init__(self, ip: str, zone_apex: Name, cdn_auth_ip: str,
                 apex_target: Name, www_target: Name,
                 forward_ecs: bool = False, ttl: int = 60):
        super().__init__(ip)
        self.zone_apex = zone_apex
        self.www_name = zone_apex.child("www")
        self.cdn_auth_ip = cdn_auth_ip
        self.apex_target = apex_target
        self.www_target = www_target
        self.forward_ecs = forward_ecs
        self.ttl = ttl
        self.backend_queries = 0

    def _flatten(self, qtype: RecordType, incoming_ecs: Optional[EcsOption],
                 net: Network) -> List[ResourceRecord]:
        """Resolve the CDN name on the backend, as the provider."""
        backend_ecs = incoming_ecs if self.forward_ecs else None
        backend_query = Message.make_query(
            self.apex_target, qtype,
            msg_id=(self.backend_queries + 1) & 0xFFFF,
            ecs=backend_ecs)
        self.backend_queries += 1
        outcome = net.query(self.ip, self.cdn_auth_ip, backend_query)
        if outcome.response is None:
            return []
        return [ResourceRecord(self.zone_apex, rr.rdtype, min(rr.ttl, self.ttl),
                               rr.rdata)
                for rr in outcome.response.answers if rr.rdtype == qtype]

    def handle_query(self, query: Message, src_ip: str,
                     net: Network) -> Optional[Message]:
        response = query.make_response()
        response.authoritative = True
        if query.question is None:
            response.rcode = Rcode.FORMERR
            return response
        qname, qtype = query.question.qname, query.question.qtype
        if not qname.is_subdomain_of(self.zone_apex):
            response.rcode = Rcode.REFUSED
            return response

        if qname == self.zone_apex and qtype in (RecordType.A, RecordType.AAAA):
            answers = self._flatten(qtype, query.ecs(), net)
            if not answers:
                response.rcode = Rcode.SERVFAIL
            response.answers = answers
            # The flattened answer hides the CDN involvement entirely; no
            # ECS is echoed (the provider did not use the client's subnet).
            return response

        if qname == self.www_name and qtype in (RecordType.A, RecordType.AAAA):
            response.answers.append(ResourceRecord(
                qname, RecordType.CNAME, self.ttl, CNAME(self.www_target)))
            return response

        response.rcode = Rcode.NXDOMAIN
        return response
