"""The authors' experimental authoritative nameserver (Scan dataset).

Implements the scan methodology of section 4: hostnames encode the IPv4
address being probed (so the server can associate the *ingress* resolver a
query was sent to with the *egress* resolver that finally contacted the
authoritative server), every name under the experiment domain resolves, and
ECS queries are answered with scope ``source − 4`` while non-ECS queries get
no ECS option, per the RFC.
"""

from __future__ import annotations

import ipaddress
import re
from dataclasses import dataclass
from typing import List, Optional

from ..dnslib import (A, Message, Name, Rcode, RecordType, ResourceRecord)
from ..net.transport import Network
from .server import DnsServer, source_minus

_PROBE_LABEL = re.compile(r"^ip-(\d+)-(\d+)-(\d+)-(\d+)$")


def encode_probe_name(probe_ip: str, domain: Name, nonce: str = "") -> Name:
    """The qname used to probe ``probe_ip`` (section 4's technique from
    Dagon et al.): ``ip-a-b-c-d[.nonce].<domain>``.

    ``nonce`` makes trial names unique so cached answers from one trial
    cannot contaminate another (section 6.3's methodology).
    """
    addr = ipaddress.IPv4Address(probe_ip)
    label = "ip-" + "-".join(str(b) for b in addr.packed)
    name = domain.child(nonce).child(label) if nonce else domain.child(label)
    return name


def decode_probe_name(qname: Name, domain: Name) -> Optional[str]:
    """Recover the probed ingress IP from a scan qname, or ``None``."""
    if not qname.is_subdomain_of(domain) or len(qname) <= len(domain):
        return None
    first = qname.labels[0].decode("ascii", "replace")
    match = _PROBE_LABEL.match(first)
    if not match:
        return None
    octets = [int(g) for g in match.groups()]
    if any(o > 255 for o in octets):
        return None
    return ".".join(str(o) for o in octets)


@dataclass
class ScanObservation:
    """One scan-relevant arrival: which ingress was probed, which egress
    showed up, and what ECS (if any) it attached."""

    ts: float
    ingress_ip: Optional[str]
    egress_ip: str
    qname: str
    has_ecs: bool
    ecs_address: Optional[str]
    ecs_source_len: Optional[int]


class ScanExperimentServer(DnsServer):
    """Authoritative for the experiment domain; answers everything."""

    span_name = "authoritative"

    def __init__(self, ip: str, domain: Name, answer_address: str,
                 ttl: int = 60, scope_delta: int = 4):
        super().__init__(ip)
        self.domain = domain
        self.answer_address = answer_address
        self.ttl = ttl
        self.scope_policy = source_minus(scope_delta)
        self.observations: List[ScanObservation] = []

    def handle_query(self, query: Message, src_ip: str,
                     net: Network) -> Optional[Message]:
        response = query.make_response()
        response.authoritative = True
        if query.question is None:
            response.rcode = Rcode.FORMERR
            return response
        qname = query.question.qname
        if not qname.is_subdomain_of(self.domain):
            response.rcode = Rcode.REFUSED
            return response

        ecs = query.ecs()
        self.observations.append(ScanObservation(
            ts=net.clock.now(),
            ingress_ip=decode_probe_name(qname, self.domain),
            egress_ip=src_ip,
            qname=qname.to_text(),
            has_ecs=ecs is not None,
            ecs_address=str(ecs.address) if ecs else None,
            ecs_source_len=ecs.source_prefix_length if ecs else None,
        ))

        if query.question.qtype == RecordType.A:
            response.answers.append(ResourceRecord(
                qname, RecordType.A, self.ttl, A(self.answer_address)))
        if ecs is not None and response.edns is not None:
            response.set_ecs(ecs.response_to(self.scope_policy(ecs)))
        return response
