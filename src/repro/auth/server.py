"""Generic authoritative DNS server.

Serves static :class:`~repro.dnslib.zone.Zone` data over the simulated
transport, with configurable ECS behavior (no support, or echo with a fixed
scope function) and a query log in the shape the classifiers and dataset
builders consume.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence

from ..dnslib import (DnsError, EcsOption, Message, Name, Rcode, RecordType,
                      WireFormatError, Zone, decode_message, encode_message)
from ..net.transport import Network
from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs_trace


@dataclass
class AuthLogRecord:
    """One query as logged by an authoritative server.

    Field names intentionally match
    :class:`repro.core.classify.QueryObservation` so log records feed the
    classifiers directly.
    """

    ts: float
    src_ip: str
    qname: str
    qtype: int
    has_ecs: bool
    ecs_address: Optional[str] = None
    ecs_source_len: Optional[int] = None
    ecs_scope_sent: Optional[int] = None
    rcode: int = 0


#: Signature for a scope policy: (query ECS) -> scope prefix length to return.
ScopeFunction = Callable[[EcsOption], int]


def fixed_scope(bits: int) -> ScopeFunction:
    """A scope policy that always returns ``bits`` (capped at the source)."""

    def policy(ecs: EcsOption) -> int:
        return min(bits, ecs.source_prefix_length)

    return policy


def source_minus(delta: int) -> ScopeFunction:
    """The scan experiment's policy: scope = max(source − delta, 0)."""

    def policy(ecs: EcsOption) -> int:
        return max(ecs.source_prefix_length - delta, 0)

    return policy


class DnsServer:
    """Base class: wire decode → ``handle_query`` → wire encode, plus a log."""

    #: Span name this endpoint contributes to a query-lifecycle trace;
    #: subclasses override it to their role (``resolve``, ``forward``,
    #: ``authoritative``) so traces read as client → chain → origin.
    span_name = "serve"

    def __init__(self, ip: str, log_queries: bool = True):
        self.ip = ip
        self.log_queries = log_queries
        self.log: List[AuthLogRecord] = []
        self.queries_received = 0

    # -- transport hook ------------------------------------------------------

    def handle_datagram(self, wire: bytes, src_ip: str,
                        net: Network, tcp: bool = False) -> Optional[bytes]:
        self.queries_received += 1
        try:
            query = decode_message(wire)
        except WireFormatError:
            return None
        tracer = _obs_trace.ACTIVE
        if tracer is None:
            response = self._respond(query, src_ip, net)
        else:
            with tracer.span(self.span_name, server=self.ip,
                             role=type(self).__name__, client=src_ip,
                             tcp=tcp) as span:
                if query.question is not None:
                    span.attrs["qname"] = query.question.qname.to_text()
                    span.attrs["qtype"] = int(query.question.qtype)
                ecs_in = query.ecs()
                if ecs_in is not None:
                    span.attrs["ecs_address"] = str(ecs_in.address)
                    span.attrs["ecs_source_len"] = ecs_in.source_prefix_length
                response = self._respond(query, src_ip, net)
                if response is not None:
                    span.attrs["rcode"] = int(response.rcode)
                    ecs_out = response.ecs()
                    if ecs_out is not None:
                        span.attrs["ecs_scope_out"] = \
                            ecs_out.scope_prefix_length
        reg = _obs_metrics.ACTIVE
        if reg is not None:
            reg.counter("repro_server_queries_total",
                        "Queries received, by endpoint role.",
                        ("role",)).inc(1, type(self).__name__)
        if response is None:
            return None
        self._log(query, response, src_ip, net)
        response_wire = encode_message(response)
        if not tcp:
            limit = 512 if query.edns is None else query.edns.payload_size
            if len(response_wire) > limit:
                # UDP size exceeded: answer with an empty TC=1 response so
                # the client retries over TCP (RFC 1035 section 4.2.1).
                truncated = query.make_response()
                truncated.rcode = response.rcode
                truncated.truncated = True
                response_wire = encode_message(truncated)
        return response_wire

    def _respond(self, query: Message, src_ip: str,
                 net: Network) -> Optional[Message]:
        """``handle_query`` with the shared SERVFAIL-on-error behavior."""
        try:
            return self.handle_query(query, src_ip, net)
        except DnsError:
            response = query.make_response()
            response.rcode = Rcode.SERVFAIL
            return response

    def _log(self, query: Message, response: Message, src_ip: str,
             net: Network) -> None:
        if not self.log_queries or query.question is None:
            return
        ecs = query.ecs()
        resp_ecs = response.ecs()
        self.log.append(AuthLogRecord(
            ts=net.clock.now(),
            src_ip=src_ip,
            qname=query.question.qname.to_text(),
            qtype=int(query.question.qtype),
            has_ecs=ecs is not None,
            ecs_address=str(ecs.address) if ecs else None,
            ecs_source_len=ecs.source_prefix_length if ecs else None,
            ecs_scope_sent=resp_ecs.scope_prefix_length if resp_ecs else None,
            rcode=int(response.rcode),
        ))

    def handle_query(self, query: Message, src_ip: str,
                     net: Network) -> Optional[Message]:
        raise NotImplementedError

    def log_for(self, src_ip: str) -> List[AuthLogRecord]:
        """This server's log filtered to one resolver."""
        return [r for r in self.log if r.src_ip == src_ip]


class AuthoritativeServer(DnsServer):
    """Serves one or more static zones.

    ``ecs_scope`` enables ECS support: queries carrying an ECS option get it
    echoed back with the scope this function selects.  ``None`` models a
    server with no ECS support — options in queries are silently ignored and
    responses carry no ECS, exactly how RFC 7871 says non-adopters behave.
    """

    span_name = "authoritative"

    def __init__(self, ip: str, zones: Sequence[Zone],
                 ecs_scope: Optional[ScopeFunction] = None,
                 supports_edns: bool = True):
        super().__init__(ip)
        self.zones = list(zones)
        self.ecs_scope = ecs_scope
        self.supports_edns = supports_edns

    def zone_for(self, qname: Name) -> Optional[Zone]:
        """The most specific zone containing ``qname``."""
        best: Optional[Zone] = None
        for zone in self.zones:
            if qname.is_subdomain_of(zone.origin):
                if best is None or len(zone.origin) > len(best.origin):
                    best = zone
        return best

    def handle_query(self, query: Message, src_ip: str,
                     net: Network) -> Optional[Message]:
        response = query.make_response()
        if query.question is None:
            response.rcode = Rcode.FORMERR
            return response
        if not self.supports_edns and query.edns is not None:
            # Pre-EDNS0 servers answer with FORMERR (RFC 6891 section 7).
            response.rcode = Rcode.FORMERR
            response.edns = None
            return response

        zone = self.zone_for(query.question.qname)
        if zone is None:
            response.rcode = Rcode.REFUSED
            return response
        result = zone.lookup(query.question.qname, query.question.qtype)
        response.rcode = result.rcode
        response.answers = result.answers
        response.authority = result.authority
        response.additional = result.additional
        response.authoritative = not result.is_referral

        query_ecs = query.ecs()
        if query_ecs is not None and self.ecs_scope is not None \
                and response.edns is not None:
            scope = self.ecs_scope(query_ecs)
            response.set_ecs(query_ecs.response_to(scope))
        return response
