"""CDN authoritative DNS with ECS-driven edge selection.

Implements the server-side behaviors the paper measures against:

* proximity mapping — pick the edge pool nearest the *client hint* (the ECS
  prefix when usable, otherwise the resolver's address);
* ECS **whitelisting** — the major CDN only honors/echoes ECS for
  pre-approved resolvers, appearing ECS-oblivious to everyone else (the CDN
  dataset's defining property);
* **minimum source prefix thresholds** — section 8.3's CDN-1 stops using ECS
  below /24 and CDN-2 below /21, producing the mapping-quality cliffs of
  Figures 6 and 7;
* **unroutable-prefix handling** — either the RFC's SHOULD (fall back to the
  resolver address) or the literal-lookup behavior that produced Table 2's
  across-the-globe mappings.
"""

from __future__ import annotations

import enum
import hashlib
from dataclasses import dataclass
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..dnslib import (A, AAAA, EcsOption, Message, Name, Rcode, RecordType,
                      ResourceRecord)
from ..net.geo import City
from ..net.topology import Topology
from ..net.transport import Network
from .server import DnsServer


@dataclass(frozen=True)
class EdgePool:
    """One CDN deployment location and the edge addresses served from it."""

    city: City
    addresses: Tuple[str, ...]

    def rotation(self, salt: int, count: int) -> List[str]:
        """A deterministic permutation-prefix of the pool's addresses."""
        n = len(self.addresses)
        if n == 0:
            return []
        start = salt % n
        ordered = [self.addresses[(start + i) % n] for i in range(n)]
        return ordered[:count]


class UnroutablePolicy(enum.Enum):
    """What the mapper does with loopback/private/link-local ECS prefixes."""

    #: RFC 7871's SHOULD: treat the prefix as the resolver's own identity.
    USE_RESOLVER = "use_resolver"
    #: Feed the prefix to the mapper anyway; with no geolocation available
    #: the mapping degenerates to an arbitrary (hashed) edge — reproducing
    #: the Switzerland / South Africa selections in Table 2.
    LITERAL = "literal"


def _hash_index(token: str, modulus: int) -> int:
    digest = hashlib.sha256(token.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") % modulus


@dataclass
class MappingDecision:
    """Diagnostic record of one edge-selection decision."""

    hint: str
    hint_source: str           # "ecs" | "resolver" | "unroutable-literal"
    pool: EdgePool
    scope_returned: Optional[int]


class CdnAuthoritative(DnsServer):
    """Authoritative server of a CDN using ECS for user mapping."""

    span_name = "authoritative"

    def __init__(self, ip: str, domains: Sequence[Name],
                 edges: Sequence[EdgePool], topology: Topology,
                 ttl: int = 20,
                 scope_v4: int = 24,
                 scope_v6: int = 48,
                 min_source_prefix_v4: int = 1,
                 whitelist: Optional[Iterable[str]] = None,
                 unroutable_policy: UnroutablePolicy = UnroutablePolicy.USE_RESOLVER,
                 answers_per_response: int = 2):
        super().__init__(ip)
        self.domains = list(domains)
        self.edges = list(edges)
        if not self.edges:
            raise ValueError("a CDN needs at least one edge pool")
        self.topology = topology
        self.ttl = ttl
        self.scope_v4 = scope_v4
        self.scope_v6 = scope_v6
        self.min_source_prefix_v4 = min_source_prefix_v4
        self.whitelist: Optional[Set[str]] = \
            set(whitelist) if whitelist is not None else None
        self.unroutable_policy = unroutable_policy
        self.answers_per_response = answers_per_response
        self.decisions: List[MappingDecision] = []

    # -- mapping -------------------------------------------------------------

    def serves(self, qname: Name) -> bool:
        """True if ``qname`` falls under one of this CDN's domains."""
        return any(qname.is_subdomain_of(d) for d in self.domains)

    def nearest_pool(self, hint_ip: str) -> EdgePool:
        """The edge pool geographically closest to ``hint_ip``."""
        location = self.topology.city_of(hint_ip)
        if location is None:
            return self.edges[_hash_index(hint_ip, len(self.edges))]
        return min(self.edges,
                   key=lambda pool: pool.city.point.distance_km(location.point))

    def select_edges(self, hint_ip: str, qname: Name,
                     hint_source: str,
                     scope_returned: Optional[int]) -> List[str]:
        pool = self.nearest_pool(hint_ip)
        self.decisions.append(
            MappingDecision(hint_ip, hint_source, pool, scope_returned))
        salt = _hash_index(f"{hint_ip}|{qname.to_text()}", 1 << 30)
        return pool.rotation(salt, self.answers_per_response)

    def _resolve_hint(self, ecs: Optional[EcsOption], src_ip: str
                      ) -> Tuple[str, str, bool]:
        """Pick the mapping hint; returns (hint_ip, source, ecs_was_used)."""
        if ecs is None:
            return src_ip, "resolver", False
        if ecs.family == 1 and ecs.source_prefix_length < self.min_source_prefix_v4:
            # Below the CDN's usefulness threshold: fall back to the resolver.
            return src_ip, "resolver", False
        if not ecs.is_routable():
            if self.unroutable_policy is UnroutablePolicy.USE_RESOLVER:
                return src_ip, "resolver", True
            return str(ecs.address), "unroutable-literal", True
        return str(ecs.address), "ecs", True

    # -- protocol --------------------------------------------------------------

    def handle_query(self, query: Message, src_ip: str,
                     net: Network) -> Optional[Message]:
        response = query.make_response()
        response.authoritative = True
        if query.question is None:
            response.rcode = Rcode.FORMERR
            return response
        qname, qtype = query.question.qname, query.question.qtype
        if not self.serves(qname):
            response.rcode = Rcode.REFUSED
            return response
        if qtype not in (RecordType.A, RecordType.AAAA):
            return response  # NODATA for non-address types

        ecs = query.ecs()
        ecs_honored = ecs is not None and (
            self.whitelist is None or src_ip in self.whitelist)
        effective_ecs = ecs if ecs_honored else None

        hint_ip, hint_source, ecs_used = self._resolve_hint(effective_ecs, src_ip)

        scope: Optional[int] = None
        if ecs_honored and response.edns is not None:
            assert ecs is not None
            if ecs_used:
                base = self.scope_v4 if ecs.family == 1 else self.scope_v6
                scope = min(base, ecs.source_prefix_length)
            else:
                # Whitelisted but below threshold: answer is client-agnostic.
                scope = 0
            response.set_ecs(ecs.response_to(scope))

        for address in self.select_edges(hint_ip, qname, hint_source, scope):
            if qtype == RecordType.A and ":" not in address:
                response.answers.append(
                    ResourceRecord(qname, RecordType.A, self.ttl, A(address)))
            elif qtype == RecordType.AAAA and ":" in address:
                response.answers.append(
                    ResourceRecord(qname, RecordType.AAAA, self.ttl,
                                   AAAA(address)))
        return response


def build_edge_pools(topology: Topology, cdn_as, cities: Sequence[City],
                     addresses_per_pool: int = 4) -> List[EdgePool]:
    """Deploy edge pools: ``addresses_per_pool`` hosts in each city."""
    pools = []
    for c in cities:
        addrs = tuple(cdn_as.host_in(c) for _ in range(addresses_per_pool))
        pools.append(EdgePool(c, addrs))
    return pools
