"""Authoritative-side servers: zones, CDNs, the scan experiment, flattening."""

from .cdn import (CdnAuthoritative, EdgePool, MappingDecision,
                  UnroutablePolicy, build_edge_pools)
from .flattening import FlatteningProvider
from .hierarchy import DnsHierarchy
from .scan_experiment import (ScanExperimentServer, ScanObservation,
                              decode_probe_name, encode_probe_name)
from .server import (AuthLogRecord, AuthoritativeServer, DnsServer,
                     ScopeFunction, fixed_scope, source_minus)

__all__ = [
    "AuthLogRecord", "AuthoritativeServer", "CdnAuthoritative",
    "DnsHierarchy", "DnsServer", "EdgePool", "FlatteningProvider",
    "MappingDecision", "ScanExperimentServer", "ScanObservation",
    "ScopeFunction", "UnroutablePolicy", "build_edge_pools",
    "decode_probe_name", "encode_probe_name", "fixed_scope", "source_minus",
]
