"""Root/TLD delegation hierarchy.

Gives the simulated Internet a real DNS tree: a root zone delegating TLDs,
TLD zones delegating second-level zones, all served by
:class:`~repro.auth.server.AuthoritativeServer` instances attached to the
network fabric.  Recursive resolvers perform genuine iterative resolution
over this hierarchy, following referrals from the root down.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence

from ..dnslib import A, NS, Name, RecordType, Zone
from ..net.geo import City, city
from ..net.topology import AutonomousSystem, Topology
from ..net.transport import Network
from .server import AuthoritativeServer, ScopeFunction


class DnsHierarchy:
    """Builds and tracks the delegation tree."""

    def __init__(self, net: Network, infra_as: AutonomousSystem,
                 root_city: Optional[City] = None):
        self.net = net
        self.infra_as = infra_as
        self._root_city = root_city or city("Ashburn")
        self.root_zone = Zone(Name.root(), default_ttl=86400)
        self.root_zone.add_soa()
        root_ip = infra_as.host_in(self._root_city)
        self.root_server = AuthoritativeServer(root_ip, [self.root_zone])
        net.attach(self.root_server)
        #: Root hints for recursive resolvers.
        self.root_ips: List[str] = [root_ip]
        self._tld_servers: Dict[Name, AuthoritativeServer] = {}
        self._tld_zones: Dict[Name, Zone] = {}

    # -- tree construction -----------------------------------------------------

    def _ensure_tld(self, tld: Name) -> Zone:
        zone = self._tld_zones.get(tld)
        if zone is not None:
            return zone
        zone = Zone(tld, default_ttl=86400)
        zone.add_soa()
        server_ip = self.infra_as.host_in(self._root_city)
        server = AuthoritativeServer(server_ip, [zone])
        self.net.attach(server)
        self._tld_servers[tld] = server
        self._tld_zones[tld] = zone
        ns_name = tld.child("ns1")
        self.root_zone.add(tld, RecordType.NS, NS(ns_name))
        self.root_zone.add(ns_name, RecordType.A, A(server_ip))
        return zone

    def delegate(self, zone_origin: Name, server_ips: Sequence[str]) -> None:
        """Delegate ``zone_origin`` from its TLD to the given servers.

        Adds NS records and glue in the parent zone.  ``zone_origin`` must
        be at least two labels deep (a second-level domain or below).
        """
        if len(zone_origin) < 2:
            raise ValueError(f"cannot delegate {zone_origin}: too shallow")
        _, tld = zone_origin.split(1)
        parent = self._ensure_tld(tld)
        for i, ip in enumerate(server_ips):
            ns_name = zone_origin.child(f"ns{i + 1}")
            parent.add(zone_origin, RecordType.NS, NS(ns_name))
            parent.add(ns_name, RecordType.A, A(ip))

    def host_zone(self, zone: Zone, location: Optional[City] = None,
                  ecs_scope: Optional[ScopeFunction] = None
                  ) -> AuthoritativeServer:
        """Spin up an authoritative server for ``zone`` and delegate to it."""
        where = location or self._root_city
        server_ip = self.infra_as.host_in(where)
        server = AuthoritativeServer(server_ip, [zone], ecs_scope=ecs_scope)
        self.net.attach(server)
        self.delegate(zone.origin, [server_ip])
        return server

    def attach_authoritative(self, origin: Name, server_ip: str) -> None:
        """Delegate ``origin`` to an already-attached server (e.g. a CDN)."""
        self.delegate(origin, [server_ip])
