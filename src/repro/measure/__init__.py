"""Measurement tooling: scanner, dig client, probers, Atlas platform."""

from .atlas import AtlasPlatform, AtlasProbe
from .caching_probe import (CachingBehaviorProber, ProbeReport,
                            PROBE_SUBNET_A, PROBE_SUBNET_B)
from .digclient import DigResult, StubClient
from .scanner import Scanner, ScanResult
from .scope_reaction import ScopeReactionOutcome, ScopeReactionProber

__all__ = [
    "AtlasPlatform", "AtlasProbe", "CachingBehaviorProber", "DigResult",
    "PROBE_SUBNET_A", "PROBE_SUBNET_B", "ProbeReport", "ScanResult",
    "Scanner", "ScopeReactionOutcome", "ScopeReactionProber", "StubClient",
]
