"""A RIPE-Atlas-like measurement platform (section 8.3's apparatus).

The paper selects 800 RIPE Atlas probe addresses (174 countries, 599 ASes),
queries CDN authoritative servers directly with ECS prefixes derived from
each probe's address at lengths 16–24, and then has each probe TCP-connect
to the first returned edge address three times, taking the median handshake
latency as the mapping-quality metric.

:class:`AtlasPlatform` reproduces the apparatus: probes are hosts placed in
world cities, and a "certificate download" is a modeled TCP handshake whose
latency comes from the shared RTT model.
"""

from __future__ import annotations

import random
import statistics
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..net.geo import WORLD_CITIES, City
from ..net.topology import Topology
from ..net.transport import Network


@dataclass
class AtlasProbe:
    """One measurement point."""

    ip: str
    city: City
    country: str
    asn: int

    def tcp_handshake_ms(self, net: Network, target_ip: str,
                         attempts: int = 3,
                         rng: Optional[random.Random] = None) -> float:
        """Median of ``attempts`` modeled TCP connects to ``target_ip``."""
        # Deterministic default: probe timing without an explicit rng is
        # part of the experiment identity, mirroring Network's fallback.
        rng = rng or random.Random(0)  # repro-lint: disable=RS005
        samples = [net.tcp_handshake_ms(self.ip, target_ip, rng)
                   for _ in range(attempts)]
        return statistics.median(samples)


class AtlasPlatform:
    """A deterministic population of probes spread across the world."""

    def __init__(self, net: Network, probe_count: int = 800, seed: int = 0,
                 cities: Optional[Sequence[City]] = None):
        self.net = net
        rng = random.Random(seed)
        cities = list(cities or WORLD_CITIES)
        self.probes: List[AtlasProbe] = []
        # One eyeball AS per country keeps the AS count realistic while the
        # probes themselves spread over every city.
        ases = {}
        for i in range(probe_count):
            where = rng.choice(cities)
            as_ = ases.get(where.country)
            if as_ is None:
                as_ = net.topology.create_as(f"AtlasNet-{where.country}",
                                             where.country)
                ases[where.country] = as_
            ip = as_.host_in(where)
            self.probes.append(AtlasProbe(ip, where, where.country, as_.asn))

    def countries(self) -> int:
        """Number of distinct countries covered."""
        return len({p.country for p in self.probes})

    def ases(self) -> int:
        """Number of distinct ASes covered."""
        return len({p.asn for p in self.probes})
