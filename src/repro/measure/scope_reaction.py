"""The section 9 follow-up experiment: do resolvers react to scopes?

The paper's scan answered each ECS query with a fixed policy
(scope = source − 4) and probed each resolver once, so it could not tell
whether any resolver *adapts* its source prefix length to the scopes a
given authoritative returns.  This prober runs that follow-up: engage one
resolver repeatedly against our experimental server, switch the returned
scope between phases, and compare the source prefix lengths of the
resolver's queries before and after.

A static resolver keeps sending its configured length; an adaptive one
(e.g. :class:`~repro.core.policies.EcsPolicy` with
``adapt_source_to_scope=True``) drops to the advertised scope — the
privacy-preserving reaction the paper hints at, with the section 8.3
caveat that CDNs silently ignore ECS below their thresholds.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..auth.server import fixed_scope
from ..datasets.scan_dataset import ScanUniverse
from ..dnslib import Name, RecordType
from .digclient import StubClient


@dataclass
class ScopeReactionOutcome:
    """Observed source prefix lengths per phase, and the verdict."""

    resolver_ip: str
    phase_scopes: List[int]
    observed_source_lengths: List[List[int]]

    @property
    def adapts(self) -> Optional[bool]:
        """True if later phases' source lengths track the returned scope.

        ``None`` when the experiment produced no ECS observations (the
        resolver never attached ECS, or probes never reached the server).
        """
        if len(self.observed_source_lengths) < 2:
            return None
        first, last = (self.observed_source_lengths[0],
                       self.observed_source_lengths[-1])
        if not first or not last:
            return None
        target = self.phase_scopes[-1]
        return max(last) <= target < max(first)


class ScopeReactionProber:
    """Runs the repeated-engagement experiment against one resolver."""

    def __init__(self, universe: ScanUniverse):
        self.universe = universe
        self.client = StubClient(universe.scanner_ip, universe.net)
        self._trial = 0

    def probe(self, resolver_ip: str,
              phase_scopes: Sequence[int] = (24, 16, 16),
              queries_per_phase: int = 4,
              gap_s: float = 30.0) -> ScopeReactionOutcome:
        """Engage ``resolver_ip`` across phases with different scopes.

        Each phase uses fresh hostnames (cache misses) so every query
        reaches the experimental server, whose scope policy is switched
        per phase.
        """
        server = self.universe.experiment_server
        old_policy = server.scope_policy
        observed: List[List[int]] = []
        try:
            for scope in phase_scopes:
                server.scope_policy = fixed_scope(scope)
                lengths: List[int] = []
                for _ in range(queries_per_phase):
                    self._trial += 1
                    qname = self.universe.domain.child(
                        f"react-{self._trial}")
                    before = len(server.observations)
                    self.client.query(resolver_ip, qname, RecordType.A)
                    for obs in server.observations[before:]:
                        if obs.has_ecs and obs.ecs_source_len is not None:
                            lengths.append(obs.ecs_source_len)
                    self.universe.net.clock.advance(gap_s)
                observed.append(lengths)
        finally:
            server.scope_policy = old_policy
        return ScopeReactionOutcome(resolver_ip, list(phase_scopes),
                                    observed)
