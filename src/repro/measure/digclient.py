"""A dig-like stub client.

Sends single queries — to a recursive resolver or directly to an
authoritative server — with full control over the ECS option, as the paper
does with ``dig`` in section 8.1 (Table 2) and with its scanning scripts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import List, Optional, Union

from ..dnslib import EcsOption, Message, Name, Rcode, RecordType
from ..net.transport import Network, QueryOutcome


@dataclass
class DigResult:
    """Everything a measurement needs from one query."""

    response: Optional[Message]
    elapsed_ms: float

    @property
    def rcode(self) -> Optional[Rcode]:
        return self.response.rcode if self.response else None

    @property
    def addresses(self) -> List[str]:
        """A/AAAA answers, in order."""
        return self.response.answer_addresses() if self.response else []

    @property
    def first_address(self) -> Optional[str]:
        addrs = self.addresses
        return addrs[0] if addrs else None

    @property
    def scope(self) -> Optional[int]:
        """The scope prefix length in the response ECS, if any."""
        if self.response is None:
            return None
        ecs = self.response.ecs()
        return ecs.scope_prefix_length if ecs else None


class StubClient:
    """An end host (or measurement box) issuing DNS queries."""

    def __init__(self, ip: str, net: Network):
        self.ip = ip
        self.net = net
        self._msg_ids = itertools.count(1)

    def query(self, server_ip: str, qname: Union[str, Name],
              qtype: RecordType = RecordType.A,
              ecs: Optional[EcsOption] = None,
              recursion_desired: bool = True,
              use_edns: bool = True,
              tcp: bool = False,
              retry_on_truncation: bool = True) -> DigResult:
        """Send one query and return the parsed result.

        A TC=1 response is retried over TCP automatically (like dig),
        unless ``retry_on_truncation`` is disabled.
        """
        name = Name.from_text(qname) if isinstance(qname, str) else qname
        msg = Message.make_query(name, qtype,
                                 msg_id=next(self._msg_ids) & 0xFFFF,
                                 recursion_desired=recursion_desired,
                                 use_edns=use_edns, ecs=ecs)
        start = self.net.clock.now()
        outcome: QueryOutcome = self.net.query(self.ip, server_ip, msg,
                                               tcp=tcp)
        if (retry_on_truncation and not tcp and outcome.response is not None
                and outcome.response.truncated):
            outcome = self.net.query(self.ip, server_ip, msg, tcp=True)
            elapsed = (self.net.clock.now() - start) * 1000.0 \
                if self.net.advance_clock else outcome.elapsed_ms
            return DigResult(outcome.response, elapsed)
        return DigResult(outcome.response, outcome.elapsed_ms)

    def query_with_subnet(self, server_ip: str, qname: Union[str, Name],
                          subnet: str, prefix_len: int,
                          qtype: RecordType = RecordType.A) -> DigResult:
        """Convenience: query with an explicit client-subnet option, like
        ``dig +subnet=...``."""
        ecs = EcsOption.from_client_address(subnet, prefix_len)
        return self.query(server_ip, qname, qtype=qtype, ecs=ecs)
