"""A dig-like stub client.

Sends single queries — to a recursive resolver or directly to an
authoritative server — with full control over the ECS option, as the paper
does with ``dig`` in section 8.1 (Table 2) and with its scanning scripts.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, replace
from typing import List, Optional, Union

from ..dnslib import EcsOption, Message, Name, Rcode, RecordType
from ..faults.retry import RetryPolicy, execute_with_retries
from ..net.transport import Network

#: dig-like defaults: single attempt, automatic TCP retry on TC=1, no
#: silent protocol downgrades — a FORMERR is *reported*, as dig does,
#: so measurements see exactly what the server said.
DEFAULT_STUB_POLICY = RetryPolicy()


@dataclass
class DigResult:
    """Everything a measurement needs from one query."""

    response: Optional[Message]
    elapsed_ms: float

    @property
    def rcode(self) -> Optional[Rcode]:
        return self.response.rcode if self.response else None

    @property
    def addresses(self) -> List[str]:
        """A/AAAA answers, in order."""
        return self.response.answer_addresses() if self.response else []

    @property
    def first_address(self) -> Optional[str]:
        addrs = self.addresses
        return addrs[0] if addrs else None

    @property
    def scope(self) -> Optional[int]:
        """The scope prefix length in the response ECS, if any."""
        if self.response is None:
            return None
        ecs = self.response.ecs()
        return ecs.scope_prefix_length if ecs else None


class StubClient:
    """An end host (or measurement box) issuing DNS queries."""

    def __init__(self, ip: str, net: Network,
                 retry_policy: Optional[RetryPolicy] = None):
        self.ip = ip
        self.net = net
        self.retry_policy = retry_policy or DEFAULT_STUB_POLICY
        self._msg_ids = itertools.count(1)
        #: Cumulative ladder tallies across this client's queries.
        self.attempts = 0
        self.retries = 0
        self.ecs_downgrades = 0

    def query(self, server_ip: str, qname: Union[str, Name],
              qtype: RecordType = RecordType.A,
              ecs: Optional[EcsOption] = None,
              recursion_desired: bool = True,
              use_edns: bool = True,
              tcp: bool = False,
              retry_on_truncation: bool = True) -> DigResult:
        """Send one query and return the parsed result.

        The client's :class:`~repro.faults.retry.RetryPolicy` drives
        timeouts, backoff and downgrades; a TC=1 response is retried
        over TCP automatically (like dig) unless ``retry_on_truncation``
        is disabled.  ``elapsed_ms`` sums every wire leg exactly once —
        a truncated UDP exchange plus its TCP retry charge one UDP and
        one TCP round trip.
        """
        name = Name.from_text(qname) if isinstance(qname, str) else qname
        policy = self.retry_policy
        if not retry_on_truncation and policy.tcp_on_truncation:
            policy = replace(policy, tcp_on_truncation=False)

        def make_query(edns_ok: bool, ecs_ok: bool) -> Message:
            return Message.make_query(
                name, qtype, msg_id=next(self._msg_ids) & 0xFFFF,
                recursion_desired=recursion_desired,
                use_edns=use_edns and edns_ok,
                ecs=ecs if (ecs_ok and edns_ok) else None)

        outcome = execute_with_retries(self.net, self.ip, (server_ip,),
                                       make_query, policy, site="stub",
                                       tcp=tcp)
        self.attempts += outcome.attempts
        self.retries += outcome.retries
        if outcome.ecs_downgraded:
            self.ecs_downgrades += 1
        return DigResult(outcome.response, outcome.elapsed_ms)

    def query_with_subnet(self, server_ip: str, qname: Union[str, Name],
                          subnet: str, prefix_len: int,
                          qtype: RecordType = RecordType.A) -> DigResult:
        """Convenience: query with an explicit client-subnet option, like
        ``dig +subnet=...``."""
        ecs = EcsOption.from_client_address(subnet, prefix_len)
        return self.query(server_ip, qname, qtype=qtype, ecs=ecs)
