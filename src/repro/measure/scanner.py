"""The IPv4 scan (section 4's Scan dataset methodology).

The paper scanned the IPv4 space at 25K qps with hostnames encoding the
probed address, so the experimental authoritative server could associate
each open ingress resolver with the egress resolver(s) that contacted it.
Queries are sent *without* ECS, since open forwarders are mostly home
routers that may mishandle unknown options.

:class:`Scanner` runs the same campaign against a
:class:`~repro.datasets.scan_dataset.ScanUniverse` and assembles the Scan
dataset records from the experiment server's log.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set

from ..auth.scan_experiment import encode_probe_name
from ..datasets.records import ScanQueryRecord
from ..datasets.scan_dataset import ScanUniverse
from ..dnslib import Name, RecordType
from ..faults.retry import RetryPolicy
from .digclient import StubClient


@dataclass
class ScanResult:
    """Everything the scan produced."""

    records: List[ScanQueryRecord]
    responding_ingress: Set[str]
    ecs_ingress: Set[str]
    ecs_egress: Set[str]

    def records_by_ingress(self) -> Dict[str, List[ScanQueryRecord]]:
        out: Dict[str, List[ScanQueryRecord]] = {}
        for r in self.records:
            if r.ingress_ip:
                out.setdefault(r.ingress_ip, []).append(r)
        return out

    def records_by_egress(self) -> Dict[str, List[ScanQueryRecord]]:
        out: Dict[str, List[ScanQueryRecord]] = {}
        for r in self.records:
            out.setdefault(r.egress_ip, []).append(r)
        return out


class Scanner:
    """Drives the scan from a single vantage machine."""

    def __init__(self, universe: ScanUniverse,
                 inter_query_gap_s: float = 1.0 / 25_000,
                 retry_policy: Optional[RetryPolicy] = None):
        self.universe = universe
        # Default policy: one shot per ingress, like the paper's scan.
        # Chaos mode passes a retrying policy so campaigns stay useful
        # under injected loss.
        self.client = StubClient(universe.scanner_ip, universe.net,
                                 retry_policy=retry_policy)
        self.inter_query_gap_s = inter_query_gap_s

    def scan(self, ingress_ips: Optional[Sequence[str]] = None) -> ScanResult:
        """Probe every ingress once; harvest the authoritative's log."""
        universe = self.universe
        targets = list(ingress_ips if ingress_ips is not None
                       else universe.forwarder_ips)
        start_index = len(universe.experiment_server.observations)
        responding: Set[str] = set()
        for ingress_ip in targets:
            qname = encode_probe_name(ingress_ip, universe.domain)
            # The probe carries no ECS and asks for an A record, as the
            # paper's scan did.
            result = self.client.query(ingress_ip, qname, RecordType.A,
                                       use_edns=False)
            if result.response is not None and result.addresses:
                responding.add(ingress_ip)
            universe.net.clock.advance(self.inter_query_gap_s)

        records: List[ScanQueryRecord] = []
        ecs_ingress: Set[str] = set()
        ecs_egress: Set[str] = set()
        for obs in universe.experiment_server.observations[start_index:]:
            records.append(ScanQueryRecord(
                ts=obs.ts, ingress_ip=obs.ingress_ip, egress_ip=obs.egress_ip,
                qname=obs.qname, has_ecs=obs.has_ecs,
                ecs_address=obs.ecs_address,
                ecs_source_len=obs.ecs_source_len))
            if obs.has_ecs:
                ecs_egress.add(obs.egress_ip)
                if obs.ingress_ip:
                    ecs_ingress.add(obs.ingress_ip)
        return ScanResult(records, responding, ecs_ingress, ecs_egress)
