"""The section 6.3 caching-behavior experiment.

Methodology, verbatim from the paper: deliver *pairs* of queries for our own
domain to each ECS-enabled recursive resolver such that the resolver sees
them as coming from clients in **different /24s sharing a /16**, configure
the experimental authoritative server to return scope 24, 16, or 0, and use
a unique hostname per trial so cached answers never leak between trials.
A compliant resolver forwards the second query for scope 24 (miss) but
answers it from cache for scopes 16 and 0 (hit).

Delivery techniques, in the paper's order of preference:

1. **direct** — the resolver accepts arbitrary client-supplied ECS, so we
   submit our chosen prefixes straight to it (24 open + 8 via forwarders in
   the paper; merged here since the forwarder hop is transparent);
2. **paired forwarders** — two open forwarders using the same resolver,
   sitting in different /24s of one /16;
3. **paired hidden resolvers** — same trick one level deeper.

A second experiment against the arbitrary-ECS resolvers probes prefixes
longer/shorter than /24 to detect forwarding clamps, over-/24 acceptance,
and private-prefix emission.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..auth.server import fixed_scope
from ..core.classify import CachingCategory, CachingProbeOutcome, classify_caching
from ..datasets.scan_dataset import ChainSpec, ScanUniverse
from ..dnslib import EcsOption, Name, RecordType
from ..net.addr import same_prefix
from .digclient import StubClient

#: The twin-query prefixes: different /24, same /16.
PROBE_SUBNET_A = "85.12.100.0"
PROBE_SUBNET_B = "85.12.101.0"


def _is_private_block(address: Optional[str]) -> bool:
    """True for RFC1918-style private prefixes (the section 6.3
    misconfiguration), excluding loopback/link-local, which the paper
    treats separately in section 8.1."""
    if address is None:
        return False
    import ipaddress
    addr = ipaddress.ip_address(address)
    return addr.is_private and not (addr.is_loopback or addr.is_link_local)


@dataclass
class ProbeReport:
    """Per-resolver outcome plus the derived category."""

    resolver_ip: str
    technique: str
    outcome: CachingProbeOutcome
    category: CachingCategory


class CachingBehaviorProber:
    """Runs the twin-query experiment against a :class:`ScanUniverse`."""

    def __init__(self, universe: ScanUniverse):
        self.universe = universe
        self.client = StubClient(universe.scanner_ip, universe.net)
        self._trial = itertools.count(1)

    # -- helpers ---------------------------------------------------------------

    def _trial_name(self) -> Name:
        return self.universe.domain.child(f"trial-{next(self._trial)}")

    def _seen_count(self, qname: Name) -> int:
        text = qname.to_text()
        return sum(1 for o in self.universe.experiment_server.observations
                   if o.qname == text)

    def _deliver_direct(self, resolver_ip: str, qname: Name,
                        subnet: str, prefix_len: int = 24) -> None:
        self.client.query_with_subnet(resolver_ip, qname, subnet, prefix_len)

    def _sibling_chains(self, egress_ip: str) -> Optional[Tuple[ChainSpec, ChainSpec]]:
        """Two chains to ``egress_ip`` whose heads share a /16 but not a /24."""
        chains = self.universe.chains_for_egress(egress_ip)
        for a, b in itertools.combinations(chains, 2):
            if a.hidden_ips or b.hidden_ips:
                continue
            if same_prefix(a.forwarder_ip, b.forwarder_ip, 16) and \
                    not same_prefix(a.forwarder_ip, b.forwarder_ip, 24):
                return a, b
        return None

    # -- experiment 1: twin queries at scopes 24 / 16 / 0 -------------------------

    def _twin_trial(self, deliver_pair, scope_bits: int) -> Optional[bool]:
        """Run one trial; True = second query reached the authoritative."""
        server = self.universe.experiment_server
        old_policy = server.scope_policy
        server.scope_policy = fixed_scope(scope_bits)
        try:
            qname = self._trial_name()
            deliver_pair(qname)
            seen = self._seen_count(qname)
        finally:
            server.scope_policy = old_policy
        if seen == 0:
            return None
        return seen >= 2

    def _probe_scopes(self, deliver_pair) -> CachingProbeOutcome:
        outcome = CachingProbeOutcome()
        outcome.second_query_seen_scope24 = self._twin_trial(deliver_pair, 24)
        outcome.second_query_seen_scope16 = self._twin_trial(deliver_pair, 16)
        outcome.second_query_seen_scope0 = self._twin_trial(deliver_pair, 0)
        return outcome

    # -- experiment 2: arbitrary prefix handling ---------------------------------

    def _probe_prefix_handling(self, resolver_ip: str,
                               outcome: CachingProbeOutcome) -> None:
        server = self.universe.experiment_server
        before = len(server.observations)
        qname = self._trial_name()
        self._deliver_direct(resolver_ip, qname, "85.12.102.77", 32)
        qname2 = self._trial_name()
        self._deliver_direct(resolver_ip, qname2, "85.12.102.0", 24)
        observed = [o for o in server.observations[before:] if o.has_ecs]
        if not observed:
            return
        lens = [o.ecs_source_len for o in observed if o.ecs_source_len]
        if lens:
            outcome.max_prefix_forwarded = max(lens)
            if max(lens) < 24:
                outcome.forwarding_clamp = max(lens)
        if any(_is_private_block(o.ecs_address) for o in observed):
            outcome.sends_private_prefix = True

    def _probe_zero_scope_caching(self, resolver_ip: str,
                                  outcome: CachingProbeOutcome) -> None:
        """Prime with a scope-0 answer, re-query: a hit means it cached."""
        server = self.universe.experiment_server
        old_policy = server.scope_policy
        server.scope_policy = fixed_scope(0)
        try:
            qname = self._trial_name()
            self._deliver_direct(resolver_ip, qname, PROBE_SUBNET_A, 24)
            self._deliver_direct(resolver_ip, qname, PROBE_SUBNET_A, 24)
            outcome.caches_zero_scope = self._seen_count(qname) == 1
        finally:
            server.scope_policy = old_policy

    # -- drivers --------------------------------------------------------------

    def probe_direct(self, resolver_ip: str) -> ProbeReport:
        """Technique 1: the resolver forwards client-supplied ECS."""

        def deliver(qname: Name) -> None:
            self._deliver_direct(resolver_ip, qname, PROBE_SUBNET_A, 24)
            self._deliver_direct(resolver_ip, qname, PROBE_SUBNET_B, 24)

        outcome = self._probe_scopes(deliver)
        self._probe_prefix_handling(resolver_ip, outcome)
        self._probe_zero_scope_caching(resolver_ip, outcome)
        return ProbeReport(resolver_ip, "direct", outcome,
                           classify_caching(outcome))

    def probe_via_forwarders(self, egress_ip: str,
                             pair: Tuple[ChainSpec, ChainSpec]) -> ProbeReport:
        """Technique 2/3: twin queries through sibling forwarders."""

        def deliver(qname: Name) -> None:
            self.client.query(pair[0].forwarder_ip, qname, RecordType.A)
            self.client.query(pair[1].forwarder_ip, qname, RecordType.A)

        before = len(self.universe.experiment_server.observations)
        outcome = self._probe_scopes(deliver)
        # Even without direct access, the ECS the resolver emitted during
        # the trials reveals private-prefix misconfigurations.
        observed = self.universe.experiment_server.observations[before:]
        if any(o.egress_ip == egress_ip and _is_private_block(o.ecs_address)
               for o in observed):
            outcome.sends_private_prefix = True
        return ProbeReport(egress_ip, "paired-forwarders", outcome,
                           classify_caching(outcome))

    def probe_megadns(self) -> Optional[ProbeReport]:
        """Probe the public service via its paired hidden resolvers
        (technique 3): two hidden resolvers in sibling /24s of one /16."""
        candidates = [c for c in self.universe.chains
                      if c.via_megadns and c.hidden_ips]
        for a, b in itertools.combinations(candidates, 2):
            if same_prefix(a.hidden_ips[0], b.hidden_ips[0], 16) and \
                    not same_prefix(a.hidden_ips[0], b.hidden_ips[0], 24):

                def deliver(qname: Name, pair=(a, b)) -> None:
                    self.client.query(pair[0].forwarder_ip, qname, RecordType.A)
                    self.client.query(pair[1].forwarder_ip, qname, RecordType.A)

                outcome = self._probe_scopes(deliver)
                return ProbeReport("megadns", "paired-hidden", outcome,
                                   classify_caching(outcome))
        return None

    def probe_all(self) -> List[ProbeReport]:
        """Probe every studiable non-MegaDNS egress resolver.

        Resolvers that accept arbitrary ECS get the direct technique (which
        can also detect prefix-handling deviations); the rest are probed via
        sibling forwarder pairs when the universe contains them.
        """
        reports: List[ProbeReport] = []
        for spec in self.universe.egress_specs:
            if spec.policy_name == "no_ecs":
                continue
            resolver = self.universe.egress_by_ip().get(spec.ip)
            accepts = resolver is not None and resolver.policy.accept_client_ecs
            if spec.open_to_world and accepts:
                reports.append(self.probe_direct(spec.ip))
                continue
            pair = self._sibling_chains(spec.ip)
            if pair is None:
                continue
            report = self.probe_via_forwarders(spec.ip, pair)
            if spec.open_to_world:
                # Open but ECS-overriding resolvers still reveal prefix
                # handling when probed directly.
                self._probe_prefix_handling(spec.ip, report.outcome)
                report = ProbeReport(spec.ip, report.technique, report.outcome,
                                     classify_caching(report.outcome))
            reports.append(report)
        return reports
