"""Recursive (egress) resolver with configurable ECS behavior.

Performs genuine iterative resolution over the simulated delegation tree
(root → TLD → authoritative, following referrals and chasing CNAMEs), with
an :class:`~repro.core.cache.EcsCache` for scope-aware caching and an
:class:`~repro.core.policies.EcsPolicy`/:class:`ProbingEngine` pair driving
every ECS decision.  All the behaviors the paper catalogs — compliant and
deviant — are reachable through policy configuration; see
:mod:`repro.resolvers.behaviors` for ready-made presets.
"""

from __future__ import annotations

import ipaddress
import itertools
from typing import FrozenSet, List, Optional, Sequence, Set, Tuple

from ..core.cache import EcsCache, ScopeMode
from ..core.policies import (EcsDecision, EcsPolicy, ProbingEngine,
                             ProbingStrategy, ScopeHandling, build_query_ecs)
from ..dnslib import (EcsOption, Message, Name, Rcode, RecordType,
                      ResolutionError)
from ..faults.retry import RetryPolicy, execute_with_retries
from ..net.clock import SimClock
from ..net.transport import Network
from ..obs import metrics as _obs_metrics
from ..obs import trace as _obs_trace
from .base import DnsServer

_MAX_REFERRALS = 20
_MAX_CNAME_CHASE = 8

#: Production-resolver posture: retry truncation over TCP, downgrade to
#: no-ECS on FORMERR (RFC 7871 section 7.1) and then to plain DNS for
#: pre-EDNS0 servers (RFC 6891 section 7); failover is handled by the
#: iterative loop's own nameserver ordering.
DEFAULT_RESOLVER_RETRY_POLICY = RetryPolicy(
    retry_without_ecs_on_formerr=True,
    retry_without_edns_on_formerr=True)

_SCOPE_MODE_FOR = {
    ScopeHandling.HONOR: ScopeMode.HONOR,
    ScopeHandling.IGNORE: ScopeMode.IGNORE,
    ScopeHandling.CLAMP: ScopeMode.CLAMP,
}


class RecursiveResolver(DnsServer):
    """An egress resolver: takes client queries, resolves iteratively."""

    span_name = "resolve"

    def __init__(self, ip: str, clock: SimClock, root_hints: Sequence[str],
                 policy: Optional[EcsPolicy] = None,
                 allowed_clients: Optional[Set[str]] = None,
                 trusted_ecs_senders: Optional[FrozenSet[str]] = None,
                 retry_policy: Optional[RetryPolicy] = None):
        super().__init__(ip, log_queries=False)
        self.clock = clock
        self.root_hints = list(root_hints)
        self.policy = policy or EcsPolicy()
        self.retry_policy = retry_policy or DEFAULT_RESOLVER_RETRY_POLICY
        self.probing = ProbingEngine(self.policy)
        self.cache = EcsCache(
            clock,
            scope_mode=_SCOPE_MODE_FOR[self.policy.scope_handling],
            clamp_bits=self.policy.clamp_scope_bits,
            enforce_scope_le_source=self.policy.enforce_scope_le_source,
            cache_zero_scope=self.policy.cache_zero_scope,
        )
        #: ``None`` means open to the world; a set restricts who may query.
        self.allowed_clients = allowed_clients
        #: Senders whose ECS options are trusted even when the policy would
        #: otherwise replace client ECS with the sender's address (the
        #: public service's own front-ends).
        self.trusted_ecs_senders = trusted_ecs_senders or frozenset()
        self._msg_ids = itertools.count(1)
        self._no_edns_servers: Set[str] = set()
        #: Delegation cache: zone cut -> (nameserver IPs, expiry).
        self._delegations: dict = {}
        #: Smoothed RTT per nameserver IP (ms), for server selection.
        self._srtt: dict = {}
        self.upstream_queries = 0

    # -- public entry points -----------------------------------------------

    def handle_query(self, query: Message, src_ip: str,
                     net: Network) -> Optional[Message]:
        if self.allowed_clients is not None and src_ip not in self.allowed_clients:
            refused = query.make_response()
            refused.rcode = Rcode.REFUSED
            return refused
        if query.question is None:
            bad = query.make_response()
            bad.rcode = Rcode.FORMERR
            return bad

        incoming_ecs = query.ecs()
        usable_ecs = incoming_ecs
        if incoming_ecs is not None and not (
                self.policy.accept_client_ecs
                or src_ip in self.trusted_ecs_senders):
            # Anti-spoofing behavior of many resolvers: override client ECS
            # with the immediate sender's address (section 8.2).
            usable_ecs = None
        client_hint = str(usable_ecs.address) if usable_ecs is not None else src_ip

        response, scope = self.resolve(query.question.qname,
                                       query.question.qtype,
                                       client_hint, net,
                                       incoming_ecs=usable_ecs)
        reply = response.copy()
        reply.msg_id = query.msg_id
        reply.is_response = True
        reply.recursion_available = True
        reply.question = query.question
        reply.authoritative = False
        if incoming_ecs is not None and query.edns is not None:
            if reply.edns is None:
                reply.edns = query.make_response().edns
            echo_scope = scope if scope is not None else 0
            reply.set_ecs(incoming_ecs.response_to(
                min(echo_scope, incoming_ecs.source_prefix_length)))
        elif reply.edns is not None:
            reply.set_ecs(None)
        return reply

    def resolve(self, qname: Name, qtype: RecordType, client_hint: str,
                net: Network, incoming_ecs: Optional[EcsOption] = None
                ) -> Tuple[Message, Optional[int]]:
        """Resolve a question for a client; returns (response, auth scope).

        The returned scope is the authoritative scope prefix length that
        applied (``None`` when the exchange did not involve ECS).
        """
        probe_bypass = (self.policy.probing is ProbingStrategy.PROBE_HOSTNAMES
                        and self.policy.bypass_cache_for_probes
                        and qname in self.policy.probe_hostnames)
        if not probe_bypass:
            cached = self.cache.lookup(qname, qtype, client_hint)
            tracer = _obs_trace.ACTIVE
            if tracer is not None:
                tracer.event("cache_lookup", resolver=self.ip,
                             qname=qname.to_text(),
                             hit=cached is not None)
            if cached is not None:
                return cached, self._scope_of(cached)

        response, ecs_sent = self._resolve_iteratively(
            qname, qtype, client_hint, net, incoming_ecs)
        if response.rcode in (Rcode.NOERROR, Rcode.NXDOMAIN) \
                and not response.truncated:
            self.cache.store(qname, qtype, response, query_ecs=ecs_sent)
        return response, self._scope_of(response)

    @staticmethod
    def _scope_of(response: Message) -> Optional[int]:
        ecs = response.ecs()
        return ecs.scope_prefix_length if ecs else None

    # -- iterative machinery -------------------------------------------------

    def _resolve_iteratively(self, qname: Name, qtype: RecordType,
                             client_hint: str, net: Network,
                             incoming_ecs: Optional[EcsOption],
                             depth: int = 0
                             ) -> Tuple[Message, Optional[EcsOption]]:
        if depth > _MAX_CNAME_CHASE:
            raise ResolutionError(f"CNAME chain too deep for {qname}")
        nameservers, at_root = self._starting_servers(qname)
        last_ecs: Optional[EcsOption] = None
        for _ in range(_MAX_REFERRALS):
            response = None
            for ns_ip in self._order_nameservers(nameservers):
                response, last_ecs = self._query_one(
                    qname, qtype, ns_ip, client_hint, net, incoming_ecs,
                    at_root=at_root)
                if response is not None:
                    break
            if response is None:
                raise ResolutionError(f"no nameserver answered for {qname}")
            if response.rcode not in (Rcode.NOERROR,):
                return response, last_ecs

            answers = response.answer_rrset(qtype)
            if answers:
                return response, last_ecs
            cnames = response.answer_rrset(RecordType.CNAME)
            if cnames and qtype != RecordType.CNAME:
                target = cnames[-1].rdata.target  # type: ignore[attr-defined]
                chased, chased_ecs = self._resolve_iteratively(
                    target, qtype, client_hint, net, incoming_ecs, depth + 1)
                merged = chased.copy()
                merged.answers = list(response.answers) + list(chased.answers)
                return merged, chased_ecs or last_ecs
            referral_ns = [rr for rr in response.authority
                           if rr.rdtype == RecordType.NS]
            if referral_ns and not response.authoritative:
                glue = {str(rr.name): rr.rdata.address  # type: ignore[attr-defined]
                        for rr in response.additional
                        if rr.rdtype == RecordType.A}
                next_servers = []
                for rr in referral_ns:
                    target = rr.rdata.target  # type: ignore[attr-defined]
                    addr = glue.get(target.to_text().rstrip(".") + ".")
                    if addr is None:
                        addr = glue.get(target.to_text())
                    if addr is not None:
                        next_servers.append(addr)
                if not next_servers:
                    raise ResolutionError(f"glueless referral for {qname}")
                self._cache_delegation(referral_ns, next_servers)
                nameservers = next_servers
                at_root = False
                continue
            # NODATA / terminal answer without records of qtype.
            return response, last_ecs
        raise ResolutionError(f"referral chain too long for {qname}")

    def _starting_servers(self, qname: Name) -> Tuple[List[str], bool]:
        """Deepest cached delegation covering ``qname``, or the root hints.

        Real resolvers cache NS rrsets from referrals; without this every
        cache miss would hammer the root, which neither happens in practice
        nor scales in simulation.
        """
        now = self.clock.now()
        best: Optional[Tuple[Name, List[str]]] = None
        for zone, (servers, expiry) in list(self._delegations.items()):
            if expiry <= now:
                del self._delegations[zone]
                continue
            if qname.is_subdomain_of(zone):
                if best is None or len(zone) > len(best[0]):
                    best = (zone, servers)
        if best is not None:
            return list(best[1]), False
        return list(self.root_hints), True

    def _cache_delegation(self, referral_ns, server_ips: List[str]) -> None:
        zone = referral_ns[0].name
        ttl = min(rr.ttl for rr in referral_ns)
        self._delegations[zone] = (list(server_ips), self.clock.now() + ttl)

    def _order_nameservers(self, nameservers: List[str]) -> List[str]:
        """Prefer nameservers with the lowest smoothed RTT.

        Unprobed servers sort first (exploration), then by measured RTT —
        the standard server-selection heuristic of production resolvers.
        """
        return sorted(nameservers,
                      key=lambda ip: self._srtt.get(ip, -1.0))

    def _note_rtt(self, ns_ip: str, elapsed_ms: float) -> None:
        previous = self._srtt.get(ns_ip)
        if previous is None:
            self._srtt[ns_ip] = elapsed_ms
        else:
            self._srtt[ns_ip] = 0.7 * previous + 0.3 * elapsed_ms

    def _query_one(self, qname: Name, qtype: RecordType, ns_ip: str,
                   client_hint: str, net: Network,
                   incoming_ecs: Optional[EcsOption], at_root: bool
                   ) -> Tuple[Optional[Message], Optional[EcsOption]]:
        decision = self.probing.decide(qname, qtype, ns_ip,
                                       self.clock.now())
        if at_root and not self.policy.send_ecs_to_roots:
            decision = EcsDecision(False)
        ecs_opt = build_query_ecs(self.policy, decision, client_hint,
                                  self.ip, incoming_ecs,
                                  source_limit=self.probing
                                  .adapted_source_limit(ns_ip))
        use_edns = ns_ip not in self._no_edns_servers
        reg = _obs_metrics.ACTIVE
        if reg is not None:
            reg.counter("repro_resolver_upstream_queries_total",
                        "Probes sent upstream, by ECS decision.",
                        ("ecs",)).inc(
                1, "sent" if (ecs_opt is not None and use_edns) else "none")

        def make_query(edns_ok: bool, ecs_ok: bool) -> Message:
            q_edns = use_edns and edns_ok
            return Message.make_query(qname, qtype,
                                      msg_id=next(self._msg_ids) & 0xFFFF,
                                      recursion_desired=False,
                                      use_edns=q_edns,
                                      ecs=ecs_opt if (q_edns and ecs_ok)
                                      else None)

        def on_retry(reason: str, server_ip: str) -> None:
            if reason != "truncation":
                return
            reg2 = _obs_metrics.ACTIVE
            if reg2 is not None:
                reg2.counter("repro_resolver_tcp_fallback_total",
                             "Truncated answers retried over TCP.").inc()
            tracer = _obs_trace.ACTIVE
            if tracer is not None:
                tracer.event("tcp_fallback", resolver=self.ip,
                             ns=server_ip, qname=qname.to_text())

        def on_downgrade(kind: str, server_ip: str) -> None:
            if kind == "edns":
                # Pre-EDNS0 server: remember so future queries go plain.
                self._no_edns_servers.add(server_ip)

        result = execute_with_retries(net, self.ip, (ns_ip,), make_query,
                                      self.retry_policy, site="resolver",
                                      on_retry=on_retry,
                                      on_downgrade=on_downgrade)
        self.upstream_queries += result.attempts
        if result.response is None:
            # Penalize unresponsive servers heavily in selection.
            self._note_rtt(ns_ip, net.TIMEOUT_MS)
            return None, ecs_opt
        self._note_rtt(ns_ip, result.elapsed_ms)
        response = result.response
        # The ECS actually on the final query (None after a section 7.1
        # downgrade) is what validation and the cache must key on.
        sent_ecs = result.query_ecs
        if sent_ecs is not None:
            resp_ecs = response.ecs()
            valid = resp_ecs is not None and resp_ecs.matches_query(sent_ecs)
            self.probing.note_response(
                ns_ip, valid,
                scope=resp_ecs.scope_prefix_length if valid else None)
            if valid and reg is not None:
                reg.histogram("repro_resolver_scope_bits",
                              "Authoritative scope prefix lengths seen.",
                              buckets=(0, 8, 16, 20, 24, 28, 32, 48, 64,
                                       128)).observe(
                    resp_ecs.scope_prefix_length)
            if resp_ecs is not None and not valid:
                # RFC 7871 section 7.3: a mismatched ECS response option
                # must be ignored entirely.
                response.set_ecs(None)
        return response, sent_ecs
