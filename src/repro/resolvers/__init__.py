"""Resolver-side components: recursive resolvers, forwarders, anycast."""

from . import behaviors
from .anycast import AnycastFrontEnd, FrontEndLogRecord, PublicDnsService
from .base import DnsServer
from .forwarder import Forwarder, build_chain
from .recursive import RecursiveResolver

__all__ = [
    "AnycastFrontEnd", "DnsServer", "Forwarder", "FrontEndLogRecord",
    "PublicDnsService", "RecursiveResolver", "behaviors", "build_chain",
]
