"""Anycast public DNS resolution service (the All-Names Resolver's home).

The paper's fourth dataset comes from "a busy recursive resolver instance of
an anycast DNS resolution service": clients hit anycasted *front-ends*,
which forward queries to egress resolvers **while adding an ECS option
carrying the client's source IP address**; egress resolvers resolve and
return the authoritative ECS scope to the front-ends.  The front-end log of
(client address, authoritative scope) pairs is exactly the All-Names
Resolver dataset.

:class:`PublicDnsService` wires that architecture: N front-ends placed at
anycast sites, M egress resolvers that trust ECS only from their own
front-ends (external ECS gets replaced with the sender address, matching
the major public resolver's observed anti-spoofing behavior).
"""

from __future__ import annotations

import hashlib
import itertools
from dataclasses import dataclass
from typing import List, Optional, Sequence

from ..net.addr import prefix_text

from ..core.policies import EcsPolicy
from ..dnslib import EcsOption, Message, Rcode
from ..net.geo import City
from ..net.topology import AutonomousSystem, Topology
from ..net.transport import Network
from .base import DnsServer
from .recursive import RecursiveResolver


@dataclass
class FrontEndLogRecord:
    """One query/response pair as logged at a front-end.

    Matches the All-Names Resolver dataset schema: both the client IP and
    the authoritative ECS scope are present.
    """

    ts: float
    client_ip: str
    qname: str
    qtype: int
    scope: Optional[int]
    ttl: Optional[int]
    rcode: int


class AnycastFrontEnd(DnsServer):
    """A front-end: adds client-derived ECS, forwards to an egress."""

    span_name = "frontend"

    def __init__(self, ip: str, egress_ips: Sequence[str]):
        super().__init__(ip, log_queries=False)
        if not egress_ips:
            raise ValueError("front-end needs at least one egress resolver")
        self.egress_ips = list(egress_ips)
        self._msg_ids = itertools.count(1)
        self.frontend_log: List[FrontEndLogRecord] = []

    def _egress_for(self, src_ip: str) -> str:
        """Sticky egress selection: clients in one /16 (or /32 for IPv6)
        share an egress, so their queries share one cache."""
        bits = 16 if ":" not in src_ip else 32
        token = prefix_text(src_ip, bits)
        digest = hashlib.sha256(token.encode("ascii")).digest()
        return self.egress_ips[int.from_bytes(digest[:4], "big")
                               % len(self.egress_ips)]

    def handle_query(self, query: Message, src_ip: str,
                     net: Network) -> Optional[Message]:
        upstream = query.copy()
        upstream.msg_id = next(self._msg_ids) & 0xFFFF
        # The front-end conveys the *full* client address; the egress
        # resolver applies its own truncation policy before going upstream.
        width = 32 if ":" not in src_ip else 128
        upstream.set_ecs(EcsOption.from_client_address(src_ip, width))
        egress_ip = self._egress_for(src_ip)
        outcome = net.query(self.ip, egress_ip, upstream)
        if outcome.response is None:
            failed = query.make_response()
            failed.rcode = Rcode.SERVFAIL
            return failed
        reply = outcome.response.copy()
        reply.msg_id = query.msg_id
        resp_ecs = reply.ecs()
        if query.question is not None:
            self.frontend_log.append(FrontEndLogRecord(
                ts=net.clock.now(),
                client_ip=src_ip,
                qname=query.question.qname.to_text(),
                qtype=int(query.question.qtype),
                scope=resp_ecs.scope_prefix_length if resp_ecs else None,
                ttl=reply.min_ttl(),
                rcode=int(reply.rcode),
            ))
        if query.ecs() is None:
            reply.set_ecs(None)
        return reply


class PublicDnsService:
    """A complete anycast public resolution service."""

    def __init__(self, net: Network, service_as: AutonomousSystem,
                 root_hints: Sequence[str],
                 frontend_cities: Sequence[City],
                 egress_city: City,
                 egress_count: int = 2,
                 policy: Optional[EcsPolicy] = None):
        self.net = net
        self.egress_resolvers: List[RecursiveResolver] = []
        egress_ips = []
        for _ in range(egress_count):
            ip = service_as.host_in(egress_city)
            egress_ips.append(ip)
        self.frontends: List[AnycastFrontEnd] = []
        frontend_ips = []
        for c in frontend_cities:
            ip = service_as.host_in(c)
            frontend_ips.append(ip)
        trusted = frozenset(frontend_ips)
        for ip in egress_ips:
            resolver = RecursiveResolver(
                ip, net.clock, root_hints,
                policy=policy or EcsPolicy(),
                trusted_ecs_senders=trusted)
            net.attach(resolver)
            self.egress_resolvers.append(resolver)
        for ip in frontend_ips:
            fe = AnycastFrontEnd(ip, egress_ips)
            net.attach(fe)
            self.frontends.append(fe)

    @property
    def frontend_ips(self) -> List[str]:
        return [fe.ip for fe in self.frontends]

    @property
    def egress_ips(self) -> List[str]:
        return [r.ip for r in self.egress_resolvers]

    def combined_log(self) -> List[FrontEndLogRecord]:
        """All front-end log records, time-ordered."""
        records = [r for fe in self.frontends for r in fe.frontend_log]
        records.sort(key=lambda r: r.ts)
        return records
