"""Forwarders and hidden resolvers.

The paper's terminology (section 3): *ingress* resolvers take queries from
end hosts and usually just forward them — most of the open resolvers found
by the scan are home-router forwarders.  Some deployments interpose one or
more *hidden* resolvers between the ingress forwarder and the egress
(recursive) resolver.  Because many egress resolvers derive the ECS prefix
from the immediate sender of a query, a hidden resolver's address — not the
client's — ends up in the ECS option, which is how the paper discovers them
(section 8.2) and why they can wreck CDN mapping.

Both roles are :class:`Forwarder` instances; a hidden resolver is simply a
forwarder sitting mid-chain.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

from ..dnslib import Message, Rcode
from ..faults.retry import RetryPolicy, execute_with_retries
from ..net.transport import Network
from ..obs import metrics as _obs_metrics
from .base import DnsServer

#: Forwarders are transparent: fail over between upstreams but never
#: retry truncation (the client's own TCP fallback handles TC=1) and
#: never rewrite the query's EDNS/ECS on errors.
DEFAULT_FORWARDER_RETRY_POLICY = RetryPolicy(tcp_on_truncation=False)


class Forwarder(DnsServer):
    """Stateless query forwarder (ingress resolver or hidden resolver).

    ``strip_ecs`` models simple devices that drop unknown EDNS options;
    the default passes any client-supplied ECS through untouched ("blindly
    forward"), which is what lets the caching-behavior experiments inject
    arbitrary prefixes through some resolution paths.
    """

    span_name = "forward"

    def __init__(self, ip: str, upstreams: Sequence[str],
                 strip_ecs: bool = False,
                 retry_policy: Optional[RetryPolicy] = None):
        super().__init__(ip, log_queries=False)
        if not upstreams:
            raise ValueError("a forwarder needs at least one upstream")
        self.upstreams = list(upstreams)
        self.strip_ecs = strip_ecs
        self.retry_policy = retry_policy or DEFAULT_FORWARDER_RETRY_POLICY
        self._msg_ids = itertools.count(1)
        self.forwarded = 0

    def handle_query(self, query: Message, src_ip: str,
                     net: Network) -> Optional[Message]:
        base = query.copy()
        if self.strip_ecs:
            base.set_ecs(None)
        self.forwarded += 1
        reg = _obs_metrics.ACTIVE
        if reg is not None:
            reg.counter("repro_forwarder_forwarded_total",
                        "Queries passed upstream, by ECS handling.",
                        ("ecs_handling",)).inc(
                1, "strip" if self.strip_ecs else "pass")

        def make_query(edns_ok: bool, ecs_ok: bool) -> Message:
            msg = base.copy()
            msg.msg_id = next(self._msg_ids) & 0xFFFF
            if not ecs_ok:
                msg.set_ecs(None)
            if not edns_ok:
                msg.edns = None
            return msg

        result = execute_with_retries(net, self.ip, self.upstreams,
                                      make_query, self.retry_policy,
                                      site="forwarder")
        if result.response is not None:
            reply = result.response.copy()
            reply.msg_id = query.msg_id
            return reply
        failed = query.make_response()
        failed.rcode = Rcode.SERVFAIL
        return failed


def build_chain(net: Network, ips: Sequence[str],
                egress_ip: str) -> List[Forwarder]:
    """Wire a forwarding chain ``ips[0] -> ips[1] -> ... -> egress_ip``.

    Returns the created forwarders, head first.  ``ips[1:]`` play the role
    of hidden resolvers.
    """
    forwarders: List[Forwarder] = []
    hops = list(ips) + [egress_ip]
    for ip, nxt in zip(hops, hops[1:]):
        fwd = Forwarder(ip, [nxt])
        net.attach(fwd)
        forwarders.append(fwd)
    return forwarders
