"""Forwarders and hidden resolvers.

The paper's terminology (section 3): *ingress* resolvers take queries from
end hosts and usually just forward them — most of the open resolvers found
by the scan are home-router forwarders.  Some deployments interpose one or
more *hidden* resolvers between the ingress forwarder and the egress
(recursive) resolver.  Because many egress resolvers derive the ECS prefix
from the immediate sender of a query, a hidden resolver's address — not the
client's — ends up in the ECS option, which is how the paper discovers them
(section 8.2) and why they can wreck CDN mapping.

Both roles are :class:`Forwarder` instances; a hidden resolver is simply a
forwarder sitting mid-chain.
"""

from __future__ import annotations

import itertools
from typing import List, Optional, Sequence

from ..dnslib import Message, Rcode
from ..net.transport import Network
from ..obs import metrics as _obs_metrics
from .base import DnsServer


class Forwarder(DnsServer):
    """Stateless query forwarder (ingress resolver or hidden resolver).

    ``strip_ecs`` models simple devices that drop unknown EDNS options;
    the default passes any client-supplied ECS through untouched ("blindly
    forward"), which is what lets the caching-behavior experiments inject
    arbitrary prefixes through some resolution paths.
    """

    span_name = "forward"

    def __init__(self, ip: str, upstreams: Sequence[str],
                 strip_ecs: bool = False):
        super().__init__(ip, log_queries=False)
        if not upstreams:
            raise ValueError("a forwarder needs at least one upstream")
        self.upstreams = list(upstreams)
        self.strip_ecs = strip_ecs
        self._msg_ids = itertools.count(1)
        self.forwarded = 0

    def handle_query(self, query: Message, src_ip: str,
                     net: Network) -> Optional[Message]:
        upstream_query = query.copy()
        upstream_query.msg_id = next(self._msg_ids) & 0xFFFF
        if self.strip_ecs:
            upstream_query.set_ecs(None)
        self.forwarded += 1
        reg = _obs_metrics.ACTIVE
        if reg is not None:
            reg.counter("repro_forwarder_forwarded_total",
                        "Queries passed upstream, by ECS handling.",
                        ("ecs_handling",)).inc(
                1, "strip" if self.strip_ecs else "pass")
        for upstream in self.upstreams:
            outcome = net.query(self.ip, upstream, upstream_query)
            if outcome.response is not None:
                reply = outcome.response.copy()
                reply.msg_id = query.msg_id
                return reply
        failed = query.make_response()
        failed.rcode = Rcode.SERVFAIL
        return failed


def build_chain(net: Network, ips: Sequence[str],
                egress_ip: str) -> List[Forwarder]:
    """Wire a forwarding chain ``ips[0] -> ips[1] -> ... -> egress_ip``.

    Returns the created forwarders, head first.  ``ips[1:]`` play the role
    of hidden resolvers.
    """
    forwarders: List[Forwarder] = []
    hops = list(ips) + [egress_ip]
    for ip, nxt in zip(hops, hops[1:]):
        fwd = Forwarder(ip, [nxt])
        net.attach(fwd)
        forwarders.append(fwd)
    return forwarders
