"""Ready-made resolver behavior presets matching the paper's observations.

Each preset is an :class:`~repro.core.policies.EcsPolicy` reproducing one of
the behavior classes catalogued in sections 6.1–6.3 and 8.1.  Dataset
generators draw resolver populations from these presets with the paper's
observed proportions.
"""

from __future__ import annotations

from typing import Dict, FrozenSet

from ..core.policies import EcsPolicy, ProbingStrategy, ScopeHandling
from ..dnslib import Name


def _probe_names(*names: str) -> FrozenSet[Name]:
    return frozenset(Name.from_text(n) for n in names)


#: Fully compliant resolver (the 76 "correct behavior" resolvers): sends
#: /24 v4 and /56 v6 prefixes, honors scope, enforces scope<=source, never
#: forwards more than 24 bits even when clients supply longer prefixes.
COMPLIANT = EcsPolicy()

#: Sends ECS on 100% of A/AAAA queries (3382 of 4147 CDN-dataset resolvers).
ALWAYS_ECS = EcsPolicy(probing=ProbingStrategy.ALWAYS)

#: Sends ECS only for designated probe hostnames, with caching disabled for
#: them, re-querying within even 20-second TTLs (258 resolvers).
HOSTNAME_PROBER = EcsPolicy(
    probing=ProbingStrategy.PROBE_HOSTNAMES,
    probe_hostnames=_probe_names("probe.example.com"),
    bypass_cache_for_probes=True,
)

#: ECS probes at multiples of 30 minutes carrying the loopback address
#: (32 resolvers); a privacy-friendly but mapping-hostile approach.
INTERVAL_LOOPBACK_PROBER = EcsPolicy(
    probing=ProbingStrategy.INTERVAL_LOOPBACK,
    probe_interval=1800.0,
)

#: The paper's recommendation: probe with the resolver's own public address.
RECOMMENDED_PROBER = EcsPolicy(
    probing=ProbingStrategy.INTERVAL_OWN_ADDRESS,
    probe_interval=1800.0,
)

#: ECS for designated hostnames only on cache misses (88 resolvers).
ON_MISS_PROBER = EcsPolicy(
    probing=ProbingStrategy.HOSTNAMES_ON_MISS,
    probe_hostnames=_probe_names("probe.example.com"),
    bypass_cache_for_probes=False,
)

#: OpenDNS-style per-domain whitelist.
DOMAIN_WHITELISTER = EcsPolicy(
    probing=ProbingStrategy.DOMAIN_WHITELIST,
    whitelist_zones=(Name.from_text("cdn.example."),),
)

#: The dominant-AS behavior: /32 source prefixes whose last byte is jammed
#: to 0x01 — effectively /24 information mislabeled as /32 (section 6.2).
JAMMED_LAST_BYTE = EcsPolicy(jam_last_byte=0x01)

#: Variant jamming to 0x00.
JAMMED_LAST_BYTE_ZERO = EcsPolicy(jam_last_byte=0x00)

#: Sends full /32 prefixes with real last bytes: outright privacy violation.
FULL_PREFIX = EcsPolicy(source_prefix_v4=32, source_prefix_v6=128)

#: Sends /25 prefixes, exceeding the RFC's 24-bit recommendation while
#: adding no routing-level information (section 6.2).
PREFIX_25 = EcsPolicy(source_prefix_v4=25)

#: Reuses cached answers for any client, ignoring scope entirely (103 of
#: the 203 studied resolvers — over half).
SCOPE_IGNORER = EcsPolicy(scope_handling=ScopeHandling.IGNORE)

#: Accepts client prefixes longer than /24 and caches at those scopes
#: (15 resolvers).
OVER_24_ACCEPTOR = EcsPolicy(
    accept_client_ecs=True,
    source_prefix_v4=32,
    max_accepted_prefix_v4=32,
    enforce_scope_le_source=True,
)

#: Clamps everything at 22 bits: forwarded prefixes and cached scopes
#: (8 resolvers) — can wreck mapping at CDNs requiring /24 (section 8.3).
CLAMP_22 = EcsPolicy(
    accept_client_ecs=True,
    max_accepted_prefix_v4=22,
    source_prefix_v4=22,
    scope_handling=ScopeHandling.CLAMP,
    clamp_scope_bits=22,
)

#: Forwards arbitrary client ECS unmodified up to /24 (the open resolvers
#: the caching experiments drive directly).
ACCEPTS_CLIENT_ECS = EcsPolicy(
    accept_client_ecs=True,
    max_accepted_prefix_v4=24,
)

#: The misconfigured PowerDNS-style resolver of section 8.1: emits an ECS
#: prefix from 10.0.0.0/8 regardless of the client and cannot reuse
#: zero-scope answers.
PRIVATE_PREFIX_SENDER = EcsPolicy(
    fixed_prefix="10.0.0.0",
    fixed_prefix_len=8,
    cache_zero_scope=False,
)

#: Loopback-emitting PowerDNS-style configurations (33 resolvers in the
#: Scan dataset sent 127.0.0.1/32, 127.0.0.0/24 or 169.254.252.0/24).
LOOPBACK_32_SENDER = EcsPolicy(fixed_prefix="127.0.0.1", fixed_prefix_len=32)
LOOPBACK_24_SENDER = EcsPolicy(fixed_prefix="127.0.0.0", fixed_prefix_len=24)
LINK_LOCAL_SENDER = EcsPolicy(fixed_prefix="169.254.252.0", fixed_prefix_len=24)

#: RFC-violating resolver that sends ECS even to the root servers (15 seen
#: in the DITL data).
ROOT_ECS_VIOLATOR = EcsPolicy(send_ecs_to_roots=True,
                              send_ecs_for_ns_queries=True)

#: Plain resolver with ECS disabled (the overwhelming majority of the
#: 3.7M resolvers the CDN sees).
NO_ECS = EcsPolicy(probing=ProbingStrategy.NEVER)


#: Name → preset registry, for configuration-driven population building.
PRESETS: Dict[str, EcsPolicy] = {
    "compliant": COMPLIANT,
    "always_ecs": ALWAYS_ECS,
    "hostname_prober": HOSTNAME_PROBER,
    "interval_loopback_prober": INTERVAL_LOOPBACK_PROBER,
    "recommended_prober": RECOMMENDED_PROBER,
    "on_miss_prober": ON_MISS_PROBER,
    "domain_whitelister": DOMAIN_WHITELISTER,
    "jammed_last_byte": JAMMED_LAST_BYTE,
    "jammed_last_byte_zero": JAMMED_LAST_BYTE_ZERO,
    "full_prefix": FULL_PREFIX,
    "prefix_25": PREFIX_25,
    "scope_ignorer": SCOPE_IGNORER,
    "over_24_acceptor": OVER_24_ACCEPTOR,
    "clamp_22": CLAMP_22,
    "accepts_client_ecs": ACCEPTS_CLIENT_ECS,
    "private_prefix_sender": PRIVATE_PREFIX_SENDER,
    "loopback_32_sender": LOOPBACK_32_SENDER,
    "loopback_24_sender": LOOPBACK_24_SENDER,
    "link_local_sender": LINK_LOCAL_SENDER,
    "root_ecs_violator": ROOT_ECS_VIOLATOR,
    "no_ecs": NO_ECS,
}
