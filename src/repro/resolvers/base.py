"""Shared base for resolver-side endpoints.

Re-exports the datagram plumbing of :class:`repro.auth.server.DnsServer` so
resolver classes live in their own package without duplicating the wire
handling.
"""

from __future__ import annotations

from ..auth.server import DnsServer

__all__ = ["DnsServer"]
