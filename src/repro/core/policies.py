"""Resolver-side ECS policy: probing strategies and source prefix selection.

Section 6.1 of the paper identifies four probing patterns among ECS-enabled
resolvers (plus a residue with no discernible pattern), and section 6.2
catalogs the source-prefix-length policies, including the "jammed last byte"
/32s common among Chinese ISPs.  :class:`EcsPolicy` captures every knob as
data so resolver populations with the paper's behavior mix can be
instantiated from configuration.
"""

from __future__ import annotations

import enum
import ipaddress
from dataclasses import dataclass, field, replace
from typing import Dict, FrozenSet, Optional, Tuple, Union

from ..dnslib import EcsOption, Name, RecordType
from ..net.addr import truncate_address

IPAddressLike = Union[str, ipaddress.IPv4Address, ipaddress.IPv6Address]


class ProbingStrategy(enum.Enum):
    """When a resolver attaches ECS to queries toward an authoritative."""

    #: Send ECS on every A/AAAA query (3382 of 4147 resolvers in the CDN
    #: dataset; indistinguishable from a whitelist that includes the CDN).
    ALWAYS = "always"
    #: Send ECS consistently but only for designated probe hostnames, with
    #: caching disabled for those names (258 resolvers).
    PROBE_HOSTNAMES = "probe_hostnames"
    #: Send an ECS probe carrying the loopback address every multiple of a
    #: fixed interval, non-ECS queries otherwise (32 resolvers).
    INTERVAL_LOOPBACK = "interval_loopback"
    #: Send ECS for designated hostnames only on a cache miss (88 resolvers).
    HOSTNAMES_ON_MISS = "hostnames_on_miss"
    #: Only send ECS to whitelisted zones (OpenDNS-style).
    DOMAIN_WHITELIST = "domain_whitelist"
    #: The paper's recommendation: probe with the resolver's *own public
    #: address* instead of loopback, preserving privacy without confusing
    #: the authoritative mapping.
    INTERVAL_OWN_ADDRESS = "interval_own_address"
    #: Never send ECS (the vast majority of all resolvers).
    NEVER = "never"


class ScopeHandling(enum.Enum):
    """Mirror of :class:`repro.core.cache.ScopeMode` for policy wiring."""

    HONOR = "honor"
    IGNORE = "ignore"
    CLAMP = "clamp"


@dataclass(frozen=True)
class EcsPolicy:
    """Complete ECS behavior configuration for one recursive resolver."""

    probing: ProbingStrategy = ProbingStrategy.ALWAYS
    #: Hostnames used for PROBE_HOSTNAMES / HOSTNAMES_ON_MISS strategies.
    probe_hostnames: FrozenSet[Name] = frozenset()
    #: Interval for INTERVAL_* strategies, seconds (paper observes 30 min).
    probe_interval: float = 1800.0
    #: Zones receiving ECS under DOMAIN_WHITELIST.
    whitelist_zones: Tuple[Name, ...] = ()

    #: Source prefix lengths (RFC recommends at most 24 / 56).
    source_prefix_v4: int = 24
    source_prefix_v6: int = 56
    #: When set, send full-length prefixes with the last byte forced to this
    #: value (the /32 "jammed last byte" behavior, usually 0x01 or 0x00).
    jam_last_byte: Optional[int] = None
    #: Forward arbitrary client-supplied ECS instead of deriving from the
    #: query's source address.
    accept_client_ecs: bool = False
    #: Clamp accepted/forwarded client prefixes to this many bits
    #: (the 8 resolvers clamping at 22; None = no clamp beyond family max).
    max_accepted_prefix_v4: Optional[int] = None
    #: Always send this fixed prefix instead of real client data (the
    #: misconfigured resolver emitting 10.0.0.0/8).
    fixed_prefix: Optional[str] = None
    fixed_prefix_len: int = 8

    #: Cache behavior.
    scope_handling: ScopeHandling = ScopeHandling.HONOR
    clamp_scope_bits: int = 22
    enforce_scope_le_source: bool = True
    cache_zero_scope: bool = True
    #: PROBE_HOSTNAMES resolvers answer probe names upstream even on a hit.
    bypass_cache_for_probes: bool = True

    #: RFC violations the paper checks for explicitly.
    send_ecs_for_ns_queries: bool = False
    send_ecs_to_roots: bool = False

    #: Section 9 extension: adapt the source prefix length per
    #: authoritative server to the scopes it returns (never send more bits
    #: than the server has ever used).  Saves privacy at CDNs with coarse
    #: mapping — at the risk section 8.3 documents, since CDNs ignore ECS
    #: below their thresholds without warning.
    adapt_source_to_scope: bool = False

    def with_(self, **changes) -> "EcsPolicy":
        """A modified copy (dataclass ``replace`` convenience)."""
        return replace(self, **changes)


#: The RFC-recommended configuration (and the paper's recommendation of
#: probing with the resolver's own address).
COMPLIANT_POLICY = EcsPolicy()


@dataclass
class AuthoritativeEcsState:
    """What a resolver knows about one authoritative server's ECS support."""

    supports_ecs: Optional[bool] = None
    last_probe: Optional[float] = None
    #: Most recent scope prefix length returned (for adaptive sourcing).
    #: Latest-wins keeps the resolver responsive to authoritative policy
    #: changes in either direction; a server that stops using fine scopes
    #: immediately stops receiving fine prefixes.
    last_scope_seen: Optional[int] = None


@dataclass
class EcsDecision:
    """The outcome of the per-query policy evaluation."""

    send_ecs: bool
    #: Send the loopback address instead of client data (probing quirk).
    use_loopback: bool = False
    #: Send the resolver's own public address (paper's recommendation).
    use_own_address: bool = False


class ProbingEngine:
    """Evaluates an :class:`EcsPolicy` per query.

    Tracks per-authoritative probe timing so INTERVAL_* strategies fire at
    multiples of the configured interval, as observed in the paper.
    """

    def __init__(self, policy: EcsPolicy):
        self.policy = policy
        self._auth_state: Dict[str, AuthoritativeEcsState] = {}

    def state_for(self, auth_ip: str) -> AuthoritativeEcsState:
        return self._auth_state.setdefault(auth_ip, AuthoritativeEcsState())

    def note_response(self, auth_ip: str, had_valid_ecs: bool,
                      scope: Optional[int] = None) -> None:
        """Record whether the authoritative echoed a valid ECS option
        (and, for adaptive sourcing, the scope it used)."""
        state = self.state_for(auth_ip)
        state.supports_ecs = had_valid_ecs
        if had_valid_ecs and scope is not None and scope > 0:
            state.last_scope_seen = scope

    def adapted_source_limit(self, auth_ip: str) -> Optional[int]:
        """For adaptive policies: the prefix-length cap learned for
        ``auth_ip`` (None until a scoped response has been seen)."""
        if not self.policy.adapt_source_to_scope:
            return None
        return self.state_for(auth_ip).last_scope_seen

    def decide(self, qname: Name, qtype: RecordType, auth_ip: str,
               now: float, cache_hit: bool = False) -> EcsDecision:
        """Should this query to ``auth_ip`` carry ECS, and of what kind?"""
        policy = self.policy
        if qtype not in (RecordType.A, RecordType.AAAA):
            if not policy.send_ecs_for_ns_queries:
                return EcsDecision(False)
        strategy = policy.probing
        if strategy is ProbingStrategy.NEVER:
            return EcsDecision(False)
        if strategy is ProbingStrategy.ALWAYS:
            return EcsDecision(True)
        if strategy is ProbingStrategy.DOMAIN_WHITELIST:
            in_zone = any(qname.is_subdomain_of(z) for z in policy.whitelist_zones)
            return EcsDecision(in_zone)
        if strategy is ProbingStrategy.PROBE_HOSTNAMES:
            return EcsDecision(qname in policy.probe_hostnames)
        if strategy is ProbingStrategy.HOSTNAMES_ON_MISS:
            return EcsDecision(qname in policy.probe_hostnames and not cache_hit)
        if strategy in (ProbingStrategy.INTERVAL_LOOPBACK,
                        ProbingStrategy.INTERVAL_OWN_ADDRESS):
            state = self.state_for(auth_ip)
            due = (state.last_probe is None
                   or now - state.last_probe >= policy.probe_interval)
            if not due:
                return EcsDecision(False)
            state.last_probe = now
            if strategy is ProbingStrategy.INTERVAL_LOOPBACK:
                return EcsDecision(True, use_loopback=True)
            return EcsDecision(True, use_own_address=True)
        raise AssertionError(f"unhandled strategy {strategy}")


def build_query_ecs(policy: EcsPolicy, decision: EcsDecision,
                    client_ip: IPAddressLike,
                    resolver_ip: str,
                    incoming_ecs: Optional[EcsOption] = None,
                    source_limit: Optional[int] = None) -> Optional[EcsOption]:
    """Construct the ECS option a resolver sends upstream, per its policy.

    ``incoming_ecs`` is an option the client/forwarder supplied; it is only
    used when the policy accepts client ECS (many resolvers, including the
    major public service in the paper, override it with the sender address).
    ``source_limit`` caps the IPv4 prefix length (adaptive sourcing).
    """
    if not decision.send_ecs:
        return None
    if decision.use_loopback:
        return EcsOption.from_client_address("127.0.0.1", 32)
    if decision.use_own_address:
        return EcsOption.from_client_address(resolver_ip, None)
    if policy.fixed_prefix is not None:
        return EcsOption.from_client_address(policy.fixed_prefix,
                                             policy.fixed_prefix_len)

    if policy.accept_client_ecs and incoming_ecs is not None:
        source = incoming_ecs.source_prefix_length
        limit = (policy.max_accepted_prefix_v4
                 if incoming_ecs.family == 1 else None)
        if limit is None and incoming_ecs.family == 1:
            limit = policy.source_prefix_v4
        if limit is not None:
            source = min(source, limit)
        # RFC 7871 section 7.1.2: a forwarding resolver may shorten, never
        # lengthen, the client-supplied prefix.
        return EcsOption.from_client_address(incoming_ecs.address, source)

    addr = ipaddress.ip_address(client_ip)
    if addr.version == 4:
        if policy.jam_last_byte is not None:
            jammed = (int(truncate_address(addr, 24))
                      | (policy.jam_last_byte & 0xFF))
            return EcsOption(1, 32, 0, ipaddress.IPv4Address(jammed))
        source = policy.source_prefix_v4
        if source_limit is not None:
            source = min(source, source_limit)
        return EcsOption.from_client_address(addr, source)
    return EcsOption.from_client_address(addr, policy.source_prefix_v6)
