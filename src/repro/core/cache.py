"""ECS-aware DNS caching (the paper's central mechanism).

RFC 7871 requires a resolver to key cached answers by the *scope* prefix the
authoritative server returned: an answer with scope /16 may be reused for
any client inside that /16 until the TTL expires, while scope /24 answers
must not leak across /24 boundaries, and scope 0 answers are global.  The
paper (section 6.3) finds resolvers that honor this, resolvers that ignore
it entirely, resolvers that clamp every scope to /22, and one that cannot
cache zero-scope answers at all.  :class:`EcsCache` implements all of those
as configuration, so the same machine reproduces both the compliant and each
deviant behavior.
"""

from __future__ import annotations

import enum
import heapq
import ipaddress
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Union

from ..dnslib import EcsOption, Message, Name, RecordType
from ..net.addr import parse_addr, prefix_key, prefix_key_int
from ..net.clock import SimClock
from ..obs import metrics as _obs_metrics

IPAddressLike = Union[str, ipaddress.IPv4Address, ipaddress.IPv6Address]


class ScopeMode(enum.Enum):
    """How a resolver treats the scope prefix length when caching."""

    #: RFC-compliant: key the entry by the returned scope.
    HONOR = "honor"
    #: The 103-resolver behavior: reuse cached answers for any client.
    IGNORE = "ignore"
    #: The 8-resolver behavior: never use more than ``clamp_bits`` bits.
    CLAMP = "clamp"


def effective_scope(response_scope: int, query_source: int,
                    enforce_scope_le_source: bool = True) -> int:
    """The scope a compliant resolver caches at.

    RFC 7871 section 7.3.1: a scope longer than the query's source prefix is
    a server error; compliant resolvers fall back to the source length (the
    paper verifies 9 resolvers doing exactly this).
    """
    if enforce_scope_le_source and response_scope > query_source:
        return query_source
    return response_scope


@dataclass
class CacheStats:
    """Counters for one cache instance."""

    hits: int = 0
    misses: int = 0
    insertions: int = 0
    expirations: int = 0
    evictions: int = 0
    max_size: int = 0

    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when idle)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


@dataclass(slots=True)
class _Entry:
    scope_bits: Optional[int]          # None => non-ECS (global) entry
    net_key: Optional[Tuple[int, int, int]]  # prefix key at scope_bits
    family: Optional[int]              # 4 or 6; None for global entries
    response: Message
    inserted_at: float
    expires_at: float
    last_used: float = 0.0


class EcsCache:
    """A resolver cache with configurable ECS scope handling.

    Entries live under (qname, qtype).  Multiple entries per key coexist when
    their scopes differ — exactly the state blow-up the paper quantifies in
    section 7.
    """

    def __init__(self, clock: SimClock,
                 scope_mode: ScopeMode = ScopeMode.HONOR,
                 clamp_bits: int = 22,
                 enforce_scope_le_source: bool = True,
                 cache_zero_scope: bool = True,
                 min_ttl: int = 0,
                 max_ttl: Optional[int] = None,
                 max_entries: Optional[int] = None):
        self.clock = clock
        self.scope_mode = scope_mode
        self.clamp_bits = clamp_bits
        self.enforce_scope_le_source = enforce_scope_le_source
        self.cache_zero_scope = cache_zero_scope
        self.min_ttl = min_ttl
        self.max_ttl = max_ttl
        #: Capacity bound; exceeding it evicts least-recently-used entries
        #: (the premature-eviction pressure the paper's section 7 warns ECS
        #: creates).  ``None`` = unbounded, the paper's simulation setting.
        self.max_entries = max_entries
        self.stats = CacheStats()
        self._entries: Dict[Tuple[Name, int], List[_Entry]] = {}

    # -- inspection --------------------------------------------------------

    def size(self) -> int:
        """Number of live (non-expired) entries."""
        now = self.clock.now()
        return sum(1 for entries in self._entries.values()
                   for e in entries if e.expires_at > now)

    def entries_for(self, qname: Name, qtype: RecordType) -> List[_Entry]:
        """Live entries for one question (test/analysis hook)."""
        now = self.clock.now()
        return [e for e in self._entries.get((qname, int(qtype)), [])
                if e.expires_at > now]

    # -- lookup ------------------------------------------------------------

    def lookup(self, qname: Name, qtype: RecordType,
               client: Optional[IPAddressLike] = None) -> Optional[Message]:
        """Return an aged copy of a cached response usable for ``client``.

        Under :attr:`ScopeMode.IGNORE` any live entry matches regardless of
        the client address (the non-compliant reuse the paper observed).
        """
        key = (qname, int(qtype))
        entries = self._entries.get(key)
        if not entries:
            self.stats.misses += 1
            self._count("miss")
            return None
        now = self.clock.now()
        live = [e for e in entries if e.expires_at > now]
        if len(live) != len(entries):
            self.stats.expirations += len(entries) - len(live)
            self._count("expired", len(entries) - len(live))
            self._entries[key] = live
        for entry in live:
            if self._entry_matches(entry, client):
                self.stats.hits += 1
                entry.last_used = now
                self._count("hit")
                return self._aged_copy(entry, now)
        self.stats.misses += 1
        self._count("miss")
        return None

    @staticmethod
    def _count(event: str, amount: int = 1) -> None:
        """Out-of-band cache event counter; free when metrics are off."""
        reg = _obs_metrics.ACTIVE
        if reg is not None:
            reg.counter("repro_cache_events_total",
                        "EcsCache events (hit/miss/insert/evict/expired).",
                        ("event",)).inc(amount, event)

    def _entry_matches(self, entry: _Entry,
                       client: Optional[IPAddressLike]) -> bool:
        if entry.scope_bits is None or self.scope_mode is ScopeMode.IGNORE:
            return True
        if entry.scope_bits == 0:
            return True
        if client is None:
            return False
        version, value = parse_addr(client)
        if entry.family is not None and version != entry.family:
            return False
        return prefix_key_int(version, value, entry.scope_bits) == entry.net_key

    def _aged_copy(self, entry: _Entry, now: float) -> Message:
        response = entry.response.copy()
        age = int(now - entry.inserted_at)
        for section in (response.answers, response.authority, response.additional):
            section[:] = [rr.with_ttl(max(0, rr.ttl - age)) for rr in section]
        return response

    # -- store -------------------------------------------------------------

    def store(self, qname: Name, qtype: RecordType, response: Message,
              query_ecs: Optional[EcsOption] = None) -> bool:
        """Insert ``response``; returns False when policy refuses to cache.

        ``query_ecs`` is the ECS option the resolver *sent*; it supplies the
        source prefix length for the scope<=source rule and the client
        prefix the entry is keyed under.
        """
        ttl = response.min_ttl()
        if ttl is None:
            # Negative caching (RFC 2308): lifetime is the minimum of the
            # SOA's TTL and its MINIMUM field, falling back to 60 s.
            ttl = 60
            for rr in response.authority:
                if rr.rdtype == RecordType.SOA:
                    ttl = min(rr.ttl, rr.rdata.minimum)  # type: ignore[attr-defined]
                    break
        ttl = max(ttl, self.min_ttl)
        if self.max_ttl is not None:
            ttl = min(ttl, self.max_ttl)
        now = self.clock.now()

        resp_ecs = response.ecs()
        scope_bits: Optional[int] = None
        net_key = None
        family = None
        if resp_ecs is not None and query_ecs is not None:
            scope = effective_scope(resp_ecs.scope_prefix_length,
                                    query_ecs.source_prefix_length,
                                    self.enforce_scope_le_source)
            if self.scope_mode is ScopeMode.CLAMP:
                scope = min(scope, self.clamp_bits)
            if scope == 0 and not self.cache_zero_scope:
                return False
            scope_bits = scope
            family = 4 if query_ecs.family == 1 else 6
            version, value = parse_addr(query_ecs.address)
            net_key = prefix_key_int(version, value, scope_bits)

        entry = _Entry(scope_bits, net_key, family, response.copy(),
                       now, now + ttl, last_used=now)
        key = (qname, int(qtype))
        entries = self._entries.setdefault(key, [])
        entries[:] = [e for e in entries if e.expires_at > now
                      and not (e.scope_bits == entry.scope_bits
                               and e.net_key == entry.net_key)]
        entries.append(entry)
        self.stats.insertions += 1
        self._count("insert")
        if self.max_entries is not None:
            self._enforce_capacity()
        self.stats.max_size = max(self.stats.max_size, self.size())
        reg = _obs_metrics.ACTIVE
        if reg is not None:
            reg.gauge("repro_cache_max_entries",
                      "Peak live cache entries (high watermark).",
                      mode="max").set_max(self.stats.max_size)
        return True

    def _enforce_capacity(self) -> None:
        """Evict least-recently-used live entries above ``max_entries``."""
        now = self.clock.now()
        live: List[Tuple[Tuple[Name, int], _Entry]] = [
            (key, e) for key, entries in self._entries.items()
            for e in entries if e.expires_at > now]
        overflow = len(live) - self.max_entries
        if overflow <= 0:
            return
        live.sort(key=lambda pair: pair[1].last_used)
        doomed = {id(e) for _, e in live[:overflow]}
        for key in list(self._entries):
            kept = [e for e in self._entries[key] if id(e) not in doomed]
            if kept:
                self._entries[key] = kept
            else:
                del self._entries[key]
        self.stats.evictions += overflow
        self._count("evict", overflow)

    def flush(self) -> None:
        """Drop everything (does not reset stats)."""
        self._entries.clear()


class ScopeTracker:
    """Lightweight scope-keyed cache used by the trace-driven simulations.

    Stores only (key, expiry) pairs — no response bodies — so replaying the
    multi-million-query datasets of section 7 stays fast.  The keying logic
    matches :class:`EcsCache` under the replay model's assumption that the
    authoritative scope is stable per (qname, qtype) — true of the paper's
    traces and of every generator here; the differential test in
    ``tests/test_export_and_differential.py`` verifies the agreement.
    """

    def __init__(self, use_ecs: bool = True, fast: bool = True):
        self.use_ecs = use_ecs
        #: ``fast=False`` keys through the readable ``ipaddress``-based
        #: reference (``prefix_key``) instead of the integer fast lane.
        #: Both produce identical keys — the flag exists so benchmarks and
        #: the equivalence suite can exercise the reference path.
        self.fast = fast
        self._expiry: Dict[tuple, float] = {}
        self._heap: List[Tuple[float, tuple]] = []
        self.current_size = 0
        self.max_size = 0
        self.hits = 0
        self.misses = 0

    def _key(self, qname: str, qtype: int, client: Optional[str],
             scope: int) -> tuple:
        if not self.use_ecs or scope == 0 or client is None:
            return (qname, qtype)
        if self.fast:
            version, value = parse_addr(client)
            return (qname, qtype) + prefix_key_int(version, value, scope)
        return (qname, qtype) + prefix_key(client, scope)

    def access(self, now: float, qname: str, qtype: int,
               client: Optional[str], scope: int, ttl: float) -> bool:
        """Replay one query; returns True on a cache hit.

        On a miss the response (with the given authoritative ``scope`` and
        ``ttl``) is inserted, mirroring a resolver that forwards the query
        and caches the answer.
        """
        self._purge(now)
        key = self._key(qname, qtype, client, scope)
        expiry = self._expiry.get(key)
        if expiry is not None and expiry > now:
            self.hits += 1
            return True
        self.misses += 1
        self._expiry[key] = now + ttl
        heapq.heappush(self._heap, (now + ttl, key))
        self.current_size = len(self._expiry)
        if self.current_size > self.max_size:
            self.max_size = self.current_size
        return False

    def _purge(self, now: float) -> None:
        # Heap of (expiry, key) with lazy deletion: an entry is stale when
        # the live table holds a newer expiry for its key (re-insertion).
        heap = self._heap
        expiry_map = self._expiry
        while heap and heap[0][0] <= now:
            expiry, key = heapq.heappop(heap)
            current = expiry_map.get(key)
            if current is not None and current <= now:
                del expiry_map[key]
        self.current_size = len(expiry_map)

    def hit_rate(self) -> float:
        """Fraction of replayed queries answered from cache."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
