"""Core ECS machinery: scope-keyed caching, policies, and classifiers."""

from .cache import (CacheStats, EcsCache, ScopeMode, ScopeTracker,
                    effective_scope)
from .classify import (CachingCategory, CachingProbeOutcome,
                       PrefixProfile, ProbingCategory,
                       ProbingClassification, QueryObservation,
                       classify_caching, classify_probing,
                       prefix_length_profile)
from .policies import (COMPLIANT_POLICY, AuthoritativeEcsState, EcsDecision,
                       EcsPolicy, ProbingEngine, ProbingStrategy,
                       ScopeHandling, build_query_ecs)

__all__ = [
    "AuthoritativeEcsState", "COMPLIANT_POLICY", "CacheStats",
    "CachingCategory", "CachingProbeOutcome", "EcsCache", "EcsDecision",
    "EcsPolicy", "PrefixProfile", "ProbingCategory",
    "ProbingClassification", "ProbingEngine", "ProbingStrategy",
    "QueryObservation", "ScopeHandling", "ScopeMode", "ScopeTracker",
    "build_query_ecs", "classify_caching", "classify_probing",
    "effective_scope", "prefix_length_profile",
]
