"""Behavior classification — the analysis side of sections 6.1–6.3.

Two families of classifiers:

* **Log-driven** (:func:`classify_probing`, :func:`prefix_length_profile`):
  take the query log one authoritative server keeps for a single resolver
  and recover the resolver's probing strategy and source-prefix policy, with
  the same heuristics the paper applies to the CDN dataset.

* **Probe-driven** (:func:`classify_caching`): take the outcome of the
  section 6.3 twin-query experiment and bucket the resolver into the
  caching-behavior categories the paper reports.
"""

from __future__ import annotations

import enum
import ipaddress
import math
from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Set, Tuple

#: Queries for the same name closer together than this are "within a short
#: time window" for the on-miss heuristic (the paper uses one minute).
ON_MISS_WINDOW_S = 60.0
#: Tolerance when testing whether probe intervals are multiples of the base.
INTERVAL_TOLERANCE_S = 90.0


class ProbingCategory(enum.Enum):
    """Section 6.1's probing behavior patterns."""

    ALWAYS_ECS = "always_ecs"
    HOSTNAME_PROBES = "hostname_probes"
    INTERVAL_LOOPBACK = "interval_loopback"
    HOSTNAMES_ON_MISS = "hostnames_on_miss"
    MIXED = "mixed"
    NO_ECS = "no_ecs"


class CachingCategory(enum.Enum):
    """Section 6.3's caching behavior buckets."""

    CORRECT = "correct"
    IGNORES_SCOPE = "ignores_scope"
    ACCEPTS_OVER_24 = "accepts_over_24"
    CLAMPS_AT_22 = "clamps_at_22"
    PRIVATE_PREFIX = "private_prefix"
    UNCLASSIFIED = "unclassified"


@dataclass
class QueryObservation:
    """One query as seen by an authoritative server's log.

    This is the minimal shape the classifiers need; the dataset generators
    produce richer records that duck-type to it.
    """

    ts: float
    qname: str
    qtype: int
    has_ecs: bool
    ecs_address: Optional[str] = None
    ecs_source_len: Optional[int] = None


@dataclass
class ProbingClassification:
    """Classifier verdict plus the evidence used to reach it."""

    category: ProbingCategory
    ecs_fraction: float
    ecs_hostnames: Set[str] = field(default_factory=set)
    interval_estimate: Optional[float] = None
    uses_loopback: bool = False


def _is_loopback(address: Optional[str]) -> bool:
    if address is None:
        return False
    try:
        return ipaddress.ip_address(address).is_loopback
    except ValueError:
        return False


def classify_probing(observations: Sequence[QueryObservation],
                     record_ttl: float = 20.0) -> ProbingClassification:
    """Recover a resolver's probing strategy from one authoritative's log.

    Mirrors the paper's heuristics: resolvers sending ECS on 100% of
    A/AAAA queries are ALWAYS_ECS; ECS confined to specific hostnames is
    HOSTNAME_PROBES when re-queried within the TTL (caching disabled) and
    HOSTNAMES_ON_MISS when re-queries never fall inside a short window;
    loopback ECS at multiples of a fixed interval is INTERVAL_LOOPBACK.
    """
    addr_queries = [o for o in observations if o.qtype in (1, 28)]
    if not addr_queries:
        return ProbingClassification(ProbingCategory.NO_ECS, 0.0)
    ecs_queries = [o for o in addr_queries if o.has_ecs]
    fraction = len(ecs_queries) / len(addr_queries)
    if fraction == 0.0:
        return ProbingClassification(ProbingCategory.NO_ECS, 0.0)
    if fraction == 1.0:
        return ProbingClassification(ProbingCategory.ALWAYS_ECS, 1.0)

    ecs_names = {o.qname for o in ecs_queries}
    all_loopback = all(_is_loopback(o.ecs_address) for o in ecs_queries)
    if all_loopback and len(ecs_names) == 1:
        interval = _interval_base([o.ts for o in ecs_queries])
        if interval is not None:
            return ProbingClassification(
                ProbingCategory.INTERVAL_LOOPBACK, fraction,
                ecs_hostnames=ecs_names, interval_estimate=interval,
                uses_loopback=True)

    # ECS confined to designated hostnames?
    per_name: Dict[str, List[QueryObservation]] = defaultdict(list)
    for o in addr_queries:
        per_name[o.qname].append(o)
    confined = all(
        all(x.has_ecs for x in per_name[name] if x.qtype in (1, 28))
        for name in ecs_names)
    if confined:
        repeats_within_ttl = _has_repeat_within(ecs_queries, record_ttl)
        if repeats_within_ttl:
            return ProbingClassification(
                ProbingCategory.HOSTNAME_PROBES, fraction,
                ecs_hostnames=ecs_names)
        if not _has_repeat_within(ecs_queries, ON_MISS_WINDOW_S):
            return ProbingClassification(
                ProbingCategory.HOSTNAMES_ON_MISS, fraction,
                ecs_hostnames=ecs_names)
    return ProbingClassification(ProbingCategory.MIXED, fraction,
                                 ecs_hostnames=ecs_names)


def _has_repeat_within(queries: Sequence[QueryObservation],
                       window: float) -> bool:
    """True if any hostname is queried twice within ``window`` seconds."""
    last_seen: Dict[str, float] = {}
    for o in sorted(queries, key=lambda x: x.ts):
        prev = last_seen.get(o.qname)
        if prev is not None and o.ts - prev <= window:
            return True
        last_seen[o.qname] = o.ts
    return False


def _interval_base(timestamps: Sequence[float],
                   minimum: float = 600.0) -> Optional[float]:
    """If successive gaps are all ≈ multiples of one base interval, return it."""
    ts = sorted(timestamps)
    gaps = [b - a for a, b in zip(ts, ts[1:]) if b - a > 1.0]
    if not gaps:
        return None
    base = min(gaps)
    if base < minimum:
        return None
    for gap in gaps:
        ratio = gap / base
        if abs(ratio - round(ratio)) * base > INTERVAL_TOLERANCE_S:
            return None
    return base


# ---------------------------------------------------------------------------
# source prefix lengths (Table 1)


@dataclass
class PrefixProfile:
    """Source-prefix-length evidence for one resolver (a Table 1 row)."""

    v4_lengths: Set[int] = field(default_factory=set)
    v6_lengths: Set[int] = field(default_factory=set)
    jammed_last_byte: Optional[int] = None

    def table1_label(self) -> str:
        """The label this resolver contributes to in Table 1."""
        parts: List[str] = []
        if self.v4_lengths:
            v4 = ",".join(str(x) for x in sorted(self.v4_lengths))
            if self.jammed_last_byte is not None:
                parts.append(f"{v4}/jammed last byte")
            else:
                parts.append(v4)
        if self.v6_lengths:
            v6 = ",".join(str(x) for x in sorted(self.v6_lengths))
            parts.append(f"{v6} (IPv6)")
        return " + ".join(parts) if parts else "none"


def prefix_length_profile(observations: Sequence[QueryObservation]
                          ) -> PrefixProfile:
    """Collect the source prefix lengths one resolver sends, with jam
    detection: /32 (or /25+) IPv4 prefixes whose final byte is constant
    reveal the "jammed last byte" pseudo-truncation of section 6.2."""
    profile = PrefixProfile()
    full_length_last_bytes: Set[int] = set()
    saw_full_length = False
    for o in observations:
        if not o.has_ecs or o.ecs_source_len is None or o.ecs_address is None:
            continue
        addr = ipaddress.ip_address(o.ecs_address)
        if addr.version == 4:
            profile.v4_lengths.add(o.ecs_source_len)
            # The "jammed last byte" pattern applies to full-length /32
            # prefixes only (section 6.2); /25–/31 prefixes are judged on
            # their own.
            if o.ecs_source_len == 32:
                saw_full_length = True
                full_length_last_bytes.add(int(addr) & 0xFF)
        else:
            profile.v6_lengths.add(o.ecs_source_len)
    if saw_full_length and len(full_length_last_bytes) == 1:
        byte = next(iter(full_length_last_bytes))
        if byte in (0x00, 0x01):
            profile.jammed_last_byte = byte
    return profile


# ---------------------------------------------------------------------------
# caching behavior (section 6.3)


@dataclass
class CachingProbeOutcome:
    """Results of the twin-query experiment against one resolver.

    Each ``second_query_seen_scope{24,16,0}`` field answers: after priming
    the cache with a query from one /24 and returning the given scope, did
    the *second* query (from a different /24, same /16) reach the
    authoritative server?  ``True`` means the resolver treated it as a miss.
    """

    second_query_seen_scope24: Optional[bool] = None
    second_query_seen_scope16: Optional[bool] = None
    second_query_seen_scope0: Optional[bool] = None
    #: Longest source prefix observed at the authoritative from this
    #: resolver when arbitrary client prefixes were submitted.
    max_prefix_forwarded: Optional[int] = None
    #: The clamp the resolver imposes on forwarded prefixes, if detected.
    forwarding_clamp: Optional[int] = None
    #: Resolver emitted ECS from a private/loopback block.
    sends_private_prefix: bool = False
    #: Resolver failed to reuse zero-scope answers.
    caches_zero_scope: Optional[bool] = None


def classify_caching(outcome: CachingProbeOutcome) -> CachingCategory:
    """Bucket a resolver per section 6.3's categories.

    Precedence follows the paper: the private-prefix misconfiguration and
    the over-/24 and clamp behaviors are called out even though such
    resolvers may handle scope correctly otherwise.
    """
    if outcome.sends_private_prefix:
        return CachingCategory.PRIVATE_PREFIX
    if outcome.forwarding_clamp is not None and outcome.forwarding_clamp <= 22:
        return CachingCategory.CLAMPS_AT_22
    if outcome.max_prefix_forwarded is not None and outcome.max_prefix_forwarded > 24:
        return CachingCategory.ACCEPTS_OVER_24
    if outcome.second_query_seen_scope24 is False:
        return CachingCategory.IGNORES_SCOPE
    if (outcome.second_query_seen_scope24
            and outcome.second_query_seen_scope16 is False
            and outcome.second_query_seen_scope0 is False):
        return CachingCategory.CORRECT
    return CachingCategory.UNCLASSIFIED
