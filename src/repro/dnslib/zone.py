"""Zone data and lookup.

A :class:`Zone` is a static collection of records under an origin, with the
lookup semantics an authoritative server needs: exact-match answers, CNAME
chasing within the zone, delegation (NS records below the origin produce
referrals), wildcard records, and NXDOMAIN/NODATA distinction with the SOA
in the authority section.

Dynamic answers (the CDN's proximity mapping) are produced by the servers in
:mod:`repro.auth` instead of a static zone; this class covers everything
else: the experiment zones, delegation glue, and CNAME onboarding chains.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from .constants import Rcode, RecordType
from .errors import ZoneError
from .message import ResourceRecord
from .name import Name
from .rdata import A, AAAA, CNAME, NS, SOA, Rdata

_MAX_CNAME_CHAIN = 8


@dataclass
class LookupResult:
    """Outcome of a zone lookup.

    ``is_referral`` marks a delegation: ``authority`` holds the NS rrset of
    the child zone and ``additional`` any in-zone glue.
    """

    rcode: Rcode
    answers: List[ResourceRecord] = field(default_factory=list)
    authority: List[ResourceRecord] = field(default_factory=list)
    additional: List[ResourceRecord] = field(default_factory=list)
    is_referral: bool = False


class Zone:
    """A static authoritative zone."""

    def __init__(self, origin: Name, default_ttl: int = 300):
        self.origin = origin
        self.default_ttl = default_ttl
        self._records: Dict[Tuple[Name, int], List[ResourceRecord]] = {}

    # -- construction ------------------------------------------------------

    def add(self, name: Name, rdtype: RecordType, rdata: Rdata,
            ttl: Optional[int] = None) -> None:
        """Add one record; ``name`` must be at or below the origin."""
        if not name.is_subdomain_of(self.origin):
            raise ZoneError(f"{name} is outside zone {self.origin}")
        if rdtype == RecordType.CNAME and (name, int(rdtype)) not in self._records:
            others = [k for k in self._records if k[0] == name
                      and k[1] != int(RecordType.CNAME)]
            if others and name != self.origin:
                raise ZoneError(f"CNAME at {name} conflicts with other records")
        ttl = self.default_ttl if ttl is None else ttl
        rr = ResourceRecord(name, rdtype, ttl, rdata)
        self._records.setdefault((name, int(rdtype)), []).append(rr)

    def add_text(self, name: str, rdtype: str, value: str,
                 ttl: Optional[int] = None) -> None:
        """Convenience: add a record from text fields.

        Supports A, AAAA, NS, CNAME record values; relative names are
        resolved against the zone origin when they lack a trailing dot.
        """
        owner = self._absolute(name)
        rt = RecordType.from_text(rdtype)
        rdata: Rdata
        if rt == RecordType.A:
            rdata = A(value)
        elif rt == RecordType.AAAA:
            rdata = AAAA(value)
        elif rt == RecordType.NS:
            rdata = NS(self._absolute(value))
        elif rt == RecordType.CNAME:
            rdata = CNAME(self._absolute(value))
        else:
            raise ZoneError(f"add_text does not support {rdtype}")
        self.add(owner, rt, rdata, ttl)

    def add_soa(self, mname: str = "ns1", rname: str = "hostmaster",
                serial: int = 1, minimum: int = 300) -> None:
        """Install a SOA record at the origin."""
        soa = SOA(self._absolute(mname), self._absolute(rname),
                  serial, 3600, 600, 86400, minimum)
        self.add(self.origin, RecordType.SOA, soa)

    def _absolute(self, text: str) -> Name:
        if text == "@":
            return self.origin
        name = Name.from_text(text)
        if text.endswith("."):
            return name
        return name.concatenate(self.origin)

    # -- lookup ------------------------------------------------------------

    def get(self, name: Name, rdtype: RecordType) -> List[ResourceRecord]:
        """Exact rrset fetch (no CNAME chasing, no wildcards)."""
        return list(self._records.get((name, int(rdtype)), []))

    def names(self) -> List[Name]:
        """All owner names present in the zone."""
        return sorted({name for name, _ in self._records})

    def _node_exists(self, name: Name) -> bool:
        return any(owner == name for owner, _ in self._records)

    def _find_delegation(self, qname: Name) -> Optional[Name]:
        """The closest enclosing delegation point strictly below the origin."""
        for candidate in qname.ancestors():
            if candidate == self.origin:
                return None
            if not candidate.is_subdomain_of(self.origin):
                return None
            if (candidate, int(RecordType.NS)) in self._records:
                return candidate
        return None

    def _wildcard_match(self, qname: Name, rdtype: RecordType
                        ) -> List[ResourceRecord]:
        if qname == self.origin or not len(qname):
            return []
        wildcard = qname.parent().child("*")
        rrs = self._records.get((wildcard, int(rdtype)), [])
        return [ResourceRecord(qname, rr.rdtype, rr.ttl, rr.rdata) for rr in rrs]

    def lookup(self, qname: Name, rdtype: RecordType) -> LookupResult:
        """Authoritative lookup with CNAME chasing and referrals."""
        if not qname.is_subdomain_of(self.origin):
            return LookupResult(Rcode.REFUSED)

        delegation = self._find_delegation(qname)
        if delegation is not None and not (
                delegation == qname and rdtype == RecordType.NS):
            ns_rrs = self._records[(delegation, int(RecordType.NS))]
            result = LookupResult(Rcode.NOERROR, authority=list(ns_rrs),
                                  is_referral=True)
            for ns_rr in ns_rrs:
                target = ns_rr.rdata.target  # type: ignore[attr-defined]
                for glue_type in (RecordType.A, RecordType.AAAA):
                    result.additional.extend(
                        self._records.get((target, int(glue_type)), []))
            return result

        answers: List[ResourceRecord] = []
        current = qname
        for _ in range(_MAX_CNAME_CHAIN):
            rrs = self._records.get((current, int(rdtype)), [])
            if not rrs:
                rrs = self._wildcard_match(current, rdtype)
            if rrs:
                answers.extend(rrs)
                return LookupResult(Rcode.NOERROR, answers=answers)
            cname_rrs = self._records.get((current, int(RecordType.CNAME)), [])
            if not cname_rrs:
                cname_rrs = self._wildcard_match(current, RecordType.CNAME)
            if cname_rrs and rdtype != RecordType.CNAME:
                answers.extend(cname_rrs)
                target = cname_rrs[0].rdata.target  # type: ignore[attr-defined]
                if not target.is_subdomain_of(self.origin):
                    # Chain leaves the zone; the resolver must chase it.
                    return LookupResult(Rcode.NOERROR, answers=answers)
                current = target
                continue
            break

        soa = self._records.get((self.origin, int(RecordType.SOA)), [])
        if answers:
            return LookupResult(Rcode.NOERROR, answers=answers, authority=list(soa))
        exists = self._node_exists(current) or any(
            owner.is_subdomain_of(current) for owner, _ in self._records)
        rcode = Rcode.NOERROR if exists else Rcode.NXDOMAIN
        return LookupResult(rcode, authority=list(soa))
