"""Domain names.

A :class:`Name` is an immutable, hashable sequence of labels, always stored
fully qualified (the empty root label is implicit and never stored).  Names
compare and hash case-insensitively, as required by RFC 1035 section 2.3.3,
while preserving the original spelling for display.

The wire encoding (including compression pointers) lives in
:mod:`repro.dnslib.wire`; this module only handles the text form and the
label algebra (parent/child/subdomain tests) the resolvers need.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Iterator, Tuple

from .errors import NameError_

MAX_LABEL_LENGTH = 63
MAX_NAME_LENGTH = 255


@lru_cache(maxsize=65536)
def _from_text_interned(text: str) -> "Name":
    """Shared-instance parse cache behind :meth:`Name.from_text`.

    Names are immutable and hash/compare by value, so handing the same
    object back for a repeated string is observationally transparent while
    skipping the per-label validation work on the hot dataset paths (every
    trace record re-parses its qname).
    """
    if text.endswith("."):
        text = text[:-1]
    if not text:
        return ROOT
    try:
        labels = [lab.encode("ascii") for lab in text.split(".")]
    except UnicodeEncodeError as exc:
        raise NameError_(f"non-ASCII name: {text!r}") from exc
    return Name(labels)


def _validate_label(label: bytes) -> bytes:
    if not label:
        raise NameError_("empty label")
    if len(label) > MAX_LABEL_LENGTH:
        raise NameError_(f"label exceeds {MAX_LABEL_LENGTH} octets: {label!r}")
    return label


class Name:
    """A fully-qualified domain name.

    >>> Name.from_text("WWW.Example.COM") == Name.from_text("www.example.com.")
    True
    >>> Name.from_text("a.b.example.com").is_subdomain_of(Name.from_text("example.com"))
    True
    """

    __slots__ = ("_labels", "_folded", "_hash", "_text")

    def __init__(self, labels: Iterable[bytes]):
        labels = tuple(_validate_label(bytes(lab)) for lab in labels)
        wire_len = sum(len(lab) + 1 for lab in labels) + 1
        if wire_len > MAX_NAME_LENGTH:
            raise NameError_(f"name exceeds {MAX_NAME_LENGTH} octets")
        self._labels = labels
        self._folded = tuple(lab.lower() for lab in labels)
        # Cached __hash__ value only; per-process salting is fine because
        # the hash never orders any observable output.
        self._hash = hash(self._folded)  # repro-lint: disable=RS001
        self._text: str = ""

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_text(cls, text: str) -> "Name":
        """Parse a name from presentation format.

        A trailing dot is accepted and ignored; ``"."`` and ``""`` both give
        the root name.  Results are interned: repeated parses of one string
        return the same immutable instance.
        """
        if text in ("", "."):
            return ROOT
        return _from_text_interned(text)

    @classmethod
    def root(cls) -> "Name":
        """The root name ``.`` (zero labels)."""
        return ROOT

    # -- accessors ---------------------------------------------------------

    @property
    def labels(self) -> Tuple[bytes, ...]:
        """The labels, most-specific first, without the root label."""
        return self._labels

    @property
    def folded(self) -> Tuple[bytes, ...]:
        """The case-folded (lowercase) labels, memoized at construction.

        The wire encoder keys its compression table by these, so exposing
        the precomputed tuple saves a per-label ``lower()`` pass on every
        encoded name.
        """
        return self._folded

    def to_text(self) -> str:
        """Presentation format; the root renders as ``"."`` (memoized)."""
        if not self._labels:
            return "."
        text = self._text
        if not text:
            text = ".".join(lab.decode("ascii") for lab in self._labels) + "."
            self._text = text
        return text

    def is_root(self) -> bool:
        """True for the zero-label root name."""
        return not self._labels

    def __len__(self) -> int:
        return len(self._labels)

    def __iter__(self) -> Iterator[bytes]:
        return iter(self._labels)

    # -- algebra -----------------------------------------------------------

    def parent(self) -> "Name":
        """The name with the most-specific label removed.

        Raises :class:`NameError_` for the root, which has no parent.
        """
        if not self._labels:
            raise NameError_("the root name has no parent")
        return Name(self._labels[1:])

    def child(self, label: str) -> "Name":
        """Prepend ``label`` to this name."""
        return Name((label.encode("ascii"),) + self._labels)

    def concatenate(self, suffix: "Name") -> "Name":
        """Append ``suffix``'s labels after this name's labels."""
        return Name(self._labels + suffix._labels)

    def relativize(self, origin: "Name") -> Tuple[bytes, ...]:
        """Labels of this name with ``origin``'s labels stripped from the end.

        Raises :class:`NameError_` if this name is not a subdomain of
        ``origin``.
        """
        if not self.is_subdomain_of(origin):
            raise NameError_(f"{self} is not under {origin}")
        n = len(origin._labels)
        return self._labels[: len(self._labels) - n] if n else self._labels

    def is_subdomain_of(self, other: "Name") -> bool:
        """True if this name equals ``other`` or lies beneath it."""
        n = len(other._folded)
        if n == 0:
            return True
        if n > len(self._folded):
            return False
        return self._folded[-n:] == other._folded

    def ancestors(self) -> Iterator["Name"]:
        """Yield this name, then each parent, ending with the root."""
        name = self
        while True:
            yield name
            if name.is_root():
                return
            name = name.parent()

    def split(self, depth: int) -> Tuple["Name", "Name"]:
        """Split into (prefix, suffix) where the suffix keeps ``depth`` labels."""
        if depth < 0 or depth > len(self._labels):
            raise NameError_(f"cannot keep {depth} labels of {self}")
        cut = len(self._labels) - depth
        return Name(self._labels[:cut]), Name(self._labels[cut:])

    # -- dunder ------------------------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Name):
            return NotImplemented
        return self._folded == other._folded

    def __lt__(self, other: "Name") -> bool:
        return self._folded[::-1] < other._folded[::-1]

    def __hash__(self) -> int:
        return self._hash

    def __str__(self) -> str:
        return self.to_text()

    def __repr__(self) -> str:
        return f"Name({self.to_text()!r})"


ROOT = Name(())
