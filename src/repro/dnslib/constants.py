"""Protocol constants: record types, classes, response codes, opcodes."""

from __future__ import annotations

import enum


class RecordType(enum.IntEnum):
    """DNS RR TYPE values (RFC 1035 and successors)."""

    A = 1
    NS = 2
    CNAME = 5
    SOA = 6
    PTR = 12
    MX = 15
    TXT = 16
    AAAA = 28
    OPT = 41

    @classmethod
    def from_text(cls, text: str) -> "RecordType":
        try:
            return cls[text.upper()]
        except KeyError:
            raise ValueError(f"unknown record type {text!r}") from None


class RecordClass(enum.IntEnum):
    """DNS CLASS values. Only IN is used by the simulation."""

    IN = 1
    CH = 3
    ANY = 255


class Rcode(enum.IntEnum):
    """Response codes (RFC 1035 section 4.1.1, RFC 6891 for BADVERS)."""

    NOERROR = 0
    FORMERR = 1
    SERVFAIL = 2
    NXDOMAIN = 3
    NOTIMP = 4
    REFUSED = 5
    BADVERS = 16


class Opcode(enum.IntEnum):
    """Query opcodes."""

    QUERY = 0
    STATUS = 2


class EdnsOptionCode(enum.IntEnum):
    """EDNS0 option codes relevant to this study (RFC 6891 registry)."""

    NSID = 3
    ECS = 8
    COOKIE = 10


#: Address families used in the ECS option (RFC 7871 section 6).
ECS_FAMILY_IPV4 = 1
ECS_FAMILY_IPV6 = 2

#: Default EDNS0 UDP payload size advertised by our resolvers.
DEFAULT_EDNS_PAYLOAD = 4096

#: Classic DNS maximum UDP payload without EDNS0.
CLASSIC_UDP_PAYLOAD = 512
