"""Exception hierarchy for the DNS substrate.

Every error raised by :mod:`repro.dnslib` derives from :class:`DnsError` so
callers can catch protocol-level problems with a single ``except`` clause
while still distinguishing parse errors from semantic ones.
"""

from __future__ import annotations


class DnsError(Exception):
    """Base class for all DNS substrate errors."""


class NameError_(DnsError):
    """A domain name is syntactically invalid (label/name length, bad text)."""


class WireFormatError(DnsError):
    """A DNS message could not be decoded from wire format."""


class TruncatedMessageError(WireFormatError):
    """The wire buffer ended before the structure it encodes was complete."""


class BadPointerError(WireFormatError):
    """A compression pointer is out of range or forms a loop."""


class BadOptionError(DnsError):
    """An EDNS0 option is malformed (e.g. an invalid ECS payload)."""


class BadEcsError(BadOptionError):
    """An ECS option violates RFC 7871 (family, prefix lengths, padding)."""


class ZoneError(DnsError):
    """A zone is malformed or a record cannot be added to it."""


class ResolutionError(DnsError):
    """A resolution attempt failed (no nameserver, loop, budget exhausted)."""
