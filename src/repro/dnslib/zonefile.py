"""Master-file (RFC 1035 section 5) zone parsing — the practical subset.

Supports the constructs experiment zones actually use:

* ``$ORIGIN`` and ``$TTL`` directives;
* relative and absolute owner names, ``@`` for the origin, blank owner
  meaning "previous owner";
* optional per-record TTL and class (``IN`` only);
* A, AAAA, NS, CNAME, PTR, MX, TXT and SOA records (SOA may span lines
  with parentheses);
* comments (``;``) and quoted TXT strings.

>>> zone = parse_zone('''
... $ORIGIN example.com.
... $TTL 300
... @   IN SOA ns1 hostmaster 1 3600 600 86400 60
...     IN NS  ns1
... ns1 IN A   203.0.113.53
... www 60 IN A 203.0.113.80
... ''')
>>> zone.origin.to_text()
'example.com.'
"""

from __future__ import annotations

import re
import shlex
from typing import List, Optional, Tuple

from .constants import RecordType
from .errors import ZoneError
from .name import Name
from .rdata import A, AAAA, CNAME, MX, NS, PTR, SOA, TXT, Rdata
from .zone import Zone

_DIRECTIVE = re.compile(r"^\$(ORIGIN|TTL)\s+(\S+)", re.IGNORECASE)


def _strip_comment(line: str) -> str:
    """Remove a ``;`` comment, respecting double-quoted strings."""
    out = []
    in_quote = False
    for ch in line:
        if ch == '"':
            in_quote = not in_quote
        if ch == ";" and not in_quote:
            break
        out.append(ch)
    return "".join(out)


def _join_parentheses(lines: List[str]) -> List[str]:
    """Merge multi-line records grouped with ( ... ) into single lines.

    Leading whitespace of each record's *first* physical line is preserved:
    it signals "reuse the previous owner name" in master-file syntax.
    """
    merged: List[str] = []
    buffer = ""
    depth = 0
    for line in lines:
        cleaned = _strip_comment(line)
        depth += cleaned.count("(") - cleaned.count(")")
        if depth < 0:
            raise ZoneError("unbalanced ')' in zone file")
        if buffer:
            buffer += " " + cleaned.strip()
        else:
            buffer = cleaned.rstrip()
        if depth == 0:
            if buffer.strip():
                merged.append(buffer.replace("(", " ").replace(")", " ")
                              .rstrip())
            buffer = ""
    if depth != 0:
        raise ZoneError("unbalanced '(' in zone file")
    return merged


def _parse_ttl(token: str) -> Optional[int]:
    """Parse a TTL, allowing 1m/1h/1d/1w suffixes; None if not a TTL."""
    match = re.fullmatch(r"(\d+)([smhdw]?)", token.lower())
    if not match:
        return None
    value = int(match.group(1))
    scale = {"": 1, "s": 1, "m": 60, "h": 3600, "d": 86400,
             "w": 604800}[match.group(2)]
    return value * scale


class _ZoneFileParser:
    def __init__(self, text: str, origin: Optional[str], default_ttl: int):
        self.origin = Name.from_text(origin) if origin else None
        self.default_ttl = default_ttl
        self.last_owner: Optional[Name] = None
        raw_lines = text.splitlines()
        self.lines = _join_parentheses(raw_lines)

    def _absolute(self, token: str) -> Name:
        if self.origin is None:
            raise ZoneError("no $ORIGIN and no origin argument")
        if token == "@":
            return self.origin
        name = Name.from_text(token)
        if token.endswith("."):
            return name
        return name.concatenate(self.origin)

    def _parse_rdata(self, rdtype: RecordType, tokens: List[str]) -> Rdata:
        if rdtype == RecordType.A:
            return A(tokens[0])
        if rdtype == RecordType.AAAA:
            return AAAA(tokens[0])
        if rdtype == RecordType.NS:
            return NS(self._absolute(tokens[0]))
        if rdtype == RecordType.CNAME:
            return CNAME(self._absolute(tokens[0]))
        if rdtype == RecordType.PTR:
            return PTR(self._absolute(tokens[0]))
        if rdtype == RecordType.MX:
            return MX(int(tokens[0]), self._absolute(tokens[1]))
        if rdtype == RecordType.TXT:
            return TXT(tuple(t.encode("utf-8") for t in tokens))
        if rdtype == RecordType.SOA:
            if len(tokens) != 7:
                raise ZoneError(f"SOA needs 7 fields, got {len(tokens)}")
            numbers = [_parse_ttl(t) for t in tokens[2:]]
            if any(n is None for n in numbers):
                raise ZoneError(f"bad SOA numeric field in {tokens[2:]}")
            return SOA(self._absolute(tokens[0]), self._absolute(tokens[1]),
                       *numbers)  # type: ignore[arg-type]
        raise ZoneError(f"unsupported record type {rdtype}")

    def parse(self) -> Zone:
        records: List[Tuple[Name, RecordType, Rdata, int]] = []
        for line in self.lines:
            directive = _DIRECTIVE.match(line)
            if directive:
                keyword, value = directive.group(1).upper(), directive.group(2)
                if keyword == "ORIGIN":
                    self.origin = Name.from_text(value)
                else:
                    ttl = _parse_ttl(value)
                    if ttl is None:
                        raise ZoneError(f"bad $TTL {value}")
                    self.default_ttl = ttl
                continue

            starts_with_space = line[:1].isspace() if line else False
            try:
                tokens = shlex.split(line)
            except ValueError as exc:
                raise ZoneError(f"unparseable line {line!r}") from exc
            if not tokens:
                continue

            if starts_with_space:
                owner = self.last_owner
                if owner is None:
                    raise ZoneError("record with blank owner before any "
                                    "owner was set")
            else:
                owner = self._absolute(tokens.pop(0))
            self.last_owner = owner

            ttl = self.default_ttl
            # TTL and class may appear in either order before the type.
            for _ in range(2):
                if not tokens:
                    break
                candidate = tokens[0]
                maybe_ttl = _parse_ttl(candidate)
                if maybe_ttl is not None:
                    ttl = maybe_ttl
                    tokens.pop(0)
                elif candidate.upper() == "IN":
                    tokens.pop(0)
                else:
                    break
            if not tokens:
                raise ZoneError(f"record for {owner} has no type")
            try:
                rdtype = RecordType.from_text(tokens.pop(0))
            except ValueError as exc:
                raise ZoneError(str(exc)) from exc
            rdata = self._parse_rdata(rdtype, tokens)
            records.append((owner, rdtype, rdata, ttl))

        if self.origin is None:
            raise ZoneError("zone file defines no origin")
        zone = Zone(self.origin, default_ttl=self.default_ttl)
        for owner, rdtype, rdata, ttl in records:
            zone.add(owner, rdtype, rdata, ttl)
        return zone


def parse_zone(text: str, origin: Optional[str] = None,
               default_ttl: int = 300) -> Zone:
    """Parse master-file ``text`` into a :class:`~repro.dnslib.zone.Zone`.

    ``origin`` seeds the origin when the file lacks a leading ``$ORIGIN``.
    """
    return _ZoneFileParser(text, origin, default_ttl).parse()


def load_zone(path, origin: Optional[str] = None,
              default_ttl: int = 300) -> Zone:
    """Read and parse a zone file from disk."""
    with open(path, "r", encoding="utf-8") as fh:
        return parse_zone(fh.read(), origin=origin, default_ttl=default_ttl)
