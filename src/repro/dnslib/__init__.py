"""From-scratch DNS substrate: names, records, messages, wire codec, EDNS/ECS.

This package implements the subset of the DNS protocol the reproduced study
depends on, with a full wire-format codec so that every simulated exchange
round-trips through real packets.
"""

from .constants import (CLASSIC_UDP_PAYLOAD, DEFAULT_EDNS_PAYLOAD,
                        ECS_FAMILY_IPV4, ECS_FAMILY_IPV6, EdnsOptionCode,
                        Opcode, Rcode, RecordClass, RecordType)
from .edns import (CookieOption, EcsOption, EdnsInfo, EdnsOption,
                   GenericOption, decode_options, encode_options)
from .errors import (BadEcsError, BadOptionError, BadPointerError, DnsError,
                     NameError_, ResolutionError, TruncatedMessageError,
                     WireFormatError, ZoneError)
from .message import Message, Question, ResourceRecord
from .name import ROOT, Name
from .rdata import (A, AAAA, CNAME, MX, NS, PTR, SOA, TXT, GenericRdata,
                    Rdata, rdata_class_for)
from .wire import decode_message, decode_name, encode_message, encode_name
from .zone import LookupResult, Zone
from .zonefile import load_zone, parse_zone

__all__ = [
    "A", "AAAA", "CNAME", "MX", "NS", "PTR", "SOA", "TXT",
    "BadEcsError", "BadOptionError", "BadPointerError",
    "CLASSIC_UDP_PAYLOAD", "CookieOption", "DEFAULT_EDNS_PAYLOAD",
    "DnsError", "ECS_FAMILY_IPV4", "ECS_FAMILY_IPV6", "EcsOption",
    "EdnsInfo", "EdnsOption", "EdnsOptionCode", "GenericOption",
    "GenericRdata", "LookupResult", "Message", "Name", "NameError_",
    "Opcode", "Question", "ROOT", "Rcode", "Rdata", "RecordClass",
    "RecordType", "ResolutionError", "ResourceRecord",
    "TruncatedMessageError", "WireFormatError", "Zone", "ZoneError",
    "decode_message", "decode_name", "decode_options", "encode_message",
    "encode_name", "encode_options", "load_zone", "parse_zone",
    "rdata_class_for",
]
