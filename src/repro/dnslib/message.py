"""DNS message model.

A :class:`Message` is the in-memory form of one DNS packet: header, a single
question (the only shape the simulation uses, as in practice), and the three
record sections.  EDNS0 state is held as an :class:`~repro.dnslib.edns.EdnsInfo`
and materialized into an OPT pseudo-record only at wire-encoding time.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import List, Optional, Sequence

from .constants import Opcode, Rcode, RecordClass, RecordType
from .edns import EcsOption, EdnsInfo
from .name import Name
from .rdata import Rdata


@dataclass(frozen=True)
class Question:
    """The question section entry: name, type, class."""

    qname: Name
    qtype: RecordType
    qclass: RecordClass = RecordClass.IN

    def __str__(self) -> str:
        return f"{self.qname.to_text()} {self.qclass.name} {self.qtype.name}"


@dataclass(frozen=True)
class ResourceRecord:
    """One record in an answer/authority/additional section."""

    name: Name
    rdtype: RecordType
    ttl: int
    rdata: Rdata
    rdclass: RecordClass = RecordClass.IN

    def with_ttl(self, ttl: int) -> "ResourceRecord":
        """A copy of this record with a different TTL (cache aging)."""
        return ResourceRecord(self.name, self.rdtype, ttl, self.rdata, self.rdclass)

    def __str__(self) -> str:
        return (f"{self.name.to_text()} {self.ttl} {self.rdclass.name} "
                f"{RecordType(self.rdtype).name} {self.rdata.to_text()}")


@dataclass
class Message:
    """A DNS query or response."""

    msg_id: int = 0
    opcode: Opcode = Opcode.QUERY
    rcode: Rcode = Rcode.NOERROR
    is_response: bool = False
    authoritative: bool = False
    truncated: bool = False
    recursion_desired: bool = True
    recursion_available: bool = False
    question: Optional[Question] = None
    answers: List[ResourceRecord] = field(default_factory=list)
    authority: List[ResourceRecord] = field(default_factory=list)
    additional: List[ResourceRecord] = field(default_factory=list)
    edns: Optional[EdnsInfo] = None

    # -- constructors ------------------------------------------------------

    @classmethod
    def make_query(cls, qname: Name, qtype: RecordType, msg_id: int = 0,
                   recursion_desired: bool = True,
                   use_edns: bool = True,
                   ecs: Optional[EcsOption] = None) -> "Message":
        """Build a query message; attaches EDNS (and optionally ECS)."""
        edns = None
        if use_edns or ecs is not None:
            edns = EdnsInfo()
            if ecs is not None:
                edns.options.append(ecs)
        return cls(msg_id=msg_id, question=Question(qname, qtype),
                   recursion_desired=recursion_desired, edns=edns)

    def make_response(self) -> "Message":
        """A response skeleton echoing this query's id, question and EDNS."""
        resp = Message(msg_id=self.msg_id, question=self.question,
                       is_response=True,
                       recursion_desired=self.recursion_desired)
        if self.edns is not None:
            resp.edns = EdnsInfo(payload_size=self.edns.payload_size)
        return resp

    # -- ECS helpers -------------------------------------------------------

    def ecs(self) -> Optional[EcsOption]:
        """The ECS option attached to this message, if any."""
        if self.edns is None:
            return None
        return self.edns.find_ecs()

    def set_ecs(self, ecs: Optional[EcsOption]) -> None:
        """Attach, replace, or (with ``None``) strip the ECS option."""
        if ecs is None:
            if self.edns is not None:
                self.edns = self.edns.without_ecs()
            return
        if self.edns is None:
            self.edns = EdnsInfo()
        self.edns = self.edns.with_ecs(ecs)

    # -- section helpers ---------------------------------------------------

    def answer_rrset(self, rdtype: Optional[RecordType] = None) -> List[ResourceRecord]:
        """Answer records, optionally filtered by type."""
        if rdtype is None:
            return list(self.answers)
        return [rr for rr in self.answers if rr.rdtype == rdtype]

    def answer_addresses(self) -> List[str]:
        """All A/AAAA address strings in the answer section, in order."""
        out = []
        for rr in self.answers:
            if rr.rdtype in (RecordType.A, RecordType.AAAA):
                out.append(rr.rdata.address)  # type: ignore[attr-defined]
        return out

    def min_ttl(self) -> Optional[int]:
        """Smallest TTL across the answer section (cache lifetime)."""
        if not self.answers:
            return None
        return min(rr.ttl for rr in self.answers)

    def copy(self) -> "Message":
        """A deep copy, safe to mutate (e.g. to age TTLs on a cache hit)."""
        return copy.deepcopy(self)

    def __str__(self) -> str:
        kind = "response" if self.is_response else "query"
        lines = [f"<{kind} id={self.msg_id} rcode={self.rcode.name} q={self.question}>"]
        for section, rrs in (("AN", self.answers), ("AU", self.authority),
                             ("AD", self.additional)):
            for rr in rrs:
                lines.append(f"  {section} {rr}")
        ecs = self.ecs()
        if ecs is not None:
            lines.append(f"  {ecs}")
        return "\n".join(lines)


def rrset_ttl(records: Sequence[ResourceRecord]) -> int:
    """Minimum TTL across ``records`` (0 for an empty sequence)."""
    return min((rr.ttl for rr in records), default=0)
