"""DNS wire-format codec (RFC 1035 section 4, RFC 6891 for OPT).

``encode_message`` / ``decode_message`` round-trip :class:`~repro.dnslib.message.Message`
objects through real DNS packets, including name compression on output and
compression-pointer chasing (with loop protection) on input.  The simulated
transport serializes every exchanged message through this codec, so the whole
simulation exercises the same byte-level paths a real deployment would.
"""

from __future__ import annotations

import struct
from typing import Dict, List, Tuple

from .constants import Opcode, Rcode, RecordClass, RecordType
from .edns import EdnsInfo, decode_options, encode_options
from .errors import BadPointerError, TruncatedMessageError, WireFormatError
from .message import Message, Question, ResourceRecord
from .name import MAX_LABEL_LENGTH, Name
from .rdata import GenericRdata, rdata_class_for

_FLAG_QR = 0x8000
_FLAG_AA = 0x0400
_FLAG_TC = 0x0200
_FLAG_RD = 0x0100
_FLAG_RA = 0x0080
_POINTER_MASK = 0xC0
_MAX_POINTER_HOPS = 64

# Precompiled wire structs: ``Struct.pack``/``unpack_from`` skip the format
# re-parse ``struct.pack(fmt, ...)`` pays on every call — these run once per
# name/record/message on the hot encode/decode paths.
_U16 = struct.Struct("!H")
_HEADER = struct.Struct("!HHHHHH")
_QFIXED = struct.Struct("!HH")
_RRFIXED = struct.Struct("!HHIH")

#: Question-name encode cache.  The question section always starts at
#: offset 12 (right after the fixed header), so the wire bytes of a qname
#: and the compression-table entries it seeds are identical across
#: messages.  Keyed by the exact label tuple (spelling is preserved on the
#: wire); bounded by wholesale clearing, which only costs re-encoding.
_QNAME_CACHE: Dict[Tuple[bytes, ...],
                   Tuple[bytes, Tuple[Tuple[Tuple[bytes, ...], int], ...]]] = {}
_QNAME_CACHE_MAX = 4096


def clear_codec_caches() -> None:
    """Drop the wire-layer encode caches (benchmarks/tests hook)."""
    _QNAME_CACHE.clear()


# ---------------------------------------------------------------------------
# names


def encode_name(name: Name, buf: bytearray,
                compress: Dict[Tuple[bytes, ...], int]) -> None:
    """Append ``name`` to ``buf`` using compression pointers when possible."""
    labels = name.folded
    raw = name.labels
    for i in range(len(labels)):
        suffix = labels[i:]
        target = compress.get(suffix)
        if target is not None and target < 0x4000:
            buf += _U16.pack(0xC000 | target)
            return
        if len(buf) < 0x4000:
            compress[suffix] = len(buf)
        label = raw[i]
        buf.append(len(label))
        buf += label
    buf.append(0)


def _encode_question_name(name: Name, buf: bytearray,
                          compress: Dict[Tuple[bytes, ...], int]) -> None:
    """Append the qname (always at offset 12) from the encode cache.

    Equivalent to ``encode_name`` with an empty compression table and a
    12-byte buffer; the cached entry carries both the wire bytes and the
    suffix→offset seeds the rest of the message compresses against.
    """
    key = name.labels
    cached = _QNAME_CACHE.get(key)
    if cached is None:
        tmp = bytearray(12)           # stand-in for the fixed header
        entries: Dict[Tuple[bytes, ...], int] = {}
        encode_name(name, tmp, entries)
        cached = (bytes(tmp[12:]), tuple(entries.items()))
        if len(_QNAME_CACHE) >= _QNAME_CACHE_MAX:
            _QNAME_CACHE.clear()
        _QNAME_CACHE[key] = cached
    wire, entries = cached
    buf += wire
    compress.update(entries)


def decode_name(wire: bytes, offset: int) -> Tuple[Name, int]:
    """Decode a (possibly compressed) name starting at ``offset``.

    Returns the name and the offset just past its in-place encoding.
    """
    labels: List[bytes] = []
    end: int = -1
    hops = 0
    seen = set()
    while True:
        if offset >= len(wire):
            raise TruncatedMessageError("name runs past end of message")
        length = wire[offset]
        if length & _POINTER_MASK == _POINTER_MASK:
            if offset + 2 > len(wire):
                raise TruncatedMessageError("compression pointer truncated")
            if end < 0:
                end = offset + 2
            (ptr,) = _U16.unpack_from(wire, offset)
            ptr &= 0x3FFF
            if ptr in seen:
                raise BadPointerError("compression pointer loop")
            seen.add(ptr)
            hops += 1
            if hops > _MAX_POINTER_HOPS:
                raise BadPointerError("too many compression pointer hops")
            offset = ptr
            continue
        if length & _POINTER_MASK:
            raise WireFormatError(f"reserved label type 0x{length:02x}")
        if length > MAX_LABEL_LENGTH:
            raise WireFormatError(f"label length {length} exceeds 63")
        offset += 1
        if length == 0:
            break
        if offset + length > len(wire):
            raise TruncatedMessageError("label runs past end of message")
        labels.append(bytes(wire[offset:offset + length]))
        offset += length
    if end < 0:
        end = offset
    return Name(labels), end


# ---------------------------------------------------------------------------
# records


def _encode_rr(rr: ResourceRecord, buf: bytearray,
               compress: Dict[Tuple[bytes, ...], int]) -> None:
    encode_name(rr.name, buf, compress)
    rdata = rr.rdata.to_wire()
    buf += _RRFIXED.pack(int(rr.rdtype), int(rr.rdclass),
                         rr.ttl & 0xFFFFFFFF, len(rdata))
    buf += rdata


def _decode_rr(wire: bytes, offset: int) -> Tuple[ResourceRecord, int]:
    name, offset = decode_name(wire, offset)
    if offset + 10 > len(wire):
        raise TruncatedMessageError("record header truncated")
    rdtype, rdclass, ttl, rdlength = _RRFIXED.unpack_from(wire, offset)
    offset += 10
    if offset + rdlength > len(wire):
        raise TruncatedMessageError("rdata truncated")
    klass = rdata_class_for(rdtype)
    rdata = klass.from_wire(wire, offset, rdlength, decode_name)
    if isinstance(rdata, GenericRdata):
        rdata = GenericRdata(rdtype, rdata.data)
    offset += rdlength
    try:
        rdtype_enum = RecordType(rdtype)
    except ValueError:
        rdtype_enum = rdtype  # type: ignore[assignment]
    try:
        rdclass_enum = RecordClass(rdclass)
    except ValueError:
        rdclass_enum = rdclass  # type: ignore[assignment]
    return ResourceRecord(name, rdtype_enum, ttl, rdata, rdclass_enum), offset


# ---------------------------------------------------------------------------
# messages


def encode_message(msg: Message) -> bytes:
    """Serialize ``msg`` to wire format, materializing EDNS as an OPT RR."""
    flags = 0
    if msg.is_response:
        flags |= _FLAG_QR
    flags |= (int(msg.opcode) & 0xF) << 11
    if msg.authoritative:
        flags |= _FLAG_AA
    if msg.truncated:
        flags |= _FLAG_TC
    if msg.recursion_desired:
        flags |= _FLAG_RD
    if msg.recursion_available:
        flags |= _FLAG_RA
    flags |= int(msg.rcode) & 0xF

    arcount = len(msg.additional) + (1 if msg.edns is not None else 0)
    buf = bytearray()
    buf += _HEADER.pack(msg.msg_id & 0xFFFF, flags,
                        1 if msg.question else 0,
                        len(msg.answers), len(msg.authority), arcount)
    compress: Dict[Tuple[bytes, ...], int] = {}
    if msg.question is not None:
        _encode_question_name(msg.question.qname, buf, compress)
        buf += _QFIXED.pack(int(msg.question.qtype), int(msg.question.qclass))
    for rr in msg.answers:
        _encode_rr(rr, buf, compress)
    for rr in msg.authority:
        _encode_rr(rr, buf, compress)
    for rr in msg.additional:
        _encode_rr(rr, buf, compress)
    if msg.edns is not None:
        edns = msg.edns
        buf.append(0)  # root owner name
        ext_rcode = (int(msg.rcode) >> 4) & 0xFF
        opt_ttl = (ext_rcode << 24) | ((edns.version & 0xFF) << 16) \
            | (0x8000 if edns.dnssec_ok else 0)
        rdata = encode_options(edns.options)
        buf += _RRFIXED.pack(int(RecordType.OPT),
                             edns.payload_size & 0xFFFF, opt_ttl, len(rdata))
        buf += rdata
    return bytes(buf)


def decode_message(wire: bytes) -> Message:
    """Parse a wire-format packet into a :class:`Message`.

    The OPT pseudo-record, if present, is lifted out of the additional
    section into ``msg.edns``.
    """
    if len(wire) < 12:
        raise TruncatedMessageError("message shorter than header")
    msg_id, flags, qdcount, ancount, nscount, arcount = \
        _HEADER.unpack_from(wire)
    try:
        opcode = Opcode((flags >> 11) & 0xF)
    except ValueError:
        opcode = Opcode.QUERY
    msg = Message(
        msg_id=msg_id,
        opcode=opcode,
        is_response=bool(flags & _FLAG_QR),
        authoritative=bool(flags & _FLAG_AA),
        truncated=bool(flags & _FLAG_TC),
        recursion_desired=bool(flags & _FLAG_RD),
        recursion_available=bool(flags & _FLAG_RA),
    )
    base_rcode = flags & 0xF
    offset = 12
    if qdcount > 1:
        raise WireFormatError(f"multi-question message (qdcount={qdcount})")
    if qdcount:
        qname, offset = decode_name(wire, offset)
        if offset + 4 > len(wire):
            raise TruncatedMessageError("question truncated")
        qtype, qclass = _QFIXED.unpack_from(wire, offset)
        offset += 4
        try:
            qtype_enum = RecordType(qtype)
        except ValueError:
            qtype_enum = qtype  # type: ignore[assignment]
        try:
            qclass_enum = RecordClass(qclass)
        except ValueError:
            qclass_enum = qclass  # type: ignore[assignment]
        msg.question = Question(qname, qtype_enum, qclass_enum)

    ext_rcode = 0
    sections = ((ancount, msg.answers), (nscount, msg.authority))
    for count, section in sections:
        for _ in range(count):
            rr, offset = _decode_rr(wire, offset)
            section.append(rr)
    for _ in range(arcount):
        start = offset
        rr, offset = _decode_rr(wire, offset)
        if rr.rdtype == RecordType.OPT:
            # Re-read OPT's raw fields: class is payload size, TTL packs
            # extended rcode / version / DO.
            _, opt_offset = decode_name(wire, start)
            rdtype, payload, opt_ttl, rdlength = \
                _RRFIXED.unpack_from(wire, opt_offset)
            ext_rcode = (opt_ttl >> 24) & 0xFF
            msg.edns = EdnsInfo(
                payload_size=payload,
                version=(opt_ttl >> 16) & 0xFF,
                dnssec_ok=bool(opt_ttl & 0x8000),
                options=decode_options(wire[opt_offset + 10:
                                            opt_offset + 10 + rdlength]),
            )
        else:
            msg.additional.append(rr)
    rcode_val = (ext_rcode << 4) | base_rcode
    try:
        msg.rcode = Rcode(rcode_val)
    except ValueError:
        msg.rcode = Rcode(base_rcode)
    return msg
