"""Resource record data (RDATA) types.

Each RDATA class knows how to encode itself to wire format and how to decode
itself from a wire buffer.  Name-bearing RDATA (NS, CNAME, SOA, PTR, MX) use
uncompressed names inside RDATA, which is always legal on the wire and keeps
the codec simple while still *decoding* compressed names emitted by other
implementations.
"""

from __future__ import annotations

import ipaddress
import struct
from dataclasses import dataclass
from typing import Callable, Dict, Tuple

from .constants import RecordType
from .errors import TruncatedMessageError, WireFormatError
from .name import Name


class Rdata:
    """Base class for RDATA payloads."""

    rdtype: RecordType

    def to_wire(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def from_wire(cls, wire: bytes, offset: int, rdlength: int,
                  decode_name: Callable[[bytes, int], Tuple[Name, int]]) -> "Rdata":
        raise NotImplementedError

    def to_text(self) -> str:
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.to_text()}>"


@dataclass(frozen=True)
class A(Rdata):
    """IPv4 address record."""

    address: str
    rdtype = RecordType.A

    def __post_init__(self) -> None:
        ipaddress.IPv4Address(self.address)

    def to_wire(self) -> bytes:
        return ipaddress.IPv4Address(self.address).packed

    @classmethod
    def from_wire(cls, wire, offset, rdlength, decode_name):
        if rdlength != 4:
            raise WireFormatError(f"A rdata must be 4 octets, got {rdlength}")
        return cls(str(ipaddress.IPv4Address(wire[offset:offset + 4])))

    def to_text(self) -> str:
        return self.address


@dataclass(frozen=True)
class AAAA(Rdata):
    """IPv6 address record."""

    address: str
    rdtype = RecordType.AAAA

    def __post_init__(self) -> None:
        ipaddress.IPv6Address(self.address)

    def to_wire(self) -> bytes:
        return ipaddress.IPv6Address(self.address).packed

    @classmethod
    def from_wire(cls, wire, offset, rdlength, decode_name):
        if rdlength != 16:
            raise WireFormatError(f"AAAA rdata must be 16 octets, got {rdlength}")
        return cls(str(ipaddress.IPv6Address(wire[offset:offset + 16])))

    def to_text(self) -> str:
        return self.address


@dataclass(frozen=True)
class NS(Rdata):
    """Delegation: the name of an authoritative nameserver."""

    target: Name
    rdtype = RecordType.NS

    def to_wire(self) -> bytes:
        return _name_to_wire(self.target)

    @classmethod
    def from_wire(cls, wire, offset, rdlength, decode_name):
        target, _ = decode_name(wire, offset)
        return cls(target)

    def to_text(self) -> str:
        return self.target.to_text()


@dataclass(frozen=True)
class CNAME(Rdata):
    """Canonical-name alias."""

    target: Name
    rdtype = RecordType.CNAME

    def to_wire(self) -> bytes:
        return _name_to_wire(self.target)

    @classmethod
    def from_wire(cls, wire, offset, rdlength, decode_name):
        target, _ = decode_name(wire, offset)
        return cls(target)

    def to_text(self) -> str:
        return self.target.to_text()


@dataclass(frozen=True)
class PTR(Rdata):
    """Pointer record (reverse DNS)."""

    target: Name
    rdtype = RecordType.PTR

    def to_wire(self) -> bytes:
        return _name_to_wire(self.target)

    @classmethod
    def from_wire(cls, wire, offset, rdlength, decode_name):
        target, _ = decode_name(wire, offset)
        return cls(target)

    def to_text(self) -> str:
        return self.target.to_text()


@dataclass(frozen=True)
class MX(Rdata):
    """Mail exchanger."""

    preference: int
    exchange: Name
    rdtype = RecordType.MX

    def to_wire(self) -> bytes:
        return struct.pack("!H", self.preference) + _name_to_wire(self.exchange)

    @classmethod
    def from_wire(cls, wire, offset, rdlength, decode_name):
        if rdlength < 3:
            raise TruncatedMessageError("MX rdata too short")
        (pref,) = struct.unpack_from("!H", wire, offset)
        exchange, _ = decode_name(wire, offset + 2)
        return cls(pref, exchange)

    def to_text(self) -> str:
        return f"{self.preference} {self.exchange.to_text()}"


@dataclass(frozen=True)
class TXT(Rdata):
    """Text record; ``strings`` holds the character-string segments."""

    strings: Tuple[bytes, ...]
    rdtype = RecordType.TXT

    @classmethod
    def from_text_value(cls, text: str) -> "TXT":
        """Build a TXT record from a single python string, chunked at 255."""
        raw = text.encode("utf-8")
        chunks = tuple(raw[i:i + 255] for i in range(0, len(raw), 255)) or (b"",)
        return cls(chunks)

    def to_wire(self) -> bytes:
        out = bytearray()
        for s in self.strings:
            if len(s) > 255:
                raise WireFormatError("TXT segment exceeds 255 octets")
            out.append(len(s))
            out += s
        return bytes(out)

    @classmethod
    def from_wire(cls, wire, offset, rdlength, decode_name):
        end = offset + rdlength
        strings = []
        while offset < end:
            slen = wire[offset]
            offset += 1
            if offset + slen > end:
                raise TruncatedMessageError("TXT segment overruns rdata")
            strings.append(bytes(wire[offset:offset + slen]))
            offset += slen
        return cls(tuple(strings))

    def to_text(self) -> str:
        return " ".join('"%s"' % s.decode("utf-8", "replace") for s in self.strings)


@dataclass(frozen=True)
class SOA(Rdata):
    """Start-of-authority record."""

    mname: Name
    rname: Name
    serial: int
    refresh: int
    retry: int
    expire: int
    minimum: int
    rdtype = RecordType.SOA

    def to_wire(self) -> bytes:
        return (_name_to_wire(self.mname) + _name_to_wire(self.rname)
                + struct.pack("!IIIII", self.serial, self.refresh,
                              self.retry, self.expire, self.minimum))

    @classmethod
    def from_wire(cls, wire, offset, rdlength, decode_name):
        mname, offset = decode_name(wire, offset)
        rname, offset = decode_name(wire, offset)
        if offset + 20 > len(wire):
            raise TruncatedMessageError("SOA numeric fields truncated")
        serial, refresh, retry, expire, minimum = struct.unpack_from("!IIIII", wire, offset)
        return cls(mname, rname, serial, refresh, retry, expire, minimum)

    def to_text(self) -> str:
        return (f"{self.mname.to_text()} {self.rname.to_text()} {self.serial} "
                f"{self.refresh} {self.retry} {self.expire} {self.minimum}")


@dataclass(frozen=True)
class GenericRdata(Rdata):
    """Opaque RDATA for record types the codec does not model."""

    rdtype_value: int
    data: bytes

    @property
    def rdtype(self) -> int:  # type: ignore[override]
        return self.rdtype_value

    def to_wire(self) -> bytes:
        return self.data

    @classmethod
    def from_wire(cls, wire, offset, rdlength, decode_name):
        return cls(0, bytes(wire[offset:offset + rdlength]))

    def to_text(self) -> str:
        return "\\# %d %s" % (len(self.data), self.data.hex())


def _name_to_wire(name: Name) -> bytes:
    """Uncompressed wire form of a name (for use inside RDATA)."""
    out = bytearray()
    for label in name.labels:
        out.append(len(label))
        out += label
    out.append(0)
    return bytes(out)


_RDATA_CLASSES: Dict[int, type] = {
    RecordType.A: A,
    RecordType.AAAA: AAAA,
    RecordType.NS: NS,
    RecordType.CNAME: CNAME,
    RecordType.PTR: PTR,
    RecordType.MX: MX,
    RecordType.TXT: TXT,
    RecordType.SOA: SOA,
}


def rdata_class_for(rdtype: int) -> type:
    """The RDATA class registered for ``rdtype``, or :class:`GenericRdata`."""
    return _RDATA_CLASSES.get(rdtype, GenericRdata)
