"""EDNS0 (RFC 6891) options, including the ECS option (RFC 7871).

The star of this module is :class:`EcsOption`, the edns-client-subnet option
whose behavior across resolvers is the subject of the reproduced paper.  Its
wire codec implements RFC 7871 section 6 exactly: two-octet family, one-octet
source prefix length, one-octet scope prefix length, then
``ceil(source_prefix_length / 8)`` address octets whose bits beyond the
source prefix MUST be zero.
"""

from __future__ import annotations

import ipaddress
import math
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple, Type, Union

from .constants import ECS_FAMILY_IPV4, ECS_FAMILY_IPV6, EdnsOptionCode
from .errors import BadEcsError, BadOptionError, TruncatedMessageError

IPAddress = Union[ipaddress.IPv4Address, ipaddress.IPv6Address]

# Precompiled wire structs (format parsed once, not per call).
_ECS_HEADER = struct.Struct("!HBB")
_OPTION_HEADER = struct.Struct("!HH")

#: Encode cache for repeated OPT payloads.  Simulated resolvers send the
#: same option list (one ECS option per client prefix) over and over; all
#: modeled options are frozen dataclasses, so the list keys by its tuple.
#: Unhashable (user-defined) options simply bypass the cache.  Bounded by
#: wholesale clearing — a miss only costs one re-encode.
_OPTIONS_CACHE: Dict[tuple, bytes] = {}
_OPTIONS_CACHE_MAX = 4096


def clear_options_cache() -> None:
    """Drop the OPT payload encode cache (benchmarks/tests hook)."""
    _OPTIONS_CACHE.clear()


class EdnsOption:
    """Base class for EDNS0 options carried in the OPT pseudo-record."""

    code: int

    def to_wire(self) -> bytes:
        """The option payload (not including the code/length header)."""
        raise NotImplementedError

    @classmethod
    def from_wire(cls, data: bytes) -> "EdnsOption":
        raise NotImplementedError


@dataclass(frozen=True)
class GenericOption(EdnsOption):
    """An EDNS option the codec does not model, kept as opaque bytes."""

    code_value: int
    data: bytes

    @property
    def code(self) -> int:  # type: ignore[override]
        return self.code_value

    def to_wire(self) -> bytes:
        return self.data

    @classmethod
    def from_wire(cls, data: bytes) -> "GenericOption":
        return cls(0, data)


@dataclass(frozen=True)
class CookieOption(EdnsOption):
    """DNS cookie (RFC 7873); modeled because busy resolvers send it."""

    client_cookie: bytes
    server_cookie: bytes = b""
    code = EdnsOptionCode.COOKIE

    def to_wire(self) -> bytes:
        if len(self.client_cookie) != 8:
            raise BadOptionError("client cookie must be 8 octets")
        if self.server_cookie and not 8 <= len(self.server_cookie) <= 32:
            raise BadOptionError("server cookie must be 8..32 octets")
        return self.client_cookie + self.server_cookie

    @classmethod
    def from_wire(cls, data: bytes) -> "CookieOption":
        if len(data) < 8:
            raise BadOptionError("cookie option shorter than 8 octets")
        return cls(data[:8], data[8:])


@dataclass(frozen=True)
class EcsOption(EdnsOption):
    """The edns-client-subnet option (RFC 7871).

    ``address`` always holds a full IPv4/IPv6 address object whose bits
    beyond ``source_prefix_length`` are zero; the wire form carries only the
    significant octets.

    >>> opt = EcsOption.from_client_address("192.0.2.77", 24)
    >>> opt.network().with_prefixlen
    '192.0.2.0/24'
    >>> EcsOption.from_wire(opt.to_wire()) == opt
    True
    """

    family: int
    source_prefix_length: int
    scope_prefix_length: int
    address: IPAddress
    code = EdnsOptionCode.ECS

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_client_address(cls, address: Union[str, IPAddress],
                            source_prefix_length: Optional[int] = None,
                            scope_prefix_length: int = 0) -> "EcsOption":
        """Build a query-side ECS option from a client address.

        ``source_prefix_length`` defaults to the RFC-recommended truncation:
        24 bits for IPv4 and 56 bits for IPv6.  Bits beyond the source prefix
        are zeroed as the RFC requires.
        """
        addr = ipaddress.ip_address(address)
        if addr.version == 4:
            family = ECS_FAMILY_IPV4
            source = 24 if source_prefix_length is None else source_prefix_length
            maxbits = 32
        else:
            family = ECS_FAMILY_IPV6
            source = 56 if source_prefix_length is None else source_prefix_length
            maxbits = 128
        if not 0 <= source <= maxbits:
            raise BadEcsError(f"source prefix length {source} out of range for family")
        truncated = _truncate(addr, source)
        return cls(family, source, scope_prefix_length, truncated)

    # -- semantics ---------------------------------------------------------

    def max_bits(self) -> int:
        """Address bit width for this option's family (32 or 128)."""
        if self.family == ECS_FAMILY_IPV4:
            return 32
        if self.family == ECS_FAMILY_IPV6:
            return 128
        raise BadEcsError(f"unknown ECS family {self.family}")

    def network(self) -> Union[ipaddress.IPv4Network, ipaddress.IPv6Network]:
        """The client subnet as an ``ip_network`` at the source prefix length."""
        return ipaddress.ip_network((self.address, self.source_prefix_length),
                                    strict=False)

    def scope_network(self) -> Union[ipaddress.IPv4Network, ipaddress.IPv6Network]:
        """The subnet at the *scope* prefix length (response-side semantics)."""
        return ipaddress.ip_network((self.address, self.scope_prefix_length),
                                    strict=False)

    def covers(self, client: Union[str, IPAddress], bits: Optional[int] = None) -> bool:
        """True if ``client`` falls inside this option's prefix.

        ``bits`` selects the prefix length to test at (defaults to the scope
        prefix length, which is what response caching uses).
        """
        addr = ipaddress.ip_address(client)
        if addr.version != (4 if self.family == ECS_FAMILY_IPV4 else 6):
            return False
        if bits is None:
            bits = self.scope_prefix_length
        net = ipaddress.ip_network((self.address, bits), strict=False)
        return addr in net

    def is_routable(self) -> bool:
        """False for loopback, link-local, and RFC1918/ULA client prefixes.

        Section 8.1 of the paper shows resolvers sending 127.0.0.1/32,
        127.0.0.0/24 and 169.254.252.0/24 prefixes; authoritative servers
        need this predicate to detect them.
        """
        addr = self.address
        return not (addr.is_loopback or addr.is_link_local or addr.is_private)

    def response_to(self, scope_prefix_length: int) -> "EcsOption":
        """The option an authoritative server echoes back with ``scope`` set.

        RFC 7871: family, source prefix and address must be copied from the
        query verbatim; only the scope prefix length changes.
        """
        return EcsOption(self.family, self.source_prefix_length,
                         scope_prefix_length, self.address)

    def matches_query(self, query_opt: "EcsOption") -> bool:
        """RFC 7871 section 7.3: response ECS must echo the query's
        family / source prefix / address or the client must discard it."""
        return (self.family == query_opt.family
                and self.source_prefix_length == query_opt.source_prefix_length
                and self.address == query_opt.address)

    # -- wire codec --------------------------------------------------------

    def to_wire(self) -> bytes:
        maxbits = self.max_bits()
        if not 0 <= self.source_prefix_length <= maxbits:
            raise BadEcsError(f"source prefix {self.source_prefix_length} exceeds "
                              f"family width {maxbits}")
        if not 0 <= self.scope_prefix_length <= maxbits:
            raise BadEcsError(f"scope prefix {self.scope_prefix_length} exceeds "
                              f"family width {maxbits}")
        nbytes = math.ceil(self.source_prefix_length / 8)
        packed = self.address.packed[:nbytes]
        # RFC 7871: bits beyond the source prefix MUST be zero on the wire.
        trailing = nbytes * 8 - self.source_prefix_length
        if trailing and packed:
            packed = packed[:-1] + bytes([packed[-1] & (0xFF << trailing) & 0xFF])
        return _ECS_HEADER.pack(self.family, self.source_prefix_length,
                                self.scope_prefix_length) + packed

    @classmethod
    def from_wire(cls, data: bytes) -> "EcsOption":
        if len(data) < 4:
            raise BadEcsError("ECS option shorter than 4 octets")
        family, source, scope = _ECS_HEADER.unpack_from(data)
        if family == ECS_FAMILY_IPV4:
            maxbits, width = 32, 4
        elif family == ECS_FAMILY_IPV6:
            maxbits, width = 128, 16
        else:
            raise BadEcsError(f"unknown ECS family {family}")
        if source > maxbits:
            raise BadEcsError(f"source prefix {source} exceeds family width")
        if scope > maxbits:
            raise BadEcsError(f"scope prefix {scope} exceeds family width")
        nbytes = math.ceil(source / 8)
        payload = data[4:]
        if len(payload) != nbytes:
            raise BadEcsError(f"ECS address field is {len(payload)} octets, "
                              f"expected {nbytes} for /{source}")
        packed = payload + b"\x00" * (width - nbytes)
        addr = ipaddress.ip_address(packed)
        trailing = nbytes * 8 - source
        if trailing and payload and payload[-1] & ~(0xFF << trailing) & 0xFF:
            raise BadEcsError("non-zero bits beyond ECS source prefix")
        return cls(family, source, scope, addr)

    def to_text(self) -> str:
        return (f"ECS {self.address}/{self.source_prefix_length} "
                f"scope/{self.scope_prefix_length}")

    def __str__(self) -> str:
        return self.to_text()


def _truncate(addr: IPAddress, bits: int) -> IPAddress:
    """Zero all bits of ``addr`` beyond the first ``bits``."""
    width = 32 if addr.version == 4 else 128
    if bits >= width:
        return addr
    as_int = int(addr)
    mask = ((1 << bits) - 1) << (width - bits) if bits else 0
    # Rebuild with the explicit class: ip_address(int) would guess IPv4
    # for any value below 2**32.
    if addr.version == 4:
        return ipaddress.IPv4Address(as_int & mask)
    return ipaddress.IPv6Address(as_int & mask)


_OPTION_CLASSES: Dict[int, Type[EdnsOption]] = {
    EdnsOptionCode.ECS: EcsOption,
    EdnsOptionCode.COOKIE: CookieOption,
}


def decode_option(code: int, data: bytes) -> EdnsOption:
    """Decode one EDNS option payload by its registered code."""
    klass = _OPTION_CLASSES.get(code)
    if klass is None:
        return GenericOption(code, data)
    return klass.from_wire(data)


def encode_options(options: List[EdnsOption]) -> bytes:
    """Serialize a list of options into the OPT RDATA payload.

    Successful encodes of hashable option lists are memoized (see
    ``_OPTIONS_CACHE``); the cached bytes are immutable, so sharing them
    is safe.
    """
    try:
        key: Optional[tuple] = tuple(options)
        cached = _OPTIONS_CACHE.get(key)
        if cached is not None:
            return cached
    except TypeError:
        key = None
    out = bytearray()
    for opt in options:
        payload = opt.to_wire()
        out += _OPTION_HEADER.pack(int(opt.code), len(payload))
        out += payload
    wire = bytes(out)
    if key is not None:
        if len(_OPTIONS_CACHE) >= _OPTIONS_CACHE_MAX:
            _OPTIONS_CACHE.clear()
        _OPTIONS_CACHE[key] = wire
    return wire


def decode_options(data: bytes) -> List[EdnsOption]:
    """Parse the OPT RDATA payload into a list of options."""
    options: List[EdnsOption] = []
    offset = 0
    while offset < len(data):
        if offset + 4 > len(data):
            raise TruncatedMessageError("EDNS option header truncated")
        code, length = _OPTION_HEADER.unpack_from(data, offset)
        offset += 4
        if offset + length > len(data):
            raise TruncatedMessageError("EDNS option payload truncated")
        options.append(decode_option(code, bytes(data[offset:offset + length])))
        offset += length
    return options


@dataclass
class EdnsInfo:
    """The EDNS0 state of a message: payload size, flags and options."""

    payload_size: int = 4096
    version: int = 0
    dnssec_ok: bool = False
    extended_rcode_bits: int = 0
    options: List[EdnsOption] = field(default_factory=list)

    def find_ecs(self) -> Optional[EcsOption]:
        """The first ECS option, if any."""
        for opt in self.options:
            if isinstance(opt, EcsOption):
                return opt
        return None

    def without_ecs(self) -> "EdnsInfo":
        """A copy of this EDNS state with any ECS options removed."""
        return EdnsInfo(self.payload_size, self.version, self.dnssec_ok,
                        self.extended_rcode_bits,
                        [o for o in self.options if not isinstance(o, EcsOption)])

    def with_ecs(self, ecs: EcsOption) -> "EdnsInfo":
        """A copy with ``ecs`` as the sole ECS option."""
        info = self.without_ecs()
        info.options.append(ecs)
        return info
