"""Section 8.2 analysis: hidden resolvers (Figures 4 and 5).

Discovery works exactly as in the paper: an ECS prefix arriving at the
experimental nameserver that covers *neither* the probed ingress forwarder
*nor* the egress resolver that sent the query must belong to an intermediary
— a hidden resolver.  Validation cross-references the discovered prefixes
against the ground-truth chains (standing in for the Public Resolver/CDN
log check, where the public service's sender-derived ECS revealed the true
query senders).

The distance analysis then builds (forwarder, hidden, egress) combinations
and compares the forwarder→hidden distance (what ECS tells the CDN) with
the forwarder→egress distance (what the CDN would use without ECS): points
below the diagonal are cases where ECS actively *worsens* mapping.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from ..datasets import paper_numbers as paper
from ..datasets.scan_dataset import ScanUniverse
from ..measure.scanner import ScanResult
from ..net.addr import same_prefix
from .report import Comparison, format_comparisons

#: Distances closer than this count as "equidistant" (geolocation noise).
EQUIDISTANT_TOLERANCE_KM = 50.0


@dataclass
class HiddenCombination:
    """One (forwarder, hidden prefix, egress) combination with distances."""

    forwarder_ip: str
    hidden_prefix: str
    egress_ip: str
    f_h_km: float
    f_r_km: float
    via_megadns: bool

    @property
    def hidden_farther(self) -> bool:
        return self.f_h_km > self.f_r_km + EQUIDISTANT_TOLERANCE_KM

    @property
    def equidistant(self) -> bool:
        return abs(self.f_h_km - self.f_r_km) <= EQUIDISTANT_TOLERANCE_KM


@dataclass
class HiddenResolverAnalysis:
    """Discovered prefixes, validation, and the Fig 4/5 distance split."""

    discovered_prefixes: Set[str]
    validated_prefixes: Set[str]
    combinations: List[HiddenCombination]

    def split(self, via_megadns: bool) -> List[HiddenCombination]:
        return [c for c in self.combinations if c.via_megadns == via_megadns]

    def fractions(self, via_megadns: bool) -> Tuple[float, float, float]:
        """(below diagonal, on diagonal, above diagonal) fractions."""
        combos = self.split(via_megadns)
        if not combos:
            return (0.0, 0.0, 0.0)
        below = sum(1 for c in combos if c.hidden_farther)
        on = sum(1 for c in combos if c.equidistant)
        above = len(combos) - below - on
        n = len(combos)
        return (below / n, on / n, above / n)

    def report(self) -> str:
        mp_below, mp_on, mp_above = self.fractions(True)
        other_below, other_on, other_above = self.fractions(False)
        items = [
            Comparison("hidden prefixes discovered", paper.HIDDEN_PREFIXES,
                       len(self.discovered_prefixes), note="paper scale"),
            Comparison("validated fraction",
                       round(paper.HIDDEN_VALIDATED_TOTAL
                             / paper.HIDDEN_PREFIXES, 2),
                       round(len(self.validated_prefixes)
                             / max(1, len(self.discovered_prefixes)), 2)),
            Comparison("MP: hidden farther (below diagonal)",
                       paper.MP_HIDDEN_FARTHER_FRAC, round(mp_below, 3)),
            Comparison("MP: equidistant", paper.MP_EQUIDISTANT_FRAC,
                       round(mp_on, 3)),
            Comparison("non-MP: hidden farther",
                       paper.NONMP_HIDDEN_FARTHER_FRAC, round(other_below, 3)),
            Comparison("non-MP: equidistant", paper.NONMP_EQUIDISTANT_FRAC,
                       round(other_on, 3)),
            Comparison("non-MP: hidden closer (ECS helps)",
                       paper.NONMP_HIDDEN_CLOSER_FRAC, round(other_above, 3)),
        ]
        return format_comparisons(items,
                                  "Section 8.2 — hidden resolvers (Figs 4/5)")


def analyze_hidden_resolvers(universe: ScanUniverse,
                             scan_result: ScanResult
                             ) -> HiddenResolverAnalysis:
    """Discover, validate, and measure hidden resolvers from the scan."""
    topology = universe.topology
    megadns_ips = set(universe.megadns.egress_ips)
    truth_hidden_24: Set[str] = set()
    for chain in universe.chains:
        for hid in chain.hidden_ips:
            truth_hidden_24.add(_prefix24(hid))

    discovered: Set[str] = set()
    validated: Set[str] = set()
    combinations: List[HiddenCombination] = []
    seen_combos: Set[Tuple[str, str, str]] = set()
    for record in scan_result.records:
        if not record.has_ecs or record.ingress_ip is None \
                or record.ecs_address is None:
            continue
        ecs_bits = min(record.ecs_source_len or 24, 24)
        covers_ingress = same_prefix(record.ecs_address, record.ingress_ip,
                                     ecs_bits)
        covers_egress = same_prefix(record.ecs_address, record.egress_ip,
                                    ecs_bits)
        # The scanner recognizes its own prefix (it *is* the client when an
        # ingress is itself a recursive resolver).
        covers_scanner = same_prefix(record.ecs_address,
                                     universe.scanner_ip, ecs_bits)
        if covers_ingress or covers_egress or covers_scanner:
            continue
        hidden_prefix = _prefix24(record.ecs_address)
        discovered.add(hidden_prefix)
        if hidden_prefix in truth_hidden_24:
            validated.add(hidden_prefix)

        combo_key = (record.ingress_ip, hidden_prefix, record.egress_ip)
        if combo_key in seen_combos:
            continue
        seen_combos.add(combo_key)
        f_h = topology.distance_km(record.ingress_ip, record.ecs_address)
        f_r = topology.distance_km(record.ingress_ip, record.egress_ip)
        if f_h is None or f_r is None:
            continue
        combinations.append(HiddenCombination(
            record.ingress_ip, hidden_prefix, record.egress_ip,
            f_h, f_r, record.egress_ip in megadns_ips))
    return HiddenResolverAnalysis(discovered, validated, combinations)


def _prefix24(address: str) -> str:
    parts = address.split(".")
    if len(parts) == 4:
        return ".".join(parts[:3]) + ".0/24"
    return address + "/48"
