"""Section 6.3 analysis: aggregate caching-behavior classification.

Drives :class:`~repro.measure.caching_probe.CachingBehaviorProber` over a
scan universe and tabulates the category counts next to the paper's
(76 correct / 103 scope-ignoring / 15 over-/24 / 8 clamp-22 / 1 private).
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional

from ..core.classify import CachingCategory
from ..datasets import paper_numbers as paper
from ..datasets.scan_dataset import ScanUniverse
from ..measure.caching_probe import CachingBehaviorProber, ProbeReport
from .report import Comparison, format_comparisons

PAPER_COUNTS = {
    CachingCategory.CORRECT: paper.CACHING_CORRECT,
    CachingCategory.IGNORES_SCOPE: paper.CACHING_IGNORES_SCOPE,
    CachingCategory.ACCEPTS_OVER_24: paper.CACHING_OVER_24,
    CachingCategory.CLAMPS_AT_22: paper.CACHING_CLAMP_22,
    CachingCategory.PRIVATE_PREFIX: paper.CACHING_PRIVATE_PREFIX,
}


@dataclass
class CachingBehaviorAnalysis:
    """Probe reports plus aggregate counts."""

    reports: List[ProbeReport]
    megadns_report: Optional[ProbeReport]

    def counts(self) -> Dict[CachingCategory, int]:
        return dict(Counter(r.category for r in self.reports))

    def report(self) -> str:
        counts = self.counts()
        studied = len(self.reports)
        paper_studied = paper.CACHING_STUDIED
        items = []
        for category, paper_count in PAPER_COUNTS.items():
            measured = counts.get(category, 0)
            items.append(Comparison(
                category.value,
                f"{paper_count} ({paper_count / paper_studied:.0%})",
                f"{measured} ({measured / max(1, studied):.0%})"))
        unclassified = counts.get(CachingCategory.UNCLASSIFIED, 0)
        if unclassified:
            items.append(Comparison("unclassified", None, unclassified))
        if self.megadns_report is not None:
            items.append(Comparison(
                "major public resolver", "correct",
                self.megadns_report.category.value,
                note="paper: the one studiable Google resolver was correct"))
        return format_comparisons(items,
                                  "Section 6.3 — caching behavior classes")

    def scope_ignoring_majority(self) -> bool:
        """The paper's headline: over half of studied resolvers ignore scope.

        (In the synthetic mix the share is configurable; the default mix
        keeps it the largest class.)
        """
        counts = self.counts()
        ignoring = counts.get(CachingCategory.IGNORES_SCOPE, 0)
        return ignoring >= max(counts.values())


def analyze_caching_behavior(universe: ScanUniverse) -> CachingBehaviorAnalysis:
    """Run the twin-query experiment over every studiable resolver."""
    prober = CachingBehaviorProber(universe)
    reports = prober.probe_all()
    megadns = prober.probe_megadns()
    return CachingBehaviorAnalysis(reports, megadns)
