"""Section 6.1 analysis: probing-strategy classification.

Runs the log-driven classifier over every resolver in a (generated or
real-schema) CDN dataset, tabulates the category counts next to the paper's,
and — because the synthetic dataset carries ground truth — also reports
classifier accuracy.  The root-server check (ECS sent to roots) runs over a
DITL-like trace.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from ..core.classify import (ProbingCategory, ProbingClassification,
                             classify_probing)
from ..datasets import paper_numbers as paper
from ..datasets.cdn_dataset import CdnDataset
from ..datasets.ditl import RootTrace, count_root_ecs_violators
from .report import Comparison, format_comparisons

#: Dataset ground-truth label → classifier category value.
_TRUTH_TO_CATEGORY = {
    "always_ecs": ProbingCategory.ALWAYS_ECS,
    "hostname_probes": ProbingCategory.HOSTNAME_PROBES,
    "interval_loopback": ProbingCategory.INTERVAL_LOOPBACK,
    "hostnames_on_miss": ProbingCategory.HOSTNAMES_ON_MISS,
    "mixed": ProbingCategory.MIXED,
}

#: Category → the count the paper reports (section 6.1).
PAPER_COUNTS = {
    ProbingCategory.ALWAYS_ECS: paper.PROBING_ALWAYS,
    ProbingCategory.HOSTNAME_PROBES: paper.PROBING_HOSTNAME_PROBES,
    ProbingCategory.INTERVAL_LOOPBACK: paper.PROBING_INTERVAL_LOOPBACK,
    ProbingCategory.HOSTNAMES_ON_MISS: paper.PROBING_ON_MISS,
    ProbingCategory.MIXED: paper.PROBING_MIXED,
}


@dataclass
class ProbingAnalysis:
    """Classification counts, per-resolver verdicts, and accuracy."""

    counts: Dict[ProbingCategory, int]
    per_resolver: Dict[str, ProbingClassification]
    accuracy: Optional[float]
    total_resolvers: int

    def fractions(self) -> Dict[ProbingCategory, float]:
        total = sum(self.counts.values()) or 1
        return {cat: n / total for cat, n in self.counts.items()}

    def report(self) -> str:
        items = []
        paper_total = sum(PAPER_COUNTS.values())
        for cat, paper_count in PAPER_COUNTS.items():
            measured = self.counts.get(cat, 0)
            items.append(Comparison(
                cat.value,
                f"{paper_count} ({paper_count / paper_total:.1%})",
                f"{measured} ({measured / max(1, self.total_resolvers):.1%})"))
        if self.accuracy is not None:
            items.append(Comparison("classifier accuracy", None,
                                    f"{self.accuracy:.1%}"))
        return format_comparisons(items, "Section 6.1 — probing strategies")


def analyze_probing(dataset: CdnDataset, record_ttl: float = 20.0
                    ) -> ProbingAnalysis:
    """Classify every resolver in the CDN dataset."""
    by_resolver = dataset.by_resolver()
    truth = {spec.ip: spec.probing for spec in dataset.resolvers}
    counts: Counter = Counter()
    per_resolver: Dict[str, ProbingClassification] = {}
    correct = 0
    judged = 0
    for ip, records in by_resolver.items():
        verdict = classify_probing(records, record_ttl=record_ttl)
        per_resolver[ip] = verdict
        counts[verdict.category] += 1
        expected = _TRUTH_TO_CATEGORY.get(truth.get(ip, ""))
        if expected is not None:
            judged += 1
            if verdict.category is expected:
                correct += 1
    accuracy = correct / judged if judged else None
    return ProbingAnalysis(dict(counts), per_resolver, accuracy,
                           len(by_resolver))


@dataclass
class RootViolationAnalysis:
    """The section 6.1 DITL check."""

    violators_found: int
    violators_truth: int

    def report(self) -> str:
        return format_comparisons(
            [Comparison("resolvers sending ECS to roots",
                        paper.PROBING_ROOT_VIOLATORS, self.violators_found,
                        note=f"ground truth: {self.violators_truth}")],
            "Section 6.1 — root-server ECS violations")


def analyze_root_violations(trace: RootTrace) -> RootViolationAnalysis:
    """Count resolvers that sent ECS queries to the root."""
    return RootViolationAnalysis(count_root_ecs_violators(trace.records),
                                 len(trace.violator_ips))
