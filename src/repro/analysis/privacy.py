"""Privacy leakage by probing strategy (the section 6.1 critique, made
quantitative).

RFC 7871 tells resolvers not to send ECS blindly, because revealing client
prefixes to authoritative servers that never use them is pure privacy loss.
The paper observes strategies all over this spectrum — always-send,
hostname probes, 30-minute loopback probes, per-domain whitelists — and
recommends own-address probing.  This lab measures each strategy against a
mixed authoritative population (some ECS-enabled, some not) and counts:

* client-prefix bits revealed to ECS-enabled servers (the useful price),
* client-prefix bits revealed to ECS-oblivious servers (pure waste),
* the mapping benefit actually obtained (fraction of CDN queries carrying
  usable client data).

Loopback/fixed-prefix probes reveal zero *client* bits by construction —
their cost is the mapping confusion section 8.1 documents, not privacy.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..auth.cdn import CdnAuthoritative, build_edge_pools
from ..auth.hierarchy import DnsHierarchy
from ..auth.server import AuthLogRecord, AuthoritativeServer, fixed_scope
from ..core.policies import EcsPolicy
from ..dnslib import Name, Zone
from ..measure.digclient import StubClient
from ..net.addr import is_routable, same_prefix
from ..net.geo import city
from ..net.topology import Topology
from ..net.transport import Network
from ..resolvers import RecursiveResolver, behaviors
from .report import format_table


@dataclass
class PrivacyOutcome:
    """Leakage accounting for one probing strategy."""

    strategy: str
    queries_upstream: int = 0
    ecs_to_ecs_servers: int = 0
    ecs_to_plain_servers: int = 0
    client_bits_to_ecs_servers: int = 0
    client_bits_to_plain_servers: int = 0

    @property
    def wasted_leak_fraction(self) -> float:
        """Fraction of revealed client bits that went to ECS-oblivious
        servers (the paper's "unnecessary" leakage)."""
        total = (self.client_bits_to_ecs_servers
                 + self.client_bits_to_plain_servers)
        return self.client_bits_to_plain_servers / total if total else 0.0


@dataclass
class PrivacyStudy:
    """Results for every strategy, plus rendering."""

    outcomes: List[PrivacyOutcome]

    def by_strategy(self) -> Dict[str, PrivacyOutcome]:
        return {o.strategy: o for o in self.outcomes}

    def report(self) -> str:
        rows = []
        for o in self.outcomes:
            rows.append((o.strategy, o.queries_upstream,
                         o.ecs_to_ecs_servers, o.ecs_to_plain_servers,
                         o.client_bits_to_plain_servers,
                         f"{o.wasted_leak_fraction:.0%}"))
        return format_table(
            ("strategy", "upstream q", "ECS→ECS srv", "ECS→plain srv",
             "wasted client bits", "wasted fraction"),
            rows,
            title="Privacy leakage by probing strategy (section 6.1)")


#: The strategies the paper observes, plus its recommendation.
DEFAULT_STRATEGIES: Tuple[Tuple[str, EcsPolicy], ...] = (
    ("always_ecs", behaviors.ALWAYS_ECS),
    ("domain_whitelist", behaviors.DOMAIN_WHITELISTER),
    ("interval_loopback", behaviors.INTERVAL_LOOPBACK_PROBER),
    ("recommended_own_address", behaviors.RECOMMENDED_PROBER),
    ("never", behaviors.NO_ECS),
)


def _count_client_bits(record: AuthLogRecord, client_ip: str) -> int:
    """Bits of the *client's* address a logged ECS option reveals.

    Loopback/private probe prefixes reveal nothing about the client; a
    genuine prefix reveals its source length (jammed /32s still reveal
    only 24 real bits, but the resolver *claims* 32 — we count actual
    client-derived bits, so only prefixes covering the client count).
    """
    if not record.has_ecs or record.ecs_address is None \
            or record.ecs_source_len is None:
        return 0
    if not is_routable(record.ecs_address):
        return 0
    bits = min(record.ecs_source_len, 24)
    if same_prefix(record.ecs_address, client_ip, bits):
        return record.ecs_source_len
    return 0


def run_privacy_study(strategies: Sequence[Tuple[str, EcsPolicy]]
                      = DEFAULT_STRATEGIES,
                      seed: int = 0,
                      plain_zone_count: int = 4,
                      query_rounds: int = 12,
                      round_gap_s: float = 400.0) -> PrivacyStudy:
    """Drive one resolver per strategy against a mixed server population."""
    rng = random.Random(seed)
    topology = Topology()
    net = Network(topology)
    infra = topology.create_as("infra", "US")
    hierarchy = DnsHierarchy(net, infra)

    # One ECS-enabled CDN authoritative...
    cdn_as = topology.create_as("cdn", "US")
    pools = build_edge_pools(topology, cdn_as,
                             [city("Chicago"), city("Frankfurt")])
    cdn_ip = cdn_as.host_in(city("Ashburn"))
    cdn_domain = Name.from_text("cdn.example.")
    cdn = CdnAuthoritative(cdn_ip, [cdn_domain], pools, topology, ttl=15)
    net.attach(cdn)
    hierarchy.attach_authoritative(cdn_domain, cdn_ip)

    # ...and several ECS-oblivious zones.
    plain_servers: List[AuthoritativeServer] = []
    for i in range(plain_zone_count):
        zone = Zone(Name.from_text(f"plain{i}.example."), default_ttl=15)
        zone.add_soa()
        zone.add_text("www", "A", f"203.0.{113 + i}.10")
        server = hierarchy.host_zone(zone, city("Denver"))
        plain_servers.append(server)

    qnames = ([f"www.plain{i}.example." for i in range(plain_zone_count)]
              + ["a.cdn.example.", "b.cdn.example."])

    isp = topology.create_as("isp", "US")
    outcomes: List[PrivacyOutcome] = []
    for strategy_name, base_policy in strategies:
        policy = base_policy
        if policy.probing is behaviors.ProbingStrategy.DOMAIN_WHITELIST:
            policy = policy.with_(whitelist_zones=(cdn_domain,))
        resolver_ip = isp.host_in_new_subnet(city("Cleveland"))
        resolver = RecursiveResolver(resolver_ip, topology.clock,
                                     hierarchy.root_ips, policy=policy)
        net.attach(resolver)
        # The client lives in a different /24 than its resolver, so
        # resolver-own-address probes reveal zero client bits.
        client_ip = isp.host_in_new_subnet(city("Cleveland"))
        client = StubClient(client_ip, net)

        cdn_log_start = len(cdn.log)
        plain_log_starts = [len(s.log) for s in plain_servers]
        upstream_before = resolver.upstream_queries
        for _ in range(query_rounds):
            for qname in qnames:
                client.query(resolver_ip, qname)
            net.clock.advance(round_gap_s * rng.uniform(0.9, 1.1))

        outcome = PrivacyOutcome(strategy_name)
        outcome.queries_upstream = resolver.upstream_queries - upstream_before
        for record in cdn.log[cdn_log_start:]:
            if record.src_ip != resolver_ip or not record.has_ecs:
                continue
            outcome.ecs_to_ecs_servers += 1
            outcome.client_bits_to_ecs_servers += \
                _count_client_bits(record, client_ip)
        for server, start in zip(plain_servers, plain_log_starts):
            for record in server.log[start:]:
                if record.src_ip != resolver_ip or not record.has_ecs:
                    continue
                outcome.ecs_to_plain_servers += 1
                outcome.client_bits_to_plain_servers += \
                    _count_client_bits(record, client_ip)
        outcomes.append(outcome)
    return PrivacyStudy(outcomes)
