"""Per-section analyses reproducing the paper's tables and figures."""

from .cache_sim import (ReplayPartial, ReplayResult, allnames_replay,
                        cdf_points, fig1_series, fig2_series, fig3_series,
                        merge_partials, percentile, public_cdn_blowups,
                        replay, replay_partial)
from .caching_behavior import (CachingBehaviorAnalysis,
                               analyze_caching_behavior)
from .discovery import DiscoveryAnalysis, analyze_discovery
from .export import (export_all, export_fig1, export_fig2, export_fig3,
                     export_fig45, export_fig67)
from .flattening import (FlatteningLab, FlatteningTimings,
                         run_flattening_case_study)
from .hidden import (HiddenCombination, HiddenResolverAnalysis,
                     analyze_hidden_resolvers)
from .mapping_quality import (MappingQualityLab, PrefixLengthSeries,
                              crossover_prefix_length,
                              measure_mapping_quality)
from .poisoning import (PoisoningOutcome, compare_blast_radius,
                        poisoning_report, run_poisoning_experiment)
from .prefixlen import (Table1, build_table1, cdn_prefix_profiles,
                        scan_prefix_profiles)
from .privacy import (PrivacyOutcome, PrivacyStudy, run_privacy_study)
from .probing import (ProbingAnalysis, RootViolationAnalysis,
                      analyze_probing, analyze_root_violations)
from .report import (Comparison, cdf_table, format_comparisons,
                     format_network_stats, format_table)
from .summary import (summarize_allnames, summarize_cdn,
                      summarize_public_cdn, summarize_scan)
from .unroutable import Table2, UnroutableLab, run_table2
from .whitelist_compare import (ResolverOutcome, WhitelistComparison,
                                run_whitelist_comparison)

__all__ = [
    "CachingBehaviorAnalysis", "Comparison", "DiscoveryAnalysis",
    "FlatteningLab", "FlatteningTimings", "HiddenCombination",
    "HiddenResolverAnalysis", "MappingQualityLab", "PrefixLengthSeries",
    "PoisoningOutcome", "PrivacyOutcome", "PrivacyStudy",
    "ProbingAnalysis", "ReplayPartial", "ReplayResult", "ResolverOutcome",
    "RootViolationAnalysis", "Table1", "Table2", "UnroutableLab",
    "WhitelistComparison", "allnames_replay",
    "analyze_caching_behavior", "analyze_discovery",
    "analyze_hidden_resolvers", "analyze_probing",
    "analyze_root_violations", "build_table1", "cdf_points", "cdf_table",
    "compare_blast_radius", "poisoning_report", "run_poisoning_experiment",
    "run_privacy_study",
    "export_all", "export_fig1", "export_fig2", "export_fig3",
    "export_fig45", "export_fig67",
    "cdn_prefix_profiles", "crossover_prefix_length", "fig1_series",
    "fig2_series", "fig3_series", "format_comparisons",
    "format_network_stats", "format_table",
    "measure_mapping_quality", "merge_partials", "percentile",
    "public_cdn_blowups", "replay", "replay_partial",
    "run_flattening_case_study", "run_table2", "run_whitelist_comparison",
    "scan_prefix_profiles",
    "summarize_allnames", "summarize_cdn", "summarize_public_cdn",
    "summarize_scan",
]
