"""Section 6.2 analysis: ECS source prefix lengths (Table 1).

Builds the Table 1 rows — one per observed combination of source prefix
lengths, with "jammed last byte" detection — for both vantage points: the
passive CDN dataset and the active Scan dataset.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..core.classify import PrefixProfile, QueryObservation, prefix_length_profile
from ..datasets import paper_numbers as paper
from ..datasets.cdn_dataset import CdnDataset
from ..measure.scanner import ScanResult
from .report import format_table


@dataclass
class Table1:
    """Per-row resolver counts for both datasets."""

    scan_counts: Dict[str, int]
    cdn_counts: Dict[str, int]

    def rows(self) -> List[Tuple[str, Optional[int], Optional[int],
                                 Optional[int], Optional[int]]]:
        """(label, scan measured, scan paper, cdn measured, cdn paper)."""
        labels = sorted(set(self.scan_counts) | set(self.cdn_counts)
                        | set(paper.TABLE1_ROWS))
        out = []
        for label in labels:
            paper_scan, paper_cdn = paper.TABLE1_ROWS.get(label, (None, None))
            out.append((label,
                        self.scan_counts.get(label),
                        paper_scan,
                        self.cdn_counts.get(label),
                        paper_cdn))
        return out

    def report(self) -> str:
        return format_table(
            ("source prefix length", "scan (measured)", "scan (paper)",
             "cdn (measured)", "cdn (paper)"),
            self.rows(),
            title="Table 1 — ECS source prefix lengths")


def _profile_counts(profiles: Sequence[PrefixProfile]) -> Dict[str, int]:
    counts: Counter = Counter()
    for profile in profiles:
        label = profile.table1_label()
        if label != "none":
            counts[label] += 1
    return dict(counts)


def cdn_prefix_profiles(dataset: CdnDataset) -> Dict[str, PrefixProfile]:
    """Per-resolver prefix profiles from the CDN dataset."""
    return {ip: prefix_length_profile(records)
            for ip, records in dataset.by_resolver().items()}


def scan_prefix_profiles(result: ScanResult) -> Dict[str, PrefixProfile]:
    """Per-egress prefix profiles from the scan records.

    Scan records lack a qtype; the classifier only needs the ECS fields, so
    they are adapted into :class:`QueryObservation` shape here.
    """
    profiles: Dict[str, PrefixProfile] = {}
    for egress_ip, records in result.records_by_egress().items():
        observations = [QueryObservation(r.ts, r.qname, 1, r.has_ecs,
                                         r.ecs_address, r.ecs_source_len)
                        for r in records]
        profile = prefix_length_profile(observations)
        if profile.v4_lengths or profile.v6_lengths:
            profiles[egress_ip] = profile
    return profiles


def build_table1(cdn_dataset: Optional[CdnDataset] = None,
                 scan_result: Optional[ScanResult] = None) -> Table1:
    """Assemble Table 1 from whichever vantage points are available."""
    cdn_counts: Dict[str, int] = {}
    scan_counts: Dict[str, int] = {}
    if cdn_dataset is not None:
        cdn_counts = _profile_counts(list(cdn_prefix_profiles(cdn_dataset)
                                          .values()))
    if scan_result is not None:
        scan_counts = _profile_counts(list(scan_prefix_profiles(scan_result)
                                           .values()))
    return Table1(scan_counts, cdn_counts)
