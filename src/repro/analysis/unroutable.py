"""Section 8.1 analysis: non-routable ECS prefixes (Table 2).

Reproduces the paper's five-query experiment: from a Cleveland lab machine,
query a Google-like CDN authoritative directly with (1) no ECS, (2) ECS
matching the lab machine's /24, and (3–5) the three unroutable prefixes the
misbehaving resolvers actually send — 127.0.0.1/32, 127.0.0.0/24 and
169.254.252.0/24 — then ping the first returned edge address 8 times and
geolocate it.  A literal-lookup authoritative maps the unroutable prefixes
to arbitrary far-away edges; the RFC-compliant fallback maps them like the
resolver's own address.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..auth.cdn import CdnAuthoritative, EdgePool, UnroutablePolicy, build_edge_pools
from ..auth.hierarchy import DnsHierarchy
from ..datasets import paper_numbers as paper
from ..dnslib import EcsOption, Name, RecordType
from ..measure.digclient import StubClient
from ..net.geo import city
from ..net.topology import Topology
from ..net.transport import Network
from .report import format_table

#: The ECS variants of Table 2, in paper order.
TABLE2_VARIANTS: Tuple[Tuple[str, Optional[Tuple[str, int]]], ...] = (
    ("none", None),
    ("/24 of src addr", ("lab", 24)),
    ("127.0.0.1/32", ("127.0.0.1", 32)),
    ("127.0.0.0/24", ("127.0.0.0", 24)),
    ("169.254.252.0/24", ("169.254.252.0", 24)),
)

#: Edge cities for the Google-like CDN (includes every Table 2 location).
EDGE_CITIES = ("Chicago", "New York", "Ashburn", "Dallas", "Los Angeles",
               "Mountain View", "Toronto", "London", "Paris", "Zurich",
               "Frankfurt", "Stockholm", "Moscow", "Johannesburg",
               "Cape Town", "Mumbai", "Singapore", "Tokyo", "Sydney",
               "Sao Paulo", "Santiago", "Seoul", "Hong Kong")


@dataclass
class Table2Row:
    """One measured row of Table 2."""

    ecs_prefix: str
    first_answer: Optional[str]
    rtt_ms: Optional[float]
    location: Optional[str]
    answers: List[str]


@dataclass
class UnroutableLab:
    """The Table 2 apparatus: lab machine + Google-like CDN authoritative."""

    net: Network
    topology: Topology
    lab_ip: str
    cdn: CdnAuthoritative
    qname: Name

    @classmethod
    def build(cls, seed: int = 0,
              unroutable_policy: UnroutablePolicy = UnroutablePolicy.LITERAL
              ) -> "UnroutableLab":
        topology = Topology()
        net = Network(topology)
        infra = topology.create_as("infra", "US")
        hierarchy = DnsHierarchy(net, infra)
        lab_as = topology.create_as("campus", "US")
        lab_ip = lab_as.host_in(city("Cleveland"))

        cdn_as = topology.create_as("google-like", "US", v4_prefixlen=12)
        pools = build_edge_pools(topology, cdn_as,
                                 [city(n) for n in EDGE_CITIES],
                                 addresses_per_pool=16)
        cdn_ip = cdn_as.host_in(city("Mountain View"))
        qname = Name.from_text("www.video-site.example.")
        cdn = CdnAuthoritative(
            cdn_ip, [Name.from_text("video-site.example.")], pools, topology,
            whitelist=None, unroutable_policy=unroutable_policy,
            answers_per_response=16, scope_v4=24)
        net.attach(cdn)
        hierarchy.attach_authoritative(Name.from_text("video-site.example."),
                                       cdn_ip)
        return cls(net, topology, lab_ip, cdn, qname)


@dataclass
class Table2:
    """All five rows plus the overlap checks the paper makes."""

    rows: List[Table2Row]
    routable_answers_identical: bool
    unroutable_answers_disjoint: bool

    def row(self, prefix: str) -> Table2Row:
        for r in self.rows:
            if r.ecs_prefix == prefix:
                return r
        raise KeyError(prefix)

    def report(self) -> str:
        body = []
        for r in self.rows:
            paper_loc, paper_rtt = paper.TABLE2_ROWS.get(r.ecs_prefix,
                                                         (None, None))
            body.append((r.ecs_prefix, r.first_answer, r.rtt_ms, r.location,
                         paper_loc, paper_rtt))
        return format_table(
            ("ECS prefix", "first answer", "RTT (ms)", "location",
             "paper location", "paper RTT"),
            body, title="Table 2 — responses to unroutable ECS prefixes")


def run_table2(lab: UnroutableLab, ping_count: int = 8) -> Table2:
    """Issue the five dig queries and ping the returned edges."""
    client = StubClient(lab.lab_ip, lab.net)
    rows: List[Table2Row] = []
    answer_sets: Dict[str, frozenset] = {}
    for label, spec in TABLE2_VARIANTS:
        ecs = None
        if spec is not None:
            address, bits = spec
            if address == "lab":
                address = lab.lab_ip
            ecs = EcsOption.from_client_address(address, bits)
        result = client.query(lab.cdn.ip, lab.qname, RecordType.A, ecs=ecs,
                              recursion_desired=False)
        answers = result.addresses
        answer_sets[label] = frozenset(answers)
        first = result.first_address
        rtt = lab.net.ping_ms(lab.lab_ip, first, ping_count) if first else None
        where = lab.topology.city_of(first) if first else None
        rows.append(Table2Row(label, first, rtt,
                              where.name if where else None, answers))

    routable_same = answer_sets["none"] == answer_sets["/24 of src addr"]
    unroutable = [answer_sets[k] for k in ("127.0.0.1/32", "127.0.0.0/24",
                                           "169.254.252.0/24")]
    routable = answer_sets["none"]
    disjoint = all(not (u & routable) for u in unroutable) and \
        not (unroutable[0] & unroutable[1]) and \
        not (unroutable[0] & unroutable[2]) and \
        not (unroutable[1] & unroutable[2])
    return Table2(rows, routable_same, disjoint)
